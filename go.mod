module github.com/deltacache/delta

go 1.24
