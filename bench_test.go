// Package delta_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (one benchmark per
// artifact; see DESIGN.md's per-experiment index), plus microbenchmarks
// for the hot algorithmic paths. Benchmarks run at a reduced scale so
// `go test -bench=. -benchmem` completes in minutes; `cmd/delta-bench
// -scale 1` reproduces the full 500k-event runs and EXPERIMENTS.md
// records paper-vs-measured for those.
package delta_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/experiments"
	"github.com/deltacache/delta/internal/flow"
	"github.com/deltacache/delta/internal/gds"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/htm"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/sim"
	"github.com/deltacache/delta/internal/trace"
)

// benchScale keeps a single policy run around 20k events.
const benchScale = 0.04

func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	s, err := experiments.NewSetup(experiments.Options{Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig7a_TraceGeneration measures producing the Figure 7(a)
// workload scatter: survey construction plus trace generation.
func BenchmarkFig7a_TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSetup(experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Fig7a(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7b_CumulativeTraffic replays the trace through all five
// policies of Figure 7(b) and reports their final traffic.
func BenchmarkFig7b_CumulativeTraffic(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var results map[string]*sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = s.RunAll()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	post := experiments.PostWarmup(results, 0.5)
	for _, name := range experiments.PolicyNames {
		b.ReportMetric(post[name].GBf(), name+"_postGB")
	}
}

// BenchmarkFig7b_VCoverOnly isolates the paper's core algorithm on the
// reference trace.
func BenchmarkFig7b_VCoverOnly(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Total().GBf(), "totalGB")
			b.ReportMetric(float64(res.QueriesAtCache), "atCache")
		}
	}
}

// BenchmarkFig8a_VaryUpdates runs the update-count sweep of Figure 8(a).
func BenchmarkFig8a_VaryUpdates(b *testing.B) {
	base := int(250_000 * benchScale)
	counts := []int{base / 2, base, 3 * base / 2}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8a(experiments.Options{Scale: benchScale}, counts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Totals["Replica"].GBf(), "replicaMaxGB")
		}
	}
}

// BenchmarkFig8b_Granularity runs the object-granularity sweep of
// Figure 8(b).
func BenchmarkFig8b_Granularity(b *testing.B) {
	counts := []int{10, 68, 134}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8b(experiments.Options{Scale: benchScale}, counts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				b.ReportMetric(row.Final.GBf(), "gb_at_"+itoa(row.NumObjects))
			}
		}
	}
}

// BenchmarkCacheSizeSweep runs the cache-fraction sweep behind the
// paper's "half the traffic with one-fifth the cache" headline.
func BenchmarkCacheSizeSweep(b *testing.B) {
	fracs := []float64{0.2, 0.3}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CacheSize(experiments.Options{Scale: benchScale}, fracs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Totals["VCover"].GBf(), "vcover_fifth_GB")
			b.ReportMetric(rows[0].Totals["NoCache"].GBf(), "nocache_GB")
		}
	}
}

// BenchmarkBenefitWindowSweep runs the δ sweep the paper used to tune
// Benefit.
func BenchmarkBenefitWindowSweep(b *testing.B) {
	windows := []int{100, 1000}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BenefitWindowSweep(experiments.Options{Scale: benchScale}, windows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmup measures the warm-up characterization across seeds.
func BenchmarkWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Warmup(experiments.Options{Scale: benchScale}, []int64{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentClients measures end-to-end query throughput
// against a live loopback deployment (repository + middleware over real
// TCP) with concurrent clients. The "serialized" variant restores the
// seed's handling — one global lock around each query including its
// repository round trip (cache.Config.Serialized) — while "mux" is the
// protocol-v2 multiplexed path. Every query ships to the repository
// (NoCache policy), so the benchmark isolates the wire path the
// redesign parallelized; mux with 16 clients should beat serialized by
// well over 3×.
func BenchmarkConcurrentClients(b *testing.B) {
	const nClients = 16
	for _, mode := range []struct {
		name       string
		serialized bool
		repoPool   int
	}{
		{name: "serialized", serialized: true, repoPool: 1},
		{name: "mux", serialized: false, repoPool: 2},
	} {
		b.Run(mode.name, func(b *testing.B) {
			scfg := catalog.DefaultConfig()
			scfg.NumObjects = 16
			scfg.TotalSize = 16 * cost.GB
			scfg.MinObjectSize = 100 * cost.MB
			scfg.MaxObjectSize = 4 * cost.GB
			survey, err := catalog.NewSurvey(scfg)
			if err != nil {
				b.Fatal(err)
			}
			// Metadata-only payloads (the benchmark times the protocol
			// path, not payload generation) and a 2ms simulated
			// repository execution per query, standing in for the
			// paper's multi-second scans: the serialized path holds
			// its global lock across that delay, the mux path overlaps
			// it across clients.
			repo, err := server.New(server.Config{
				Survey:    survey,
				Scale:     netproto.PayloadScale{},
				ExecDelay: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := repo.Start(); err != nil {
				b.Fatal(err)
			}
			defer repo.Close()
			mw, err := cache.New(cache.Config{
				RepoAddr:   repo.Addr(),
				RepoPool:   mode.repoPool,
				Policy:     core.NewNoCache(),
				Objects:    survey.Objects(),
				Capacity:   8 * cost.GB,
				Scale:      netproto.PayloadScale{},
				Serialized: mode.serialized,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := mw.Start(); err != nil {
				b.Fatal(err)
			}
			defer mw.Close()

			ctx := context.Background()
			clients := make([]*client.Client, nClients)
			for i := range clients {
				cl, err := client.Dial(mw.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				clients[i] = cl
			}

			var next atomic.Int64
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < nClients; c++ {
				wg.Add(1)
				go func(cl *client.Client) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if _, err := cl.Query(ctx, model.Query{
							ID:        model.QueryID(i),
							Objects:   []model.ObjectID{model.ObjectID(i%16 + 1)},
							Cost:      cost.MB,
							Tolerance: model.AnyStaleness,
							Time:      time.Duration(i) * time.Millisecond,
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}(clients[c])
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
		})
	}
}

// BenchmarkClusterScaling measures aggregate query throughput of the
// sharded cache cluster at 1/2/4/8 shards against one repository. Each
// shard runs the Replica policy (owned objects preloaded, every query
// answered locally) with a 2ms simulated node-local scan held under
// the shard's serial execution lock — the per-node resource the
// cluster exists to multiply. The router scatters nothing here (every
// query touches one object), so the sweep isolates ownership routing:
// near-linear scaling means the routing tier adds negligible overhead
// over the shards' execution capacity. When BENCH_JSON_DIR is set the
// sweep also writes BENCH_cluster_scaling.json for the CI perf
// trajectory.
func BenchmarkClusterScaling(b *testing.B) {
	const nClients = 24
	const nObjects = 32
	shardCounts := []int{1, 2, 4, 8}
	qps := make(map[int]float64, len(shardCounts))
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			scfg := catalog.DefaultConfig()
			scfg.NumObjects = nObjects
			// Equal-size objects: the size-balanced HTM cut then owns
			// equal object counts per shard, so a uniform per-object
			// query load spreads evenly and the sweep measures routing,
			// not placement skew.
			scfg.TotalSize = 32 * cost.GB
			scfg.MinObjectSize = cost.GB
			scfg.MaxObjectSize = cost.GB
			survey, err := catalog.NewSurvey(scfg)
			if err != nil {
				b.Fatal(err)
			}
			repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
			if err != nil {
				b.Fatal(err)
			}
			if err := repo.Start(); err != nil {
				b.Fatal(err)
			}
			defer repo.Close()
			lc, err := cluster.SpawnLocal(cluster.LocalConfig{
				RepoAddr:  repo.Addr(),
				Objects:   survey.Objects(),
				Shards:    shards,
				Mode:      cluster.HTMAware,
				Policy:    func(int) core.Policy { return core.NewReplica() },
				Scale:     netproto.PayloadScale{},
				ExecDelay: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lc.Close()

			ctx := context.Background()
			clients := make([]*client.Client, nClients)
			for i := range clients {
				cl, err := client.DialCluster(lc.Router.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				clients[i] = cl
			}

			objects := survey.Objects()
			var next atomic.Int64
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < nClients; c++ {
				wg.Add(1)
				go func(cl *client.Client) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						// Hash the sequence number into an object pick:
						// sequential picks would walk the HTM ownership's
						// contiguous ranges one shard at a time, leaving
						// the other shards idle.
						pick := int(uint64(i) * 11400714819323198485 % uint64(len(objects)))
						res, err := cl.Query(ctx, model.Query{
							ID:        model.QueryID(i),
							Objects:   []model.ObjectID{objects[pick].ID},
							Cost:      cost.MB,
							Tolerance: model.AnyStaleness,
							Time:      time.Duration(i) * time.Millisecond,
						})
						if err != nil {
							b.Error(err)
							return
						}
						if res.Degraded {
							b.Error("degraded result from a healthy cluster")
							return
						}
					}
				}(clients[c])
			}
			wg.Wait()
			b.StopTimer()
			rate := float64(b.N) / time.Since(start).Seconds()
			qps[shards] = rate
			b.ReportMetric(rate, "queries/s")
		})
	}
	if qps[1] > 0 {
		b.Logf("cluster scaling: 1→%v q/s, 4 shards %.2fx, 8 shards %.2fx",
			qps[1], qps[4]/qps[1], qps[8]/qps[1])
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		writeClusterScalingJSON(b, dir, shardCounts, qps)
	}
}

// writeClusterScalingJSON records the sweep for the CI-accumulated
// perf trajectory (BENCH_*.json artifacts).
func writeClusterScalingJSON(b *testing.B, dir string, shardCounts []int, qps map[int]float64) {
	b.Helper()
	type row struct {
		Shards        int     `json:"shards"`
		QueriesPerSec float64 `json:"queriesPerSec"`
	}
	out := struct {
		Benchmark   string    `json:"benchmark"`
		Timestamp   time.Time `json:"timestamp"`
		Rows        []row     `json:"rows"`
		Speedup4vs1 float64   `json:"speedup4vs1"`
		Speedup8vs1 float64   `json:"speedup8vs1"`
	}{Benchmark: "BenchmarkClusterScaling", Timestamp: time.Now().UTC()}
	for _, s := range shardCounts {
		out.Rows = append(out.Rows, row{Shards: s, QueriesPerSec: qps[s]})
	}
	if qps[1] > 0 {
		out.Speedup4vs1 = qps[4] / qps[1]
		out.Speedup8vs1 = qps[8] / qps[1]
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_cluster_scaling.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", path)
}

// BenchmarkRebalance measures live elastic resharding: a 4→8 resize
// under continuous load from 24 clients, in two modes. "warm" streams
// the moving objects' cached state shard-to-shard during the resize;
// "cold" flips routing identically but skips the migration — the
// restart baseline, where new owners start empty. Reported per mode:
// queries served per second while the resize ran (the cluster must
// keep serving), the resize wall time, and the cache hit rate
// immediately after (warm should retain ~100%, cold loses roughly the
// moving fraction). When BENCH_JSON_DIR is set the run also writes
// BENCH_rebalance.json for the CI bench trajectory.
func BenchmarkRebalance(b *testing.B) {
	var results []rebalanceModeResult
	for _, mode := range []struct {
		name string
		skip bool
	}{
		{name: "warm", skip: false},
		{name: "cold", skip: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last rebalanceModeResult
			for iter := 0; iter < b.N; iter++ {
				last = runRebalanceScenario(b, mode.name, mode.skip)
			}
			b.ReportMetric(last.QPSDuringResize, "resize_queries/s")
			b.ReportMetric(last.HitRateAfter, "hitRateAfter")
			b.ReportMetric(last.ResizeMillis, "resizeMillis")
			results = append(results, last)
		})
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		out := struct {
			Benchmark string                `json:"benchmark"`
			Timestamp time.Time             `json:"timestamp"`
			Modes     []rebalanceModeResult `json:"modes"`
		}{Benchmark: "BenchmarkRebalance", Timestamp: time.Now().UTC(), Modes: results}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_rebalance.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// rebalanceModeResult is one BenchmarkRebalance mode's measurement,
// as serialized into BENCH_rebalance.json.
type rebalanceModeResult struct {
	Name            string  `json:"name"`
	HitRateBefore   float64 `json:"hitRateBefore"`
	HitRateAfter    float64 `json:"hitRateAfter"`
	QPSDuringResize float64 `json:"qpsDuringResize"`
	ResizeMillis    float64 `json:"resizeMillis"`
	MovedObjects    int64   `json:"movedObjects"`
}

// runRebalanceScenario stands up a warmed 4-shard cluster, drives
// continuous load, resizes to 8 shards live, and measures the window.
func runRebalanceScenario(b *testing.B, name string, skipMigration bool) (res rebalanceModeResult) {
	b.Helper()
	const (
		nClients = 24
		nObjects = 32
	)
	res.Name = name
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = nObjects
	scfg.TotalSize = 32 * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr:  repo.Addr(),
		Objects:   survey.Objects(),
		Shards:    4,
		Mode:      cluster.HTMAware,
		Scale:     netproto.PayloadScale{},
		ExecDelay: 2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	objects := survey.Objects()
	sweep := func() float64 {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		hits := 0
		for _, o := range objects {
			r, err := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{o.ID}, Cost: cost.KB,
				Tolerance: model.AnyStaleness, Time: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			if r.Source == "cache" {
				hits++
			}
		}
		return float64(hits) / float64(len(objects))
	}

	// Warm every object into its owning shard (the query's cost covers
	// the load cost, so VCover loads it).
	{
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objects {
			if _, err := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{o.ID}, Cost: o.Size,
				Tolerance: model.AnyStaleness, Time: time.Second,
			}); err != nil {
				b.Fatal(err)
			}
		}
		cl.Close()
	}
	res.HitRateBefore = sweep()

	var (
		stop    atomic.Bool
		served  atomic.Int64
		wg      sync.WaitGroup
		clients []*client.Client
	)
	for c := 0; c < nClients; c++ {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, cl)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				pick := int(uint64(c*1_000_003+i) * 11400714819323198485 % uint64(len(objects)))
				if _, err := cl.Query(ctx, model.Query{
					Objects: []model.ObjectID{objects[pick].ID}, Cost: cost.KB,
					Tolerance: model.AnyStaleness,
					Time:      time.Minute + time.Duration(i)*time.Millisecond,
				}); err != nil {
					b.Error(err)
					return
				}
				served.Add(1)
			}
		}(c)
	}
	time.Sleep(150 * time.Millisecond) // steady state before the resize

	before := served.Load()
	start := time.Now()
	st, err := lc.Resize(ctx, 8, skipMigration)
	elapsed := time.Since(start)
	if err != nil {
		b.Fatal(err)
	}
	res.ResizeMillis = float64(elapsed.Milliseconds())
	res.QPSDuringResize = float64(served.Load()-before) / elapsed.Seconds()
	res.MovedObjects = st.MovedObjects

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	for _, cl := range clients {
		cl.Close()
	}
	res.HitRateAfter = sweep()
	return res
}

// BenchmarkGrowth measures live repository growth under load: a
// 4-shard cluster serving 16 concurrent clients while the object
// universe doubles (32→64 objects, published in bursts through the
// router and warmed on arrival). The "static" mode is the baseline —
// identical load, no growth — so the sweep answers the issue's
// acceptance question directly: with growth at 2× per run, the
// steady-state hit rate must stay within 15% of the static baseline
// and q/s must not crater. When BENCH_JSON_DIR is set the run writes
// BENCH_growth.json for the CI bench trajectory (delta-benchdiff
// regression-checks the queriesPerSec/hitRate keys).
func BenchmarkGrowth(b *testing.B) {
	var results []growthModeResult
	for _, mode := range []struct {
		name string
		grow bool
	}{
		{name: "static", grow: false},
		{name: "grow2x", grow: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last growthModeResult
			for iter := 0; iter < b.N; iter++ {
				last = runGrowthScenario(b, mode.name, mode.grow)
			}
			b.ReportMetric(last.QueriesPerSec, "queries/s")
			b.ReportMetric(last.HitRateSteady, "hitRateSteady")
			b.ReportMetric(float64(last.UniverseAfter), "universe")
			results = append(results, last)
		})
	}
	if len(results) == 2 && results[0].HitRateSteady > 0 {
		b.Logf("growth: static %.0f q/s hit %.2f → grow2x %.0f q/s hit %.2f",
			results[0].QueriesPerSec, results[0].HitRateSteady,
			results[1].QueriesPerSec, results[1].HitRateSteady)
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		out := struct {
			Benchmark string             `json:"benchmark"`
			Timestamp time.Time          `json:"timestamp"`
			Modes     []growthModeResult `json:"modes"`
		}{Benchmark: "BenchmarkGrowth", Timestamp: time.Now().UTC(), Modes: results}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_growth.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// growthModeResult is one BenchmarkGrowth mode's measurement, as
// serialized into BENCH_growth.json.
type growthModeResult struct {
	Name          string  `json:"name"`
	QueriesPerSec float64 `json:"queriesPerSec"`
	HitRateSteady float64 `json:"hitRateSteady"`
	ObjectsBorn   int64   `json:"objectsBorn"`
	UniverseAfter int     `json:"universeAfter"`
}

// runGrowthScenario stands up a warmed 4-shard cluster, drives 16
// clients, optionally doubles the universe in published bursts while
// they run, and measures throughput plus the steady-state hit rate
// over the final universe.
func runGrowthScenario(b *testing.B, name string, grow bool) (res growthModeResult) {
	b.Helper()
	const (
		nClients  = 16
		nBase     = 32
		nBirths   = 32
		nBursts   = 8
		execDelay = 2 * time.Millisecond
	)
	res.Name = name
	mkSurvey := func() *catalog.Survey {
		scfg := catalog.DefaultConfig()
		scfg.NumObjects = nBase
		scfg.TotalSize = nBase * cost.GB
		scfg.MinObjectSize = cost.GB
		scfg.MaxObjectSize = cost.GB
		survey, err := catalog.NewSurvey(scfg)
		if err != nil {
			b.Fatal(err)
		}
		return survey
	}
	survey, mirror := mkSurvey(), mkSurvey()
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   4,
		Mode:     cluster.HTMAware,
		// Room for the doubled universe: newborns must be cacheable.
		ShardCapacity: 2 * nBase * cost.GB,
		Scale:         netproto.PayloadScale{},
		ExecDelay:     execDelay,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	warm := func(cl *client.Client, ids []model.ObjectID) {
		// A query whose cost covers the load cost makes VCover load the
		// object immediately.
		for _, id := range ids {
			obj, err := mirror.Object(id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{id}, Cost: obj.Size,
				Tolerance: model.AnyStaleness, Time: time.Second,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	adminCl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer adminCl.Close()
	baseIDs := make([]model.ObjectID, 0, nBase)
	for _, o := range survey.Objects() {
		baseIDs = append(baseIDs, o.ID)
	}
	warm(adminCl, baseIDs)

	var (
		knownMu sync.RWMutex
		known   = append([]model.ObjectID(nil), baseIDs...)
		stop    atomic.Bool
		served  atomic.Int64
		wg      sync.WaitGroup
	)
	for c := 0; c < nClients; c++ {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(c int, cl *client.Client) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				knownMu.RLock()
				pick := known[int(uint64(c*1_000_003+i)*11400714819323198485%uint64(len(known)))]
				knownMu.RUnlock()
				if _, err := cl.Query(ctx, model.Query{
					Objects: []model.ObjectID{pick}, Cost: cost.KB,
					Tolerance: model.AnyStaleness,
					Time:      time.Minute + time.Duration(i)*time.Millisecond,
				}); err != nil {
					b.Error(err)
					return
				}
				served.Add(1)
			}
		}(c, cl)
	}

	// The measured window: either eight growth bursts (universe
	// doubles) or the same wall time of pure static load.
	growRng := rand.New(rand.NewSource(4242))
	start := time.Now()
	for burst := 0; burst < nBursts; burst++ {
		if grow {
			births, err := mirror.GrowObjects(growRng, nBirths/nBursts, time.Duration(burst)*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := adminCl.AddObjects(ctx, births); err != nil {
				b.Fatal(err)
			}
			ids := make([]model.ObjectID, len(births))
			for i, bb := range births {
				ids[i] = bb.Object.ID
			}
			warm(adminCl, ids)
			knownMu.Lock()
			known = append(known, ids...)
			knownMu.Unlock()
			time.Sleep(20 * time.Millisecond)
		} else {
			time.Sleep(30 * time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	res.QueriesPerSec = float64(served.Load()) / elapsed.Seconds()

	stop.Store(true)
	wg.Wait()

	// Steady state: sweep the final universe once and count cache hits.
	knownMu.RLock()
	finalIDs := append([]model.ObjectID(nil), known...)
	knownMu.RUnlock()
	hits := 0
	for _, id := range finalIDs {
		r, err := adminCl.Query(ctx, model.Query{
			Objects: []model.ObjectID{id}, Cost: cost.KB,
			Tolerance: model.AnyStaleness, Time: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Source == "cache" {
			hits++
		}
	}
	res.HitRateSteady = float64(hits) / float64(len(finalIDs))
	res.UniverseAfter = len(finalIDs)
	cs, err := adminCl.ClusterStats(ctx)
	if err != nil {
		b.Fatal(err)
	}
	res.ObjectsBorn = cs.Aggregate.ObjectsBorn
	return res
}

// BenchmarkObsOverhead prices the observability layer on the same
// topology as BenchmarkConcurrentClients/mux (16 clients, NoCache
// policy, 2ms repository execution): the "off" mode runs with
// DisableObs (nil registry, nil trace ring — every instrument call is
// a nil-receiver no-op), the "on" mode runs fully instrumented with a
// live debug endpoint and every query traced, the worst case a real
// deployment can configure. The modes are measured back to back in
// one process, so the on/off q/s ratio is stable on shared runners
// the way the codec ratio is; the issue's acceptance bar is ≤5%
// overhead (ratio ≥ 0.95), and CI's strict benchdiff gate watches the
// qpsRatioOnOverOff key in BENCH_obs.json with -max-regress 0.05.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name       string
		disableObs bool
		traced     bool
	}{
		{name: "off", disableObs: true, traced: false},
		{name: "on", disableObs: false, traced: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rate := runObsScenario(b, mode.disableObs, mode.traced, b.N)
			b.ReportMetric(rate, "queries/s")
		})
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		writeObsJSON(b, dir)
	}
}

// runObsScenario boots the overhead topology (repository + one
// middleware over loopback TCP), drives n queries from 16 concurrent
// clients, tears it down, and returns the measured q/s.
func runObsScenario(b *testing.B, disableObs, traced bool, n int) float64 {
	b.Helper()
	const nClients = 16
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{
		Survey:     survey,
		Scale:      netproto.PayloadScale{},
		ExecDelay:  2 * time.Millisecond,
		DisableObs: disableObs,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	mcfg := cache.Config{
		RepoAddr:   repo.Addr(),
		RepoPool:   2,
		Policy:     core.NewNoCache(),
		Objects:    survey.Objects(),
		Capacity:   8 * cost.GB,
		Scale:      netproto.PayloadScale{},
		DisableObs: disableObs,
	}
	if !disableObs {
		// The instrumented mode also binds the debug mux, so the
		// measurement includes everything `-metrics-addr` costs a node
		// that nobody is currently scraping.
		mcfg.MetricsAddr = "127.0.0.1:0"
	}
	mw, err := cache.New(mcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := mw.Start(); err != nil {
		b.Fatal(err)
	}
	defer mw.Close()

	ctx := context.Background()
	var opts []client.Option
	if traced {
		opts = append(opts, client.WithTrace())
	}
	clients := make([]*client.Client, nClients)
	for i := range clients {
		cl, err := client.Dial(mw.Addr(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(n) {
					return
				}
				if _, err := cl.Query(ctx, model.Query{
					ID:        model.QueryID(i),
					Objects:   []model.ObjectID{model.ObjectID(i%16 + 1)},
					Cost:      cost.MB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i) * time.Millisecond,
				}); err != nil {
					b.Error(err)
					return
				}
			}
		}(clients[c])
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// writeObsJSON measures both modes back to back at a fixed iteration
// count — independent of b.N, so CI's -benchtime=1x trajectory run
// still produces a stable ratio — and records the comparison for the
// perf trajectory. qpsRatioOnOverOff is higher-is-better (1.0 = free,
// 0.95 = the acceptance bar) and is what the strict benchdiff gate on
// main checks.
func writeObsJSON(b *testing.B, dir string) {
	b.Helper()
	const iters = 3000
	qpsOff := runObsScenario(b, true, false, iters)
	qpsOn := runObsScenario(b, false, true, iters)
	out := struct {
		Benchmark         string    `json:"benchmark"`
		Timestamp         time.Time `json:"timestamp"`
		QPSOff            float64   `json:"qpsObsOff"`
		QPSOn             float64   `json:"qpsObsOn"`
		QPSRatioOnOverOff float64   `json:"qpsRatioOnOverOff"`
		OverheadFraction  float64   `json:"overheadFraction"`
	}{
		Benchmark: "BenchmarkObsOverhead",
		Timestamp: time.Now().UTC(),
		QPSOff:    qpsOff,
		QPSOn:     qpsOn,
	}
	if qpsOff > 0 {
		out.QPSRatioOnOverOff = qpsOn / qpsOff
		out.OverheadFraction = 1 - out.QPSRatioOnOverOff
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_obs.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (on/off ratio %.3f, overhead %.1f%%)",
		path, out.QPSRatioOnOverOff, out.OverheadFraction*100)
}

// BenchmarkReplicaHedging prices K-way replication and the hedged-read
// tail cut on a 3-shard cluster with one deliberate straggler (10ms
// node-local scans, queries cache-resident under the replica policy):
// the "failover-only" mode routes every fragment to its primary and
// simply waits out the straggler, the "hedged" mode re-scatters to the
// next replica after a pinned 2ms hedge delay and takes the first
// complete answer. Expect the hedge to cut p99 by roughly the
// straggler's stall. When BENCH_JSON_DIR is set the run also measures
// the K=1→K=2 throughput cost on a healthy cluster and writes
// BENCH_replication.json; CI's strict benchdiff gate watches
// p99RatioFailoverOverHedged (higher = hedging wins more).
func BenchmarkReplicaHedging(b *testing.B) {
	const slowDelay = 10 * time.Millisecond
	for _, mode := range []struct {
		name  string
		hedge bool
	}{
		{name: "failover-only", hedge: false},
		{name: "hedged", hedge: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			qps, p99 := runReplicationScenario(b, 2, mode.hedge, slowDelay, b.N)
			b.ReportMetric(qps, "queries/s")
			b.ReportMetric(float64(p99.Microseconds()), "p99-µs")
		})
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		writeReplicationJSON(b, dir)
	}
}

// runReplicationScenario boots a 3-shard replicated cluster (repository
// + shards + router on loopback), makes shard 0 a straggler when
// slowDelay is set, drives n single-object queries from 16 concurrent
// clients, and returns the measured q/s and client-observed p99.
func runReplicationScenario(b *testing.B, replicas int, hedge bool, slowDelay time.Duration, n int) (float64, time.Duration) {
	b.Helper()
	const nClients = 16
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	lcfg := cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Replicas: replicas,
		Hedge:    hedge,
		// Pinned: the scenario measures the hedge mechanism, not the
		// cold-histogram p99 derivation.
		HedgeDelay: 2 * time.Millisecond,
		// The replica policy keeps every object cache-resident, so the
		// straggler's ExecDelay (cache-answer scan time) actually stalls.
		Policy: func(int) core.Policy { return core.NewReplica() },
		Scale:  netproto.PayloadScale{},
	}
	if slowDelay > 0 {
		lcfg.ShardExecDelay = func(s int) time.Duration {
			if s == 0 {
				return slowDelay
			}
			return -1
		}
	}
	lc, err := cluster.SpawnLocal(lcfg)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	clients := make([]*client.Client, nClients)
	for i := range clients {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	// Warm every shard's residents through its primaries (first touch
	// ships from the repository without the scan delay).
	for i, obj := range survey.Objects() {
		if _, err := clients[0].Query(ctx, model.Query{
			ID:        model.QueryID(i + 1),
			Objects:   []model.ObjectID{obj.ID},
			Cost:      cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Duration(i) * time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}

	lats := make([][]time.Duration, nClients)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			for {
				i := next.Add(1)
				if i > int64(n) {
					return
				}
				qStart := time.Now()
				if _, err := cl.Query(ctx, model.Query{
					ID:        model.QueryID(i + 16),
					Objects:   []model.ObjectID{model.ObjectID(i%16 + 1)},
					Cost:      cost.MB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i) * time.Millisecond,
				}); err != nil {
					b.Error(err)
					return
				}
				lats[c] = append(lats[c], time.Since(qStart))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	slices.Sort(all)
	var p99 time.Duration
	if len(all) > 0 {
		p99 = all[len(all)*99/100]
	}
	return float64(n) / elapsed.Seconds(), p99
}

// writeReplicationJSON measures the hedging tail cut and the
// replication throughput cost at fixed iteration counts — independent
// of b.N, so CI's -benchtime=1x trajectory run stays comparable — and
// records them for the perf trajectory. p99RatioFailoverOverHedged is
// higher-is-better (how many times worse the unhedged tail is) and is
// what the strict benchdiff gate on main checks; qpsRatioK2OverK1 is
// the throughput a healthy cluster pays for holding K=2 copies.
func writeReplicationJSON(b *testing.B, dir string) {
	b.Helper()
	const (
		itersLat = 600  // straggler serializes ~1/3 of these at 10ms
		itersQPS = 1500 // healthy-cluster throughput measurement
	)
	const slowDelay = 10 * time.Millisecond
	_, p99Failover := runReplicationScenario(b, 2, false, slowDelay, itersLat)
	_, p99Hedged := runReplicationScenario(b, 2, true, slowDelay, itersLat)
	qpsK1, _ := runReplicationScenario(b, 1, false, 0, itersQPS)
	qpsK2, _ := runReplicationScenario(b, 2, false, 0, itersQPS)
	out := struct {
		Benchmark                  string    `json:"benchmark"`
		Timestamp                  time.Time `json:"timestamp"`
		P99FailoverOnlyMicros      float64   `json:"p99FailoverOnlyMicros"`
		P99HedgedMicros            float64   `json:"p99HedgedMicros"`
		P99RatioFailoverOverHedged float64   `json:"p99RatioFailoverOverHedged"`
		QPSK1                      float64   `json:"qpsK1"`
		QPSK2                      float64   `json:"qpsK2"`
		QPSRatioK2OverK1           float64   `json:"qpsRatioK2OverK1"`
	}{
		Benchmark:             "BenchmarkReplicaHedging",
		Timestamp:             time.Now().UTC(),
		P99FailoverOnlyMicros: float64(p99Failover.Microseconds()),
		P99HedgedMicros:       float64(p99Hedged.Microseconds()),
		QPSK1:                 qpsK1,
		QPSK2:                 qpsK2,
	}
	if p99Hedged > 0 {
		out.P99RatioFailoverOverHedged = float64(p99Failover) / float64(p99Hedged)
	}
	if qpsK1 > 0 {
		out.QPSRatioK2OverK1 = qpsK2 / qpsK1
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_replication.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (p99 failover/hedged %.2f×, K2/K1 qps %.3f)",
		path, out.P99RatioFailoverOverHedged, out.QPSRatioK2OverK1)
}

// BenchmarkRouterHotPath prices the router's read-path deduplication —
// the in-flight query coalescer plus the invalidation-aware result
// cache — under a flash-crowd shape: 64 concurrent clients hammering a
// handful of hot object sets (90% of queries hit the hottest one),
// each with its own randomized cost and staleness, against a 3-shard
// cluster whose shards dwell 2ms per scatter fragment. The "off" mode
// disables the result cache (ResultCacheSize -1, every query
// scatters); the "on" mode runs the default configuration. Both modes
// run back to back in one process, so the on/off q/s ratio is stable
// on shared runners; the acceptance bar is ≥2× and CI's strict
// benchdiff gate watches qpsRatioOnOverOff in BENCH_router.json.
func BenchmarkRouterHotPath(b *testing.B) {
	for _, mode := range []struct {
		name    string
		cacheOn bool
	}{
		{name: "off", cacheOn: false},
		{name: "on", cacheOn: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := runRouterHotPath(b, mode.cacheOn, b.N)
			b.ReportMetric(m.qps, "queries/s")
			b.ReportMetric(float64(m.p99.Microseconds()), "p99-µs")
			b.ReportMetric(m.coalesceShare, "coalesced-share")
			b.ReportMetric(m.hitRate, "cache-hit-rate")
		})
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		writeRouterJSON(b, dir)
	}
}

// routerHotPathMetrics is one mode's measurement: throughput, client
// tail latency, and how the router answered (coalesced onto a live
// flight / served from the result cache / scattered).
type routerHotPathMetrics struct {
	qps           float64
	p99           time.Duration
	coalesceShare float64 // coalesced follower answers / total queries
	hitRate       float64 // result-cache hits / total queries
}

// runRouterHotPath boots the flash-crowd topology (repository + 3
// shards + router on loopback), drives n hot-set queries from 64
// concurrent clients, and returns the measured rates.
func runRouterHotPath(b *testing.B, cacheOn bool, n int) routerHotPathMetrics {
	b.Helper()
	const (
		nClients = 64
		nShards  = 3
		nShapes  = 8 // distinct hot object sets; shape 0 takes 90%
	)
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	size := 0
	if !cacheOn {
		size = -1
	}
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   nShards,
		Mode:     cluster.HTMAware,
		// The replica policy keeps every object cache-resident at the
		// shards, so ExecDelay (the simulated node-local scan) is the
		// scatter's whole cost and the router-tier dedup is what the
		// on/off ratio isolates.
		Policy:          func(int) core.Policy { return core.NewReplica() },
		Scale:           netproto.PayloadScale{},
		ExecDelay:       2 * time.Millisecond,
		ResultCacheSize: size,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	// The hot query shapes: spanning object sets (one object per shard,
	// rotated), so every scatter costs every shard a dwell — the worst
	// case a flash crowd inflicts without the router-tier cache.
	objects := survey.Objects()
	shapes := make([][]model.ObjectID, nShapes)
	for s := range shapes {
		for k := 0; k < nShards; k++ {
			shapes[s] = append(shapes[s], objects[(s+k*nShapes/2)%len(objects)].ID)
		}
	}

	ctx := context.Background()
	clients := make([]*client.Client, nClients)
	for i := range clients {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	lats := make([][]time.Duration, nClients)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			for {
				i := next.Add(1)
				if i > int64(n) {
					return
				}
				// 90% of the crowd hammers shape 0; the rest spread over
				// the remaining shapes. Cost and staleness vary per query
				// — the signature keys on the object set alone, exactly
				// because real crowds differ in everything else.
				shape := 0
				if i%10 == 9 {
					shape = int(i/10)%(nShapes-1) + 1
				}
				qStart := time.Now()
				if _, err := cl.Query(ctx, model.Query{
					ID:        model.QueryID(i),
					Objects:   shapes[shape],
					Cost:      cost.Bytes(1+i%4) * cost.MB,
					Tolerance: time.Hour + time.Duration(i%4)*time.Minute,
					Time:      time.Duration(i) * time.Millisecond,
				}); err != nil {
					b.Error(err)
					return
				}
				lats[c] = append(lats[c], time.Since(qStart))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	slices.Sort(all)
	m := routerHotPathMetrics{qps: float64(n) / elapsed.Seconds()}
	if len(all) > 0 {
		m.p99 = all[len(all)*99/100]
	}
	if n > 0 {
		m.coalesceShare = float64(lc.Router.Coalesced()) / float64(n)
		m.hitRate = float64(lc.Router.ResultCacheHits()) / float64(n)
	}
	return m
}

// writeRouterJSON measures both modes back to back at a fixed
// iteration count — independent of b.N, so CI's -benchtime=1x
// trajectory run stays comparable — and records the flash-crowd
// comparison for the perf trajectory. qpsRatioOnOverOff is
// higher-is-better (≥2 is the acceptance bar) and is what the strict
// benchdiff gate on main checks.
func writeRouterJSON(b *testing.B, dir string) {
	b.Helper()
	const iters = 3000
	off := runRouterHotPath(b, false, iters)
	on := runRouterHotPath(b, true, iters)
	out := struct {
		Benchmark         string    `json:"benchmark"`
		Timestamp         time.Time `json:"timestamp"`
		QPSOff            float64   `json:"qpsCacheOff"`
		QPSOn             float64   `json:"qpsCacheOn"`
		QPSRatioOnOverOff float64   `json:"qpsRatioOnOverOff"`
		P99OffMicros      float64   `json:"p99CacheOffMicros"`
		P99OnMicros       float64   `json:"p99CacheOnMicros"`
		CoalescedShareOn  float64   `json:"coalescedShareOn"`
		CacheHitRateOn    float64   `json:"cacheHitRateOn"`
	}{
		Benchmark:        "BenchmarkRouterHotPath",
		Timestamp:        time.Now().UTC(),
		QPSOff:           off.qps,
		QPSOn:            on.qps,
		P99OffMicros:     float64(off.p99.Microseconds()),
		P99OnMicros:      float64(on.p99.Microseconds()),
		CoalescedShareOn: on.coalesceShare,
		CacheHitRateOn:   on.hitRate,
	}
	if off.qps > 0 {
		out.QPSRatioOnOverOff = on.qps / off.qps
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_router.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (on/off qps ratio %.2f, hit rate %.2f, coalesced %.2f)",
		path, out.QPSRatioOnOverOff, out.CacheHitRateOn, out.CoalescedShareOn)
}

// codecBenchConn returns a Conn whose writes and reads share one
// buffer, so one goroutine can send a frame and immediately receive it
// — the harness for codec round-trip measurement.
func codecBenchConn(version int) *netproto.Conn {
	// bytes.Buffer resets its storage whenever it drains, so the
	// send→recv cycle stays memory-bounded across b.N iterations.
	c := netproto.NewConn(&bytes.Buffer{})
	if version >= netproto.ProtoV3 {
		c.SetVersion(version)
	}
	return c
}

// codecBenchFrame is the representative hot-path frame: a query result
// with a scaled payload (4 KiB at the default scale) and a row sample.
func codecBenchFrame() netproto.Frame {
	scale := netproto.DefaultScale()
	return netproto.Frame{Type: netproto.MsgQueryResult, RequestID: 99, Body: netproto.QueryResultMsg{
		QueryID: 7,
		Logical: cost.GB,
		Rows: []netproto.ResultRow{
			{ObjID: 1, RA: 10.5, Dec: -5.25, R: 17.1},
			{ObjID: 2, RA: 11.5, Dec: -6.25, R: 18.2},
			{ObjID: 3, RA: 12.5, Dec: -7.25, R: 19.3},
			{ObjID: 4, RA: 13.5, Dec: -8.25, R: 20.4},
		},
		Payload: netproto.MakePayload(scale, cost.GB, 7),
		Source:  "repository",
		Elapsed: 3 * time.Millisecond,
	}}
}

// BenchmarkCodec compares the gob v2 codec against the v3 binary codec
// on one QueryResultMsg encode+decode round trip — the hot wire-path
// unit every client→router→shard→repo hop pays. Expect v3 to cut
// allocs/op by well over 3× and ns/op by over 2× (the tier-1 alloc
// gate lives in netproto's TestV3AllocAdvantage; the ns trajectory is
// CI's strict benchdiff check on BENCH_codec.json). When BENCH_JSON_DIR
// is set the run measures both codecs via testing.Benchmark and writes
// BENCH_codec.json with higher-is-better ratio metrics.
func BenchmarkCodec(b *testing.B) {
	for _, codec := range []struct {
		name    string
		version int
	}{
		{name: "gob", version: 0},
		{name: "v3", version: netproto.ProtoV3},
	} {
		b.Run(codec.name, func(b *testing.B) {
			c := codecBenchConn(codec.version)
			frame := codecBenchFrame()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(frame); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		writeCodecJSON(b, dir)
	}
}

// writeCodecJSON measures both codecs with a fixed-iteration loop
// (testing.Benchmark would deadlock on the benchmark framework's
// global lock when invoked from inside a running benchmark) and
// records the comparison for the CI perf trajectory. The ratio metrics
// are higher-is-better — a shrinking ratio means the v3 advantage
// eroded — which is what the strict benchdiff gate on main checks.
func writeCodecJSON(b *testing.B, dir string) {
	b.Helper()
	measure := func(version int) (nsPerOp, allocsPerOp float64) {
		c := codecBenchConn(version)
		frame := codecBenchFrame()
		roundTrip := func() {
			if err := c.Send(frame); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ { // warm descriptor/pool state
			roundTrip()
		}
		const iters = 50_000
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			roundTrip()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return float64(elapsed.Nanoseconds()) / iters,
			float64(after.Mallocs-before.Mallocs) / iters
	}
	gobNs, gobAllocs := measure(0)
	v3Ns, v3Allocs := measure(netproto.ProtoV3)
	type codecRow struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"nsPerOp"`
		AllocsPerOp float64 `json:"allocsPerOp"`
		OpsPerSec   float64 `json:"opsPerSec"`
	}
	out := struct {
		Benchmark string     `json:"benchmark"`
		Frame     string     `json:"frame"`
		Timestamp time.Time  `json:"timestamp"`
		Codecs    []codecRow `json:"codecs"`
		// Higher is better; the strict CI gate watches these.
		NsRatioGobOverV3    float64 `json:"nsRatioGobOverV3"`
		AllocRatioGobOverV3 float64 `json:"allocRatioGobOverV3"`
	}{
		Benchmark: "BenchmarkCodec",
		Frame:     "QueryResultMsg encode+decode (4KiB payload, 4 rows)",
		Timestamp: time.Now().UTC(),
		Codecs: []codecRow{
			{Name: "gob", NsPerOp: gobNs, AllocsPerOp: gobAllocs, OpsPerSec: 1e9 / gobNs},
			{Name: "v3", NsPerOp: v3Ns, AllocsPerOp: v3Allocs, OpsPerSec: 1e9 / v3Ns},
		},
	}
	if v3Ns > 0 {
		out.NsRatioGobOverV3 = gobNs / v3Ns
	}
	if v3Allocs > 0 {
		out.AllocRatioGobOverV3 = gobAllocs / v3Allocs
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_codec.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (gob/v3: %.2fx ns, %.2fx allocs)",
		path, out.NsRatioGobOverV3, out.AllocRatioGobOverV3)
}

// --- ablations for the design choices DESIGN.md calls out ---

// BenchmarkAblationCounterLoading compares the paper's randomized cost
// attribution against explicit per-object counters: traffic should be
// similar (the randomization exists for space efficiency, not traffic).
func BenchmarkAblationCounterLoading(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		randomized, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}))
		if err != nil {
			b.Fatal(err)
		}
		counted, err := s.RunOne(core.NewVCover(core.VCoverConfig{
			Seed: s.Seed, GDSF: true, CounterLoading: true,
		}))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(randomized.Total().GBf(), "randomizedGB")
			b.ReportMetric(counted.Total().GBf(), "counterGB")
		}
	}
}

// BenchmarkAblationPreship measures the traffic cost of the Section 4
// preshipping extension (it trades extra update traffic for response
// time on hot objects).
func BenchmarkAblationPreship(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		plain, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}))
		if err != nil {
			b.Fatal(err)
		}
		preship, err := s.RunOne(core.NewVCover(core.VCoverConfig{
			Seed: s.Seed, GDSF: true, Preship: true, PreshipAfter: 3,
		}))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(plain.Total().GBf(), "plainGB")
			b.ReportMetric(preship.Total().GBf(), "preshipGB")
		}
	}
}

// BenchmarkAblationGDSvsGDSF compares plain Greedy-Dual-Size against the
// frequency-aware variant in the LoadManager.
func BenchmarkAblationGDSvsGDSF(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		gdsRes, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: false}))
		if err != nil {
			b.Fatal(err)
		}
		gdsfRes, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(gdsRes.Total().GBf(), "gdsGB")
			b.ReportMetric(gdsfRes.Total().GBf(), "gdsfGB")
		}
	}
}

// --- microbenchmarks for the algorithmic substrates ---

// BenchmarkVCoverDecisions measures per-event decision latency of the
// core algorithm (both managers, steady state).
func BenchmarkVCoverDecisions(b *testing.B) {
	s := benchSetup(b)
	p := core.NewVCover(core.VCoverConfig{Seed: 1, GDSF: true})
	if err := p.Init(s.Survey.Objects(), s.Capacity()); err != nil {
		b.Fatal(err)
	}
	events := s.Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &events[i%len(events)]
		var err error
		if e.Kind == model.EventQuery {
			// Fresh IDs per pass: the trace is replayed cyclically and
			// query/update identifiers must stay unique.
			q := *e.Query
			q.ID = model.QueryID(i + 1_000_000)
			_, err = p.OnQuery(&q)
		} else {
			u := *e.Update
			u.ID = model.UpdateID(i + 1_000_000)
			_, err = p.OnUpdate(&u)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBenefitDecisions measures the heuristic's per-event cost.
func BenchmarkBenefitDecisions(b *testing.B) {
	s := benchSetup(b)
	p := core.NewBenefit(core.DefaultBenefitConfig())
	if err := p.Init(s.Survey.Objects(), s.Capacity()); err != nil {
		b.Fatal(err)
	}
	events := s.Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &events[i%len(events)]
		var err error
		if e.Kind == model.EventQuery {
			_, err = p.OnQuery(e.Query)
		} else {
			_, err = p.OnUpdate(e.Update)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalVertexCover measures the incremental min-weight
// vertex cover under churn: add a query + edges, solve, remove covered
// updates — VCover's inner loop.
func BenchmarkIncrementalVertexCover(b *testing.B) {
	bip := flow.NewBipartite()
	for u := int64(0); u < 64; u++ {
		if err := bip.AddRight(u, u%7+1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(i)
		if err := bip.AddLeft(q, int64(i%11+1)); err != nil {
			b.Fatal(err)
		}
		for k := int64(0); k < 3; k++ {
			u := (q*3 + k) % 64
			if !bip.HasRight(u) {
				if err := bip.AddRight(u, u%7+1); err != nil {
					b.Fatal(err)
				}
			}
			if err := bip.Connect(q, u); err != nil {
				b.Fatal(err)
			}
		}
		cover := bip.Solve()
		for _, u := range cover.Right {
			if err := bip.RemoveRight(u); err != nil {
				b.Fatal(err)
			}
		}
		for _, l := range bip.Lefts() {
			if !cover.ContainsLeft(l) || bip.DegreeLeft(l) == 0 {
				if err := bip.RemoveLeft(l); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkGDSAdmit measures Greedy-Dual-Size admissions with eviction
// pressure.
func BenchmarkGDSAdmit(b *testing.B) {
	c, err := gds.New(1<<30, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Admit(gds.Entry{
			Key:  int64(i % 256),
			Size: int64(i%64+1) << 20,
			Cost: int64(i%64+1) << 20,
		})
	}
}

// BenchmarkHTMCover measures the query→object mapping (cap coverage).
func BenchmarkHTMCover(b *testing.B) {
	p, err := htm.BuildLeveled(nil, 68)
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]geom.Cap, 64)
	for i := range caps {
		caps[i] = geom.CapFromRADec(float64(i*5%360), float64(i%120-60), 1.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Cover(caps[i%len(caps)]); len(got) == 0 {
			b.Fatal("empty cover")
		}
	}
}

// BenchmarkHTMLocate measures point location at the paper's default
// granularity.
func BenchmarkHTMLocate(b *testing.B) {
	pts := make([]geom.Vec3, 128)
	for i := range pts {
		pts[i] = geom.FromRADec(float64(i*7%360), float64(i%160-80))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := htm.Locate(pts[i%len(pts)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGobRoundTrip measures trace serialization throughput.
func BenchmarkTraceGobRoundTrip(b *testing.B) {
	events := make([]model.Event, 4096)
	for i := range events {
		events[i] = model.Event{
			Seq:  int64(i),
			Kind: model.EventUpdate,
			Update: &model.Update{
				ID: model.UpdateID(i), Object: model.ObjectID(i%68 + 1),
				Cost: cost.Bytes(i), Time: time.Duration(i) * time.Second,
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf countingBuffer
		if err := trace.WriteGob(&buf, events); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadGob(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

type countingBuffer struct {
	data []byte
	off  int
}

func (c *countingBuffer) Write(p []byte) (int, error) {
	c.data = append(c.data, p...)
	return len(p), nil
}

func (c *countingBuffer) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := copy(p, c.data[c.off:])
	c.off += n
	return n, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkRestartRecovery measures what durable warm restarts buy: a
// 3-shard cluster is fully warmed, shard 1 is bounced, and the run
// measures how long the cluster takes to return to a steady hit rate
// plus its post-restart throughput. The "cold" mode restarts the shard
// with no persistence (it rejoins empty and reloads on demand); the
// "warm" mode restarts it from its data directory, so the recovered
// residents rejoin without touching the repository. When BENCH_JSON_DIR
// is set the run writes BENCH_persist.json for the CI bench trajectory.
func BenchmarkRestartRecovery(b *testing.B) {
	var results []restartModeResult
	for _, mode := range []struct {
		name string
		warm bool
	}{
		{name: "cold", warm: false},
		{name: "warm", warm: true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last restartModeResult
			for iter := 0; iter < b.N; iter++ {
				last = runRestartScenario(b, mode.name, mode.warm)
			}
			b.ReportMetric(last.TimeToSteadyMillis, "steadyMs")
			b.ReportMetric(last.QueriesPerSec, "queries/s")
			b.ReportMetric(last.FirstSweepHitRate, "firstSweepHitRate")
			results = append(results, last)
		})
	}
	if len(results) == 2 {
		b.Logf("restart: cold steady %.1fms hit %.2f → warm steady %.1fms hit %.2f (recovered %d residents)",
			results[0].TimeToSteadyMillis, results[0].FirstSweepHitRate,
			results[1].TimeToSteadyMillis, results[1].FirstSweepHitRate,
			results[1].RecoveredWarm)
	}
	if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
		out := struct {
			Benchmark string              `json:"benchmark"`
			Timestamp time.Time           `json:"timestamp"`
			Modes     []restartModeResult `json:"modes"`
		}{Benchmark: "BenchmarkRestartRecovery", Timestamp: time.Now().UTC(), Modes: results}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_persist.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// restartModeResult is one BenchmarkRestartRecovery mode's measurement,
// as serialized into BENCH_persist.json.
type restartModeResult struct {
	Name               string  `json:"name"`
	RestartMillis      float64 `json:"restartMillis"`
	TimeToSteadyMillis float64 `json:"timeToSteadyMillis"`
	FirstSweepHitRate  float64 `json:"firstSweepHitRate"`
	QueriesPerSec      float64 `json:"queriesPerSec"`
	RecoveredWarm      int64   `json:"recoveredWarm"`
}

// runRestartScenario warms a 3-shard cluster over 24 equal objects,
// bounces shard 1 (with or without a persistence directory), and
// measures recovery: hit-rate sweeps until steady (≥99% of queries
// answered at cache) and a short concurrent-throughput burst.
func runRestartScenario(b *testing.B, name string, warm bool) (res restartModeResult) {
	b.Helper()
	const nBase = 24
	// A non-trivial payload scale is what makes the cold baseline pay:
	// every logical GB a restarted-cold shard reloads ships 16 MiB from
	// the repository, while a warm-recovered resident ships nothing.
	scale := netproto.PayloadScale{BytesPerGB: 16 << 20}
	res.Name = name
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = nBase
	scfg.TotalSize = nBase * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: scale})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	lcfg := cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Scale:    scale,
	}
	if warm {
		dir := b.TempDir()
		lcfg.ShardDataDir = func(s int) string {
			return filepath.Join(dir, fmt.Sprintf("shard-%d", s))
		}
		lcfg.SnapshotInterval = 50 * time.Millisecond
	}
	lc, err := cluster.SpawnLocal(lcfg)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ids := make([]model.ObjectID, 0, nBase)
	for _, o := range survey.Objects() {
		ids = append(ids, o.ID)
		// Query cost = object size forces the immediate load: the whole
		// cluster is warm before the bounce.
		if _, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{o.ID}, Cost: o.Size,
			Tolerance: model.AnyStaleness, Time: time.Second,
		}); err != nil {
			b.Fatal(err)
		}
	}

	restartStart := time.Now()
	if err := lc.RestartShard(ctx, 1); err != nil {
		b.Fatal(err)
	}
	res.RestartMillis = float64(time.Since(restartStart).Milliseconds())

	// Sweep the universe until steady: every sweep queries every object
	// at full cost, so cold shards reload what they miss and converge.
	sweep := func() float64 {
		hits := 0
		for _, id := range ids {
			r, err := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{id}, Cost: cost.GB,
				Tolerance: model.AnyStaleness, Time: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			if r.Source == "cache" {
				hits++
			}
		}
		return float64(hits) / float64(len(ids))
	}
	for i := 0; i < 20; i++ {
		rate := sweep()
		if i == 0 {
			res.FirstSweepHitRate = rate
		}
		if rate >= 0.99 {
			res.TimeToSteadyMillis = float64(time.Since(restartStart).Milliseconds())
			break
		}
	}

	// Post-restart throughput burst: 8 workers hammering the warm
	// universe for a fixed window.
	var served atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wcl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer wcl.Close()
		wg.Add(1)
		go func(w int, wcl *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				id := ids[rng.Intn(len(ids))]
				if _, err := wcl.Query(ctx, model.Query{
					Objects: []model.ObjectID{id}, Cost: cost.GB,
					Tolerance: model.AnyStaleness, Time: time.Minute,
				}); err != nil {
					return
				}
				served.Add(1)
			}
		}(w, wcl)
	}
	window := 200 * time.Millisecond
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	res.QueriesPerSec = float64(served.Load()) / window.Seconds()

	st, err := cl.ClusterStats(ctx)
	if err != nil {
		b.Fatal(err)
	}
	res.RecoveredWarm = st.Aggregate.RecoveredWarm
	return res
}
