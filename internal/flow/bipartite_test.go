package flow

import (
	"math/rand"
	"testing"
)

// bruteCover computes the minimum-weight vertex cover of a bipartite
// graph by enumerating subsets of the left side: for a fixed left
// subset, every right vertex adjacent to an uncovered left vertex is
// forced into the cover.
func bruteCover(leftW, rightW map[int64]int64, edges [][2]int64) int64 {
	var leftKeys []int64
	for k := range leftW {
		leftKeys = append(leftKeys, k)
	}
	sortInt64s(leftKeys)
	best := int64(1) << 62
	for mask := 0; mask < 1<<len(leftKeys); mask++ {
		inCover := make(map[int64]bool, len(leftKeys))
		var w int64
		for i, k := range leftKeys {
			if mask&(1<<i) != 0 {
				inCover[k] = true
				w += leftW[k]
			}
		}
		forced := make(map[int64]bool)
		for _, e := range edges {
			if !inCover[e[0]] {
				forced[e[1]] = true
			}
		}
		for r := range forced {
			w += rightW[r]
		}
		if w < best {
			best = w
		}
	}
	return best
}

func checkCoverValid(t *testing.T, c Cover, edges [][2]int64) {
	t.Helper()
	for _, e := range edges {
		if !c.ContainsLeft(e[0]) && !c.ContainsRight(e[1]) {
			t.Fatalf("edge (%d,%d) not covered by %+v", e[0], e[1], c)
		}
	}
}

func TestBipartitePaperExampleSubgraph(t *testing.T) {
	// The internal interaction graph of Section 3.1: cached objects form
	// a subgraph with updates u1 (1 GB), u6 (2 GB) and query q7 (4 GB);
	// q7 interacts with both. Shipping u1+u6 (3 GB) beats shipping q7
	// (4 GB).
	b := NewBipartite()
	if err := b.AddLeft(7, 4); err != nil { // q7
		t.Fatal(err)
	}
	if err := b.AddRight(1, 1); err != nil { // u1
		t.Fatal(err)
	}
	if err := b.AddRight(6, 2); err != nil { // u6
		t.Fatal(err)
	}
	if err := b.Connect(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(7, 6); err != nil {
		t.Fatal(err)
	}
	c := b.Solve()
	if c.Weight != 3 {
		t.Errorf("cover weight = %d, want 3", c.Weight)
	}
	if c.ContainsLeft(7) {
		t.Error("q7 should not be in the cover (updates are cheaper)")
	}
	if !c.ContainsRight(1) || !c.ContainsRight(6) {
		t.Errorf("u1 and u6 should be in the cover, got %+v", c)
	}
}

func TestBipartiteShipQueryWhenUpdatesExpensive(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 2)   // cheap query
	_ = b.AddRight(1, 10) // expensive update
	_ = b.Connect(1, 1)
	c := b.Solve()
	if !c.ContainsLeft(1) || c.Weight != 2 {
		t.Errorf("expected query in cover with weight 2, got %+v", c)
	}
}

func TestBipartiteIsolatedVerticesNeverInCover(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 5)
	_ = b.AddRight(2, 7)
	c := b.Solve()
	if len(c.Left) != 0 || len(c.Right) != 0 || c.Weight != 0 {
		t.Errorf("isolated vertices must not appear in cover: %+v", c)
	}
}

func TestBipartiteZeroWeightPreferred(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 0)
	_ = b.AddRight(1, 3)
	_ = b.Connect(1, 1)
	c := b.Solve()
	if c.Weight != 0 {
		t.Errorf("cover weight = %d, want 0 (zero-weight query)", c.Weight)
	}
	if !c.ContainsLeft(1) {
		t.Errorf("zero-weight left vertex should cover the edge: %+v", c)
	}
}

func TestBipartiteDuplicateVertexRejected(t *testing.T) {
	b := NewBipartite()
	if err := b.AddLeft(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLeft(1, 2); err == nil {
		t.Error("duplicate left vertex should fail")
	}
	if err := b.AddRight(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRight(1, 2); err == nil {
		t.Error("duplicate right vertex should fail")
	}
}

func TestBipartiteConnectUnknownVertex(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 1)
	if err := b.Connect(1, 99); err == nil {
		t.Error("connect to unknown right vertex should fail")
	}
	if err := b.Connect(99, 1); err == nil {
		t.Error("connect from unknown left vertex should fail")
	}
}

func TestBipartiteDuplicateEdgeIgnored(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 3)
	_ = b.AddRight(1, 5)
	_ = b.Connect(1, 1)
	_ = b.Connect(1, 1)
	if got := b.DegreeLeft(1); got != 1 {
		t.Errorf("DegreeLeft = %d, want 1", got)
	}
	c := b.Solve()
	if c.Weight != 3 {
		t.Errorf("cover weight = %d, want 3", c.Weight)
	}
}

func TestBipartiteRemoveLeftRecomputes(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 10)
	_ = b.AddRight(1, 4)
	_ = b.Connect(1, 1)
	if c := b.Solve(); c.Weight != 4 {
		t.Fatalf("cover weight = %d, want 4", c.Weight)
	}
	if err := b.RemoveLeft(1); err != nil {
		t.Fatal(err)
	}
	if c := b.Solve(); c.Weight != 0 {
		t.Errorf("cover weight after removal = %d, want 0", c.Weight)
	}
	if b.HasLeft(1) {
		t.Error("left vertex still present after removal")
	}
	if got := b.DegreeRight(1); got != 0 {
		t.Errorf("right degree = %d, want 0", got)
	}
}

func TestBipartiteRemoveRightRecomputes(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(1, 2)
	_ = b.AddRight(1, 1)
	_ = b.AddRight(2, 1)
	_ = b.Connect(1, 1)
	_ = b.Connect(1, 2)
	if c := b.Solve(); c.Weight != 2 {
		t.Fatalf("cover weight = %d, want 2", c.Weight)
	}
	_ = b.RemoveRight(1)
	if c := b.Solve(); c.Weight != 1 {
		t.Errorf("cover weight = %d, want 1 (only u2 remains)", c.Weight)
	}
}

func TestBipartiteNeighbors(t *testing.T) {
	b := NewBipartite()
	_ = b.AddLeft(5, 1)
	_ = b.AddRight(2, 1)
	_ = b.AddRight(9, 1)
	_ = b.Connect(5, 9)
	_ = b.Connect(5, 2)
	got := b.Neighbors(5)
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Errorf("Neighbors = %v, want [2 9]", got)
	}
}

// TestBipartiteMatchesBruteForce cross-validates the flow-based cover
// against exhaustive enumeration on random small graphs.
func TestBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nLeft := rng.Intn(7) + 1
		nRight := rng.Intn(7) + 1
		b := NewBipartite()
		leftW := make(map[int64]int64)
		rightW := make(map[int64]int64)
		for i := 0; i < nLeft; i++ {
			w := int64(rng.Intn(30))
			leftW[int64(i)] = w
			if err := b.AddLeft(int64(i), w); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nRight; i++ {
			w := int64(rng.Intn(30))
			rightW[int64(i)] = w
			if err := b.AddRight(int64(i), w); err != nil {
				t.Fatal(err)
			}
		}
		var edges [][2]int64
		for i := 0; i < nLeft; i++ {
			for j := 0; j < nRight; j++ {
				if rng.Float64() < 0.35 {
					edges = append(edges, [2]int64{int64(i), int64(j)})
					if err := b.Connect(int64(i), int64(j)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		c := b.Solve()
		checkCoverValid(t, c, edges)
		want := bruteCover(leftW, rightW, edges)
		if c.Weight != want {
			t.Fatalf("trial %d: cover weight %d != brute force %d (edges %v, lw %v, rw %v)",
				trial, c.Weight, want, edges, leftW, rightW)
		}
	}
}

// TestBipartiteIncrementalMatchesFresh interleaves vertex/edge additions
// and removals with Solve calls and checks the final answer equals a
// from-scratch solver on the surviving graph.
func TestBipartiteIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		b := NewBipartite()
		leftW := make(map[int64]int64)
		rightW := make(map[int64]int64)
		type edgeKey = [2]int64
		liveEdges := make(map[edgeKey]bool)
		nextL, nextR := int64(0), int64(0)

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(12); {
			case op < 3:
				if len(leftW) >= 9 { // keep brute-force enumeration tractable
					continue
				}
				w := int64(rng.Intn(25))
				leftW[nextL] = w
				_ = b.AddLeft(nextL, w)
				nextL++
			case op < 6:
				w := int64(rng.Intn(25))
				rightW[nextR] = w
				_ = b.AddRight(nextR, w)
				nextR++
			case op < 10:
				if nextL == 0 || nextR == 0 {
					continue
				}
				l := int64(rng.Intn(int(nextL)))
				r := int64(rng.Intn(int(nextR)))
				if _, okL := leftW[l]; !okL {
					continue
				}
				if _, okR := rightW[r]; !okR {
					continue
				}
				if err := b.Connect(l, r); err != nil {
					t.Fatal(err)
				}
				liveEdges[edgeKey{l, r}] = true
			case op < 11:
				if nextL == 0 {
					continue
				}
				l := int64(rng.Intn(int(nextL)))
				if _, ok := leftW[l]; !ok {
					continue
				}
				if err := b.RemoveLeft(l); err != nil {
					t.Fatal(err)
				}
				delete(leftW, l)
				for ek := range liveEdges {
					if ek[0] == l {
						delete(liveEdges, ek)
					}
				}
			default:
				if nextR == 0 {
					continue
				}
				r := int64(rng.Intn(int(nextR)))
				if _, ok := rightW[r]; !ok {
					continue
				}
				if err := b.RemoveRight(r); err != nil {
					t.Fatal(err)
				}
				delete(rightW, r)
				for ek := range liveEdges {
					if ek[1] == r {
						delete(liveEdges, ek)
					}
				}
			}
			if rng.Intn(4) == 0 {
				b.Solve()
			}
		}

		got := b.Solve()
		var edges [][2]int64
		for ek := range liveEdges {
			edges = append(edges, ek)
		}
		checkCoverValid(t, got, edges)
		want := bruteCover(leftW, rightW, edges)
		if got.Weight != want {
			t.Fatalf("trial %d: incremental cover %d != brute force %d", trial, got.Weight, want)
		}
	}
}

func TestCoverContainsHelpers(t *testing.T) {
	c := Cover{Left: []int64{1, 5, 9}, Right: []int64{2}}
	if !c.ContainsLeft(5) || c.ContainsLeft(4) {
		t.Error("ContainsLeft wrong")
	}
	if !c.ContainsRight(2) || c.ContainsRight(1) {
		t.Error("ContainsRight wrong")
	}
}
