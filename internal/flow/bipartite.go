package flow

import (
	"fmt"
	"sort"
)

// Bipartite maintains a weighted bipartite graph — left vertices are
// queries, right vertices are updates in VCover's interaction graph —
// and answers minimum-weight vertex cover queries incrementally.
//
// The reduction (Hochbaum 1997): source → left vertex with capacity
// w(left); right vertex → sink with capacity w(right); left → right with
// infinite capacity. After max flow, with R the residual-reachable set
// from the source, the minimum-weight cover is
//
//	{ left l : l ∉ R } ∪ { right r : r ∈ R }
//
// and its weight equals the max-flow value. Because every left→right
// edge has infinite capacity, no such edge can cross the min cut, so for
// every edge at least one endpoint is in the cover.
//
// Vertices are identified by caller-chosen int64 keys (query IDs and
// update IDs). Key spaces of the two sides are independent.
type Bipartite struct {
	net  *Network
	s, t int

	left  map[int64]int // key → node
	right map[int64]int

	weight  map[int64]int64 // left keys
	rweight map[int64]int64 // right keys

	// ledges[l] is the set of right keys adjacent to left key l;
	// redges[r] the mirror. They provide O(degree) removals and
	// duplicate-edge detection.
	ledges map[int64]map[int64]struct{}
	redges map[int64]map[int64]struct{}
}

// Cover is the result of a minimum-weight vertex cover computation.
type Cover struct {
	// Left and Right hold the keys of the cover members on each side,
	// sorted ascending.
	Left  []int64
	Right []int64
	// Weight is the total weight of the cover, equal to the max-flow
	// value.
	Weight int64
}

// ContainsLeft reports whether the left key is in the cover.
func (c Cover) ContainsLeft(key int64) bool { return containsSorted(c.Left, key) }

// ContainsRight reports whether the right key is in the cover.
func (c Cover) ContainsRight(key int64) bool { return containsSorted(c.Right, key) }

func containsSorted(s []int64, key int64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= key })
	return i < len(s) && s[i] == key
}

// NewBipartite returns an empty bipartite cover solver.
func NewBipartite() *Bipartite {
	net := NewNetwork()
	return &Bipartite{
		net:     net,
		s:       net.AddNode(),
		t:       net.AddNode(),
		left:    make(map[int64]int),
		right:   make(map[int64]int),
		weight:  make(map[int64]int64),
		rweight: make(map[int64]int64),
		ledges:  make(map[int64]map[int64]struct{}),
		redges:  make(map[int64]map[int64]struct{}),
	}
}

// AddLeft inserts a left vertex with the given weight. Re-adding an
// existing key is an error: weights are immutable once attached.
func (b *Bipartite) AddLeft(key, weight int64) error {
	if _, ok := b.left[key]; ok {
		return fmt.Errorf("flow: left vertex %d already present", key)
	}
	if weight < 0 {
		return fmt.Errorf("flow: left vertex %d has negative weight %d", key, weight)
	}
	node := b.net.AddNode()
	b.left[key] = node
	b.weight[key] = weight
	if _, err := b.net.AddEdge(b.s, node, weight); err != nil {
		return err
	}
	return nil
}

// AddRight inserts a right vertex with the given weight.
func (b *Bipartite) AddRight(key, weight int64) error {
	if _, ok := b.right[key]; ok {
		return fmt.Errorf("flow: right vertex %d already present", key)
	}
	if weight < 0 {
		return fmt.Errorf("flow: right vertex %d has negative weight %d", key, weight)
	}
	node := b.net.AddNode()
	b.right[key] = node
	b.rweight[key] = weight
	if _, err := b.net.AddEdge(node, b.t, weight); err != nil {
		return err
	}
	return nil
}

// HasLeft reports whether the left key is present.
func (b *Bipartite) HasLeft(key int64) bool { _, ok := b.left[key]; return ok }

// HasRight reports whether the right key is present.
func (b *Bipartite) HasRight(key int64) bool { _, ok := b.right[key]; return ok }

// LeftWeight returns the weight of a left vertex (0 if absent).
func (b *Bipartite) LeftWeight(key int64) int64 { return b.weight[key] }

// RightWeight returns the weight of a right vertex (0 if absent).
func (b *Bipartite) RightWeight(key int64) int64 { return b.rweight[key] }

// DegreeLeft returns the live edge count of a left vertex.
func (b *Bipartite) DegreeLeft(key int64) int { return len(b.ledges[key]) }

// DegreeRight returns the live edge count of a right vertex.
func (b *Bipartite) DegreeRight(key int64) int { return len(b.redges[key]) }

// Neighbors returns the right keys adjacent to a left vertex, sorted.
func (b *Bipartite) Neighbors(leftKey int64) []int64 {
	out := make([]int64, 0, len(b.ledges[leftKey]))
	for r := range b.ledges[leftKey] {
		out = append(out, r)
	}
	sortInt64s(out)
	return out
}

// Len returns the number of live left and right vertices.
func (b *Bipartite) Len() (nLeft, nRight int) { return len(b.left), len(b.right) }

// Lefts returns all live left keys, sorted.
func (b *Bipartite) Lefts() []int64 {
	out := make([]int64, 0, len(b.left))
	for k := range b.left {
		out = append(out, k)
	}
	sortInt64s(out)
	return out
}

// Rights returns all live right keys, sorted.
func (b *Bipartite) Rights() []int64 {
	out := make([]int64, 0, len(b.right))
	for k := range b.right {
		out = append(out, k)
	}
	sortInt64s(out)
	return out
}

// Connect adds an edge between a left and a right vertex. Duplicate
// edges are ignored. Both endpoints must exist.
func (b *Bipartite) Connect(leftKey, rightKey int64) error {
	ln, ok := b.left[leftKey]
	if !ok {
		return fmt.Errorf("flow: unknown left vertex %d", leftKey)
	}
	rn, ok := b.right[rightKey]
	if !ok {
		return fmt.Errorf("flow: unknown right vertex %d", rightKey)
	}
	if _, dup := b.ledges[leftKey][rightKey]; dup {
		return nil
	}
	if _, err := b.net.AddEdge(ln, rn, Inf); err != nil {
		return err
	}
	if b.ledges[leftKey] == nil {
		b.ledges[leftKey] = make(map[int64]struct{})
	}
	if b.redges[rightKey] == nil {
		b.redges[rightKey] = make(map[int64]struct{})
	}
	b.ledges[leftKey][rightKey] = struct{}{}
	b.redges[rightKey][leftKey] = struct{}{}
	return nil
}

// RemoveLeft deletes a left vertex, cancelling any flow through it.
func (b *Bipartite) RemoveLeft(key int64) error {
	node, ok := b.left[key]
	if !ok {
		return nil
	}
	if err := b.net.RemoveNode(node, b.s, b.t); err != nil {
		return err
	}
	delete(b.left, key)
	delete(b.weight, key)
	for r := range b.ledges[key] {
		delete(b.redges[r], key)
	}
	delete(b.ledges, key)
	return nil
}

// RemoveRight deletes a right vertex, cancelling any flow through it.
func (b *Bipartite) RemoveRight(key int64) error {
	node, ok := b.right[key]
	if !ok {
		return nil
	}
	if err := b.net.RemoveNode(node, b.s, b.t); err != nil {
		return err
	}
	delete(b.right, key)
	delete(b.rweight, key)
	for l := range b.redges[key] {
		delete(b.ledges[l], key)
	}
	delete(b.redges, key)
	return nil
}

// Solve computes the current minimum-weight vertex cover. Work is
// incremental: flow from previous calls is retained, so a call after k
// new edges costs only the additional augmentations.
func (b *Bipartite) Solve() Cover {
	b.net.MaxFlow(b.s, b.t)
	reach := b.net.ResidualReachable(b.s)
	var cover Cover
	for key, node := range b.left {
		if !reach(node) {
			cover.Left = append(cover.Left, key)
			cover.Weight += b.weight[key]
		}
	}
	for key, node := range b.right {
		if reach(node) {
			cover.Right = append(cover.Right, key)
			cover.Weight += b.rweight[key]
		}
	}
	sortInt64s(cover.Left)
	sortInt64s(cover.Right)
	return cover
}

// FlowValue returns the current max-flow value, which after Solve equals
// the cover weight.
func (b *Bipartite) FlowValue() int64 { return b.net.Value() }

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
