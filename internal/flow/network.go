// Package flow implements the network-flow machinery behind VCover's
// UpdateManager: an Edmonds–Karp max-flow solver that supports the two
// operations the paper's incremental algorithm needs (Figure 5):
//
//   - growing the network (new nodes and edges) while keeping the
//     previously computed flow valid, so each re-solve only searches for
//     the *additional* augmenting paths; and
//   - removing nodes from the network by cancelling the flow routed
//     through them, which implements the "remainder subgraph" that
//     excludes update nodes picked in a cover and query nodes not
//     picked.
//
// On top of the raw network, Bipartite solves the minimum-weight vertex
// cover problem on query–update interaction graphs via the classical
// max-flow reduction (source → left with capacity w, right → sink with
// capacity w, left → right with infinite capacity; the cover is read off
// the minimum cut).
package flow

import (
	"fmt"
	"math"
)

// Inf is the edge capacity used for "infinite" edges in reductions. It
// is large enough that no min cut ever includes an infinite edge, yet
// small enough that sums cannot overflow int64.
const Inf int64 = math.MaxInt64 / 8

type edge struct {
	to   int32
	cap  int64
	flow int64
}

// Network is a flow network over integer node IDs. The zero value is not
// usable; construct with NewNetwork.
//
// Edges are stored in pairs: edge i and edge i^1 are mutual reverses, so
// pushing flow on one automatically adjusts the residual of the other.
type Network struct {
	edges []edge
	adj   [][]int32 // per-node indices into edges
	alive []bool

	// visited/epoch implement O(1) amortized visited-marking across
	// repeated searches without reallocating.
	visited []uint32
	epoch   uint32

	// parentEdge is scratch space for path reconstruction.
	parentEdge []int32
	queue      []int32

	flowValue int64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{}
}

// AddNode allocates a new node and returns its ID.
func (n *Network) AddNode() int {
	id := len(n.adj)
	n.adj = append(n.adj, nil)
	n.alive = append(n.alive, true)
	n.visited = append(n.visited, 0)
	n.parentEdge = append(n.parentEdge, -1)
	return id
}

// NumNodes returns the number of nodes ever allocated, including removed
// ones.
func (n *Network) NumNodes() int { return len(n.adj) }

// Alive reports whether the node has not been removed.
func (n *Network) Alive(v int) bool { return v >= 0 && v < len(n.alive) && n.alive[v] }

// AddEdge adds a directed edge with the given capacity and returns its
// edge ID. The implicit reverse edge has capacity zero.
func (n *Network) AddEdge(from, to int, capacity int64) (int, error) {
	if !n.Alive(from) || !n.Alive(to) {
		return 0, fmt.Errorf("flow: edge endpoints must be alive nodes (%d -> %d)", from, to)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: negative capacity %d", capacity)
	}
	id := len(n.edges)
	n.edges = append(n.edges,
		edge{to: int32(to), cap: capacity},
		edge{to: int32(from), cap: 0},
	)
	n.adj[from] = append(n.adj[from], int32(id))
	n.adj[to] = append(n.adj[to], int32(id+1))
	return id, nil
}

// EdgeFlow returns the current flow on the edge returned by AddEdge.
func (n *Network) EdgeFlow(edgeID int) int64 { return n.edges[edgeID].flow }

// Value returns the current total flow from source to sink as maintained
// across MaxFlow and RemoveNode calls.
func (n *Network) Value() int64 { return n.flowValue }

func (n *Network) nextEpoch() {
	n.epoch++
	if n.epoch == 0 { // wrapped; reset all marks
		for i := range n.visited {
			n.visited[i] = 0
		}
		n.epoch = 1
	}
}

// MaxFlow augments the current flow to maximality between s and t using
// BFS (Edmonds–Karp) and returns the total flow value. Calling it again
// after adding nodes or edges performs only the incremental work: the
// existing flow is kept and only new augmenting paths are searched.
func (n *Network) MaxFlow(s, t int) int64 {
	if !n.Alive(s) || !n.Alive(t) || s == t {
		return n.flowValue
	}
	for {
		pushed := n.augmentOnce(s, t)
		if pushed == 0 {
			break
		}
		n.flowValue += pushed
	}
	return n.flowValue
}

// augmentOnce finds one shortest augmenting path and pushes the
// bottleneck along it, returning the amount pushed (0 if no path).
func (n *Network) augmentOnce(s, t int) int64 {
	n.nextEpoch()
	n.visited[s] = n.epoch
	n.queue = n.queue[:0]
	n.queue = append(n.queue, int32(s))
	found := false
	for qi := 0; qi < len(n.queue) && !found; qi++ {
		u := n.queue[qi]
		for _, ei := range n.adj[u] {
			e := &n.edges[ei]
			v := e.to
			if e.cap-e.flow <= 0 || n.visited[v] == n.epoch || !n.alive[v] {
				continue
			}
			n.visited[v] = n.epoch
			n.parentEdge[v] = ei
			if int(v) == t {
				found = true
				break
			}
			n.queue = append(n.queue, v)
		}
	}
	if !found {
		return 0
	}
	// Bottleneck.
	bottleneck := Inf * 2
	for v := int32(t); int(v) != s; {
		ei := n.parentEdge[v]
		if r := n.edges[ei].cap - n.edges[ei].flow; r < bottleneck {
			bottleneck = r
		}
		v = n.edges[ei^1].to
	}
	for v := int32(t); int(v) != s; {
		ei := n.parentEdge[v]
		n.edges[ei].flow += bottleneck
		n.edges[ei^1].flow -= bottleneck
		v = n.edges[ei^1].to
	}
	return bottleneck
}

// ResidualReachable returns the set of nodes reachable from s in the
// residual graph, as a predicate. After MaxFlow has run, this identifies
// the source side of a minimum cut.
func (n *Network) ResidualReachable(s int) func(v int) bool {
	reach := make(map[int]struct{})
	if !n.Alive(s) {
		return func(int) bool { return false }
	}
	n.nextEpoch()
	n.visited[s] = n.epoch
	reach[s] = struct{}{}
	n.queue = n.queue[:0]
	n.queue = append(n.queue, int32(s))
	for qi := 0; qi < len(n.queue); qi++ {
		u := n.queue[qi]
		for _, ei := range n.adj[u] {
			e := &n.edges[ei]
			v := e.to
			if e.cap-e.flow <= 0 || n.visited[v] == n.epoch || !n.alive[v] {
				continue
			}
			n.visited[v] = n.epoch
			reach[int(v)] = struct{}{}
			n.queue = append(n.queue, v)
		}
	}
	return func(v int) bool {
		_, ok := reach[v]
		return ok
	}
}

// RemoveNode cancels all flow routed through v and detaches it from the
// network. s and t identify the flow endpoints so that cancelled s–t
// paths decrement Value. Removing s or t is not supported.
func (n *Network) RemoveNode(v, s, t int) error {
	if v == s || v == t {
		return fmt.Errorf("flow: cannot remove flow endpoint %d", v)
	}
	if !n.Alive(v) {
		return nil
	}
	// Cancel flow passing through v, path by path (or cycle by cycle).
	for {
		inEdge := n.incomingFlowEdge(v)
		if inEdge < 0 {
			break
		}
		if err := n.cancelOneThrough(v, s, t); err != nil {
			return err
		}
	}
	// Detach: remove v's edges from its neighbors' adjacency, then clear
	// v's own list. Edge structs become tombstones.
	for _, ei := range n.adj[v] {
		rev := ei ^ 1
		other := n.edges[ei].to
		n.edges[ei].cap, n.edges[ei].flow = 0, 0
		n.edges[rev].cap, n.edges[rev].flow = 0, 0
		n.removeAdj(int(other), rev)
	}
	n.adj[v] = nil
	n.alive[v] = false
	return nil
}

// incomingFlowEdge returns an edge index carrying positive flow into v,
// or -1. The returned index is the edge whose .to == v.
func (n *Network) incomingFlowEdge(v int) int32 {
	for _, ei := range n.adj[v] {
		// adj[v] holds edges leaving v; the paired edge ei^1 points into
		// v. Positive flow on ei^1 means flow into v.
		if n.edges[ei^1].flow > 0 {
			return ei ^ 1
		}
	}
	return -1
}

// cancelOneThrough removes one unit-path (or cycle) of flow passing
// through v. Flow decomposition guarantees that any node with through
// flow lies on an s→t path of flow edges or on a flow cycle.
func (n *Network) cancelOneThrough(v, s, t int) error {
	back, backCycle := n.traceFlowPath(v, s, true)
	if back == nil {
		return fmt.Errorf("flow: inconsistent flow at node %d (no upstream path)", v)
	}
	if backCycle {
		n.cancelAlong(back)
		return nil
	}
	fwd, fwdCycle := n.traceFlowPath(v, t, false)
	if fwd == nil {
		return fmt.Errorf("flow: inconsistent flow at node %d (no downstream path)", v)
	}
	if fwdCycle {
		n.cancelAlong(fwd)
		return nil
	}
	// back is a flow path s→v, fwd is v→t; cancel the concatenation.
	path := append(append([]int32(nil), back...), fwd...)
	n.flowValue -= n.cancelAlong(path)
	return nil
}

// traceFlowPath finds a path of positive-flow edges between v and goal.
// With backward=true it walks flow edges in reverse (finding an s→v
// segment); otherwise forward (v→t). If it closes a cycle through v
// before reaching the goal, it returns the cycle's edges with cycle ==
// true. Returns nil if v has no adjacent flow in that direction.
func (n *Network) traceFlowPath(v, goal int, backward bool) (path []int32, cycle bool) {
	n.nextEpoch()
	n.visited[v] = n.epoch
	n.queue = n.queue[:0]
	n.queue = append(n.queue, int32(v))
	// parentEdge[u] = edge (in flow direction) connecting u to its BFS
	// parent.
	found := int32(-1)
	for qi := 0; qi < len(n.queue) && found < 0; qi++ {
		u := n.queue[qi]
		for _, ei := range n.adj[u] {
			var flowEdge int32
			var next int32
			if backward {
				// Flow into u: paired edge ei^1 ends at u; its origin is
				// edges[ei].to.
				flowEdge = ei ^ 1
				next = n.edges[ei].to
				if n.edges[flowEdge].flow <= 0 {
					continue
				}
			} else {
				flowEdge = ei
				next = n.edges[ei].to
				if n.edges[flowEdge].flow <= 0 {
					continue
				}
			}
			if !n.alive[next] {
				continue
			}
			if n.visited[next] == n.epoch {
				continue
			}
			n.visited[next] = n.epoch
			n.parentEdge[next] = flowEdge
			if int(next) == goal {
				found = next
				break
			}
			n.queue = append(n.queue, next)
		}
	}
	if found < 0 {
		// No path to goal: with positive through-flow this means the
		// flow through v sits on a cycle. Find it by walking one step
		// and reusing visited marks.
		return n.traceFlowCycle(v, backward)
	}
	// Reconstruct from goal back to v.
	for u := found; int(u) != v; {
		ei := n.parentEdge[u]
		path = append(path, ei)
		if backward {
			// parentEdge is the flow edge whose head is the parent when
			// walking backward; its tail is u's predecessor toward v.
			u = n.edges[ei].to
		} else {
			u = n.edges[ei^1].to
		}
	}
	// Path currently goal→v; forward traces need v→goal order. For
	// cancellation order does not matter, but keep deterministic.
	reverse(path)
	return path, false
}

// traceFlowCycle walks flow edges from v until it revisits a node,
// returning the cycle's edges.
func (n *Network) traceFlowCycle(v int, backward bool) ([]int32, bool) {
	// Walk along flow edges recording the path until a node repeats.
	pos := make(map[int32]int)
	var pathNodes []int32
	var pathEdges []int32
	cur := int32(v)
	for {
		if at, ok := pos[cur]; ok {
			// Cycle from pathNodes[at..]
			return pathEdges[at:], true
		}
		pos[cur] = len(pathNodes)
		pathNodes = append(pathNodes, cur)
		advanced := false
		for _, ei := range n.adj[cur] {
			var flowEdge, next int32
			if backward {
				flowEdge = ei ^ 1
				next = n.edges[ei].to
			} else {
				flowEdge = ei
				next = n.edges[ei].to
			}
			if n.edges[flowEdge].flow <= 0 || !n.alive[next] {
				continue
			}
			pathEdges = append(pathEdges, flowEdge)
			cur = next
			advanced = true
			break
		}
		if !advanced {
			return nil, false
		}
	}
}

// cancelAlong reduces flow along the given flow edges by their common
// bottleneck and returns the amount cancelled.
func (n *Network) cancelAlong(edges []int32) int64 {
	if len(edges) == 0 {
		return 0
	}
	bottleneck := n.edges[edges[0]].flow
	for _, ei := range edges[1:] {
		if f := n.edges[ei].flow; f < bottleneck {
			bottleneck = f
		}
	}
	if bottleneck <= 0 {
		return 0
	}
	for _, ei := range edges {
		n.edges[ei].flow -= bottleneck
		n.edges[ei^1].flow += bottleneck
	}
	return bottleneck
}

func (n *Network) removeAdj(node int, edgeIdx int32) {
	lst := n.adj[node]
	for i, e := range lst {
		if e == edgeIdx {
			lst[i] = lst[len(lst)-1]
			n.adj[node] = lst[:len(lst)-1]
			return
		}
	}
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
