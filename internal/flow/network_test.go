package flow

import (
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, n *Network, from, to int, capacity int64) int {
	t.Helper()
	id, err := n.AddEdge(from, to, capacity)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d,%d): %v", from, to, capacity, err)
	}
	return id
}

func TestMaxFlowSimplePath(t *testing.T) {
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 5)
	mustEdge(t, n, a, tk, 3)
	if got := n.MaxFlow(s, tk); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestMaxFlowClassicDiamond(t *testing.T) {
	// Two disjoint paths of capacity 2 and 3, plus a cross edge that
	// lets one unit reroute.
	n := NewNetwork()
	s, a, b, tk := n.AddNode(), n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 3)
	mustEdge(t, n, s, b, 2)
	mustEdge(t, n, a, tk, 2)
	mustEdge(t, n, b, tk, 3)
	mustEdge(t, n, a, b, 1)
	if got := n.MaxFlow(s, tk); got != 5 {
		t.Errorf("MaxFlow = %d, want 5", got)
	}
}

func TestMaxFlowZeroWhenDisconnected(t *testing.T) {
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 5)
	if got := n.MaxFlow(s, tk); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestMaxFlowIncrementalGrowth(t *testing.T) {
	// Growing the network must not lose prior flow, and re-solving must
	// give the same value as solving the final network from scratch.
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 4)
	mustEdge(t, n, a, tk, 4)
	if got := n.MaxFlow(s, tk); got != 4 {
		t.Fatalf("initial MaxFlow = %d, want 4", got)
	}
	b := n.AddNode()
	mustEdge(t, n, s, b, 7)
	mustEdge(t, n, b, tk, 6)
	if got := n.MaxFlow(s, tk); got != 10 {
		t.Errorf("incremental MaxFlow = %d, want 10", got)
	}
}

func TestRemoveNodeCancelsFlow(t *testing.T) {
	n := NewNetwork()
	s, a, b, tk := n.AddNode(), n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 4)
	mustEdge(t, n, a, tk, 4)
	mustEdge(t, n, s, b, 3)
	mustEdge(t, n, b, tk, 3)
	if got := n.MaxFlow(s, tk); got != 7 {
		t.Fatalf("MaxFlow = %d, want 7", got)
	}
	if err := n.RemoveNode(a, s, tk); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if got := n.Value(); got != 3 {
		t.Errorf("Value after removal = %d, want 3", got)
	}
	if got := n.MaxFlow(s, tk); got != 3 {
		t.Errorf("MaxFlow after removal = %d, want 3", got)
	}
	if n.Alive(a) {
		t.Error("removed node still alive")
	}
}

func TestRemoveNodeThenRegrow(t *testing.T) {
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 2)
	mustEdge(t, n, a, tk, 2)
	n.MaxFlow(s, tk)
	if err := n.RemoveNode(a, s, tk); err != nil {
		t.Fatal(err)
	}
	b := n.AddNode()
	mustEdge(t, n, s, b, 9)
	mustEdge(t, n, b, tk, 5)
	if got := n.MaxFlow(s, tk); got != 5 {
		t.Errorf("MaxFlow after regrow = %d, want 5", got)
	}
}

func TestRemoveEndpointRejected(t *testing.T) {
	n := NewNetwork()
	s, tk := n.AddNode(), n.AddNode()
	if err := n.RemoveNode(s, s, tk); err == nil {
		t.Error("removing source should fail")
	}
	if err := n.RemoveNode(tk, s, tk); err == nil {
		t.Error("removing sink should fail")
	}
}

func TestRemoveNodeIdempotent(t *testing.T) {
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 1)
	mustEdge(t, n, a, tk, 1)
	n.MaxFlow(s, tk)
	if err := n.RemoveNode(a, s, tk); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveNode(a, s, tk); err != nil {
		t.Errorf("second RemoveNode should be a no-op, got %v", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	if _, err := n.AddEdge(s, 99, 1); err == nil {
		t.Error("edge to unknown node should fail")
	}
	if _, err := n.AddEdge(s, s, -1); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestResidualReachableIdentifiesMinCut(t *testing.T) {
	// s -> a (1) -> t (10): cut is the s->a edge, so only s is
	// reachable.
	n := NewNetwork()
	s, a, tk := n.AddNode(), n.AddNode(), n.AddNode()
	mustEdge(t, n, s, a, 1)
	mustEdge(t, n, a, tk, 10)
	n.MaxFlow(s, tk)
	reach := n.ResidualReachable(s)
	if !reach(s) {
		t.Error("source must be reachable")
	}
	if reach(a) || reach(tk) {
		t.Error("a and t must be on the sink side of the cut")
	}
}

// TestRandomFlowsMatchRecompute runs random grow/solve/remove sequences
// and checks the incrementally maintained flow value always matches a
// from-scratch computation on an identical network.
func TestRandomFlowsMatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := NewNetwork()
		s, tk := n.AddNode(), n.AddNode()
		type edgeSpec struct {
			from, to int
			cap      int64
		}
		var (
			nodes []int
			specs []edgeSpec
			dead  = make(map[int]bool)
		)
		for step := 0; step < 40; step++ {
			switch op := rng.Intn(10); {
			case op < 4 || len(nodes) < 2: // add node
				nodes = append(nodes, n.AddNode())
			case op < 8: // add random edge among s, t, nodes
				all := append([]int{s, tk}, nodes...)
				from := all[rng.Intn(len(all))]
				to := all[rng.Intn(len(all))]
				if from == to || dead[from] || dead[to] || to == s || from == tk {
					continue
				}
				c := int64(rng.Intn(20) + 1)
				mustEdge(t, n, from, to, c)
				specs = append(specs, edgeSpec{from, to, c})
				n.MaxFlow(s, tk)
			default: // remove a node
				if len(nodes) == 0 {
					continue
				}
				v := nodes[rng.Intn(len(nodes))]
				if dead[v] {
					continue
				}
				if err := n.RemoveNode(v, s, tk); err != nil {
					t.Fatalf("trial %d: RemoveNode: %v", trial, err)
				}
				dead[v] = true
				n.MaxFlow(s, tk)
			}
		}
		got := n.MaxFlow(s, tk)

		// Recompute from scratch over the surviving topology.
		fresh := NewNetwork()
		fs, ft := fresh.AddNode(), fresh.AddNode()
		remap := map[int]int{s: fs, tk: ft}
		for _, v := range nodes {
			if !dead[v] {
				remap[v] = fresh.AddNode()
			}
		}
		for _, sp := range specs {
			if dead[sp.from] || dead[sp.to] {
				continue
			}
			mustEdge(t, fresh, remap[sp.from], remap[sp.to], sp.cap)
		}
		want := fresh.MaxFlow(fs, ft)
		if got != want {
			t.Fatalf("trial %d: incremental flow %d != fresh flow %d", trial, got, want)
		}
	}
}

// TestFlowConservationAfterRandomOps verifies flow conservation at every
// interior node after arbitrary operation sequences.
func TestFlowConservationAfterRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork()
	s, tk := n.AddNode(), n.AddNode()
	var nodes []int
	for i := 0; i < 30; i++ {
		nodes = append(nodes, n.AddNode())
	}
	for step := 0; step < 300; step++ {
		from := s
		if rng.Intn(3) > 0 {
			from = nodes[rng.Intn(len(nodes))]
		}
		to := tk
		if rng.Intn(3) > 0 {
			to = nodes[rng.Intn(len(nodes))]
		}
		if from == to || !n.Alive(from) || !n.Alive(to) {
			continue
		}
		mustEdge(t, n, from, to, int64(rng.Intn(9)+1))
		n.MaxFlow(s, tk)
		if step%17 == 0 {
			v := nodes[rng.Intn(len(nodes))]
			if n.Alive(v) {
				if err := n.RemoveNode(v, s, tk); err != nil {
					t.Fatalf("RemoveNode: %v", err)
				}
			}
		}
	}
	// Conservation check: net flow at interior nodes is zero.
	netFlow := make(map[int32]int64)
	for i := 0; i < len(n.edges); i += 2 {
		e := n.edges[i]
		if e.flow <= 0 {
			continue
		}
		rev := n.edges[i+1]
		netFlow[rev.to] -= e.flow // tail
		netFlow[e.to] += e.flow   // head
	}
	for v, f := range netFlow {
		if int(v) == s || int(v) == tk {
			continue
		}
		if f != 0 {
			t.Fatalf("flow conservation violated at node %d: net %d", v, f)
		}
	}
	if netFlow[int32(s)] != -n.Value() || netFlow[int32(tk)] != n.Value() {
		t.Fatalf("endpoint imbalance: src %d sink %d value %d",
			netFlow[int32(s)], netFlow[int32(tk)], n.Value())
	}
}
