package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph describes a random bipartite instance for property tests.
type quickGraph struct {
	leftW  []int64
	rightW []int64
	edges  [][2]int
}

func genGraph(rng *rand.Rand) quickGraph {
	g := quickGraph{
		leftW:  make([]int64, rng.Intn(6)+1),
		rightW: make([]int64, rng.Intn(6)+1),
	}
	for i := range g.leftW {
		g.leftW[i] = int64(rng.Intn(40))
	}
	for i := range g.rightW {
		g.rightW[i] = int64(rng.Intn(40))
	}
	for l := range g.leftW {
		for r := range g.rightW {
			if rng.Intn(100) < 40 {
				g.edges = append(g.edges, [2]int{l, r})
			}
		}
	}
	return g
}

func buildBipartite(t testing.TB, g quickGraph) *Bipartite {
	b := NewBipartite()
	for i, w := range g.leftW {
		if err := b.AddLeft(int64(i), w); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range g.rightW {
		if err := b.AddRight(int64(i), w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.edges {
		if err := b.Connect(int64(e[0]), int64(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestQuickCoverWeightEqualsFlow: LP duality — the minimum vertex cover
// weight must equal the maximum flow value on every instance.
func TestQuickCoverWeightEqualsFlow(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(rand.New(rand.NewSource(seed)))
		b := buildBipartite(t, g)
		cover := b.Solve()
		return cover.Weight == b.FlowValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoverIsValid: every edge has an endpoint in the cover.
func TestQuickCoverIsValid(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(rand.New(rand.NewSource(seed)))
		b := buildBipartite(t, g)
		cover := b.Solve()
		for _, e := range g.edges {
			if !cover.ContainsLeft(int64(e[0])) && !cover.ContainsRight(int64(e[1])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoverIsMinimal: no cheaper cover exists (brute force).
func TestQuickCoverIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(rand.New(rand.NewSource(seed)))
		b := buildBipartite(t, g)
		cover := b.Solve()
		leftW := make(map[int64]int64, len(g.leftW))
		for i, w := range g.leftW {
			leftW[int64(i)] = w
		}
		rightW := make(map[int64]int64, len(g.rightW))
		for i, w := range g.rightW {
			rightW[int64(i)] = w
		}
		var edges [][2]int64
		for _, e := range g.edges {
			edges = append(edges, [2]int64{int64(e[0]), int64(e[1])})
		}
		return cover.Weight == bruteCover(leftW, rightW, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveIdempotent: solving twice without mutations returns the
// same cover.
func TestQuickSolveIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := genGraph(rand.New(rand.NewSource(seed)))
		b := buildBipartite(t, g)
		a := b.Solve()
		c := b.Solve()
		if a.Weight != c.Weight || len(a.Left) != len(c.Left) || len(a.Right) != len(c.Right) {
			return false
		}
		for i := range a.Left {
			if a.Left[i] != c.Left[i] {
				return false
			}
		}
		for i := range a.Right {
			if a.Right[i] != c.Right[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickRemovalKeepsValidity: after removing random vertices, the
// recomputed cover is still valid for the surviving edges and minimal.
func TestQuickRemovalKeepsValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := genGraph(rng)
		b := buildBipartite(t, g)
		b.Solve()

		removedL := make(map[int]bool)
		removedR := make(map[int]bool)
		for i := range g.leftW {
			if rng.Intn(3) == 0 {
				if err := b.RemoveLeft(int64(i)); err != nil {
					return false
				}
				removedL[i] = true
			}
		}
		for i := range g.rightW {
			if rng.Intn(3) == 0 {
				if err := b.RemoveRight(int64(i)); err != nil {
					return false
				}
				removedR[i] = true
			}
		}
		cover := b.Solve()
		leftW := make(map[int64]int64)
		rightW := make(map[int64]int64)
		for i, w := range g.leftW {
			if !removedL[i] {
				leftW[int64(i)] = w
			}
		}
		for i, w := range g.rightW {
			if !removedR[i] {
				rightW[int64(i)] = w
			}
		}
		var edges [][2]int64
		for _, e := range g.edges {
			if removedL[e[0]] || removedR[e[1]] {
				continue
			}
			edges = append(edges, [2]int64{int64(e[0]), int64(e[1])})
			if !cover.ContainsLeft(int64(e[0])) && !cover.ContainsRight(int64(e[1])) {
				return false
			}
		}
		return cover.Weight == bruteCover(leftW, rightW, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
