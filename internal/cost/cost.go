// Package cost defines the network-traffic cost model used throughout
// Delta. The paper charges every data-communication mechanism by the
// number of bytes it moves: shipping a query costs the size of its
// result, shipping an update costs the size of its payload, and loading
// an object costs the size of the object. Costs are tracked as logical
// bytes; the networking layer may physically move a scaled-down payload,
// but ledgers always account logical sizes.
package cost

import (
	"fmt"
	"sync"
)

// Bytes is a logical data size in bytes. All traffic costs in Delta are
// expressed in Bytes, mirroring the paper's "network traffic cost is
// proportional to the size of the data being communicated".
type Bytes int64

// Convenience multiples for building sizes in code and tests.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// GBf returns the size in (floating point) gigabytes, the unit used by
// every figure in the paper.
func (b Bytes) GBf() float64 { return float64(b) / float64(GB) }

// String renders the size with a binary-prefix unit, choosing the widest
// unit that keeps the value at or above one.
func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Mechanism identifies one of the three data-communication mechanisms of
// Section 3 of the paper.
type Mechanism int

const (
	// QueryShip redirects a query to the repository; the result is sent
	// directly to the client.
	QueryShip Mechanism = iota + 1
	// UpdateShip sends an update specification (inserted or modified
	// rows) from the repository to the cache.
	UpdateShip
	// ObjectLoad bulk-copies an entire data object (including all
	// outstanding updates) from the repository into the cache.
	ObjectLoad
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case QueryShip:
		return "query-ship"
	case UpdateShip:
		return "update-ship"
	case ObjectLoad:
		return "object-load"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// Ledger accumulates network traffic per mechanism. The zero value is an
// empty ledger ready for use. Ledger is safe for concurrent use.
type Ledger struct {
	mu sync.Mutex

	queryShip  Bytes
	updateShip Bytes
	objectLoad Bytes

	queryShips  int64
	updateShips int64
	objectLoads int64
}

// Charge records traffic of the given size against a mechanism.
func (l *Ledger) Charge(m Mechanism, size Bytes) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch m {
	case QueryShip:
		l.queryShip += size
		l.queryShips++
	case UpdateShip:
		l.updateShip += size
		l.updateShips++
	case ObjectLoad:
		l.objectLoad += size
		l.objectLoads++
	}
}

// Total returns the total traffic across all mechanisms — the quantity
// every experiment in the paper minimizes.
func (l *Ledger) Total() Bytes {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queryShip + l.updateShip + l.objectLoad
}

// ByMechanism returns the traffic charged to a single mechanism.
func (l *Ledger) ByMechanism(m Mechanism) Bytes {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch m {
	case QueryShip:
		return l.queryShip
	case UpdateShip:
		return l.updateShip
	case ObjectLoad:
		return l.objectLoad
	default:
		return 0
	}
}

// Count returns the number of operations charged to a mechanism.
func (l *Ledger) Count(m Mechanism) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch m {
	case QueryShip:
		return l.queryShips
	case UpdateShip:
		return l.updateShips
	case ObjectLoad:
		return l.objectLoads
	default:
		return 0
	}
}

// Snapshot is an immutable copy of a ledger's counters.
type Snapshot struct {
	QueryShip  Bytes `json:"queryShipBytes"`
	UpdateShip Bytes `json:"updateShipBytes"`
	ObjectLoad Bytes `json:"objectLoadBytes"`

	QueryShips  int64 `json:"queryShips"`
	UpdateShips int64 `json:"updateShips"`
	ObjectLoads int64 `json:"objectLoads"`
}

// Total returns the total traffic recorded in the snapshot.
func (s Snapshot) Total() Bytes { return s.QueryShip + s.UpdateShip + s.ObjectLoad }

// Snapshot returns a point-in-time copy of the ledger.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		QueryShip:   l.queryShip,
		UpdateShip:  l.updateShip,
		ObjectLoad:  l.objectLoad,
		QueryShips:  l.queryShips,
		UpdateShips: l.updateShips,
		ObjectLoads: l.objectLoads,
	}
}

// Reset zeroes all counters.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.queryShip, l.updateShip, l.objectLoad = 0, 0, 0
	l.queryShips, l.updateShips, l.objectLoads = 0, 0, 0
}
