package cost

import (
	"sync"
	"testing"
)

func TestBytesString(t *testing.T) {
	tests := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{GB + GB/2, "1.50GB"},
		{3 * TB, "3.00TB"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestGBf(t *testing.T) {
	if got := (10 * GB).GBf(); got != 10 {
		t.Errorf("GBf = %v, want 10", got)
	}
	if got := (GB / 2).GBf(); got != 0.5 {
		t.Errorf("GBf = %v, want 0.5", got)
	}
}

func TestMechanismString(t *testing.T) {
	if QueryShip.String() != "query-ship" ||
		UpdateShip.String() != "update-ship" ||
		ObjectLoad.String() != "object-load" {
		t.Error("mechanism names wrong")
	}
	if Mechanism(0).String() != "mechanism(0)" {
		t.Error("unknown mechanism rendering wrong")
	}
}

func TestLedgerCharges(t *testing.T) {
	var l Ledger
	l.Charge(QueryShip, 10)
	l.Charge(QueryShip, 5)
	l.Charge(UpdateShip, 3)
	l.Charge(ObjectLoad, 100)
	if got := l.Total(); got != 118 {
		t.Errorf("Total = %d, want 118", got)
	}
	if got := l.ByMechanism(QueryShip); got != 15 {
		t.Errorf("QueryShip = %d, want 15", got)
	}
	if got := l.Count(QueryShip); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	snap := l.Snapshot()
	if snap.Total() != 118 || snap.ObjectLoads != 1 {
		t.Errorf("snapshot wrong: %+v", snap)
	}
	l.Reset()
	if l.Total() != 0 || l.Count(UpdateShip) != 0 {
		t.Error("Reset failed")
	}
}

func TestLedgerConcurrentSafety(t *testing.T) {
	var l Ledger
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Charge(QueryShip, 1)
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 8000 {
		t.Errorf("Total = %d, want 8000", got)
	}
}
