package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/deltacache/delta/internal/cost"
)

// testSetup builds a reduced but statistically meaningful trace (100k
// events — enough for the paper's post-warmup shape to be stable).
func testSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(Options{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSetupDefaults(t *testing.T) {
	s := testSetup(t)
	if s.Survey.NumObjects() != 68 {
		t.Errorf("objects = %d, want 68", s.Survey.NumObjects())
	}
	if len(s.Events) != 100000 {
		t.Errorf("events = %d, want 100000", len(s.Events))
	}
	if s.Capacity() <= 0 || s.Capacity() >= s.Survey.TotalSize() {
		t.Errorf("capacity = %v out of range", s.Capacity())
	}
}

// TestPaperOrdering is the headline reproduction check at reduced scale:
// post-warmup (the paper's Figure 7b excludes warm-up-period costs), the
// five policies must land in the paper's order —
// SOptimal <= VCover < Replica, Benefit, NoCache — with no violations.
func TestPaperOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering test needs the full small trace")
	}
	s := testSetup(t)
	results, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	totals := PostWarmup(results, 0.5)
	get := func(name string) cost.Bytes {
		v, ok := totals[name]
		if !ok {
			t.Fatalf("missing result for %s", name)
		}
		return v
	}
	noCache, replica := get("NoCache"), get("Replica")
	benefit, vcover, soptimal := get("Benefit"), get("VCover"), get("SOptimal")
	t.Logf("post-warmup: NoCache=%v Replica=%v Benefit=%v VCover=%v SOptimal=%v",
		noCache, replica, benefit, vcover, soptimal)
	t.Logf("full trace:  NoCache=%v Replica=%v Benefit=%v VCover=%v SOptimal=%v",
		results["NoCache"].Total(), results["Replica"].Total(),
		results["Benefit"].Total(), results["VCover"].Total(), results["SOptimal"].Total())

	if vcover >= noCache {
		t.Errorf("VCover (%v) must beat NoCache (%v)", vcover, noCache)
	}
	if vcover >= benefit {
		t.Errorf("VCover (%v) must beat Benefit (%v)", vcover, benefit)
	}
	if vcover >= replica {
		t.Errorf("VCover (%v) must beat Replica (%v)", vcover, replica)
	}
	if soptimal > vcover {
		t.Errorf("SOptimal (%v) must not exceed VCover (%v)", soptimal, vcover)
	}
}

func TestFig7aCSV(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := Fig7a(s, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 1000 {
		t.Errorf("scatter too sparse: %d lines", len(lines))
	}
	if lines[0] != "event,object,kind" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestFig7bSeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full small trace")
	}
	s := testSetup(t)
	rows, results, err := Fig7b(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 50 {
		t.Fatalf("too few samples: %d", len(rows))
	}
	for _, name := range PolicyNames {
		if _, ok := results[name]; !ok {
			t.Errorf("missing policy %s", name)
		}
		prev := cost.Bytes(-1)
		for _, row := range rows {
			if row.Totals[name] < prev {
				t.Errorf("%s series decreases", name)
				break
			}
			prev = row.Totals[name]
		}
	}
}

func TestFig8aReplicaScalesWithUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	rows, err := Fig8a(Options{Scale: 0.016}, []int{2000, 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// NoCache is flat (same queries); Replica grows with updates.
	if rows[0].Totals["NoCache"] != rows[1].Totals["NoCache"] {
		t.Errorf("NoCache must be independent of update count: %v vs %v",
			rows[0].Totals["NoCache"], rows[1].Totals["NoCache"])
	}
	if rows[1].Totals["Replica"] <= rows[0].Totals["Replica"] {
		t.Errorf("Replica must grow with updates: %v vs %v",
			rows[0].Totals["Replica"], rows[1].Totals["Replica"])
	}
	// Replica growth should be roughly proportional (3x updates -> ~3x
	// cost, within a factor).
	ratio := float64(rows[1].Totals["Replica"]) / float64(rows[0].Totals["Replica"])
	if ratio < 1.8 || ratio > 4.5 {
		t.Errorf("Replica growth ratio %v, want near 3", ratio)
	}
}

func TestFig8bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	rows, err := Fig8b(Options{Scale: 0.008}, []int{10, 68})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Final <= 0 {
			t.Errorf("granularity %d: zero cost", r.NumObjects)
		}
		if len(r.Series) == 0 {
			t.Errorf("granularity %d: no series", r.NumObjects)
		}
	}
}

func TestBenefitWindowSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	rows, err := BenefitWindowSweep(Options{Scale: 0.008}, []int{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Total <= 0 || rows[1].Total <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestWarmupRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	rows, err := Warmup(Options{Scale: 0.008}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}
