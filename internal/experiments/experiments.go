// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment builds the synthetic SDSS-like
// survey and workload, replays it through the five policies under the
// simulator, and returns the series/rows the paper plots. The
// delta-bench command and the repository's benchmarks are thin wrappers
// over this package; EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/sim"
	"github.com/deltacache/delta/internal/trace"
	"github.com/deltacache/delta/internal/workload"
)

// Setup is a prepared experiment environment: survey, trace, and cache
// sizing.
type Setup struct {
	Survey *catalog.Survey
	Events []model.Event
	// CacheFrac is the cache size as a fraction of the server's total
	// (paper default 0.3).
	CacheFrac float64
	// SampleEvery controls series resolution.
	SampleEvery int
	// BenefitWindow is δ for the Benefit policy (paper default 1000).
	BenefitWindow int
	Seed          int64
}

// Options tweaks setup construction.
type Options struct {
	// Scale multiplies the paper's 250k/250k event counts; tests and
	// benchmarks use small scales, `delta-bench -scale 1` the full one.
	Scale float64
	// NumObjects overrides the default 68-object partition.
	NumObjects int
	// NumUpdates overrides the scaled update count (Figure 8a sweeps
	// it); zero keeps the scaled default.
	NumUpdates int
	// CacheFrac overrides the default 0.3.
	CacheFrac float64
	Seed      int64
}

// NewSetup builds a survey and trace per the paper's defaults, modified
// by opts.
func NewSetup(opts Options) (*Setup, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.CacheFrac == 0 {
		opts.CacheFrac = 0.3
	}
	if opts.Seed == 0 {
		// The default trace, like the paper's single SDSS trace, is one
		// specific workload; seed 2 is the reference trace whose
		// measurements EXPERIMENTS.md records.
		opts.Seed = 2
	}
	scfg := catalog.DefaultConfig()
	scfg.Seed = opts.Seed
	if opts.NumObjects > 0 {
		scfg.NumObjects = opts.NumObjects
	}
	// Scaling a trace down must preserve the paper's regime: the ratio
	// of cumulative query traffic on a hot object to that object's load
	// cost decides whether caching can pay off. Scale the repository
	// with the event count.
	scfg.TotalSize = scaleBytes(scfg.TotalSize, opts.Scale, cost.MB)
	scfg.MinObjectSize = scaleBytes(scfg.MinObjectSize, opts.Scale, 64*cost.KB)
	scfg.MaxObjectSize = scaleBytes(scfg.MaxObjectSize, opts.Scale, cost.MB)
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.Seed = opts.Seed
	wcfg.NumQueries = int(math.Round(float64(wcfg.NumQueries) * opts.Scale))
	wcfg.NumUpdates = int(math.Round(float64(wcfg.NumUpdates) * opts.Scale))
	if opts.NumUpdates > 0 {
		wcfg.NumUpdates = opts.NumUpdates
	}
	gen, err := workload.NewGenerator(survey, wcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	events, err := gen.Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sampleEvery := len(events) / 100
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	// δ=1000 was tuned by the paper for 500k-event traces; keep the
	// window proportional when the trace is scaled down.
	window := int(math.Round(1000 * opts.Scale))
	if window < 32 {
		window = 32
	}
	return &Setup{
		Survey:        survey,
		Events:        events,
		CacheFrac:     opts.CacheFrac,
		SampleEvery:   sampleEvery,
		BenefitWindow: window,
		Seed:          opts.Seed,
	}, nil
}

func scaleBytes(b cost.Bytes, scale float64, floor cost.Bytes) cost.Bytes {
	scaled := cost.Bytes(float64(b) * scale)
	if scaled < floor {
		return floor
	}
	return scaled
}

// Capacity returns the absolute cache capacity for the setup.
func (s *Setup) Capacity() cost.Bytes {
	return cost.Bytes(float64(s.Survey.TotalSize()) * s.CacheFrac)
}

// PostWarmup returns each policy's traffic accumulated after the warm-up
// boundary (the paper plots Figure 7b only beyond event 250k of 500k,
// excluding warm-up costs). frac is the boundary as a fraction of the
// event sequence.
func PostWarmup(results map[string]*sim.Result, frac float64) map[string]cost.Bytes {
	out := make(map[string]cost.Bytes, len(results))
	for name, res := range results {
		out[name] = res.Total() - baselineAt(res, frac)
	}
	return out
}

func baselineAt(res *sim.Result, frac float64) cost.Bytes {
	if len(res.Series) == 0 {
		return 0
	}
	cut := res.Series[len(res.Series)-1].Seq
	boundary := int64(float64(cut) * frac)
	var base cost.Bytes
	for _, pt := range res.Series {
		if pt.Seq > boundary {
			break
		}
		base = pt.Total
	}
	return base
}

// Policies returns fresh instances of the five policies of Section 6, in
// the paper's presentation order.
func (s *Setup) Policies() []core.Policy {
	return []core.Policy{
		core.NewNoCache(),
		core.NewReplica(),
		core.NewBenefit(core.BenefitConfig{Window: s.BenefitWindow, Alpha: 0.3, LoadAmortization: 16}),
		core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}),
		core.NewSOptimal(s.Events),
	}
}

// RunAll replays the trace through every policy and returns results
// keyed by policy name. It fails on any constraint violation: the
// experiments must be trustworthy.
func (s *Setup) RunAll() (map[string]*sim.Result, error) {
	results := make(map[string]*sim.Result, 5)
	for _, p := range s.Policies() {
		res, err := sim.Run(p, s.Survey.Objects(), s.Events, sim.Config{
			CacheCapacity: s.Capacity(),
			SampleEvery:   s.SampleEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.Name(), err)
		}
		if len(res.Violations) > 0 {
			return nil, fmt.Errorf("experiments: %s violated constraints: %s",
				p.Name(), res.Violations[0])
		}
		results[res.Policy] = res
	}
	return results, nil
}

// RunOne replays the trace through a single policy.
func (s *Setup) RunOne(p core.Policy) (*sim.Result, error) {
	res, err := sim.Run(p, s.Survey.Objects(), s.Events, sim.Config{
		CacheCapacity: s.Capacity(),
		SampleEvery:   s.SampleEvery,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("experiments: %s violated constraints: %s",
			p.Name(), res.Violations[0])
	}
	return res, nil
}

// PolicyNames is the canonical ordering for tables.
var PolicyNames = []string{"NoCache", "Replica", "Benefit", "VCover", "SOptimal"}

// Fig7a writes the Figure 7(a) scatter (object-ID incidence along the
// event sequence) as CSV.
func Fig7a(s *Setup, w io.Writer) error {
	k := len(s.Events) / 4000
	if k < 1 {
		k = 1
	}
	return trace.ScatterCSV(w, s.Events, k)
}

// Fig7bRow is one sample of the cumulative-traffic comparison.
type Fig7bRow struct {
	Seq    int64
	Totals map[string]cost.Bytes
}

// Fig7b produces the cumulative traffic cost along the event sequence
// for all five policies (Figure 7b).
func Fig7b(s *Setup) ([]Fig7bRow, map[string]*sim.Result, error) {
	results, err := s.RunAll()
	if err != nil {
		return nil, nil, err
	}
	// All series share sampling points by construction.
	ref := results["NoCache"].Series
	rows := make([]Fig7bRow, len(ref))
	for i := range ref {
		rows[i] = Fig7bRow{Seq: ref[i].Seq, Totals: make(map[string]cost.Bytes, 5)}
		for name, res := range results {
			if i < len(res.Series) {
				rows[i].Totals[name] = res.Series[i].Total
			}
		}
	}
	return rows, results, nil
}

// Fig8aRow is the final traffic cost of every policy at one update
// count, both over the whole trace and post-warmup (the regime the
// paper plots).
type Fig8aRow struct {
	NumUpdates int
	Totals     map[string]cost.Bytes
	PostTotals map[string]cost.Bytes
}

// Fig8a varies the number of updates with the query workload fixed
// (Figure 8a). Update counts are given in absolute numbers already
// scaled by the caller.
func Fig8a(opts Options, updateCounts []int) ([]Fig8aRow, error) {
	rows := make([]Fig8aRow, 0, len(updateCounts))
	for _, n := range updateCounts {
		o := opts
		o.NumUpdates = n
		s, err := NewSetup(o)
		if err != nil {
			return nil, err
		}
		results, err := s.RunAll()
		if err != nil {
			return nil, err
		}
		row := Fig8aRow{
			NumUpdates: n,
			Totals:     make(map[string]cost.Bytes, 5),
			PostTotals: PostWarmup(results, 0.5),
		}
		for name, res := range results {
			row.Totals[name] = res.Total()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8bRow is VCover's cumulative traffic series at one object
// granularity.
type Fig8bRow struct {
	NumObjects int
	Series     []sim.Point
	Final      cost.Bytes
}

// Fig8b runs VCover at each object-set granularity (Figure 8b; paper
// values 10..532).
func Fig8b(opts Options, objectCounts []int) ([]Fig8bRow, error) {
	rows := make([]Fig8bRow, 0, len(objectCounts))
	for _, n := range objectCounts {
		o := opts
		o.NumObjects = n
		s, err := NewSetup(o)
		if err != nil {
			return nil, err
		}
		res, err := s.RunOne(core.NewVCover(core.VCoverConfig{Seed: s.Seed, GDSF: true}))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8bRow{NumObjects: n, Series: res.Series, Final: res.Total()})
	}
	return rows, nil
}

// CacheSizeRow is the final traffic of the capacity-respecting policies
// at one cache fraction, full-trace and post-warmup.
type CacheSizeRow struct {
	CacheFrac  float64
	Totals     map[string]cost.Bytes
	PostTotals map[string]cost.Bytes
}

// CacheSize sweeps the cache size (the paper's headline: VCover halves
// traffic with a cache one-fifth of the server).
func CacheSize(opts Options, fracs []float64) ([]CacheSizeRow, error) {
	rows := make([]CacheSizeRow, 0, len(fracs))
	for _, f := range fracs {
		o := opts
		o.CacheFrac = f
		s, err := NewSetup(o)
		if err != nil {
			return nil, err
		}
		results, err := s.RunAll()
		if err != nil {
			return nil, err
		}
		row := CacheSizeRow{
			CacheFrac:  f,
			Totals:     make(map[string]cost.Bytes, 5),
			PostTotals: PostWarmup(results, 0.5),
		}
		for name, res := range results {
			row.Totals[name] = res.Total()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WindowRow is Benefit's final traffic at one window size δ.
type WindowRow struct {
	Window int
	Total  cost.Bytes
}

// BenefitWindowSweep varies δ (the paper chose 1000 by sweeping).
func BenefitWindowSweep(opts Options, windows []int) ([]WindowRow, error) {
	s, err := NewSetup(opts)
	if err != nil {
		return nil, err
	}
	rows := make([]WindowRow, 0, len(windows))
	for _, w := range windows {
		res, err := s.RunOne(core.NewBenefit(core.BenefitConfig{Window: w, Alpha: 0.3, LoadAmortization: 16}))
		if err != nil {
			return nil, err
		}
		rows = append(rows, WindowRow{Window: w, Total: res.Total()})
	}
	return rows, nil
}

// WarmupRow reports the warm-up length of VCover for one seed: the
// number of events before the cache first reaches half its final
// occupancy.
type WarmupRow struct {
	Seed         int64
	WarmupEvents int64
	FinalUsed    cost.Bytes
}

// Warmup characterizes the warm-up period across seeds (Section 6.1
// reports 150k–300k events on the paper's traces).
func Warmup(opts Options, seeds []int64) ([]WarmupRow, error) {
	rows := make([]WarmupRow, 0, len(seeds))
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		s, err := NewSetup(o)
		if err != nil {
			return nil, err
		}
		vc := core.NewVCover(core.VCoverConfig{Seed: seed, GDSF: true})
		res, err := s.RunOne(vc)
		if err != nil {
			return nil, err
		}
		// Loads are visible in the series as ObjectLoad traffic; find
		// the first sample with at least half the final load traffic.
		finalLoads := res.Ledger.ObjectLoad
		var warm int64
		for _, pt := range res.Series {
			if pt.ObjectLoad*2 >= finalLoads {
				warm = pt.Seq
				break
			}
		}
		rows = append(rows, WarmupRow{Seed: seed, WarmupEvents: warm, FinalUsed: res.MaxUsed})
	}
	return rows, nil
}
