package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// formatFloat renders a sample value the way Prometheus text format
// expects: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition renders every registered metric in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its samples. A nil registry writes nothing —
// still a valid (empty) exposition.
func (r *Registry) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		name, help, typ := m.meta()
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		for _, s := range m.samples() {
			fmt.Fprintf(bw, "%s %s\n", s.Name, formatFloat(s.Value))
		}
	}
	return bw.Flush()
}

// Handler serves the exposition at GET (anything, really — scrapers
// only GET). Safe on a nil registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteExposition(w)
	})
}

// Family is one parsed metric family: its declared type and every
// sample belonging to it, keyed by the full sample name including any
// label suffix.
type Family struct {
	Type    string
	Samples map[string]float64
}

// ParseExposition parses and validates Prometheus text exposition
// format. It enforces what a scraper depends on — every sample belongs
// to a declared family, names are legal, values parse, histogram
// bucket counts are cumulative and consistent with _count — and
// returns the families keyed by base name. The CI smoke test and the
// obs test suite both run scraped /metrics output through it, so an
// unparseable exposition fails the build, not the fleet's Prometheus.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", line, text)
			}
			name, typ := fields[2], fields[3]
			if !validMetricName(name) {
				return nil, fmt.Errorf("obs: line %d: invalid metric name %q", line, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", line, typ)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", line, name)
			}
			fams[name] = &Family{Type: typ, Samples: make(map[string]float64)}
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(text, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", line, text)
		}
		sample, valStr := text[:sp], text[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", line, valStr, err)
		}
		base := sample
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				return nil, fmt.Errorf("obs: line %d: unterminated labels in %q", line, sample)
			}
			base = base[:i]
		}
		fam := familyFor(fams, base)
		if fam == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q precedes its TYPE line", line, sample)
		}
		if !validMetricName(base) {
			return nil, fmt.Errorf("obs: line %d: invalid sample name %q", line, base)
		}
		if _, dup := fam.Samples[sample]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate sample %q", line, sample)
		}
		fam.Samples[sample] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, fam := range fams {
		if fam.Type == "histogram" {
			if err := checkHistogram(name, fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample's family, stripping the histogram/summary
// suffixes its samples carry.
func familyFor(fams map[string]*Family, base string) *Family {
	if f, ok := fams[base]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(base, suffix) {
			if f, ok := fams[strings.TrimSuffix(base, suffix)]; ok {
				return f
			}
		}
	}
	return nil
}

// checkHistogram validates a histogram family's invariants: cumulative
// non-decreasing bucket counts and a +Inf bucket equal to _count.
func checkHistogram(name string, fam *Family) error {
	type bucket struct {
		le  float64
		val float64
		inf bool
	}
	var buckets []bucket
	for sample, val := range fam.Samples {
		if !strings.HasPrefix(sample, name+"_bucket{") {
			continue
		}
		rest := strings.TrimPrefix(sample, name+"_bucket{")
		rest = strings.TrimSuffix(rest, "}")
		le, ok := strings.CutPrefix(rest, `le="`)
		if !ok {
			return fmt.Errorf("obs: histogram %s bucket missing le label: %q", name, sample)
		}
		le = strings.TrimSuffix(le, `"`)
		b := bucket{val: val}
		if le == "+Inf" {
			b.inf = true
		} else {
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("obs: histogram %s bad le %q: %v", name, le, err)
			}
			b.le = f
		}
		buckets = append(buckets, b)
	}
	if len(buckets) == 0 {
		return fmt.Errorf("obs: histogram %s has no buckets", name)
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].inf != buckets[j].inf {
			return buckets[j].inf
		}
		return buckets[i].le < buckets[j].le
	})
	prev := 0.0
	for _, b := range buckets {
		if b.val < prev {
			return fmt.Errorf("obs: histogram %s bucket counts not cumulative", name)
		}
		prev = b.val
	}
	if !buckets[len(buckets)-1].inf {
		return fmt.Errorf("obs: histogram %s missing +Inf bucket", name)
	}
	count, ok := fam.Samples[name+"_count"]
	if !ok {
		return fmt.Errorf("obs: histogram %s missing _count", name)
	}
	if buckets[len(buckets)-1].val != count {
		return fmt.Errorf("obs: histogram %s +Inf bucket %v != count %v",
			name, buckets[len(buckets)-1].val, count)
	}
	if _, ok := fam.Samples[name+"_sum"]; !ok {
		return fmt.Errorf("obs: histogram %s missing _sum", name)
	}
	return nil
}

// validMetricName checks the Prometheus metric name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
