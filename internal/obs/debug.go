package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a node's debug HTTP endpoint: /metrics, /healthz,
// /debug/traces, and the net/http/pprof handlers, one listener per
// node. It is deliberately separate from the node's wire-protocol
// listener so operators can firewall it independently.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// debug mux in a background goroutine. reg and ring may be nil — the
// endpoints still answer, with an empty exposition and an empty trace
// list.
func ServeDebug(addr string, reg *Registry, ring *TraceRing) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/debug/traces", ring.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the bound address (useful with port 0).
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the debug server down, bounding the drain so a stuck
// scrape cannot wedge node shutdown. Nil-safe.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
