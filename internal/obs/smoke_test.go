package obs_test

// External test package: boots a real repository node with a debug
// endpoint and scrapes it over HTTP, so the exposition that ships is
// the exposition that parses. Lives outside package obs because the
// server imports obs.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
	"github.com/deltacache/delta/internal/server"
)

// TestMetricsExpositionSmoke is the in-process twin of the CI metrics
// smoke: start a node with -metrics-addr, serve it a query, scrape
// /metrics, and fail on anything ParseExposition rejects.
func TestMetricsExpositionSmoke(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 8
	scfg.TotalSize = 8 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 2 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{
		Survey:      survey,
		Scale:       netproto.DefaultScale(),
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if repo.DebugAddr() == "" {
		t.Fatal("repository started with MetricsAddr but reports no debug address")
	}

	// Serve one query so the query-path counters and histograms have
	// something to say.
	cl, err := client.Dial(repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	obj := survey.Objects()[0].ID
	if _, err := cl.Query(t.Context(), model.Query{
		Objects:   []model.ObjectID{obj},
		Cost:      cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", repo.DebugAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, body)
	}

	// Every StatsMsg-backed family plus the node's own histograms must
	// be present in a single scrape.
	for _, name := range []string{
		"delta_queries_total",
		"delta_queries_at_cache_total",
		"delta_queries_shipped_total",
		"delta_dropped_invalidations_total",
		"delta_deduped_loads_total",
		"delta_migrated_in_total",
		"delta_migrated_out_total",
		"delta_objects_born_total",
		"delta_cover_cache_hits_total",
		"delta_cover_cache_misses_total",
		"delta_ledger_query_ship_bytes_total",
		"delta_ledger_update_ship_bytes_total",
		"delta_ledger_object_load_bytes_total",
		"delta_ledger_query_ships_total",
		"delta_ledger_update_ships_total",
		"delta_ledger_object_loads_total",
		"delta_journal_records_total",
		"delta_cached_objects",
		"delta_snapshot_age_seconds",
		"delta_recovered_warm",
		"delta_repo_query_seconds",
		"delta_repo_load_seconds",
		"delta_journal_fsync_seconds",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("scrape missing family %q", name)
		}
	}
	if f := families["delta_queries_total"]; f.Samples["delta_queries_total"] < 1 {
		t.Errorf("delta_queries_total = %v after a served query, want >= 1",
			f.Samples["delta_queries_total"])
	}
	if f := families["delta_repo_query_seconds"]; f.Samples["delta_repo_query_seconds_count"] < 1 {
		t.Errorf("delta_repo_query_seconds_count = %v after a served query, want >= 1",
			f.Samples["delta_repo_query_seconds_count"])
	}

	// /healthz answers on the same mux — the liveness probe CI leans on.
	hresp, err := http.Get(fmt.Sprintf("http://%s/healthz", repo.DebugAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", hresp.StatusCode)
	}
}
