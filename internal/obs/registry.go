// Package obs is Delta's dependency-free observability kit: a metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms),
// Prometheus text-format exposition with a matching parser, a bounded
// in-memory ring of per-query fan-out traces, and the per-node debug
// HTTP server that exposes all of it (/metrics, /healthz,
// /debug/traces, /debug/pprof). Every node type — repository,
// middleware cache shard, cluster router — threads one Registry and
// one TraceRing through its hot paths.
//
// Instrumentation is nil-tolerant end to end: every mutating method
// (Counter.Add, Histogram.Observe, TraceRing.Add, ...) is a no-op on a
// nil receiver, and a nil *Registry hands out nil instruments. A node
// built with observability disabled therefore carries nil obs fields
// and its instrumented call sites need no branches — which is also
// what BenchmarkObsOverhead measures the cost of.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout: roughly
// exponential from 100µs to 60s, wide enough for an in-process
// loopback round trip and a struggling wide-area scatter alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry holds a node's metrics in registration order. All methods
// are safe for concurrent use; a nil *Registry hands out nil
// instruments (whose methods no-op), so disabling observability is
// just leaving the registry nil.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// metric is anything the registry can expose.
type metric interface {
	meta() (name, help, typ string)
	samples() []Sample
}

// Sample is one exposition line: a metric name (with any label suffix
// already rendered, e.g. `delta_x_bucket{le="0.5"}`) and its value.
type Sample struct {
	Name  string
	Value float64
}

// register appends m under its name, panicking on duplicates (a
// duplicate registration is a programming error, and Prometheus
// exposition with duplicate families is invalid).
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// snapshot copies the metric list for iteration outside the lock.
func (r *Registry) snapshot() []metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]metric(nil), r.metrics...)
}

// Counter is a monotonically increasing value.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers a counter. Nil registry returns nil.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) samples() []Sample {
	return []Sample{{Name: c.name, Value: float64(c.v.Load())}}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge. Nil registry returns nil.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set replaces the gauge's value. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) samples() []Sample {
	return []Sample{{Name: g.name, Value: float64(g.v.Load())}}
}

// funcMetric exposes a value computed at scrape time. typ is "gauge"
// or "counter" (a counter-typed func mirrors a counter kept elsewhere,
// e.g. a StatsMsg field).
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

// NewGaugeFunc registers a scrape-time gauge. Nil registry no-ops.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// NewCounterFunc registers a scrape-time view of a counter maintained
// elsewhere. Nil registry no-ops.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

func (f *funcMetric) meta() (string, string, string) { return f.name, f.help, f.typ }
func (f *funcMetric) samples() []Sample {
	return []Sample{{Name: f.name, Value: f.fn()}}
}

// Histogram is a fixed-bucket latency histogram with cumulative bucket
// counts, a sum, and quantile extraction. Observations are durations;
// bounds are seconds.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count      atomic.Int64
	sumNanos   atomic.Int64
}

// NewHistogram registers a histogram over the given ascending bucket
// bounds in seconds (nil bounds selects DefBuckets). Nil registry
// returns nil.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// Observe records one duration. No-op on nil, so instrumented call
// sites need no obs-enabled branch.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count reports total observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile extracts an approximate quantile (0 < p < 1) in seconds by
// linear interpolation inside the bucket holding the target rank. The
// open-ended +Inf bucket reports the highest finite bound (the usual
// Prometheus histogram_quantile clamp). Returns 0 with no
// observations or a nil receiver.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) samples() []Sample {
	out := make([]Sample, 0, len(h.counts)+2)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		out = append(out, Sample{
			Name:  fmt.Sprintf("%s_bucket{le=%q}", h.name, le),
			Value: float64(cum),
		})
	}
	out = append(out,
		Sample{Name: h.name + "_sum", Value: time.Duration(h.sumNanos.Load()).Seconds()},
		Sample{Name: h.name + "_count", Value: float64(h.count.Load())},
	)
	return out
}
