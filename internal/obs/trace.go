package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/deltacache/delta/internal/netproto"
)

// DefaultTraceRing is the per-node trace ring capacity: big enough to
// hold a debugging session's worth of traced queries, small enough
// that an always-tracing client cannot balloon a node's memory.
const DefaultTraceRing = 256

// Trace is one traced query's record in a node's ring: the spans that
// node observed (for a router, the whole fan-out; for a shard, its own
// fragment work).
type Trace struct {
	ID    uint64               `json:"id"`
	Start time.Time            `json:"start"`
	Spans []netproto.TraceSpan `json:"spans"`
}

// TraceRing is a bounded, concurrency-safe ring of recent traces,
// newest overwriting oldest. A nil ring ignores Adds and snapshots
// empty, so tracing piggybacks on the same nil-disable contract as the
// metrics registry.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	n    int
}

// NewTraceRing builds a ring holding up to capacity traces
// (DefaultTraceRing when capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &TraceRing{buf: make([]Trace, capacity)}
}

// Add records one traced query's spans (copied, so callers may reuse
// the slice). No-op on a nil ring or an untraced (zero) ID.
func (r *TraceRing) Add(id uint64, spans []netproto.TraceSpan) {
	if r == nil || id == 0 {
		return
	}
	t := Trace{ID: id, Start: time.Now(), Spans: append([]netproto.TraceSpan(nil), spans...)}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the ring's traces, newest first. Empty on nil.
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Get returns the newest trace recorded under id.
func (r *TraceRing) Get(id uint64) (Trace, bool) {
	for _, t := range r.Snapshot() {
		if t.ID == id {
			return t, true
		}
	}
	return Trace{}, false
}

// Handler serves the ring as JSON at /debug/traces: the whole ring
// newest-first, or one trace with ?id=N (404 when absent). Safe on a
// nil ring (always an empty list).
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			t, ok := r.Get(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(t)
			return
		}
		traces := r.Snapshot()
		if traces == nil {
			traces = []Trace{}
		}
		json.NewEncoder(w).Encode(traces)
	})
}

// spanDepth maps a span name to its nesting depth in the fan-out tree:
// the router scatter at the root, fragment/cache work one level in,
// and repository work (shipped queries, object loads) under the
// fragment that triggered it.
func spanDepth(name string) int {
	switch name {
	case "router":
		return 0
	case "fragment", "cache":
		return 1
	case "repository", "load":
		return 2
	default:
		return 1
	}
}

// FormatSpans renders a traced query's spans as an indented fan-out
// tree, in span order, nesting by span kind. Queries that never
// crossed a router (client → single cache) shift the whole tree one
// level left.
func FormatSpans(spans []netproto.TraceSpan) string {
	shift := 1
	for _, s := range spans {
		if s.Name == "router" {
			shift = 0
			break
		}
	}
	var b strings.Builder
	for _, s := range spans {
		depth := spanDepth(s.Name) - shift
		if depth < 0 {
			depth = 0
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		if s.Shard >= 0 {
			fmt.Fprintf(&b, " shard=%d", s.Shard)
		}
		if s.Name == "router" || s.Epoch > 0 {
			// A fresh cluster routes at epoch 0; the router span still
			// names it so the tree always shows which routing table won.
			fmt.Fprintf(&b, " epoch=%d", s.Epoch)
		}
		if s.Fragments > 0 {
			fmt.Fprintf(&b, " fragments=%d", s.Fragments)
		}
		if s.Objects > 0 {
			fmt.Fprintf(&b, " objects=%d", s.Objects)
		}
		if s.Source != "" {
			fmt.Fprintf(&b, " source=%s", s.Source)
		}
		if s.Detail != "" {
			fmt.Fprintf(&b, " %s", s.Detail)
		}
		fmt.Fprintf(&b, " elapsed=%s", s.Elapsed)
		if s.Node != "" {
			fmt.Fprintf(&b, " node=%s", s.Node)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
