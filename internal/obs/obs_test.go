package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// TestNilRegistryContract pins the nil-disable contract end to end: a
// nil registry hands out nil instruments, every mutating method no-ops,
// and the exposition is valid (empty).
func TestNilRegistryContract(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x_total", "")
	g := r.NewGauge("x", "")
	h := r.NewHistogram("x_seconds", "", nil)
	r.NewCounterFunc("y_total", "", func() float64 { return 1 })
	r.NewGaugeFunc("y", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(7)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatalf("nil exposition: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry exposed %q", b.String())
	}
	var ring *TraceRing
	ring.Add(1, nil)
	if got := ring.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v", got)
	}
	var ds *DebugServer
	if ds.Addr() != "" || ds.Close() != nil {
		t.Fatal("nil debug server misbehaved")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "help")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.NewGauge("g", "help")
	g.Set(9)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	r.NewCounter("dup_total", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	// 50 obs in (0, 10ms], 40 in (10ms, 100ms], 10 in (100ms, 1s].
	for i := 0; i < 50; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		h.Observe(50 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want in (0, 0.01]", p50)
	}
	if p90 := h.Quantile(0.90); p90 <= 0.01 || p90 > 0.1 {
		t.Errorf("p90 = %v, want in (0.01, 0.1]", p90)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want in (0.1, 1]", p99)
	}
	// An exact boundary observation lands in the bucket it bounds (le
	// semantics), and an over-the-top observation clamps to the highest
	// finite bound.
	h.Observe(10 * time.Millisecond)
	h.Observe(time.Hour)
	if q := h.Quantile(0.9999); q != 1 {
		t.Errorf("+Inf quantile = %v, want clamp to 1", q)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("d_seconds", "", nil)
	h.Observe(time.Millisecond)
	fams := mustParse(t, r)
	fam := fams["d_seconds"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("d_seconds family = %+v", fam)
	}
	// One bucket line per DefBuckets bound, plus +Inf, _sum, _count.
	if got, want := len(fam.Samples), len(DefBuckets)+3; got != want {
		t.Fatalf("histogram sample count = %d, want %d", got, want)
	}
}

func TestUnsortedBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewRegistry().NewHistogram("bad_seconds", "", []float64{1, 0.5})
}

func mustParse(t *testing.T, r *Registry) map[string]*Family {
	t.Helper()
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse exposition:\n%s\n%v", b.String(), err)
	}
	return fams
}

// TestExpositionRoundTrip renders a registry holding every instrument
// kind and re-parses it: every family and value must survive, and the
// histogram must satisfy the parser's invariants.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rt_ops_total", "ops so far")
	c.Add(42)
	g := r.NewGauge("rt_resident", "resident objects")
	g.Set(-3)
	r.NewCounterFunc("rt_fn_total", "computed counter", func() float64 { return 7.5 })
	r.NewGaugeFunc("rt_fn", "computed gauge", func() float64 { return 0.25 })
	h := r.NewHistogram("rt_seconds", "latency", []float64{0.5, 2})
	h.Observe(time.Second)
	h.Observe(3 * time.Second)

	fams := mustParse(t, r)
	checks := []struct {
		family, sample string
		typ            string
		want           float64
	}{
		{"rt_ops_total", "rt_ops_total", "counter", 42},
		{"rt_resident", "rt_resident", "gauge", -3},
		{"rt_fn_total", "rt_fn_total", "counter", 7.5},
		{"rt_fn", "rt_fn", "gauge", 0.25},
		{"rt_seconds", `rt_seconds_bucket{le="0.5"}`, "histogram", 0},
		{"rt_seconds", `rt_seconds_bucket{le="2"}`, "histogram", 1},
		{"rt_seconds", `rt_seconds_bucket{le="+Inf"}`, "histogram", 2},
		{"rt_seconds", "rt_seconds_count", "histogram", 2},
		{"rt_seconds", "rt_seconds_sum", "histogram", 4},
	}
	for _, ck := range checks {
		fam := fams[ck.family]
		if fam == nil {
			t.Fatalf("family %s missing", ck.family)
		}
		if fam.Type != ck.typ {
			t.Errorf("family %s type = %s, want %s", ck.family, fam.Type, ck.typ)
		}
		if got, ok := fam.Samples[ck.sample]; !ok || got != ck.want {
			t.Errorf("sample %s = %v (present=%v), want %v", ck.sample, got, ok, ck.want)
		}
	}
}

// TestParseExpositionRejects feeds the parser the malformed shapes it
// exists to catch.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":      "a_total 1\n# TYPE a_total counter\n",
		"duplicate TYPE":          "# TYPE a counter\n# TYPE a counter\na 1\n",
		"bad metric name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad type":                "# TYPE a teapot\na 1\n",
		"bad value":               "# TYPE a counter\na one\n",
		"duplicate sample":        "# TYPE a counter\na 1\na 2\n",
		"unterminated labels":     "# TYPE a counter\na{x=\"1\" 2\n",
		"histogram no +Inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram not cumul":     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram missing sum":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"histogram inf vs count":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"histogram missing count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parser accepted %q", name, input)
		}
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3)
	ring.Add(0, []netproto.TraceSpan{{Name: "router"}}) // untraced: ignored
	for id := uint64(1); id <= 5; id++ {
		ring.Add(id, []netproto.TraceSpan{{Name: "cache", Objects: int(id)}})
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(snap))
	}
	// Newest first, oldest two evicted.
	for i, want := range []uint64{5, 4, 3} {
		if snap[i].ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, snap[i].ID, want)
		}
	}
	if _, ok := ring.Get(1); ok {
		t.Error("evicted trace still retrievable")
	}
	got, ok := ring.Get(4)
	if !ok || len(got.Spans) != 1 || got.Spans[0].Objects != 4 {
		t.Fatalf("Get(4) = %+v, %v", got, ok)
	}
	// The ring copies spans: mutating the caller's slice after Add must
	// not reach the stored trace.
	spans := []netproto.TraceSpan{{Name: "cache"}}
	ring.Add(9, spans)
	spans[0].Name = "mutated"
	if got, _ := ring.Get(9); got.Spans[0].Name != "cache" {
		t.Error("ring aliased the caller's span slice")
	}
}

func TestFormatSpans(t *testing.T) {
	spans := []netproto.TraceSpan{
		{Name: "router", Node: "r:1", Shard: -1, Epoch: 0, Fragments: 2, Objects: 3,
			Source: "mixed", Detail: "cover-cache=hit", Elapsed: 2 * time.Millisecond},
		{Name: "fragment", Node: "s:1", Shard: 0, Objects: 2, Source: "cache",
			Elapsed: time.Millisecond},
		{Name: "fragment", Node: "s:2", Shard: 1, Objects: 1, Source: "repository",
			Elapsed: time.Millisecond},
		{Name: "repository", Node: "repo:1", Shard: -1, Objects: 1,
			Source: "repository", Elapsed: 500 * time.Microsecond},
	}
	out := FormatSpans(spans)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	// Router at the root — epoch always shown, even epoch 0.
	if !strings.HasPrefix(lines[0], "router ") || !strings.Contains(lines[0], "epoch=0") {
		t.Errorf("router line = %q", lines[0])
	}
	if !strings.Contains(lines[0], "fragments=2") || !strings.Contains(lines[0], "cover-cache=hit") {
		t.Errorf("router line missing scatter facts: %q", lines[0])
	}
	// Fragments indented one level, repository two.
	if !strings.HasPrefix(lines[1], "  fragment shard=0") {
		t.Errorf("fragment line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "    repository") {
		t.Errorf("repository line = %q", lines[3])
	}

	// Without a router span the whole tree shifts left.
	solo := FormatSpans(spans[1:2])
	if !strings.HasPrefix(solo, "fragment ") {
		t.Errorf("routerless tree not shifted: %q", solo)
	}
}

// TestDebugServer boots the real debug listener and exercises every
// mounted endpoint over HTTP.
func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dbg_total", "x").Add(3)
	ring := NewTraceRing(4)
	ring.Add(11, []netproto.TraceSpan{{Name: "cache", Shard: -1}})
	ds, err := ServeDebug("127.0.0.1:0", r, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	fams, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	if fams["dbg_total"] == nil || fams["dbg_total"].Samples["dbg_total"] != 3 {
		t.Fatalf("scrape missing dbg_total: %v", fams)
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	_, body = get("/debug/traces")
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/traces JSON: %v (%q)", err, body)
	}
	if len(traces) != 1 || traces[0].ID != 11 {
		t.Fatalf("/debug/traces = %+v", traces)
	}
	_, body = get("/debug/traces?id=11")
	var one Trace
	if err := json.Unmarshal([]byte(body), &one); err != nil || one.ID != 11 {
		t.Fatalf("/debug/traces?id=11 = %q (%v)", body, err)
	}
	if resp, _ := get("/debug/traces?id=999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing trace returned %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/debug/traces?id=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace id returned %d, want 400", resp.StatusCode)
	}

	if resp, _ := get("/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if resp, _ := get("/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("debug server still answering after Close")
	}
}

// TestRegisterStats pins the StatsMsg bridge: every field surfaces
// under its metric name, the fetch is memoized across one scrape, and
// a failing fetch serves the last good snapshot.
func TestRegisterStats(t *testing.T) {
	fetches := 0
	fail := false
	r := NewRegistry()
	RegisterStats(r, func() (netproto.StatsMsg, error) {
		fetches++
		if fail {
			return netproto.StatsMsg{}, fmt.Errorf("probe down")
		}
		return netproto.StatsMsg{
			Queries: 10, AtCache: 6, Shipped: 4, ObjectsBorn: 2,
			Cached:        []model.ObjectID{1, 2, 3},
			SnapshotAge:   2 * time.Second,
			RecoveredWarm: 5,
		}, nil
	})

	fams := mustParse(t, r)
	if fetches != 1 {
		t.Fatalf("one scrape cost %d fetches, want 1 (memoization broken)", fetches)
	}
	expect := map[string]float64{
		"delta_queries_total":          10,
		"delta_queries_at_cache_total": 6,
		"delta_queries_shipped_total":  4,
		"delta_objects_born_total":     2,
		"delta_cached_objects":         3,
		"delta_snapshot_age_seconds":   2,
		"delta_recovered_warm":         5,
	}
	for name, want := range expect {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %s missing", name)
		}
		if got := fam.Samples[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	// A failing fetch after the TTL serves the last good snapshot.
	fail = true
	time.Sleep(statsTTL + 50*time.Millisecond)
	fams = mustParse(t, r)
	if got := fams["delta_queries_total"].Samples["delta_queries_total"]; got != 10 {
		t.Errorf("failed fetch dropped the last snapshot: queries = %v, want 10", got)
	}
	if fetches < 2 {
		t.Errorf("TTL expiry did not re-fetch (fetches = %d)", fetches)
	}
}
