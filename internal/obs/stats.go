package obs

import (
	"sync"
	"time"

	"github.com/deltacache/delta/internal/netproto"
)

// statsTTL memoizes the StatsMsg fetch across one scrape: a Prometheus
// scrape reads ~20 families registered here, and without memoization
// each would re-fetch the snapshot — on a router that means probing
// every shard twenty times per scrape.
const statsTTL = time.Second

// RegisterStats exposes every StatsMsg field as a metric, sourced from
// fetch at scrape time. fetch is memoized for statsTTL; a failing
// fetch serves the last good snapshot (scrapes should degrade, not
// 500, when a shard probe times out). Nil registry no-ops.
//
// Counter-natured fields (queries, hits, migrations, births, ...)
// expose as counters; instantaneous ones (resident set size, snapshot
// age, journal backlog) as gauges.
func RegisterStats(r *Registry, fetch func() (netproto.StatsMsg, error)) {
	if r == nil {
		return
	}
	var mu sync.Mutex
	var last netproto.StatsMsg
	var at time.Time
	get := func() netproto.StatsMsg {
		mu.Lock()
		defer mu.Unlock()
		if at.IsZero() || time.Since(at) > statsTTL {
			if s, err := fetch(); err == nil {
				last = s
			}
			at = time.Now()
		}
		return last
	}

	counter := func(name, help string, f func(*netproto.StatsMsg) float64) {
		r.NewCounterFunc(name, help, func() float64 { s := get(); return f(&s) })
	}
	gauge := func(name, help string, f func(*netproto.StatsMsg) float64) {
		r.NewGaugeFunc(name, help, func() float64 { s := get(); return f(&s) })
	}

	counter("delta_queries_total", "Queries handled by this node.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Queries) })
	counter("delta_queries_at_cache_total", "Queries answered from local cache state (hits).",
		func(s *netproto.StatsMsg) float64 { return float64(s.AtCache) })
	counter("delta_queries_shipped_total", "Queries shipped upstream to the repository.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Shipped) })
	counter("delta_dropped_invalidations_total", "Invalidation notices discarded rather than applied.",
		func(s *netproto.StatsMsg) float64 { return float64(s.DroppedInvalidations) })
	counter("delta_deduped_loads_total", "Object loads collapsed into an in-flight load (singleflight).",
		func(s *netproto.StatsMsg) float64 { return float64(s.DedupedLoads) })
	counter("delta_migrated_in_total", "Cached objects adopted warm from sibling shards.",
		func(s *netproto.StatsMsg) float64 { return float64(s.MigratedIn) })
	counter("delta_migrated_out_total", "Cached objects streamed warm to sibling shards.",
		func(s *netproto.StatsMsg) float64 { return float64(s.MigratedOut) })
	counter("delta_objects_born_total", "Newly published objects admitted into this node's universe.",
		func(s *netproto.StatsMsg) float64 { return float64(s.ObjectsBorn) })
	counter("delta_cover_cache_hits_total", "Sky-region resolutions answered from the HTM cover cache.",
		func(s *netproto.StatsMsg) float64 { return float64(s.CoverCacheHits) })
	counter("delta_cover_cache_misses_total", "Sky-region resolutions recomputed via partition cover.",
		func(s *netproto.StatsMsg) float64 { return float64(s.CoverCacheMisses) })
	counter("delta_ledger_query_ship_bytes_total", "Logical bytes charged to query shipping.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.QueryShip) })
	counter("delta_ledger_update_ship_bytes_total", "Logical bytes charged to update shipping.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.UpdateShip) })
	counter("delta_ledger_object_load_bytes_total", "Logical bytes charged to object loading.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.ObjectLoad) })
	counter("delta_ledger_query_ships_total", "Query-shipping transfers charged to the ledger.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.QueryShips) })
	counter("delta_ledger_update_ships_total", "Update-shipping transfers charged to the ledger.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.UpdateShips) })
	counter("delta_ledger_object_loads_total", "Object-load transfers charged to the ledger.",
		func(s *netproto.StatsMsg) float64 { return float64(s.Ledger.ObjectLoads) })
	counter("delta_journal_records_total", "Durability journal records appended since the last snapshot.",
		func(s *netproto.StatsMsg) float64 { return float64(s.JournalRecords) })
	gauge("delta_cached_objects", "Objects currently resident in this node's cache.",
		func(s *netproto.StatsMsg) float64 { return float64(len(s.Cached)) })
	gauge("delta_snapshot_age_seconds", "Age of the newest durability snapshot (0 when persistence is off).",
		func(s *netproto.StatsMsg) float64 { return s.SnapshotAge.Seconds() })
	gauge("delta_recovered_warm", "Residents re-adopted from disk at the last startup.",
		func(s *netproto.StatsMsg) float64 { return float64(s.RecoveredWarm) })
}
