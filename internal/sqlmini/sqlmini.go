// Package sqlmini implements the restricted SQL dialect Delta's clients
// use — the shapes that dominate the SkyServer workload the paper
// replays (cone searches, box range scans, selections, counts):
//
//	SELECT objID, ra, dec FROM PhotoObj
//	  WHERE ra BETWEEN 180 AND 185 AND dec BETWEEN -2 AND 2 AND r < 21
//	SELECT COUNT(*) FROM PhotoObj
//	  WHERE CONTAINS(POINT(185.0, 2.1), CIRCLE(185, 2, 0.5))
//	  WITH STALENESS '15m'
//
// The compiler resolves the query's spatial region against the survey's
// HTM partition to compute B(q) (the semantic framework of Section 4's
// discussion: "queries specify a spatial region and objects are also
// spatially partitioned"), estimates the result size ν(q) from the
// density model, and translates WITH STALENESS into the tolerance t(q).
package sqlmini

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

// Statement is a parsed query.
type Statement struct {
	// Columns are the selected column names; nil means COUNT(*).
	Columns []string
	// Count reports whether the projection is COUNT(*).
	Count bool
	// Table is the FROM table (only PhotoObj exists).
	Table string
	// Region is the spatial constraint (nil means all sky).
	Region *Region
	// MagLimit, if set, is an upper bound on the r-band magnitude
	// (smaller magnitude = brighter = rarer).
	MagLimit *float64
	// Tolerance is t(q) from WITH STALENESS (default 0: latest data).
	Tolerance time.Duration
}

// Region is a spherical cap constraint.
type Region struct {
	RADeg     float64
	DecDeg    float64
	RadiusDeg float64
}

// Cap converts the region to geometry.
func (r *Region) Cap() geom.Cap { return geom.CapFromRADec(r.RADeg, r.DecDeg, r.RadiusDeg) }

// Parse compiles the SQL text into a Statement.
func Parse(sql string) (*Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("sqlmini: trailing input at %q", p.peek().text)
	}
	return st, nil
}

// Compile parses the SQL and resolves it against a survey into the
// model.Query the decision framework consumes. The returned query has no
// ID or arrival time; callers assign those.
func Compile(sql string, survey *catalog.Survey) (*Statement, *model.Query, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	if !strings.EqualFold(st.Table, "PhotoObj") {
		return nil, nil, fmt.Errorf("sqlmini: unknown table %q", st.Table)
	}
	var objects []model.ObjectID
	var areaFrac float64
	var center geom.Vec3
	if st.Region != nil {
		cap := st.Region.Cap()
		objects = survey.CoverCap(cap)
		if len(objects) == 0 {
			objects = []model.ObjectID{survey.ObjectAt(cap.Center)}
		}
		// Cap area / sphere area.
		rad := st.Region.RadiusDeg * math.Pi / 180
		areaFrac = (1 - math.Cos(rad)) / 2
		center = cap.Center
	} else {
		all := survey.Objects()
		objects = make([]model.ObjectID, len(all))
		for i := range all {
			objects[i] = all[i].ID
		}
		areaFrac = 1
		center = geom.Vec3{X: 1}
	}

	q := &model.Query{
		Objects:   objects,
		Cost:      estimateResultSize(st, survey, center, areaFrac),
		Tolerance: st.Tolerance,
	}
	return st, q, nil
}

// estimateResultSize models ν(q): rows ∝ local density × area, bytes per
// row from the projection width; COUNT(*) returns a constant-size
// result; magnitude cuts shrink the result exponentially (brighter
// cutoffs keep exponentially fewer stars).
func estimateResultSize(st *Statement, survey *catalog.Survey, center geom.Vec3, areaFrac float64) cost.Bytes {
	if st.Count {
		return 256 // a count is a single number plus protocol overhead
	}
	// Relative density at the region center, normalized by a nominal
	// mean of 1.0 (the density model's background is below 1; blobs
	// rise above).
	density := survey.Density(center)
	totalBytes := float64(survey.TotalSize())
	selectivity := 1.0
	if st.MagLimit != nil {
		// r spans roughly 14..22 in the catalog; each magnitude keeps
		// ~40% of the previous one's stars.
		depth := 22 - *st.MagLimit
		if depth < 0 {
			depth = 0
		}
		selectivity = math.Pow(0.4, depth)
	}
	colFrac := float64(len(st.Columns)) / 32 // PhotoObj has ~700 cols; our dialect ~32 usable
	for _, c := range st.Columns {
		if c == "*" {
			colFrac = 1 // SELECT * extracts the full row
		}
	}
	if colFrac > 1 {
		colFrac = 1
	}
	if colFrac <= 0 {
		colFrac = 1.0 / 32
	}
	size := totalBytes * areaFrac * density * selectivity * colFrac
	if size < 1024 {
		size = 1024
	}
	return cost.Bytes(size)
}

// Execute runs the statement over a row sample (the demo executor used
// by the live services and examples).
func Execute(st *Statement, rows []catalog.Row) ([]catalog.Row, int, error) {
	var cap geom.Cap
	hasRegion := st.Region != nil
	if hasRegion {
		cap = st.Region.Cap()
	}
	var out []catalog.Row
	count := 0
	for _, row := range rows {
		if hasRegion && !cap.Contains(geom.FromRADec(row.RA, row.Dec)) {
			continue
		}
		if st.MagLimit != nil && row.R >= *st.MagLimit {
			continue
		}
		count++
		if !st.Count {
			out = append(out, row)
		}
	}
	return out, count, nil
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokNumber
	tokString
	tokPunct
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (isIdentChar(rune(input[j]))) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j]})
			i = j
		case unicode.IsDigit(c) || c == '-' || c == '+' || c == '.':
			j := i
			if input[j] == '-' || input[j] == '+' {
				j++
			}
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			if j == i || (j == i+1 && !unicode.IsDigit(rune(input[i]))) {
				return nil, fmt.Errorf("sqlmini: bad number at %q", input[i:])
			}
			toks = append(toks, token{tokNumber, input[i:j]})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlmini: unterminated string")
			}
			toks = append(toks, token{tokString, input[i+1 : j]})
			i = j + 1
		case strings.ContainsRune("(),*=<>", c):
			toks = append(toks, token{tokPunct, string(c)})
			i++
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sqlmini: expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sqlmini: expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlmini: expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlmini: bad number %q: %w", t.text, err)
	}
	return v, nil
}

func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Statement{}
	if p.acceptKeyword("COUNT") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Count = true
	} else {
		for {
			t := p.next()
			if t.kind == tokPunct && t.text == "*" {
				st.Columns = append(st.Columns, "*")
			} else if t.kind == tokIdent {
				st.Columns = append(st.Columns, t.text)
			} else {
				return nil, fmt.Errorf("sqlmini: expected column, got %q", t.text)
			}
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("sqlmini: expected table name, got %q", tbl.text)
	}
	st.Table = tbl.text

	if p.acceptKeyword("WHERE") {
		if err := p.parseWhere(st); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("STALENESS"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sqlmini: STALENESS needs a quoted duration, got %q", t.text)
		}
		if strings.EqualFold(t.text, "any") {
			st.Tolerance = model.AnyStaleness
		} else {
			d, err := time.ParseDuration(t.text)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: bad staleness %q: %w", t.text, err)
			}
			if d < 0 {
				return nil, fmt.Errorf("sqlmini: negative staleness")
			}
			st.Tolerance = d
		}
	}
	return st, nil
}

// parseWhere handles an AND-list of predicates. Recognized forms:
//
//	ra BETWEEN a AND b
//	dec BETWEEN a AND b
//	r < m   |   r <= m
//	CONTAINS(POINT(ra, dec), CIRCLE(ra, dec, radius))  [optionally = 1]
func (p *parser) parseWhere(st *Statement) error {
	var raLo, raHi, decLo, decHi *float64
	for {
		t := p.peek()
		switch {
		case t.kind == tokIdent && strings.EqualFold(t.text, "CONTAINS"):
			p.pos++
			region, err := p.parseContains()
			if err != nil {
				return err
			}
			st.Region = region
		case t.kind == tokIdent && strings.EqualFold(t.text, "ra"):
			p.pos++
			lo, hi, err := p.parseBetween()
			if err != nil {
				return err
			}
			raLo, raHi = &lo, &hi
		case t.kind == tokIdent && strings.EqualFold(t.text, "dec"):
			p.pos++
			lo, hi, err := p.parseBetween()
			if err != nil {
				return err
			}
			decLo, decHi = &lo, &hi
		case t.kind == tokIdent && strings.EqualFold(t.text, "r"):
			p.pos++
			if err := p.expectPunct("<"); err != nil {
				return err
			}
			// Accept <= as "<" "=".
			if p.peek().kind == tokPunct && p.peek().text == "=" {
				p.pos++
			}
			m, err := p.number()
			if err != nil {
				return err
			}
			st.MagLimit = &m
		default:
			return fmt.Errorf("sqlmini: unsupported predicate at %q", t.text)
		}
		if !p.acceptKeyword("AND") {
			break
		}
	}
	// Convert a box into its bounding cap.
	if raLo != nil || decLo != nil {
		if raLo == nil || decLo == nil {
			return fmt.Errorf("sqlmini: box queries need both ra and dec ranges")
		}
		if *raHi < *raLo || *decHi < *decLo {
			return fmt.Errorf("sqlmini: empty range")
		}
		ra := (*raLo + *raHi) / 2
		dec := (*decLo + *decHi) / 2
		// Bounding radius: half the diagonal, with RA span shrunk by
		// cos(dec).
		dRA := (*raHi - *raLo) / 2 * math.Cos(dec*math.Pi/180)
		dDec := (*decHi - *decLo) / 2
		radius := math.Sqrt(dRA*dRA + dDec*dDec)
		if radius <= 0 {
			radius = 0.01
		}
		if st.Region != nil {
			return fmt.Errorf("sqlmini: cannot combine a box with CONTAINS")
		}
		st.Region = &Region{RADeg: ra, DecDeg: dec, RadiusDeg: radius}
	}
	return nil
}

func (p *parser) parseBetween() (lo, hi float64, err error) {
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return 0, 0, err
	}
	lo, err = p.number()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return 0, 0, err
	}
	hi, err = p.number()
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func (p *parser) parseContains() (*Region, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("POINT"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if _, err := p.number(); err != nil { // point RA (informational)
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if _, err := p.number(); err != nil { // point Dec
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CIRCLE"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ra, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	dec, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	radius, err := p.number()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Optional "= 1".
	if p.peek().kind == tokPunct && p.peek().text == "=" {
		p.pos++
		if _, err := p.number(); err != nil {
			return nil, err
		}
	}
	if radius <= 0 || radius > 180 {
		return nil, fmt.Errorf("sqlmini: circle radius %v out of range", radius)
	}
	if dec < -90 || dec > 90 {
		return nil, fmt.Errorf("sqlmini: circle dec %v out of range", dec)
	}
	return &Region{RADeg: ra, DecDeg: dec, RadiusDeg: radius}, nil
}
