package sqlmini

import (
	"strings"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

func testSurvey(t *testing.T) *catalog.Survey {
	t.Helper()
	s, err := catalog.NewSurvey(catalog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseBoxQuery(t *testing.T) {
	st, err := Parse("SELECT objID, ra, dec FROM PhotoObj WHERE ra BETWEEN 180 AND 185 AND dec BETWEEN -2 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Count || len(st.Columns) != 3 || st.Columns[0] != "objID" {
		t.Errorf("projection wrong: %+v", st)
	}
	if st.Table != "PhotoObj" {
		t.Errorf("table = %q", st.Table)
	}
	if st.Region == nil {
		t.Fatal("box should produce a region")
	}
	if st.Region.RADeg != 182.5 || st.Region.DecDeg != 0 {
		t.Errorf("region center = (%v, %v)", st.Region.RADeg, st.Region.DecDeg)
	}
	if st.Region.RadiusDeg < 2 || st.Region.RadiusDeg > 4 {
		t.Errorf("bounding radius = %v", st.Region.RadiusDeg)
	}
}

func TestParseConeQuery(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM PhotoObj WHERE CONTAINS(POINT(185.0, 2.1), CIRCLE(185, 2, 0.5)) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Count {
		t.Error("expected COUNT(*)")
	}
	if st.Region == nil || st.Region.RadiusDeg != 0.5 || st.Region.RADeg != 185 {
		t.Errorf("region = %+v", st.Region)
	}
}

func TestParseStaleness(t *testing.T) {
	st, err := Parse("SELECT ra FROM PhotoObj WHERE ra BETWEEN 1 AND 2 AND dec BETWEEN 1 AND 2 WITH STALENESS '15m'")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tolerance != 15*time.Minute {
		t.Errorf("tolerance = %v", st.Tolerance)
	}
	st2, err := Parse("SELECT ra FROM PhotoObj WITH STALENESS 'any'")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tolerance != model.AnyStaleness {
		t.Errorf("tolerance = %v, want AnyStaleness", st2.Tolerance)
	}
}

func TestParseMagnitudeCut(t *testing.T) {
	st, err := Parse("SELECT ra, dec FROM PhotoObj WHERE CONTAINS(POINT(10, 10), CIRCLE(10, 10, 1)) AND r < 20")
	if err != nil {
		t.Fatal(err)
	}
	if st.MagLimit == nil || *st.MagLimit != 20 {
		t.Errorf("mag limit = %v", st.MagLimit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE PhotoObj SET x = 1",
		"SELECT FROM PhotoObj",
		"SELECT * FROM",
		"SELECT * FROM PhotoObj WHERE ra BETWEEN 1",
		"SELECT * FROM PhotoObj WHERE ra BETWEEN 1 AND 2", // missing dec
		"SELECT * FROM PhotoObj WHERE CONTAINS(POINT(1,1), CIRCLE(1,1,-5))",
		"SELECT * FROM PhotoObj WHERE CONTAINS(POINT(1,1), CIRCLE(1,95,1))",
		"SELECT * FROM PhotoObj WITH STALENESS '15'",
		"SELECT * FROM PhotoObj WHERE unknown = 1",
		"SELECT * FROM PhotoObj trailing garbage",
		"SELECT * FROM PhotoObj WHERE ra BETWEEN 5 AND 2 AND dec BETWEEN 1 AND 2",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCompileMapsRegionToObjects(t *testing.T) {
	s := testSurvey(t)
	_, q, err := Compile("SELECT ra, dec FROM PhotoObj WHERE CONTAINS(POINT(180, 0), CIRCLE(180, 0, 1))", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Objects) == 0 {
		t.Fatal("no objects mapped")
	}
	for _, id := range q.Objects {
		if id < 1 || int(id) > s.NumObjects() {
			t.Errorf("invalid object %d", id)
		}
	}
	if q.Cost <= 0 {
		t.Error("no cost estimate")
	}
	if q.Tolerance != model.NoTolerance {
		t.Errorf("default tolerance = %v, want 0 (latest data)", q.Tolerance)
	}
}

func TestCompileAllSky(t *testing.T) {
	s := testSurvey(t)
	_, q, err := Compile("SELECT ra FROM PhotoObj", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Objects) != s.NumObjects() {
		t.Errorf("all-sky query must touch every object: %d", len(q.Objects))
	}
}

func TestCompileUnknownTable(t *testing.T) {
	s := testSurvey(t)
	if _, _, err := Compile("SELECT x FROM SpecObj", s); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestCostEstimateShrinksWithSelectivity(t *testing.T) {
	s := testSurvey(t)
	_, qWide, err := Compile("SELECT ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(180, 0), CIRCLE(180, 0, 5))", s)
	if err != nil {
		t.Fatal(err)
	}
	_, qNarrow, err := Compile("SELECT ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(180, 0), CIRCLE(180, 0, 0.2))", s)
	if err != nil {
		t.Fatal(err)
	}
	if qNarrow.Cost >= qWide.Cost {
		t.Errorf("narrow cone (%v) should cost less than wide (%v)", qNarrow.Cost, qWide.Cost)
	}
	_, qBright, err := Compile("SELECT ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(180, 0), CIRCLE(180, 0, 5)) AND r < 16", s)
	if err != nil {
		t.Fatal(err)
	}
	if qBright.Cost >= qWide.Cost {
		t.Errorf("bright cut (%v) should cost less than uncut (%v)", qBright.Cost, qWide.Cost)
	}
	_, qCount, err := Compile("SELECT COUNT(*) FROM PhotoObj WHERE CONTAINS(POINT(180, 0), CIRCLE(180, 0, 5))", s)
	if err != nil {
		t.Fatal(err)
	}
	if qCount.Cost >= qNarrow.Cost {
		t.Errorf("COUNT (%v) should be tiny", qCount.Cost)
	}
}

func TestExecuteFiltersRows(t *testing.T) {
	s := testSurvey(t)
	rows := s.SampleRows(3000, 1)
	st, err := Parse("SELECT ra, dec FROM PhotoObj WHERE CONTAINS(POINT(0, 0), CIRCLE(0, 0, 30))")
	if err != nil {
		t.Fatal(err)
	}
	out, count, err := Execute(st, rows)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(out) {
		t.Errorf("count %d != rows %d", count, len(out))
	}
	region := st.Region.Cap()
	for _, r := range out {
		if !region.Contains(geom.FromRADec(r.RA, r.Dec)) {
			t.Fatalf("row (%v,%v) outside region", r.RA, r.Dec)
		}
	}
	// The complement must be non-empty for a 30° cap on full-sky rows.
	if count == 0 || count == len(rows) {
		t.Errorf("filter degenerate: %d of %d", count, len(rows))
	}
}

func TestExecuteCountOnly(t *testing.T) {
	s := testSurvey(t)
	rows := s.SampleRows(500, 1)
	st, err := Parse("SELECT COUNT(*) FROM PhotoObj WHERE r < 18")
	if err != nil {
		t.Fatal(err)
	}
	out, count, err := Execute(st, rows)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("COUNT(*) must not materialize rows")
	}
	if count <= 0 || count >= 500 {
		t.Errorf("count = %d of 500", count)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select ra from photoobj where ra between 1 and 2 and dec between 3 and 4"); err != nil {
		t.Errorf("lowercase SQL should parse: %v", err)
	}
}

func TestStalenessPropagatesThroughCompile(t *testing.T) {
	s := testSurvey(t)
	_, q, err := Compile("SELECT ra FROM PhotoObj WHERE ra BETWEEN 1 AND 2 AND dec BETWEEN 1 AND 2 WITH STALENESS '1h'", s)
	if err != nil {
		t.Fatal(err)
	}
	if q.Tolerance != time.Hour {
		t.Errorf("tolerance = %v", q.Tolerance)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Parse("SELECT 'unterminated FROM PhotoObj"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unterminated string should fail, got %v", err)
	}
	if _, err := Parse("SELECT # FROM PhotoObj"); err == nil {
		t.Error("bad character should fail")
	}
}
