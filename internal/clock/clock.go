// Package clock abstracts the passage of time behind an injectable
// interface so components that simulate latency (the ExecDelay knobs
// standing in for the paper's multi-second repository and cache scans)
// can be driven by a fake clock in tests: tier-1 runs assert on logical
// time instead of actually sleeping, which makes them fast and immune
// to scheduler jitter.
package clock

import (
	"sync"
	"time"
)

// Clock tells time and sleeps. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
}

// Wall is the real-time clock.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manually advanced clock: Sleep blocks until Advance has
// moved the fake time past the sleeper's deadline. The zero value is
// not ready; use NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	done     chan struct{}
}

// NewFake returns a fake clock starting at the given time.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep implements Clock: it returns immediately for non-positive d,
// otherwise blocks until Advance carries the clock to now+d.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	w := &fakeWaiter{deadline: f.now.Add(d), done: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	<-w.done
}

// Advance moves the clock forward by d, waking every sleeper whose
// deadline has passed.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	remaining := f.waiters[:0]
	var wake []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(f.now) {
			wake = append(wake, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range wake {
		close(w.done)
	}
}

// Sleepers reports how many goroutines are currently blocked in Sleep
// (tests use it to synchronize with a sleeper having parked before
// advancing the clock).
func (f *Fake) Sleepers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
