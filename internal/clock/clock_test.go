package clock

import (
	"sync"
	"testing"
	"time"
)

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make([]bool, 3)
	for i, d := range []time.Duration{time.Second, 2 * time.Second, time.Hour} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			f.Sleep(d)
			woke[i] = true
		}(i, d)
	}
	for f.Sleepers() != 3 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(2 * time.Second) // wakes the 1s and 2s sleepers
	for f.Sleepers() != 1 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(time.Hour) // wakes the rest
	wg.Wait()
	for i, ok := range woke {
		if !ok {
			t.Errorf("sleeper %d never woke", i)
		}
	}
	if got := f.Now(); got != time.Unix(0, 0).Add(2*time.Second+time.Hour) {
		t.Errorf("Now = %v", got)
	}
}

func TestFakeSleepNonPositive(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(0)
		f.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive Sleep blocked")
	}
}

func TestWallClock(t *testing.T) {
	var c Clock = Wall{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Error("wall clock went backwards")
	}
	c.Sleep(time.Millisecond)
}
