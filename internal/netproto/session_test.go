package netproto

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// startV2Server runs a minimal v2 request server: it acknowledges
// hellos and answers each QueryMsg via reply (possibly out of order),
// echoing RequestIDs.
func startV2Server(t *testing.T, reply func(f Frame, c *Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				c := NewConn(conn)
				first, err := c.Recv()
				if err != nil {
					return
				}
				hello, ok := first.Body.(Hello)
				if !ok {
					return
				}
				v2 := NegotiateVersion(hello.Version) >= ProtoV2
				if v2 {
					if err := c.Send(Frame{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}}); err != nil {
						return
					}
				}
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					reply(f, c)
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func echoQuery(f Frame, c *Conn) {
	q := f.Body.(QueryMsg).Query
	_ = c.Send(Frame{
		Type:      MsgQueryResult,
		RequestID: f.RequestID,
		Body:      QueryResultMsg{QueryID: q.ID, Logical: q.Cost, Source: "test"},
	})
}

func TestSessionRoundTrip(t *testing.T) {
	addr := startV2Server(t, echoQuery)
	s, err := DialSession(addr, "client", SessionConfig{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(1); i <= 4; i++ {
		reply, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: model.QueryID(i), Objects: []model.ObjectID{1}, Cost: cost.Bytes(i)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		res := reply.Body.(QueryResultMsg)
		if res.QueryID != model.QueryID(i) || res.Logical != cost.Bytes(i) {
			t.Fatalf("reply %d = %+v", i, res)
		}
	}
}

// TestSessionDemuxOutOfOrder holds the first request's reply back until
// a later request has been answered: the demultiplexer must route each
// reply to its own waiter by RequestID.
func TestSessionDemuxOutOfOrder(t *testing.T) {
	var (
		mu       sync.Mutex
		deferred []Frame
	)
	addr := startV2Server(t, func(f Frame, c *Conn) {
		q := f.Body.(QueryMsg).Query
		out := Frame{
			Type:      MsgQueryResult,
			RequestID: f.RequestID,
			Body:      QueryResultMsg{QueryID: q.ID, Logical: q.Cost, Source: "test"},
		}
		mu.Lock()
		defer mu.Unlock()
		if q.ID == 1 { // park the first query's reply
			deferred = append(deferred, out)
			return
		}
		_ = c.Send(out)
		for _, d := range deferred { // flush parked replies afterwards
			_ = c.Send(d)
		}
		deferred = nil
	})

	s, err := DialSession(addr, "client", SessionConfig{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	first := make(chan error, 1)
	go func() {
		reply, err := s.RoundTrip(ctx, Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: 11},
		}})
		if err == nil && reply.Body.(QueryResultMsg).QueryID != 1 {
			err = errors.New("first waiter got someone else's reply")
		}
		first <- err
	}()
	// Give the first request time to reach the server and be parked.
	time.Sleep(50 * time.Millisecond)
	reply, err := s.RoundTrip(ctx, Frame{Type: MsgQuery, Body: QueryMsg{
		Query: model.Query{ID: 2, Objects: []model.ObjectID{1}, Cost: 22},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res := reply.Body.(QueryResultMsg); res.QueryID != 2 || res.Logical != 22 {
		t.Fatalf("second reply = %+v (demux crossed wires)", res)
	}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeV1V2Compat covers the version matrix: a v2 session
// against a v2 server negotiates and multiplexes; a lockstep (v1)
// session against the same server is served in order with no ack; and
// a v1 server (never acks) is usable through a lockstep session.
func TestHandshakeV1V2Compat(t *testing.T) {
	addr := startV2Server(t, echoQuery)

	t.Run("v2-client-v2-server", func(t *testing.T) {
		s, err := DialSession(addr, "client", SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 5, Objects: []model.ObjectID{1}, Cost: 5},
		}}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("v1-client-v2-server", func(t *testing.T) {
		s, err := DialSession(addr, "client", SessionConfig{Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		reply, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 6, Objects: []model.ObjectID{1}, Cost: 6},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if reply.RequestID != 0 {
			t.Errorf("v1 reply carries RequestID %d, want 0", reply.RequestID)
		}
	})

	t.Run("v1-server-lockstep-client", func(t *testing.T) {
		// A v1 server: reads hellos and serves queries lockstep,
		// never sending an ack and ignoring RequestIDs.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			c := NewConn(conn)
			if _, err := c.Recv(); err != nil { // hello, unacked
				return
			}
			for {
				f, err := c.Recv()
				if err != nil {
					return
				}
				q := f.Body.(QueryMsg).Query
				_ = c.Send(Frame{Type: MsgQueryResult, Body: QueryResultMsg{
					QueryID: q.ID, Logical: q.Cost, Source: "v1",
				}})
			}
		}()
		s, err := DialSession(ln.Addr().String(), "client", SessionConfig{Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		reply, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 7, Objects: []model.ObjectID{1}, Cost: 7},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res := reply.Body.(QueryResultMsg); res.Source != "v1" || res.QueryID != 7 {
			t.Fatalf("reply = %+v", res)
		}
	})

	t.Run("v2-client-v1-server-fails-fast", func(t *testing.T) {
		// A silent v1 server must produce a handshake error, not a
		// hang.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			c := NewConn(conn)
			_, _ = c.Recv() // swallow the hello, never ack
			select {}
		}()
		if _, err := DialSession(ln.Addr().String(), "client", SessionConfig{
			DialTimeout: 200 * time.Millisecond,
		}); err == nil {
			t.Fatal("v2 dial against a silent v1 server should fail the handshake")
		}
	})
}

// TestSessionConcurrentRoundTrips hammers one session from many
// goroutines; every reply must match its request.
func TestSessionConcurrentRoundTrips(t *testing.T) {
	addr := startV2Server(t, echoQuery)
	s, err := DialSession(addr, "client", SessionConfig{PoolSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := model.QueryID(g*1000 + i + 1)
				reply, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
					Query: model.Query{ID: id, Objects: []model.ObjectID{1}, Cost: cost.Bytes(id)},
				}})
				if err != nil {
					errs <- err
					return
				}
				if res := reply.Body.(QueryResultMsg); res.QueryID != id {
					errs <- errors.New("reply routed to wrong waiter")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSessionFailsPendingOnDisconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(conn)
		_, _ = c.Recv()
		_ = c.Send(Frame{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}})
		accepted <- conn
	}()
	s, err := DialSession(ln.Addr().String(), "client", SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := <-accepted
	done := make(chan error, 1)
	go func() {
		_, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: 1},
		}})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	conn.Close() // server dies with the request in flight
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("round trip survived a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round trip hung after disconnect")
	}
}

// TestSessionPoolExhaustedUnderCancellation drives a pooled session
// against a server that accepts requests but never answers them:
// cancelled round trips must return promptly and deregister their
// waiters (no pending-map leak), and once every pooled connection is
// dead the session must fail new requests immediately instead of
// hanging.
func TestSessionPoolExhaustedUnderCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var (
		connMu   sync.Mutex
		accepted []net.Conn
	)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			accepted = append(accepted, conn)
			connMu.Unlock()
			go func() {
				c := NewConn(conn)
				if _, err := c.Recv(); err != nil { // hello
					return
				}
				_ = c.Send(Frame{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}})
				for { // swallow requests, never reply
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()

	s, err := DialSession(ln.Addr().String(), "client", SessionConfig{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Saturate the pool with requests that get cancelled.
	const inFlight = 8
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := s.RoundTrip(ctx, Frame{Type: MsgQuery, Body: QueryMsg{
				Query: model.Query{ID: model.QueryID(i + 1), Objects: []model.ObjectID{1}, Cost: 1},
			}})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("request %d: err = %v, want deadline exceeded", i, err)
			}
		}(i)
	}
	wg.Wait()
	// Every abandoned waiter must have been deregistered.
	for i, sc := range s.conns {
		sc.mu.Lock()
		n := len(sc.pending)
		sc.mu.Unlock()
		if n != 0 {
			t.Errorf("conn %d leaks %d pending waiters after cancellation", i, n)
		}
	}

	// An already-cancelled context must not consume a connection slot.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RoundTrip(cancelled, Frame{Type: MsgQuery, Body: QueryMsg{
		Query: model.Query{ID: 99, Objects: []model.ObjectID{1}, Cost: 1},
	}}); err == nil {
		t.Error("round trip with pre-cancelled context succeeded")
	}

	// Kill every pooled connection: the session is exhausted and must
	// fail fast, not hang waiting for a reply that cannot come.
	connMu.Lock()
	for _, c := range accepted {
		c.Close()
	}
	connMu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := make(chan error, 1)
		go func() {
			_, err := s.RoundTrip(context.Background(), Frame{Type: MsgQuery, Body: QueryMsg{
				Query: model.Query{ID: 100, Objects: []model.ObjectID{1}, Cost: 1},
			}})
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("round trip on an exhausted pool succeeded")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("round trip on an exhausted pool hung")
		}
		if !s.Live() {
			break // both readers noticed; Live and RoundTrip agree
		}
		if time.Now().After(deadline) {
			t.Fatal("session never noticed both connections died")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialRetryRidesOutStartupRace reserves an address, starts the
// server only after a delay, and dials with DialRetry: the dial must
// ride out the refused attempts and succeed once the listener binds.
func TestDialRetryRidesOutStartupRace(t *testing.T) {
	// Reserve a port, then free it for the late-starting server.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	// Without retry, the dial must fail immediately.
	start := time.Now()
	if _, err := DialSession(addr, "client", SessionConfig{}); err == nil {
		t.Fatal("dial of an unbound port succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry-less dial took %v; refused should fail fast", elapsed)
	}

	go func() {
		time.Sleep(250 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return // port got reused; the dial will fail the test below
		}
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(conn)
		if _, err := c.Recv(); err != nil {
			return
		}
		_ = c.Send(Frame{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}})
	}()
	s, err := DialSession(addr, "client", SessionConfig{DialRetry: 5 * time.Second})
	if err != nil {
		t.Fatalf("dial with retry failed: %v", err)
	}
	s.Close()
}

func TestIsClosed(t *testing.T) {
	if IsClosed(nil) {
		t.Error("nil is not closed")
	}
	for _, err := range []error{io.EOF, io.ErrUnexpectedEOF, net.ErrClosed} {
		if !IsClosed(err) {
			t.Errorf("IsClosed(%v) = false", err)
		}
		if !IsClosed(wrap(err)) {
			t.Errorf("IsClosed(wrapped %v) = false", err)
		}
	}
	if IsClosed(errors.New("EOF")) {
		t.Error("a stringly EOF must not count — that fragility is what IsClosed replaces")
	}
}

func wrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }
