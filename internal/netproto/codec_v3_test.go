package netproto

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// connOverBuffer returns a Conn whose writes and reads share one
// buffer, so a frame sent on it can be received on it — the
// single-goroutine harness for codec round trips.
func connOverBuffer(version int) *Conn {
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: &buf, Writer: &buf})
	if version >= ProtoV3 {
		c.SetVersion(version)
	}
	return c
}

// roundTrip sends f and receives it back through one codec.
func roundTrip(t *testing.T, version int, f Frame) Frame {
	t.Helper()
	c := connOverBuffer(version)
	if err := c.Send(f); err != nil {
		t.Fatalf("v%d send %s: %v", version, f.Type, err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("v%d recv %s: %v", version, f.Type, err)
	}
	return got
}

// TestV3RoundTripSeedFrames pins the binary codec on every seed frame
// shape: type, request ID and body must survive exactly.
func TestV3RoundTripSeedFrames(t *testing.T) {
	for _, f := range seedFrames() {
		f.RequestID = 42
		got := roundTrip(t, ProtoV3, f)
		if got.Type != f.Type || got.RequestID != 42 {
			t.Fatalf("%s: frame header mutated: %+v", f.Type, got)
		}
		want := roundTrip(t, 0, f) // gob normalizes empty slices to nil
		if !reflect.DeepEqual(got.Body, want.Body) {
			t.Errorf("%s: v3 body %+v != gob body %+v", f.Type, got.Body, want.Body)
		}
	}
}

// quickBodies lists every frame vocabulary entry for the property
// test: the body's concrete type is generated randomly per trial.
var quickBodies = []struct {
	t    MsgType
	body any
}{
	{MsgHello, Hello{}},
	{MsgHelloAck, HelloAck{}},
	{MsgQuery, QueryMsg{}},
	{MsgQueryResult, QueryResultMsg{}},
	{MsgUpdateFeed, UpdateFeedMsg{}},
	{MsgShipUpdates, ShipUpdatesMsg{}},
	{MsgUpdates, UpdatesMsg{}},
	{MsgLoadObject, LoadObjectMsg{}},
	{MsgObjectData, ObjectDataMsg{}},
	{MsgInvalidate, InvalidateMsg{}},
	{MsgStats, StatsMsg{}},
	{MsgError, ErrorMsg{}},
	{MsgShardQuery, ShardQueryMsg{}},
	{MsgClusterStats, ClusterStatsMsg{}},
	{MsgAdminResize, AdminResizeMsg{}},
	{MsgRebalanceStatus, RebalanceStatusMsg{}},
	{MsgReshard, ReshardMsg{}},
	{MsgMigrateBegin, MigrateBeginMsg{}},
	{MsgMigrateChunk, MigrateChunkMsg{}},
	{MsgMigrateDone, MigrateDoneMsg{}},
	{MsgObjectBirth, ObjectBirthMsg{}},
	{MsgBirthGrant, BirthGrantMsg{}},
}

// TestGobV3RoundTripProperty is the gob↔v3 equivalence property:
// for randomly generated instances of every frame type, the value that
// comes out of a gob encode→decode round trip equals the value that
// comes out of a v3 round trip (both codecs normalize empty slices to
// nil, so comparing the two round trips — rather than each against the
// original — checks exactly the wire contract).
func TestGobV3RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 25
	for _, entry := range quickBodies {
		typ := reflect.TypeOf(entry.body)
		for trial := 0; trial < trials; trial++ {
			v, ok := quick.Value(typ, rng)
			if !ok {
				t.Fatalf("%s: cannot generate %v", entry.t, typ)
			}
			f := Frame{Type: entry.t, RequestID: uint64(rng.Int63()), Body: v.Interface()}
			gotGob := roundTrip(t, 0, f)
			gotV3 := roundTrip(t, ProtoV3, f)
			if gotGob.RequestID != gotV3.RequestID {
				t.Fatalf("%s trial %d: request IDs diverge: gob %d, v3 %d",
					entry.t, trial, gotGob.RequestID, gotV3.RequestID)
			}
			if !reflect.DeepEqual(gotGob.Body, gotV3.Body) {
				t.Fatalf("%s trial %d: codecs disagree:\n gob: %#v\n v3:  %#v",
					entry.t, trial, gotGob.Body, gotV3.Body)
			}
		}
	}
}

// TestV3TraceTailCompat pins the trace tail's wire contract on the
// three frame types that carry it: an untraced frame encodes with no
// tail at all (byte-identical to pre-trace builds, whose decoders
// reject trailing bytes), a traced frame round-trips its TraceID and
// spans exactly, and a tail-less body decodes as untraced.
func TestV3TraceTailCompat(t *testing.T) {
	span := TraceSpan{Name: "fragment", Node: "n", Shard: 1, Objects: 2,
		Source: "cache", Elapsed: time.Millisecond}
	cases := []struct {
		name              string
		untraced, traced  Frame
		tailLen           int // extra bytes the traced encoding may add
		checkTraced       func(t *testing.T, body any)
		checkUntracedZero func(t *testing.T, body any)
	}{
		{
			name:     "query",
			untraced: Frame{Type: MsgQuery, Body: QueryMsg{Query: model.Query{ID: 1, Objects: []model.ObjectID{1}}}},
			traced:   Frame{Type: MsgQuery, Body: QueryMsg{Query: model.Query{ID: 1, Objects: []model.ObjectID{1}}, TraceID: 0xbeef}},
			checkTraced: func(t *testing.T, body any) {
				if got := body.(QueryMsg).TraceID; got != 0xbeef {
					t.Errorf("TraceID = %#x, want 0xbeef", got)
				}
			},
			checkUntracedZero: func(t *testing.T, body any) {
				if got := body.(QueryMsg).TraceID; got != 0 {
					t.Errorf("untraced TraceID = %#x, want 0", got)
				}
			},
		},
		{
			name:     "shard-query",
			untraced: Frame{Type: MsgShardQuery, Body: ShardQueryMsg{Query: model.Query{ID: 1}, Shard: 1, Fragments: 2}},
			traced:   Frame{Type: MsgShardQuery, Body: ShardQueryMsg{Query: model.Query{ID: 1}, Shard: 1, Fragments: 2, TraceID: 0xbeef}},
			checkTraced: func(t *testing.T, body any) {
				if got := body.(ShardQueryMsg).TraceID; got != 0xbeef {
					t.Errorf("TraceID = %#x, want 0xbeef", got)
				}
			},
			checkUntracedZero: func(t *testing.T, body any) {
				if got := body.(ShardQueryMsg).TraceID; got != 0 {
					t.Errorf("untraced TraceID = %#x, want 0", got)
				}
			},
		},
		{
			name:     "query-result",
			untraced: Frame{Type: MsgQueryResult, Body: QueryResultMsg{QueryID: 1, Source: "cache"}},
			traced: Frame{Type: MsgQueryResult, Body: QueryResultMsg{QueryID: 1, Source: "cache",
				TraceID: 0xbeef, Spans: []TraceSpan{span}}},
			checkTraced: func(t *testing.T, body any) {
				res := body.(QueryResultMsg)
				if res.TraceID != 0xbeef || len(res.Spans) != 1 || !reflect.DeepEqual(res.Spans[0], span) {
					t.Errorf("traced result mutated: %+v", res)
				}
			},
			checkUntracedZero: func(t *testing.T, body any) {
				res := body.(QueryResultMsg)
				if res.TraceID != 0 || res.Spans != nil {
					t.Errorf("untraced result grew a tail: %+v", res)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := encodeFramesV3(t, tc.untraced)
			withTail := encodeFramesV3(t, tc.traced)
			if len(withTail) <= len(plain) {
				t.Errorf("traced frame (%d bytes) not longer than untraced (%d): tail missing",
					len(withTail), len(plain))
			}
			tc.checkTraced(t, roundTrip(t, ProtoV3, tc.traced).Body)
			// The untraced encoding IS the pre-trace wire format: the
			// conditional tail decode must see no trailing bytes (a
			// trailing-byte error would fail the round trip) and leave
			// the trace fields zero.
			tc.checkUntracedZero(t, roundTrip(t, ProtoV3, tc.untraced).Body)
		})
	}
}

// TestV3RejectsUnknownBody pins that the v3 encoder refuses a body
// outside the vocabulary instead of writing garbage, and leaves the
// stream clean for the next frame.
func TestV3RejectsUnknownBody(t *testing.T) {
	c := connOverBuffer(ProtoV3)
	if err := c.Send(Frame{Type: MsgQuery, Body: struct{ X int }{1}}); err == nil {
		t.Fatal("v3 encoded an unknown body type")
	}
	// The stream must still be usable: nothing was written.
	if err := c.Send(Frame{Type: MsgError, Body: ErrorMsg{Message: "ok"}}); err != nil {
		t.Fatalf("stream poisoned after a rejected encode: %v", err)
	}
	got, err := c.Recv()
	if err != nil || got.Body.(ErrorMsg).Message != "ok" {
		t.Fatalf("recv after rejected encode: %v %+v", err, got)
	}
}

// TestV3OversizedFrameRejectedAtSender mirrors the gob sender-side
// MaxFrame check.
func TestV3OversizedFrameRejectedAtSender(t *testing.T) {
	c := connOverBuffer(ProtoV3)
	err := c.Send(Frame{Type: MsgObjectData, Body: ObjectDataMsg{
		Payload: make([]byte, MaxFrame+1),
	}})
	if err == nil {
		t.Fatal("oversized v3 frame accepted at the sender")
	}
}

// TestV3DecodedFrameOwnsItsMemory is the buffer-reuse hazard test the
// v3 decoder's ownership rule exists for: a decoded QueryResultMsg
// payload held across subsequent Recvs on the same connection must not
// be corrupted by the receive scratch buffer being reused. Run under
// -race (CI does), aliasing would also surface as a data race when the
// holder reads while Recv writes.
func TestV3DecodedPayloadOwnershipAcrossRecv(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender, receiver := NewConn(a), NewConn(b)
	sender.SetVersion(ProtoV3)
	receiver.SetVersion(ProtoV3)

	scale := DefaultScale()
	const frames = 16
	go func() {
		for i := 0; i < frames; i++ {
			// The sender uses the pooled payload path the servers use,
			// so this also pins that a recycled send buffer cannot leak
			// into a peer's decoded frame.
			payload, release := NewPayload(scale, 2*cost.GB, int64(i))
			_ = sender.Send(Frame{Type: MsgQueryResult, Body: QueryResultMsg{
				QueryID: model.QueryID(i),
				Logical: 2 * cost.GB,
				Payload: payload,
				Source:  "cache",
			}, Release: release})
		}
	}()

	first, err := receiver.Recv()
	if err != nil {
		t.Fatal(err)
	}
	held := first.Body.(QueryResultMsg).Payload
	want := MakePayload(scale, 2*cost.GB, 0)
	if !bytes.Equal(held, want) {
		t.Fatal("first decoded payload wrong before any reuse")
	}
	done := make(chan struct{})
	go func() {
		// Concurrent reader of the held payload while later Recvs run:
		// aliasing the receive scratch would be a data race here.
		defer close(done)
		for i := 0; i < 1000; i++ {
			if held[i%len(held)] != want[i%len(want)] {
				t.Error("held payload mutated concurrently")
				return
			}
		}
	}()
	for i := 1; i < frames; i++ {
		f, err := receiver.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Body.(QueryResultMsg).Payload; !bytes.Equal(got, MakePayload(scale, 2*cost.GB, int64(i))) {
			t.Fatalf("frame %d payload corrupt", i)
		}
	}
	<-done
	if !bytes.Equal(held, want) {
		t.Fatal("payload held across Recvs was corrupted: the decoder aliased its scratch buffer")
	}
}

// codecRoundTripAllocs measures steady-state allocations of one
// send+recv of a representative QueryResultMsg through a codec.
func codecRoundTripAllocs(version int) float64 {
	c := connOverBuffer(version)
	scale := DefaultScale()
	frame := Frame{Type: MsgQueryResult, RequestID: 9, Body: QueryResultMsg{
		QueryID: 7,
		Logical: cost.GB,
		Rows: []ResultRow{
			{ObjID: 1, RA: 10, Dec: -5, R: 17.1}, {ObjID: 2, RA: 11, Dec: -6, R: 18.2},
			{ObjID: 3, RA: 12, Dec: -7, R: 19.3}, {ObjID: 4, RA: 13, Dec: -8, R: 20.4},
		},
		Payload: MakePayload(scale, cost.GB, 7),
		Source:  "repository",
		Elapsed: 3 * time.Millisecond,
	}}
	return testing.AllocsPerRun(300, func() {
		if err := c.Send(frame); err != nil {
			panic(err)
		}
		if _, err := c.Recv(); err != nil {
			panic(err)
		}
	})
}

// TestV3AllocAdvantage enforces the codec's reason to exist in tier-1:
// a QueryResultMsg encode+decode through v3 must allocate at least 3×
// less than through gob (allocation counts are deterministic, so this
// is stable where ns/op would be noisy; BenchmarkCodec tracks ns/op).
func TestV3AllocAdvantage(t *testing.T) {
	gobAllocs := codecRoundTripAllocs(0)
	v3Allocs := codecRoundTripAllocs(ProtoV3)
	t.Logf("allocs per encode+decode: gob %.1f, v3 %.1f (%.1fx)",
		gobAllocs, v3Allocs, gobAllocs/v3Allocs)
	if v3Allocs*3 > gobAllocs {
		t.Errorf("v3 allocates %.1f/op vs gob %.1f/op — less than the required 3x advantage",
			v3Allocs, gobAllocs)
	}
}

// TestHandshakeV3Matrix extends the version matrix to the binary
// codec: v3↔v3 runs binary, a v2-capped peer on either side negotiates
// the connection down to gob, and lockstep still reaches v1 — all
// against servers built with ServeHandshake, which every node uses.
func TestHandshakeV3Matrix(t *testing.T) {
	// startServer serves queries through ServeHandshake with a version
	// cap (0 = newest).
	startServer := func(t *testing.T, maxVersion int) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					c := NewConn(conn)
					first, err := c.Recv()
					if err != nil {
						return
					}
					hello, ok := first.Body.(Hello)
					if !ok {
						return
					}
					if _, err := ServeHandshake(c, hello, maxVersion); err != nil {
						return
					}
					for {
						f, err := c.Recv()
						if err != nil {
							return
						}
						echoQuery(f, c)
					}
				}()
			}
		}()
		return ln.Addr().String()
	}

	check := func(t *testing.T, s *Session, wantVersion int) {
		t.Helper()
		if got := s.WireVersion(); got != wantVersion {
			t.Fatalf("negotiated v%d, want v%d", got, wantVersion)
		}
		reply, err := s.RoundTrip(t.Context(), Frame{Type: MsgQuery, Body: QueryMsg{
			Query: model.Query{ID: 3, Objects: []model.ObjectID{1}, Cost: 3},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res := reply.Body.(QueryResultMsg); res.QueryID != 3 {
			t.Fatalf("reply = %+v", res)
		}
	}

	t.Run("v3-client-v3-server", func(t *testing.T) {
		s, err := DialSession(startServer(t, 0), "client", SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		check(t, s, ProtoV3)
	})
	t.Run("v2-pinned-client-v3-server", func(t *testing.T) {
		s, err := DialSession(startServer(t, 0), "client", SessionConfig{WireVersion: ProtoV2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		check(t, s, ProtoV2)
	})
	t.Run("v3-client-v2-pinned-server", func(t *testing.T) {
		s, err := DialSession(startServer(t, ProtoV2), "client", SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		check(t, s, ProtoV2)
	})
	t.Run("v1-capped-server-clamps-to-v2", func(t *testing.T) {
		// An operator cap below v2 clamps: the cap selects the stream
		// codec, and capping below v2 would suppress the HelloAck a
		// v2+ dialer is blocked waiting for.
		s, err := DialSession(startServer(t, ProtoV1), "client", SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		check(t, s, ProtoV2)
	})
	t.Run("lockstep-client-v3-server", func(t *testing.T) {
		s, err := DialSession(startServer(t, 0), "client", SessionConfig{Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		check(t, s, ProtoV1)
	})
}
