package netproto

import "sync"

// DefaultMuxWorkers bounds per-connection request concurrency so one
// misbehaving peer cannot spawn unbounded goroutines.
const DefaultMuxWorkers = 64

// ServeMux is the server half of protocol v2: it reads request frames
// until the stream closes, dispatches each to handle on a bounded
// worker pool, and sends the reply stamped with the request's
// correlation ID (Conn.Send serializes concurrent replies onto the
// socket). It returns nil on orderly shutdown. workers <= 0 means
// DefaultMuxWorkers; logf may be nil.
func ServeMux(c *Conn, workers int, handle func(Frame) Frame, logf func(format string, args ...any)) error {
	if workers <= 0 {
		workers = DefaultMuxWorkers
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, workers)
	for {
		f, err := c.Recv()
		if err != nil {
			if IsClosed(err) {
				return nil
			}
			return err
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(f Frame) {
			defer wg.Done()
			defer func() { <-sem }()
			reply := handle(f)
			reply.RequestID = f.RequestID
			if err := c.Send(reply); err != nil && !IsClosed(err) {
				// The send side is broken (poisoned encoder or I/O
				// failure): abort the stream so the Recv loop exits
				// instead of leaving a zombie connection that reads
				// requests it can never answer.
				logf("netproto: reply %d: %v (aborting connection)", f.RequestID, err)
				c.Abort()
			}
		}(f)
	}
}
