package netproto

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestRoundTripFrames(t *testing.T) {
	client, server := pipePair(t)
	frames := []Frame{
		{Type: MsgHello, Body: Hello{Role: "cache"}},
		{Type: MsgQuery, Body: QueryMsg{Query: model.Query{
			ID: 7, Objects: []model.ObjectID{1, 2}, Cost: 5 * cost.MB,
			Tolerance: time.Minute, Time: 3 * time.Second,
		}}},
		{Type: MsgShipUpdates, Body: ShipUpdatesMsg{IDs: []model.UpdateID{1, 2, 3}}},
		{Type: MsgLoadObject, Body: LoadObjectMsg{Object: 42}},
		{Type: MsgInvalidate, Body: InvalidateMsg{Update: model.Update{
			ID: 9, Object: 3, Cost: cost.MB, Time: time.Second,
		}}},
		{Type: MsgError, Body: ErrorMsg{Message: "boom"}},
	}
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := client.Send(f); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range frames {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Fatalf("frame %d type = %s, want %s", i, got.Type, want.Type)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestQueryBodySurvivesRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	q := model.Query{
		ID: 11, Objects: []model.ObjectID{5}, Cost: 123456,
		Tolerance: model.AnyStaleness, Time: 99 * time.Second,
	}
	go func() {
		_ = client.Send(Frame{Type: MsgQuery, Body: QueryMsg{Query: q}})
	}()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	body, ok := got.Body.(QueryMsg)
	if !ok {
		t.Fatalf("body type %T", got.Body)
	}
	if body.Query.ID != q.ID || body.Query.Cost != q.Cost ||
		body.Query.Tolerance != q.Tolerance || len(body.Query.Objects) != 1 {
		t.Errorf("query mutated in transit: %+v", body.Query)
	}
}

func TestPayloadScale(t *testing.T) {
	s := PayloadScale{BytesPerGB: 1024}
	if got := s.PayloadLen(cost.GB); got != 1024 {
		t.Errorf("PayloadLen(1GB) = %d, want 1024", got)
	}
	if got := s.PayloadLen(cost.GB / 2); got != 512 {
		t.Errorf("PayloadLen(0.5GB) = %d, want 512", got)
	}
	if got := s.PayloadLen(1); got != 1 {
		t.Errorf("tiny logical sizes still get one byte, got %d", got)
	}
	if got := s.PayloadLen(0); got != 0 {
		t.Errorf("PayloadLen(0) = %d", got)
	}
	none := PayloadScale{}
	if got := none.PayloadLen(cost.GB); got != 0 {
		t.Errorf("zero scale must carry no payload, got %d", got)
	}
}

func TestPayloadScaleCapped(t *testing.T) {
	s := PayloadScale{BytesPerGB: MaxFrame}
	if got := s.PayloadLen(100 * cost.GB); got > MaxFrame/2 {
		t.Errorf("payload %d exceeds frame cap", got)
	}
}

func TestMakePayloadDeterministic(t *testing.T) {
	s := DefaultScale()
	a := MakePayload(s, 10*cost.GB, 7)
	b := MakePayload(s, 10*cost.GB, 7)
	c := MakePayload(s, 10*cost.GB, 8)
	if len(a) == 0 {
		t.Fatal("empty payload")
	}
	if string(a) != string(b) {
		t.Error("payload not deterministic for equal seeds")
	}
	if string(a) == string(c) {
		t.Error("payload identical across different seeds")
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	// Build a legitimate gob stream whose single frame exceeds
	// MaxFrame; Recv must abort rather than buffer it all.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	type frameBody struct { // mirrors the wire struct
		Type      MsgType
		RequestID uint64
		Body      any
	}
	huge := frameBody{Type: MsgObjectData, Body: ObjectDataMsg{
		Payload: make([]byte, MaxFrame+1),
	}}
	if err := enc.Encode(&huge); err != nil {
		t.Fatal(err)
	}
	conn := NewConn(readWriter{&buf})
	if _, err := conn.Recv(); err == nil {
		t.Error("oversized frame accepted")
	}
}

// readWriter adapts a reader into the ReadWriter NewConn wants.
type readWriter struct{ io.Reader }

func (readWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestMsgTypeString(t *testing.T) {
	if MsgQuery.String() != "query" || MsgObjectData.String() != "object-data" {
		t.Error("known message names wrong")
	}
	if MsgReshard.String() != "reshard" || MsgMigrateChunk.String() != "migrate-chunk" {
		t.Error("rebalance message names wrong")
	}
	if MsgType(200).String() != "msg(200)" {
		t.Error("unknown message rendering wrong")
	}
}

// TestRebalanceFramesRoundTrip pins the wire encoding of the live
// resize vocabulary: admin, reshard and migration frames survive a
// connection round trip with their bodies intact.
func TestRebalanceFramesRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	frames := []Frame{
		{Type: MsgAdminResize, Body: AdminResizeMsg{Shards: []string{"a:1", "b:2"}}},
		{Type: MsgRebalanceStatus, Body: RebalanceStatusMsg{
			Active: true, Phase: "migrate", Epoch: 3, From: 4, To: 8,
			MovedObjects: 17, MovedBytes: 9 * cost.GB, Completed: 2, LastError: "x",
		}},
		{Type: MsgReshard, Body: ReshardMsg{Epoch: 3, Owned: []model.ObjectID{1, 2, 9}}},
		{Type: MsgMigrateBegin, Body: MigrateBeginMsg{
			Epoch: 3, Dest: "c:3", Objects: []model.ObjectID{2, 9},
		}},
		{Type: MsgMigrateChunk, Body: MigrateChunkMsg{
			Epoch: 3,
			Objects: []MigratedObject{{
				Object:  model.Object{ID: 2, Size: cost.GB, Trixel: 77},
				Payload: []byte{1, 2, 3},
			}},
		}},
		{Type: MsgMigrateDone, Body: MigrateDoneMsg{Epoch: 3, Sent: 2, Imported: 2}},
	}
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := client.Send(f); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range frames {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Fatalf("frame %d: type %s, want %s", i, got.Type, want.Type)
		}
		switch body := got.Body.(type) {
		case AdminResizeMsg:
			if len(body.Shards) != 2 || body.Shards[1] != "b:2" {
				t.Errorf("admin-resize body = %+v", body)
			}
		case RebalanceStatusMsg:
			if body.Phase != "migrate" || body.MovedBytes != 9*cost.GB || body.Completed != 2 {
				t.Errorf("rebalance-status body = %+v", body)
			}
		case ReshardMsg:
			if body.Epoch != 3 || len(body.Owned) != 3 {
				t.Errorf("reshard body = %+v", body)
			}
		case MigrateBeginMsg:
			if body.Dest != "c:3" || len(body.Objects) != 2 {
				t.Errorf("migrate-begin body = %+v", body)
			}
		case MigrateChunkMsg:
			if len(body.Objects) != 1 || body.Objects[0].Object.Trixel != 77 ||
				len(body.Objects[0].Payload) != 3 {
				t.Errorf("migrate-chunk body = %+v", body)
			}
		case MigrateDoneMsg:
			if body.Sent != 2 || body.Imported != 2 {
				t.Errorf("migrate-done body = %+v", body)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
