// Package netproto defines Delta's wire protocol: length-prefixed,
// gob-encoded frames carrying the three data-communication mechanisms of
// the paper (query shipping, update shipping, object loading) plus the
// control-plane messages (invalidation notices, statistics).
//
// Protocol versions: v1 is lockstep — one request in flight per
// connection, replies in order, no handshake ack. v2 adds a RequestID
// correlation field to every frame and a version/feature handshake
// (Hello → HelloAck), so any number of requests can be in flight per
// connection and replies may arrive out of order. Servers negotiate
// down to the peer's version, so lockstep dialers keep working. Note
// that versioning governs request semantics, not stream encoding: v2
// also switched the wire to persistent gob streams, so binaries built
// from the pre-v2 tree (length-prefixed standalone gob messages) are
// not byte-compatible and must be rebuilt. See docs/PROTOCOL.md for
// the full frame format and role lifecycle.
//
// Payload scaling: the paper's traffic costs are logical data sizes; a
// laptop deployment cannot move hundreds of gigabytes, so messages carry
// a declared logical size plus a physically scaled payload (BytesPerGB
// configurable, see PayloadScale). Ledgers always account logical sizes,
// which is what every experiment reports.
package netproto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// MaxFrame bounds a frame's encoded size (16 MiB): large enough for any
// scaled payload, small enough to catch stream corruption early.
const MaxFrame = 16 << 20

// Protocol versions negotiated in the Hello/HelloAck handshake.
const (
	// ProtoV1 is the original lockstep protocol: one outstanding
	// request per connection, replies strictly in order, no HelloAck.
	ProtoV1 = 1
	// ProtoV2 multiplexes: frames carry a RequestID, replies may be
	// reordered, and the server acknowledges the handshake.
	ProtoV2 = 2
	// ProtoV3 keeps v2's request semantics but switches the
	// post-handshake stream to the hand-rolled binary codec (see
	// codec_v3.go): length-prefixed frames, varint fields, pooled
	// buffers, no gob on the hot path. The handshake itself always
	// rides gob so every version negotiates over one vocabulary.
	ProtoV3 = 3
)

// NegotiateVersion returns the effective protocol version for a peer
// that announced the given version. Zero (a v1 peer's gob-decoded
// Hello has no Version field) negotiates to v1.
func NegotiateVersion(peer int) int {
	switch {
	case peer >= ProtoV3:
		return ProtoV3
	case peer == ProtoV2:
		return ProtoV2
	default:
		return ProtoV1
	}
}

// ServeHandshake completes the server half of a request-connection
// handshake after the Hello has been received: it negotiates against
// the peer's announced version (capped at maxVersion when positive —
// the -wire-version escape hatch), sends the HelloAck v2+ peers wait
// for, and switches the stream to the binary codec for v3 peers.
// Returns the negotiated version; the caller serves lockstep below v2.
//
// The cap clamps to v2, mirroring the dial side: it selects the stream
// codec, never the request semantics, and capping a v2+ peer below v2
// would suppress the HelloAck it is blocked waiting for. v1 is only
// ever negotiated when the peer itself announced it.
func ServeHandshake(c *Conn, hello Hello, maxVersion int) (int, error) {
	v := NegotiateVersion(hello.Version)
	if maxVersion > 0 && v > max(maxVersion, ProtoV2) {
		v = max(maxVersion, ProtoV2)
	}
	if v >= ProtoV2 {
		if err := c.Send(Frame{Type: MsgHelloAck, Body: HelloAck{Version: v}}); err != nil {
			return 0, err
		}
	}
	if v >= ProtoV3 {
		c.SetVersion(v)
	}
	return v, nil
}

// IsClosed reports whether err indicates an orderly or forced
// connection shutdown (EOF, a truncated frame on close, or use of a
// closed network connection). It is the shared replacement for
// string-matching "EOF" at every call site.
func IsClosed(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// IgnoreClosed nils an orderly-shutdown error (per IsClosed), which
// serve loops treat as a clean exit rather than a failure to report.
func IgnoreClosed(err error) error {
	if IsClosed(err) {
		return nil
	}
	return err
}

// ErrorFrame builds a MsgError reply from a format string.
func ErrorFrame(format string, args ...any) Frame {
	return Frame{Type: MsgError, Body: ErrorMsg{Message: fmt.Sprintf(format, args...)}}
}

// PayloadScale converts logical sizes to physical payload bytes.
type PayloadScale struct {
	// BytesPerGB is how many physical bytes represent one logical
	// gigabyte. Zero means no payload bytes at all (metadata only).
	BytesPerGB int64
}

// DefaultScale ships 4 KiB per logical gigabyte.
func DefaultScale() PayloadScale { return PayloadScale{BytesPerGB: 4 << 10} }

// PayloadLen returns the physical payload length for a logical size.
func (s PayloadScale) PayloadLen(logical cost.Bytes) int {
	if s.BytesPerGB <= 0 {
		return 0
	}
	n := int64(float64(logical) / float64(cost.GB) * float64(s.BytesPerGB))
	if n < 1 && logical > 0 {
		n = 1
	}
	if n > MaxFrame/2 {
		n = MaxFrame / 2
	}
	return int(n)
}

// MsgType discriminates frames.
type MsgType uint8

const (
	// MsgQuery ships a query from cache to repository.
	MsgQuery MsgType = iota + 1
	// MsgQueryResult returns a query's result.
	MsgQueryResult
	// MsgUpdateFeed pushes an update into the repository (data
	// pipeline → repository).
	MsgUpdateFeed
	// MsgShipUpdates requests outstanding updates by ID (cache →
	// repository).
	MsgShipUpdates
	// MsgUpdates carries shipped updates (repository → cache).
	MsgUpdates
	// MsgLoadObject requests a whole object (cache → repository).
	MsgLoadObject
	// MsgObjectData carries a loaded object (repository → cache).
	MsgObjectData
	// MsgInvalidate notifies the cache that an update arrived for an
	// object (control plane; not charged).
	MsgInvalidate
	// MsgStats requests / carries traffic statistics.
	MsgStats
	// MsgError carries a server-side failure.
	MsgError
	// MsgClientQuery is a client's query submission to the cache.
	MsgClientQuery
	// MsgHello introduces a connection and its role.
	MsgHello
	// MsgHelloAck acknowledges a v2 Hello with the negotiated
	// version (never sent to v1 peers).
	MsgHelloAck
	// MsgShardQuery ships one fragment of a scattered query from a
	// cluster router to the shard that owns the fragment's objects.
	MsgShardQuery
	// MsgClusterStats requests / carries the cluster-wide statistics
	// view (per-shard StatsMsg plus the aggregate).
	MsgClusterStats
	// MsgAdminResize asks a cluster router to resize the cluster to a
	// new shard list, live (admin client → router).
	MsgAdminResize
	// MsgRebalanceStatus requests / carries the router's rebalance
	// progress view (admin client → router).
	MsgRebalanceStatus
	// MsgReshard atomically swaps a cache shard's owned object set
	// during a live resize (router → shard).
	MsgReshard
	// MsgMigrateBegin commands a shard to stream its cached state for
	// the listed objects to a destination shard (router → source
	// shard).
	MsgMigrateBegin
	// MsgMigrateChunk carries one batch of migrated cached objects
	// (source shard → destination shard).
	MsgMigrateChunk
	// MsgMigrateDone closes a migration stream with its totals (source
	// shard → destination shard).
	MsgMigrateDone
	// MsgObjectBirth carries newly published data objects. It is both
	// the ingestion request (client/pipeline → cache/router → repository,
	// replied to with the accepted count) and the announcement the
	// repository broadcasts on the invalidation stream so caches and
	// routers extend their universes live.
	MsgObjectBirth
	// MsgBirthGrant is the router→shard ownership grant for a batch of
	// adopted births: one frame per shard per adoption round, however
	// many objects were born, instead of one MsgObjectBirth round trip
	// per object. The births already live at the repository (the grant
	// follows the repository's ack or announcement), so the shard admits
	// them directly without re-forwarding upstream.
	MsgBirthGrant
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgQuery: "query", MsgQueryResult: "query-result",
		MsgUpdateFeed: "update-feed", MsgShipUpdates: "ship-updates",
		MsgUpdates: "updates", MsgLoadObject: "load-object",
		MsgObjectData: "object-data", MsgInvalidate: "invalidate",
		MsgStats: "stats", MsgError: "error", MsgClientQuery: "client-query",
		MsgHello: "hello", MsgHelloAck: "hello-ack",
		MsgShardQuery: "shard-query", MsgClusterStats: "cluster-stats",
		MsgAdminResize: "admin-resize", MsgRebalanceStatus: "rebalance-status",
		MsgReshard: "reshard", MsgMigrateBegin: "migrate-begin",
		MsgMigrateChunk: "migrate-chunk", MsgMigrateDone: "migrate-done",
		MsgObjectBirth: "object-birth", MsgBirthGrant: "birth-grant",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Hello introduces a connection. v1 peers send only Role; v2 peers set
// Version (and optionally Features) and wait for a HelloAck.
type Hello struct {
	Role string // "cache", "client", "pipeline", "invalidations"
	// Version is the highest protocol version the peer speaks.
	// Zero means a v1 peer (the field predates versioning).
	Version int
	// Features lists optional capabilities the peer supports.
	// Reserved: no optional capability exists yet, so it is always
	// empty; it rides in the handshake so adding one later needs no
	// wire change.
	Features []string
}

// HelloAck completes a v2 handshake with the negotiated version.
// Features mirrors Hello's reserved field.
type HelloAck struct {
	Version  int
	Features []string
}

// SkyRegion is an optional spherical-cap restriction riding a query:
// clients that know the sky region but not the object universe leave
// Query.Objects empty and set the region instead, and the serving node
// (cache or cluster router) resolves it to B(q) through its memoized
// HTM cover cache. The zero value means "no region".
type SkyRegion struct {
	// RA and Dec are the cap center in degrees.
	RA  float64
	Dec float64
	// RadiusDeg is the cap radius in degrees; zero or negative means
	// the region is absent.
	RadiusDeg float64
}

// Empty reports whether the region is absent.
func (r SkyRegion) Empty() bool { return r.RadiusDeg <= 0 }

// QueryMsg ships a query. Region optionally carries the query's sky
// cap for server-side object resolution (see SkyRegion).
type QueryMsg struct {
	Query  model.Query
	Region SkyRegion
	// TraceID, when nonzero, asks every node on the query's path to
	// record TraceSpans for this query (see QueryResultMsg.Spans and
	// the obs package's trace ring). It rides the v3 frame tail —
	// absent on older frames, which decode it as zero (untraced) — and
	// gob simply ignores it on v2 streams.
	TraceID uint64
}

// QueryResultMsg returns a result with a scaled payload.
type QueryResultMsg struct {
	QueryID model.QueryID
	// Logical is ν(q), the result's logical size.
	Logical cost.Bytes
	// Rows is a small sample of result rows (for demos; may be empty).
	Rows []ResultRow
	// Payload is the scaled physical payload.
	Payload []byte
	// Source says who answered: "cache" or "repository" ("mixed" for
	// a scatter/gather answer assembled from both).
	Source string
	// Elapsed is the server-side processing time.
	Elapsed time.Duration
	// Degraded marks a scatter/gather answer assembled without every
	// fragment: one or more owning shards failed, so the result covers
	// only the surviving shards' objects. Single-node answers never
	// set it.
	Degraded bool
	// MissingShards lists the shard indices whose fragments failed
	// when Degraded is set.
	MissingShards []int
	// TraceID echoes the request's trace ID when the query was traced
	// (zero otherwise); Spans carries every span the answering node
	// (and, through a router, every shard it scattered to) recorded
	// for the query. Both ride the v3 frame tail: older peers neither
	// send nor expect them.
	TraceID uint64
	Spans   []TraceSpan
}

// TraceSpan is one hop's timing record for a traced query. Each node a
// traced query touches appends one span per unit of work it did: a
// router records a "router" span for the scatter/gather, every shard a
// "fragment" span (or a cache a "cache" span for a direct client
// query), and a repository a "repository" span when the query (or part
// of it) was shipped upstream. The client reassembles the fan-out tree
// from Name nesting; see docs/OBSERVABILITY.md for semantics.
type TraceSpan struct {
	// Name classifies the hop: "router", "fragment", "cache",
	// "repository", or "load".
	Name string
	// Node identifies the recording node, typically its listen
	// address.
	Node string
	// Shard is the recording shard's index in the cluster topology, or
	// -1 when the node is not a shard (repository, single cache,
	// router).
	Shard int
	// Epoch is the routing epoch the query was scattered under (router
	// spans; zero elsewhere).
	Epoch int
	// Fragments is the scatter width: on a router span, how many
	// fragments the query split into; on a fragment span, the width
	// the fragment arrived annotated with.
	Fragments int
	// Objects is how many objects the hop's (fragment of the) query
	// named.
	Objects int
	// Source is the hop's answer source ("cache", "repository",
	// "mixed"); empty when the hop is not an answer (e.g. "load").
	Source string
	// Detail carries hop-specific notes, comma-joined key=value pairs
	// (e.g. "cover-cache=hit", "rerouted=1").
	Detail string
	// Elapsed is the hop's processing time.
	Elapsed time.Duration
}

// ResultRow is one row of a demo result set.
type ResultRow struct {
	ObjID int64
	RA    float64
	Dec   float64
	R     float64
}

// UpdateFeedMsg pushes one update into the repository.
type UpdateFeedMsg struct {
	Update model.Update
}

// ShipUpdatesMsg requests specific outstanding updates.
type ShipUpdatesMsg struct {
	IDs []model.UpdateID
}

// UpdatesMsg carries shipped updates.
type UpdatesMsg struct {
	Updates []model.Update
	// Payload is the scaled physical payload covering all updates.
	Payload []byte
}

// LoadObjectMsg requests a full object copy.
type LoadObjectMsg struct {
	Object model.ObjectID
}

// ObjectDataMsg carries a full object copy.
type ObjectDataMsg struct {
	Object model.Object
	// FreshAsOf is the repository time of the newest update included.
	FreshAsOf time.Duration
	Payload   []byte
}

// InvalidateMsg tells the cache an object has a new outstanding update.
type InvalidateMsg struct {
	Update model.Update
}

// StatsMsg carries a ledger snapshot.
type StatsMsg struct {
	Ledger  cost.Snapshot
	Cached  []model.ObjectID
	Policy  string
	Queries int64
	AtCache int64
	Shipped int64
	// DroppedInvalidations counts invalidation notices that were
	// discarded rather than applied: at the repository, notices a full
	// subscriber buffer forced it to drop (the non-blocking pipeline
	// send); at the cache, notices whose policy application failed.
	// Dropped notices cost freshness, not correctness; this makes
	// them observable.
	DroppedInvalidations int64
	// DedupedLoads counts object loads the cache's per-object
	// singleflight collapsed into an already-running flight instead of
	// issuing a second repository round trip.
	DedupedLoads int64
	// MigratedIn / MigratedOut count cached objects this node adopted
	// from, or streamed to, a sibling shard during live cluster
	// resizes (warm migration; never charged to the repository
	// ledger).
	MigratedIn  int64
	MigratedOut int64
	// ObjectsBorn counts newly published objects this node has admitted
	// into its universe since start (live repository growth).
	ObjectsBorn int64
	// CoverCacheHits / CoverCacheMisses count sky-region → object-set
	// resolutions answered from the node's memoized HTM cover cache
	// versus recomputed via partition.Cover (repeated sky-region
	// queries hit; novel regions miss).
	CoverCacheHits   int64
	CoverCacheMisses int64
	// SnapshotAge is how long ago the node's durability layer landed
	// its last warm-state snapshot (zero when persistence is off); the
	// journal covers everything since.
	SnapshotAge time.Duration
	// JournalRecords counts records appended to the durability journal
	// since the last snapshot (bounds what a crash right now replays).
	JournalRecords int64
	// RecoveredWarm counts residents the node re-adopted from disk at
	// its last startup (via the policy's Warm carry-over boundary);
	// zero for a cold start.
	RecoveredWarm int64
	// Replicas is the replication factor K the node serves under (how
	// many shards hold each object); 1 for an unreplicated deployment.
	// On a cluster aggregate it is the cluster's K, not a sum.
	Replicas int64
	// ResultCacheHits / ResultCacheMisses count router-tier query
	// signatures answered from the router's invalidation-aware result
	// cache versus scattered to the shards. Always zero on a single
	// cache (the result cache is a routing-tier structure).
	ResultCacheHits   int64
	ResultCacheMisses int64
	// CoalescedQueries counts queries that joined an identical
	// in-flight query's scatter (singleflight followers) instead of
	// scattering themselves.
	CoalescedQueries int64
	// GrantBatches counts batched birth-grant frames (MsgBirthGrant)
	// the router shipped to shards; each may carry many births.
	GrantBatches int64
}

// ShardQueryMsg is the router→shard leg of a scattered query: the
// fragment's Query.Objects are restricted to the receiving shard's
// owned set. Shard and Fragments are routing metadata so the shard
// (and its logs/traces) can tell fragments from whole client queries.
type ShardQueryMsg struct {
	Query model.Query
	// Shard is the receiving shard's index in the cluster topology.
	Shard int
	// Fragments is how many fragments the original query was split
	// into (1 for a query wholly owned by one shard).
	Fragments int
	// TraceID propagates the client query's trace ID to the shard (see
	// QueryMsg.TraceID); rides the v3 frame tail.
	TraceID uint64
}

// ShardStats is one shard's slice of a cluster statistics view.
type ShardStats struct {
	Shard int
	Addr  string
	// Alive reports whether the shard answered the stats probe; Err
	// carries the failure when it did not.
	Alive bool
	Err   string
	Stats StatsMsg
}

// ClusterStatsMsg carries the cluster-wide statistics view: every
// shard's StatsMsg plus the aggregate a single-cache client would see.
// A single (unsharded) cache answers with itself as the only shard.
type ClusterStatsMsg struct {
	Shards    []ShardStats
	Aggregate StatsMsg
	// Degraded is set when at least one shard failed to report.
	Degraded bool
}

// AdminResizeMsg asks a router to take the cluster to a new shard
// list, live. Shards is the complete new shard address list in new
// index order; addresses already in the cluster keep their sessions
// (and, where possible, their cached state), new addresses are dialed,
// and addresses no longer listed are drained out of the routing table.
// The router replies with the final RebalanceStatusMsg of the resize.
type AdminResizeMsg struct {
	Shards []string
}

// RebalanceStatusMsg requests / carries the router's rebalance view.
type RebalanceStatusMsg struct {
	// Active reports a resize in flight; Phase names its stage
	// ("widen", "migrate", "flip", "narrow", or "idle"/"done").
	Active bool
	Phase  string
	// Epoch is the routing epoch: it increments once per completed
	// resize, and queries are double-routed while it transitions.
	Epoch int
	// From and To are the shard counts of the transition (or of the
	// last completed one).
	From, To int
	// MovedObjects / MovedBytes total the warm-migrated cached state.
	MovedObjects int64
	MovedBytes   cost.Bytes
	// Completed counts finished resizes; LastError carries the most
	// recent failure ("" when clean).
	Completed int64
	LastError string
}

// ReshardMsg atomically replaces a shard's owned object set (router →
// shard) during a live resize: the shard rebuilds its object filter
// and policy universe around exactly Owned, carrying still-owned
// resident objects over warm and dropping the rest. The reply echoes
// the message with Resident/Dropped filled in.
type ReshardMsg struct {
	Epoch int
	Owned []model.ObjectID
	// Universe carries the metadata of the Owned objects, so a shard
	// can take ownership of objects born after it spawned (a fresh
	// shard joining a grown cluster has never seen them).
	Universe []model.Object
	// Resident and Dropped are reply fields: how many cached objects
	// survived the swap and how many were discarded as no longer
	// owned.
	Resident int
	Dropped  int
	// Replicas is the replication factor K of the epoch's ownership
	// (Owned spans every replica rank, not just primaries). Rides the
	// v3 frame tail; 0 means unspecified and leaves the shard's K
	// unchanged.
	Replicas int
}

// MigrateBeginMsg commands a source shard to stream its cached state
// for Objects to the shard at Dest (router → source). The source
// replies after the stream completes, with Moved/MovedBytes filled in
// (objects it did not hold resident are simply skipped — the
// destination will load them cold on first use).
type MigrateBeginMsg struct {
	Epoch   int
	Dest    string
	Objects []model.ObjectID
	// Moved and MovedBytes are reply fields.
	Moved      int64
	MovedBytes cost.Bytes
}

// MigratedObject is one cached object's state in flight between
// shards: its metadata plus the scaled physical payload.
type MigratedObject struct {
	Object  model.Object
	Payload []byte
}

// MigrateChunkMsg carries one batch of migrated objects (source →
// destination shard). The reply echoes the message with Imported set
// to how many the destination adopted.
type MigrateChunkMsg struct {
	Epoch    int
	Objects  []MigratedObject
	Imported int
}

// MigrateDoneMsg closes a migration stream (source → destination
// shard) with its totals: Sent is how many objects the source
// streamed, Imported sums the destination's per-chunk ack counts. The
// destination echoes the message as the acknowledgement.
type MigrateDoneMsg struct {
	Epoch    int
	Sent     int64
	Imported int64
}

// ObjectBirthMsg carries newly published objects: full metadata plus
// sky position, so every receiver (repository catalog, cache policy
// universe, router ownership map) can place the newborn without a
// shared coordination service. As a request, the reply echoes the
// frame with Accepted set to how many births the receiver ingested
// (already-known births are skipped, making publication idempotent);
// on the invalidation stream it is a one-way announcement.
type ObjectBirthMsg struct {
	Births []model.Birth
	// Accepted is a reply field: how many births were newly ingested.
	Accepted int
}

// BirthGrantMsg grants a batch of adopted births to one owning shard
// (router → shard). Unlike MsgObjectBirth, the receiving shard does
// not forward the births to the repository — the router grants only
// births the repository has already acknowledged or announced — so a
// grant costs one router→shard round trip regardless of batch size.
// The reply echoes the frame with Accepted set to how many births the
// shard newly admitted (already-known births are skipped; grants are
// idempotent).
type BirthGrantMsg struct {
	Births []model.Birth
	// Accepted is a reply field: how many births were newly admitted.
	Accepted int
	// Epoch is the routing epoch the grant extends, advisory logging
	// context only (births extend an epoch in place; they never flip
	// it). Rides the v3 frame tail; 0 means unspecified.
	Epoch int
}

// ErrorMsg carries a failure description.
type ErrorMsg struct {
	Message string
}

// Frame is the unit of transmission. RequestID correlates a v2+ reply
// with its request; it is zero on v1 connections and one-way streams.
type Frame struct {
	Type      MsgType
	RequestID uint64
	Body      any
	// Release, when non-nil, is invoked exactly once by Conn.Send after
	// the frame's bytes have been staged onto the connection (whether
	// the send succeeded or not). It is how pooled payload buffers
	// (NewPayload) return to their pool without the handler tracking
	// the send's completion. Local metadata only — never on the wire.
	Release func()
}

func init() {
	// gob needs concrete types registered for the Frame.Body interface.
	gob.Register(Hello{})
	gob.Register(HelloAck{})
	gob.Register(QueryMsg{})
	gob.Register(QueryResultMsg{})
	gob.Register(UpdateFeedMsg{})
	gob.Register(ShipUpdatesMsg{})
	gob.Register(UpdatesMsg{})
	gob.Register(LoadObjectMsg{})
	gob.Register(ObjectDataMsg{})
	gob.Register(InvalidateMsg{})
	gob.Register(StatsMsg{})
	gob.Register(ErrorMsg{})
	gob.Register(ShardQueryMsg{})
	gob.Register(ClusterStatsMsg{})
	gob.Register(AdminResizeMsg{})
	gob.Register(RebalanceStatusMsg{})
	gob.Register(ReshardMsg{})
	gob.Register(MigrateBeginMsg{})
	gob.Register(MigrateChunkMsg{})
	gob.Register(MigrateDoneMsg{})
	gob.Register(ObjectBirthMsg{})
	gob.Register(BirthGrantMsg{})
}

// Conn wraps a stream with framed messages. Connections start on the
// gob codec (shared by v1 and v2: persistent encoder/decoder streams,
// type descriptors once per connection); a v3 handshake switches both
// directions to the binary codec (codec_v3.go) via SetVersion. Send is
// safe for any number of concurrent writer goroutines (frames are
// serialized internally — this is what lets v2+ servers reply from
// per-request workers over one socket); Recv must be called from a
// single reader goroutine.
type Conn struct {
	sendMu  sync.Mutex // serializes whole frames onto bw
	bw      *bufio.Writer
	sendBuf bytes.Buffer // staging area so oversized frames die here, not at the peer
	enc     *gob.Encoder // writes into sendBuf
	sendErr error        // sticky: a discarded encode desyncs the gob stream

	lim    *limitReader
	dec    *gob.Decoder
	closer io.Closer // underlying stream, when closable (see Abort)

	// version is the stream codec: 0 means the gob framing v1/v2
	// share, ProtoV3 means binary frames. Written only by SetVersion at
	// a handshake boundary (see its contract).
	version int
	// recvBuf is the v3 receive scratch, reused across Recvs; decoded
	// frames never alias it (codec_v3.go's ownership rule).
	recvBuf []byte
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{
		bw:  bufio.NewWriterSize(rw, 64<<10),
		lim: &limitReader{r: bufio.NewReaderSize(rw, 64<<10)},
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	c.enc = gob.NewEncoder(&c.sendBuf)
	c.dec = gob.NewDecoder(c.lim)
	return c
}

// Abort force-closes the underlying stream (when it is closable),
// unblocking a concurrent Recv. Used when the send side is poisoned
// and the connection must not linger as a zombie that reads requests
// it can never answer.
func (c *Conn) Abort() {
	if c.closer != nil {
		c.closer.Close()
	}
}

// SetVersion switches the connection's stream codec: ProtoV3 selects
// the binary framing, anything lower the gob framing v1/v2 share. It
// must be called at a frame boundary with no Send or Recv in flight —
// in practice only the handshake owner calls it (ServeHandshake on the
// accept side, DialSession on the dial side), immediately after the
// HelloAck crosses, so both ends switch at the same stream position.
func (c *Conn) SetVersion(v int) { c.version = v }

// Version reports the stream codec version: ProtoV3 after a v3
// handshake upgraded the connection, 0 for the gob framing v1 and v2
// share.
func (c *Conn) Version() int { return c.version }

// Send writes one frame. Frames over MaxFrame are rejected here, at
// the sender, before any bytes hit the wire — shipping one would
// force the receiver to tear down the whole multiplexed connection.
// On the gob codec a rejected or failed encode poisons the connection
// for sending (the persistent encoder's type-descriptor state can no
// longer be trusted); the v3 codec stages frames fully before writing,
// so a failed encode leaves the stream clean. Receiving is unaffected
// either way. A non-nil f.Release is invoked exactly once before Send
// returns.
func (c *Conn) Send(f Frame) error {
	if f.Release != nil {
		defer f.Release()
	}
	if c.version >= ProtoV3 {
		return c.sendV3(f)
	}
	var body frameBody
	body.Type = f.Type
	body.RequestID = f.RequestID
	body.Body = f.Body
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendErr != nil {
		return c.sendErr
	}
	c.sendBuf.Reset()
	if err := c.enc.Encode(&body); err != nil {
		c.sendErr = fmt.Errorf("netproto: encode %s: %w", f.Type, err)
		return c.sendErr
	}
	if c.sendBuf.Len() > MaxFrame {
		c.sendErr = fmt.Errorf("netproto: frame %s too large (%d bytes)", f.Type, c.sendBuf.Len())
		return c.sendErr
	}
	if _, err := c.bw.Write(c.sendBuf.Bytes()); err != nil {
		return fmt.Errorf("netproto: write %s: %w", f.Type, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("netproto: flush %s: %w", f.Type, err)
	}
	return nil
}

// sendV3 stages one binary frame in a pooled scratch buffer (encoding
// happens outside the send lock, so concurrent writers only serialize
// on the actual socket write) and flushes it.
func (c *Conn) sendV3(f Frame) error {
	bufp := encPool.Get().(*[]byte)
	e := encBuf{b: (*bufp)[:0]}
	e.b = append(e.b, 0, 0, 0, 0) // length prefix, patched below
	e.u8(byte(f.Type))
	e.uvarint(f.RequestID)
	err := encodeBodyV3(&e, f.Type, f.Body)
	if err == nil && len(e.b)-4 > MaxFrame {
		err = fmt.Errorf("netproto: frame %s too large (%d bytes)", f.Type, len(e.b)-4)
	}
	var werr, ferr error
	if err == nil {
		binary.LittleEndian.PutUint32(e.b[:4], uint32(len(e.b)-4))
		c.sendMu.Lock()
		if c.sendErr != nil {
			err = c.sendErr
		} else {
			_, werr = c.bw.Write(e.b)
			if werr == nil {
				ferr = c.bw.Flush()
			}
		}
		c.sendMu.Unlock()
	}
	*bufp = e.b[:0]
	encPool.Put(bufp)
	switch {
	case err != nil:
		return err
	case werr != nil:
		return fmt.Errorf("netproto: write %s: %w", f.Type, werr)
	case ferr != nil:
		return fmt.Errorf("netproto: flush %s: %w", f.Type, ferr)
	}
	return nil
}

// Recv reads one frame. A frame whose wire size exceeds MaxFrame
// aborts the stream.
func (c *Conn) Recv() (Frame, error) {
	if c.version >= ProtoV3 {
		return c.recvV3()
	}
	c.lim.n = 0
	var fb frameBody
	if err := c.dec.Decode(&fb); err != nil {
		if err == io.EOF {
			return Frame{}, err // passes through for clean shutdown
		}
		return Frame{}, fmt.Errorf("netproto: decode frame: %w", err)
	}
	return Frame{Type: fb.Type, RequestID: fb.RequestID, Body: fb.Body}, nil
}

// recvV3 reads one binary frame into the per-connection scratch buffer
// and decodes it; the decoded frame owns all of its memory, so callers
// may hold it across later Recvs.
func (c *Conn) recvV3() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.lim.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, err // clean shutdown between frames
		}
		return Frame{}, fmt.Errorf("netproto: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return Frame{}, fmt.Errorf("netproto: oversized frame (%d bytes, max %d)", n, MaxFrame)
	}
	if cap(c.recvBuf) < int(n) {
		c.recvBuf = make([]byte, n)
	}
	buf := c.recvBuf[:n]
	if _, err := io.ReadFull(c.lim.r, buf); err != nil {
		return Frame{}, fmt.Errorf("netproto: read frame body: %w", err)
	}
	d := decBuf{b: buf}
	t := MsgType(d.u8())
	reqID := d.uvarint()
	if d.err != nil {
		return Frame{}, d.err
	}
	body, err := decodeBodyV3(&d, t)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Type: t, RequestID: reqID, Body: body}, nil
}

// frameBody is the gob-encoded frame content. gob tolerates the
// RequestID field being absent on the wire (v1 peers), decoding it as
// zero, so the two versions share one frame format.
type frameBody struct {
	Type      MsgType
	RequestID uint64
	Body      any
}

// limitReader bounds how many bytes a single Recv may consume,
// catching stream corruption (a garbage length would otherwise make
// gob allocate without limit) before it allocates. It implements
// io.ByteReader so gob uses it directly — otherwise gob wraps it in
// its own bufio.Reader whose read-ahead past the message boundary
// would be mischarged to the current frame.
type limitReader struct {
	r *bufio.Reader
	n int
}

func (l *limitReader) Read(p []byte) (int, error) {
	remaining := MaxFrame - l.n
	if remaining <= 0 {
		return 0, fmt.Errorf("netproto: oversized frame (>%d bytes)", MaxFrame)
	}
	if len(p) > remaining {
		p = p[:remaining]
	}
	n, err := l.r.Read(p)
	l.n += n
	return n, err
}

func (l *limitReader) ReadByte() (byte, error) {
	if l.n >= MaxFrame {
		return 0, fmt.Errorf("netproto: oversized frame (>%d bytes)", MaxFrame)
	}
	b, err := l.r.ReadByte()
	if err == nil {
		l.n++
	}
	return b, err
}

// MakePayload builds a deterministic pseudo-payload of the scaled size
// for a logical transfer. The content is reproducible from the seed so
// integration tests can verify integrity end to end.
func MakePayload(scale PayloadScale, logical cost.Bytes, seed int64) []byte {
	n := scale.PayloadLen(logical)
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	fillPayload(out, seed)
	return out
}

// fillPayload writes the deterministic pseudo-payload content shared
// by MakePayload and NewPayload.
func fillPayload(out []byte, seed int64) {
	state := uint64(seed)*2654435761 + 1
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = byte(state >> 56)
	}
}

// payloadPool recycles result-payload buffers for the hot reply path
// (query results, shipped updates, object loads), so a server under
// fan-out stops allocating a fresh payload per fragment.
var payloadPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

// NewPayload builds the same deterministic pseudo-payload as
// MakePayload, but in a pooled buffer. The returned release function
// (nil when the payload is empty) returns the buffer to the pool; set
// it as the reply Frame's Release so Conn.Send recycles the buffer the
// moment the bytes are staged. The payload must not be retained after
// release.
func NewPayload(scale PayloadScale, logical cost.Bytes, seed int64) (payload []byte, release func()) {
	n := scale.PayloadLen(logical)
	if n == 0 {
		return nil, nil
	}
	bufp := payloadPool.Get().(*[]byte)
	if cap(*bufp) < n {
		*bufp = make([]byte, 0, n)
	}
	out := (*bufp)[:n]
	fillPayload(out, seed)
	return out, func() {
		*bufp = out[:0]
		payloadPool.Put(bufp)
	}
}
