// Package netproto defines Delta's wire protocol: length-prefixed,
// gob-encoded frames carrying the three data-communication mechanisms of
// the paper (query shipping, update shipping, object loading) plus the
// control-plane messages (invalidation notices, statistics).
//
// Payload scaling: the paper's traffic costs are logical data sizes; a
// laptop deployment cannot move hundreds of gigabytes, so messages carry
// a declared logical size plus a physically scaled payload (BytesPerGB
// configurable, see PayloadScale). Ledgers always account logical sizes,
// which is what every experiment reports.
package netproto

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// MaxFrame bounds a frame's encoded size (16 MiB): large enough for any
// scaled payload, small enough to catch stream corruption early.
const MaxFrame = 16 << 20

// PayloadScale converts logical sizes to physical payload bytes.
type PayloadScale struct {
	// BytesPerGB is how many physical bytes represent one logical
	// gigabyte. Zero means no payload bytes at all (metadata only).
	BytesPerGB int64
}

// DefaultScale ships 4 KiB per logical gigabyte.
func DefaultScale() PayloadScale { return PayloadScale{BytesPerGB: 4 << 10} }

// PayloadLen returns the physical payload length for a logical size.
func (s PayloadScale) PayloadLen(logical cost.Bytes) int {
	if s.BytesPerGB <= 0 {
		return 0
	}
	n := int64(float64(logical) / float64(cost.GB) * float64(s.BytesPerGB))
	if n < 1 && logical > 0 {
		n = 1
	}
	if n > MaxFrame/2 {
		n = MaxFrame / 2
	}
	return int(n)
}

// MsgType discriminates frames.
type MsgType uint8

const (
	// MsgQuery ships a query from cache to repository.
	MsgQuery MsgType = iota + 1
	// MsgQueryResult returns a query's result.
	MsgQueryResult
	// MsgUpdateFeed pushes an update into the repository (data
	// pipeline → repository).
	MsgUpdateFeed
	// MsgShipUpdates requests outstanding updates by ID (cache →
	// repository).
	MsgShipUpdates
	// MsgUpdates carries shipped updates (repository → cache).
	MsgUpdates
	// MsgLoadObject requests a whole object (cache → repository).
	MsgLoadObject
	// MsgObjectData carries a loaded object (repository → cache).
	MsgObjectData
	// MsgInvalidate notifies the cache that an update arrived for an
	// object (control plane; not charged).
	MsgInvalidate
	// MsgStats requests / carries traffic statistics.
	MsgStats
	// MsgError carries a server-side failure.
	MsgError
	// MsgClientQuery is a client's query submission to the cache.
	MsgClientQuery
	// MsgHello introduces a connection and its role.
	MsgHello
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgQuery: "query", MsgQueryResult: "query-result",
		MsgUpdateFeed: "update-feed", MsgShipUpdates: "ship-updates",
		MsgUpdates: "updates", MsgLoadObject: "load-object",
		MsgObjectData: "object-data", MsgInvalidate: "invalidate",
		MsgStats: "stats", MsgError: "error", MsgClientQuery: "client-query",
		MsgHello: "hello",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Hello introduces a connection.
type Hello struct {
	Role string // "cache", "client", "pipeline"
}

// QueryMsg ships a query.
type QueryMsg struct {
	Query model.Query
}

// QueryResultMsg returns a result with a scaled payload.
type QueryResultMsg struct {
	QueryID model.QueryID
	// Logical is ν(q), the result's logical size.
	Logical cost.Bytes
	// Rows is a small sample of result rows (for demos; may be empty).
	Rows []ResultRow
	// Payload is the scaled physical payload.
	Payload []byte
	// Source says who answered: "cache" or "repository".
	Source string
	// Elapsed is the server-side processing time.
	Elapsed time.Duration
}

// ResultRow is one row of a demo result set.
type ResultRow struct {
	ObjID int64
	RA    float64
	Dec   float64
	R     float64
}

// UpdateFeedMsg pushes one update into the repository.
type UpdateFeedMsg struct {
	Update model.Update
}

// ShipUpdatesMsg requests specific outstanding updates.
type ShipUpdatesMsg struct {
	IDs []model.UpdateID
}

// UpdatesMsg carries shipped updates.
type UpdatesMsg struct {
	Updates []model.Update
	// Payload is the scaled physical payload covering all updates.
	Payload []byte
}

// LoadObjectMsg requests a full object copy.
type LoadObjectMsg struct {
	Object model.ObjectID
}

// ObjectDataMsg carries a full object copy.
type ObjectDataMsg struct {
	Object model.Object
	// FreshAsOf is the repository time of the newest update included.
	FreshAsOf time.Duration
	Payload   []byte
}

// InvalidateMsg tells the cache an object has a new outstanding update.
type InvalidateMsg struct {
	Update model.Update
}

// StatsMsg carries a ledger snapshot.
type StatsMsg struct {
	Ledger  cost.Snapshot
	Cached  []model.ObjectID
	Policy  string
	Queries int64
	AtCache int64
	Shipped int64
}

// ErrorMsg carries a failure description.
type ErrorMsg struct {
	Message string
}

// Frame is the unit of transmission.
type Frame struct {
	Type MsgType
	Body any
}

func init() {
	// gob needs concrete types registered for the Frame.Body interface.
	gob.Register(Hello{})
	gob.Register(QueryMsg{})
	gob.Register(QueryResultMsg{})
	gob.Register(UpdateFeedMsg{})
	gob.Register(ShipUpdatesMsg{})
	gob.Register(UpdatesMsg{})
	gob.Register(LoadObjectMsg{})
	gob.Register(ObjectDataMsg{})
	gob.Register(InvalidateMsg{})
	gob.Register(StatsMsg{})
	gob.Register(ErrorMsg{})
}

// Conn wraps a stream with framed gob encoding. It is safe for one
// reader and one writer goroutine concurrently, but not for multiple
// concurrent writers.
type Conn struct {
	rw io.ReadWriter
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReaderSize(rw, 64<<10),
		bw: bufio.NewWriterSize(rw, 64<<10),
	}
}

// Send writes one frame.
func (c *Conn) Send(f Frame) error {
	var body frameBody
	body.Type = f.Type
	body.Body = f.Body
	var buf lenBuffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&body); err != nil {
		return fmt.Errorf("netproto: encode %s: %w", f.Type, err)
	}
	if buf.Len() > MaxFrame {
		return fmt.Errorf("netproto: frame %s too large (%d bytes)", f.Type, buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: write header: %w", err)
	}
	if _, err := c.bw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("netproto: write body: %w", err)
	}
	return c.bw.Flush()
}

// Recv reads one frame.
func (c *Conn) Recv() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("netproto: oversized frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return Frame{}, fmt.Errorf("netproto: read body: %w", err)
	}
	var fb frameBody
	dec := gob.NewDecoder(&byteReader{b: body})
	if err := dec.Decode(&fb); err != nil {
		return Frame{}, fmt.Errorf("netproto: decode frame: %w", err)
	}
	return Frame{Type: fb.Type, Body: fb.Body}, nil
}

// frameBody is the gob-encoded frame content.
type frameBody struct {
	Type MsgType
	Body any
}

// lenBuffer is a minimal append-only buffer (avoids importing bytes just
// for this).
type lenBuffer struct {
	b []byte
}

func (l *lenBuffer) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

func (l *lenBuffer) Len() int      { return len(l.b) }
func (l *lenBuffer) Bytes() []byte { return l.b }

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// MakePayload builds a deterministic pseudo-payload of the scaled size
// for a logical transfer. The content is reproducible from the seed so
// integration tests can verify integrity end to end.
func MakePayload(scale PayloadScale, logical cost.Bytes, seed int64) []byte {
	n := scale.PayloadLen(logical)
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	state := uint64(seed)*2654435761 + 1
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = byte(state >> 56)
	}
	return out
}
