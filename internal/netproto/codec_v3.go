// Wire codec v3: hand-rolled binary framing for every frame type.
//
// Protocol v3 keeps the v2 request semantics (RequestID multiplexing,
// Hello/HelloAck negotiation) but replaces gob on the post-handshake
// stream with explicit little-endian field encoding: one length-prefixed
// frame per message, varint-encoded integers and slice lengths, payload
// bytes appended without intermediate copies. The handshake itself
// (Hello → HelloAck) always rides gob so v1/v2 peers negotiate down
// transparently; both sides switch codecs at the same stream position,
// immediately after the HelloAck.
//
// Frame layout:
//
//	offset  size   field
//	0       4      uint32 LE: length of everything after this prefix
//	4       1      MsgType
//	5       var    uvarint RequestID
//	...            body (per-type layout, see docs/PROTOCOL.md)
//
// Scalar conventions: unsigned integers are uvarints, signed integers
// (including time.Duration and cost.Bytes) are zigzag varints, float64s
// are 8 raw LE bytes, bools are one byte (0/1), strings and byte slices
// are uvarint length + bytes, element slices are uvarint count +
// elements. Zero-length slices decode as nil, matching gob, so the two
// codecs are interchangeable value-for-value (pinned by the round-trip
// property test).
//
// Buffer ownership: encoding stages frames in pooled scratch buffers
// (returned to the pool after the bytes reach the connection's write
// buffer); decoding reads each frame into a per-connection scratch
// buffer that the NEXT Recv reuses, so every decoded field that needs
// to outlive the call — payloads, strings, slices — is copied out into
// fresh memory. A decoded frame therefore owns all of its memory and
// may be held across subsequent Recvs (pinned by the aliasing test).
package netproto

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// timeDuration narrows a decoded varint back to a virtual-clock time.
func timeDuration(v int64) time.Duration { return time.Duration(v) }

// encPool recycles v3 encode scratch buffers across connections: a
// frame is staged here, copied to the connection's write buffer, and
// the scratch goes back to the pool, so steady-state sends allocate
// nothing.
var encPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

// encBuf is an append-only encode cursor over a pooled byte slice.
type encBuf struct {
	b []byte
}

func (e *encBuf) u8(v byte)        { e.b = append(e.b, v) }
func (e *encBuf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *encBuf) f64(v float64)    { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *encBuf) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) bytes(p []byte) {
	e.uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// decBuf is a bounds-checked decode cursor. Every getter reports
// truncation through the sticky err instead of panicking, so arbitrary
// fuzz input surfaces as an error, never a crash; slice lengths are
// validated against the bytes actually remaining before any allocation,
// so a corrupt length cannot trigger an unbounded make.
type decBuf struct {
	b   []byte
	err error
}

func (d *decBuf) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("netproto: v3 decode: truncated or corrupt %s", what)
	}
}

func (d *decBuf) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decBuf) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decBuf) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decBuf) boolean() bool { return d.u8() != 0 }

// length decodes a slice length and validates it against the remaining
// bytes at minSize encoded bytes per element.
func (d *decBuf) length(minSize int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(d.b)/minSize) {
		d.fail("slice length")
		return 0
	}
	return int(n)
}

// str copies a string out of the scratch buffer (decoded frames own
// their memory). The handful of constant strings that ride every hot
// reply (result sources, policy names) are interned so steady-state
// decoding does not allocate for them; a switch on string(b) compares
// without converting.
func (d *decBuf) str() string {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return ""
	}
	raw := d.b[:n]
	d.b = d.b[n:]
	switch string(raw) {
	case "cache":
		return "cache"
	case "repository":
		return "repository"
	case "mixed":
		return "mixed"
	}
	return string(raw)
}

// bytes copies a byte slice out of the scratch buffer. Zero-length
// slices decode as nil to match gob.
func (d *decBuf) bytes() []byte {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[:n])
	d.b = d.b[n:]
	return p
}

// --- model substructures ---

func encQuery(e *encBuf, q *model.Query) {
	e.varint(int64(q.ID))
	e.uvarint(uint64(len(q.Objects)))
	for _, id := range q.Objects {
		e.varint(int64(id))
	}
	e.varint(int64(q.Cost))
	e.varint(int64(q.Tolerance))
	e.varint(int64(q.Time))
}

func decQuery(d *decBuf) model.Query {
	var q model.Query
	q.ID = model.QueryID(d.varint())
	if n := d.length(1); n > 0 {
		q.Objects = make([]model.ObjectID, n)
		for i := range q.Objects {
			q.Objects[i] = model.ObjectID(d.varint())
		}
	}
	q.Cost = cost.Bytes(d.varint())
	q.Tolerance = timeDuration(d.varint())
	q.Time = timeDuration(d.varint())
	return q
}

func encUpdate(e *encBuf, u *model.Update) {
	e.varint(int64(u.ID))
	e.varint(int64(u.Object))
	e.varint(int64(u.Cost))
	e.varint(int64(u.Time))
}

func decUpdate(d *decBuf) model.Update {
	return model.Update{
		ID:     model.UpdateID(d.varint()),
		Object: model.ObjectID(d.varint()),
		Cost:   cost.Bytes(d.varint()),
		Time:   timeDuration(d.varint()),
	}
}

func encObject(e *encBuf, o *model.Object) {
	e.varint(int64(o.ID))
	e.varint(int64(o.Size))
	e.uvarint(o.Trixel)
}

func decObject(d *decBuf) model.Object {
	return model.Object{
		ID:     model.ObjectID(d.varint()),
		Size:   cost.Bytes(d.varint()),
		Trixel: d.uvarint(),
	}
}

func encBirth(e *encBuf, b *model.Birth) {
	encObject(e, &b.Object)
	e.f64(b.RA)
	e.f64(b.Dec)
	e.varint(int64(b.Time))
}

func decBirth(d *decBuf) model.Birth {
	return model.Birth{
		Object: decObject(d),
		RA:     d.f64(),
		Dec:    d.f64(),
		Time:   timeDuration(d.varint()),
	}
}

func encObjectIDs(e *encBuf, ids []model.ObjectID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.varint(int64(id))
	}
}

func decObjectIDs(d *decBuf) []model.ObjectID {
	n := d.length(1)
	if n == 0 {
		return nil
	}
	ids := make([]model.ObjectID, n)
	for i := range ids {
		ids[i] = model.ObjectID(d.varint())
	}
	return ids
}

func encStats(e *encBuf, s *StatsMsg) {
	e.varint(int64(s.Ledger.QueryShip))
	e.varint(int64(s.Ledger.UpdateShip))
	e.varint(int64(s.Ledger.ObjectLoad))
	e.varint(s.Ledger.QueryShips)
	e.varint(s.Ledger.UpdateShips)
	e.varint(s.Ledger.ObjectLoads)
	encObjectIDs(e, s.Cached)
	e.str(s.Policy)
	e.varint(s.Queries)
	e.varint(s.AtCache)
	e.varint(s.Shipped)
	e.varint(s.DroppedInvalidations)
	e.varint(s.DedupedLoads)
	e.varint(s.MigratedIn)
	e.varint(s.MigratedOut)
	e.varint(s.ObjectsBorn)
	e.varint(s.CoverCacheHits)
	e.varint(s.CoverCacheMisses)
	e.varint(int64(s.SnapshotAge))
	e.varint(s.JournalRecords)
	e.varint(s.RecoveredWarm)
	e.varint(s.Replicas)
	e.varint(s.ResultCacheHits)
	e.varint(s.ResultCacheMisses)
	e.varint(s.CoalescedQueries)
	e.varint(s.GrantBatches)
}

func decStats(d *decBuf) StatsMsg {
	var s StatsMsg
	s.Ledger.QueryShip = cost.Bytes(d.varint())
	s.Ledger.UpdateShip = cost.Bytes(d.varint())
	s.Ledger.ObjectLoad = cost.Bytes(d.varint())
	s.Ledger.QueryShips = d.varint()
	s.Ledger.UpdateShips = d.varint()
	s.Ledger.ObjectLoads = d.varint()
	s.Cached = decObjectIDs(d)
	s.Policy = d.str()
	s.Queries = d.varint()
	s.AtCache = d.varint()
	s.Shipped = d.varint()
	s.DroppedInvalidations = d.varint()
	s.DedupedLoads = d.varint()
	s.MigratedIn = d.varint()
	s.MigratedOut = d.varint()
	s.ObjectsBorn = d.varint()
	s.CoverCacheHits = d.varint()
	s.CoverCacheMisses = d.varint()
	s.SnapshotAge = time.Duration(d.varint())
	s.JournalRecords = d.varint()
	s.RecoveredWarm = d.varint()
	s.Replicas = d.varint()
	s.ResultCacheHits = d.varint()
	s.ResultCacheMisses = d.varint()
	s.CoalescedQueries = d.varint()
	s.GrantBatches = d.varint()
	return s
}

func encSpan(e *encBuf, s *TraceSpan) {
	e.str(s.Name)
	e.str(s.Node)
	e.varint(int64(s.Shard))
	e.varint(int64(s.Epoch))
	e.varint(int64(s.Fragments))
	e.varint(int64(s.Objects))
	e.str(s.Source)
	e.str(s.Detail)
	e.varint(int64(s.Elapsed))
}

func decSpan(d *decBuf) TraceSpan {
	return TraceSpan{
		Name:      d.str(),
		Node:      d.str(),
		Shard:     int(d.varint()),
		Epoch:     int(d.varint()),
		Fragments: int(d.varint()),
		Objects:   int(d.varint()),
		Source:    d.str(),
		Detail:    d.str(),
		Elapsed:   timeDuration(d.varint()),
	}
}

// --- frame bodies ---

// encodeBodyV3 appends the body's binary layout, dispatching on the
// concrete type. A body whose type does not belong to the vocabulary is
// an error (and poisons the connection for sending, like a gob encode
// failure would).
func encodeBodyV3(e *encBuf, t MsgType, body any) error {
	switch b := body.(type) {
	case Hello:
		e.str(b.Role)
		e.varint(int64(b.Version))
		e.uvarint(uint64(len(b.Features)))
		for _, f := range b.Features {
			e.str(f)
		}
	case HelloAck:
		e.varint(int64(b.Version))
		e.uvarint(uint64(len(b.Features)))
		for _, f := range b.Features {
			e.str(f)
		}
	case QueryMsg:
		encQuery(e, &b.Query)
		e.f64(b.Region.RA)
		e.f64(b.Region.Dec)
		e.f64(b.Region.RadiusDeg)
		// Frame tail, written only when meaningful: decoders treat an
		// absent tail as an untraced query, and untraced frames stay
		// byte-identical to pre-trace builds — whose decoders reject
		// trailing bytes — so mixed-build v3 peers interop for
		// everything except tracing itself.
		if b.TraceID != 0 {
			e.uvarint(b.TraceID)
		}
	case QueryResultMsg:
		e.varint(int64(b.QueryID))
		e.varint(int64(b.Logical))
		e.uvarint(uint64(len(b.Rows)))
		for i := range b.Rows {
			r := &b.Rows[i]
			e.varint(r.ObjID)
			e.f64(r.RA)
			e.f64(r.Dec)
			e.f64(r.R)
		}
		e.bytes(b.Payload)
		e.str(b.Source)
		e.varint(int64(b.Elapsed))
		e.boolean(b.Degraded)
		e.uvarint(uint64(len(b.MissingShards)))
		for _, s := range b.MissingShards {
			e.varint(int64(s))
		}
		// Frame tail: trace ID + recorded spans, elided entirely when
		// both are empty (see the QueryMsg tail note). A present tail
		// always carries both fields.
		if b.TraceID != 0 || len(b.Spans) > 0 {
			e.uvarint(b.TraceID)
			e.uvarint(uint64(len(b.Spans)))
			for i := range b.Spans {
				encSpan(e, &b.Spans[i])
			}
		}
	case UpdateFeedMsg:
		encUpdate(e, &b.Update)
	case ShipUpdatesMsg:
		e.uvarint(uint64(len(b.IDs)))
		for _, id := range b.IDs {
			e.varint(int64(id))
		}
	case UpdatesMsg:
		e.uvarint(uint64(len(b.Updates)))
		for i := range b.Updates {
			encUpdate(e, &b.Updates[i])
		}
		e.bytes(b.Payload)
	case LoadObjectMsg:
		e.varint(int64(b.Object))
	case ObjectDataMsg:
		encObject(e, &b.Object)
		e.varint(int64(b.FreshAsOf))
		e.bytes(b.Payload)
	case InvalidateMsg:
		encUpdate(e, &b.Update)
	case StatsMsg:
		encStats(e, &b)
	case ErrorMsg:
		e.str(b.Message)
	case ShardQueryMsg:
		encQuery(e, &b.Query)
		e.varint(int64(b.Shard))
		e.varint(int64(b.Fragments))
		// Frame tail: trace ID (see the QueryMsg tail note).
		if b.TraceID != 0 {
			e.uvarint(b.TraceID)
		}
	case ClusterStatsMsg:
		e.uvarint(uint64(len(b.Shards)))
		for i := range b.Shards {
			s := &b.Shards[i]
			e.varint(int64(s.Shard))
			e.str(s.Addr)
			e.boolean(s.Alive)
			e.str(s.Err)
			encStats(e, &s.Stats)
		}
		encStats(e, &b.Aggregate)
		e.boolean(b.Degraded)
	case AdminResizeMsg:
		e.uvarint(uint64(len(b.Shards)))
		for _, s := range b.Shards {
			e.str(s)
		}
	case RebalanceStatusMsg:
		e.boolean(b.Active)
		e.str(b.Phase)
		e.varint(int64(b.Epoch))
		e.varint(int64(b.From))
		e.varint(int64(b.To))
		e.varint(b.MovedObjects)
		e.varint(int64(b.MovedBytes))
		e.varint(b.Completed)
		e.str(b.LastError)
	case ReshardMsg:
		e.varint(int64(b.Epoch))
		encObjectIDs(e, b.Owned)
		e.uvarint(uint64(len(b.Universe)))
		for i := range b.Universe {
			encObject(e, &b.Universe[i])
		}
		e.varint(int64(b.Resident))
		e.varint(int64(b.Dropped))
		// Replicas rides the forward-compatible tail: encoded only when
		// non-zero so replica-free frames stay byte-identical to v3
		// peers that predate the field.
		if b.Replicas != 0 {
			e.varint(int64(b.Replicas))
		}
	case MigrateBeginMsg:
		e.varint(int64(b.Epoch))
		e.str(b.Dest)
		encObjectIDs(e, b.Objects)
		e.varint(b.Moved)
		e.varint(int64(b.MovedBytes))
	case MigrateChunkMsg:
		e.varint(int64(b.Epoch))
		e.uvarint(uint64(len(b.Objects)))
		for i := range b.Objects {
			mo := &b.Objects[i]
			encObject(e, &mo.Object)
			e.bytes(mo.Payload)
		}
		e.varint(int64(b.Imported))
	case MigrateDoneMsg:
		e.varint(int64(b.Epoch))
		e.varint(b.Sent)
		e.varint(b.Imported)
	case ObjectBirthMsg:
		e.uvarint(uint64(len(b.Births)))
		for i := range b.Births {
			encBirth(e, &b.Births[i])
		}
		e.varint(int64(b.Accepted))
	case BirthGrantMsg:
		e.uvarint(uint64(len(b.Births)))
		for i := range b.Births {
			encBirth(e, &b.Births[i])
		}
		e.varint(int64(b.Accepted))
		// Epoch rides the forward-compatible tail: encoded only when
		// non-zero, like ReshardMsg.Replicas, so epoch-free grants stay
		// byte-identical to v3 peers that predate the field.
		if b.Epoch != 0 {
			e.varint(int64(b.Epoch))
		}
	default:
		return fmt.Errorf("netproto: v3 cannot encode %T as %s", body, t)
	}
	return nil
}

// decodeBodyV3 decodes the body the frame type implies. The body owns
// all of its memory (nothing aliases the connection's scratch buffer).
func decodeBodyV3(d *decBuf, t MsgType) (any, error) {
	var body any
	switch t {
	case MsgHello:
		var b Hello
		b.Role = d.str()
		b.Version = int(d.varint())
		if n := d.length(1); n > 0 {
			b.Features = make([]string, n)
			for i := range b.Features {
				b.Features[i] = d.str()
			}
		}
		body = b
	case MsgHelloAck:
		var b HelloAck
		b.Version = int(d.varint())
		if n := d.length(1); n > 0 {
			b.Features = make([]string, n)
			for i := range b.Features {
				b.Features[i] = d.str()
			}
		}
		body = b
	case MsgQuery, MsgClientQuery:
		var b QueryMsg
		b.Query = decQuery(d)
		b.Region.RA = d.f64()
		b.Region.Dec = d.f64()
		b.Region.RadiusDeg = d.f64()
		// Forward-compatible tail: absent on frames from older
		// encoders, which decodes as an untraced query.
		if d.err == nil && len(d.b) > 0 {
			b.TraceID = d.uvarint()
		}
		body = b
	case MsgQueryResult:
		var b QueryResultMsg
		b.QueryID = model.QueryID(d.varint())
		b.Logical = cost.Bytes(d.varint())
		// Minimum row encoding: 1-byte varint ObjID + three raw f64s.
		if n := d.length(25); n > 0 {
			b.Rows = make([]ResultRow, n)
			for i := range b.Rows {
				b.Rows[i] = ResultRow{ObjID: d.varint(), RA: d.f64(), Dec: d.f64(), R: d.f64()}
			}
		}
		b.Payload = d.bytes()
		b.Source = d.str()
		b.Elapsed = timeDuration(d.varint())
		b.Degraded = d.boolean()
		if n := d.length(1); n > 0 {
			b.MissingShards = make([]int, n)
			for i := range b.MissingShards {
				b.MissingShards[i] = int(d.varint())
			}
		}
		// Forward-compatible tail: trace ID + spans. A present tail
		// always carries both fields.
		if d.err == nil && len(d.b) > 0 {
			b.TraceID = d.uvarint()
			// Minimum span encoding: four 1-byte strings + five 1-byte
			// varints.
			if n := d.length(9); n > 0 {
				b.Spans = make([]TraceSpan, n)
				for i := range b.Spans {
					b.Spans[i] = decSpan(d)
				}
			}
		}
		body = b
	case MsgUpdateFeed:
		body = UpdateFeedMsg{Update: decUpdate(d)}
	case MsgShipUpdates:
		var b ShipUpdatesMsg
		if n := d.length(1); n > 0 {
			b.IDs = make([]model.UpdateID, n)
			for i := range b.IDs {
				b.IDs[i] = model.UpdateID(d.varint())
			}
		}
		body = b
	case MsgUpdates:
		var b UpdatesMsg
		if n := d.length(4); n > 0 {
			b.Updates = make([]model.Update, n)
			for i := range b.Updates {
				b.Updates[i] = decUpdate(d)
			}
		}
		b.Payload = d.bytes()
		body = b
	case MsgLoadObject:
		body = LoadObjectMsg{Object: model.ObjectID(d.varint())}
	case MsgObjectData:
		var b ObjectDataMsg
		b.Object = decObject(d)
		b.FreshAsOf = timeDuration(d.varint())
		b.Payload = d.bytes()
		body = b
	case MsgInvalidate:
		body = InvalidateMsg{Update: decUpdate(d)}
	case MsgStats:
		body = decStats(d)
	case MsgError:
		body = ErrorMsg{Message: d.str()}
	case MsgShardQuery:
		var b ShardQueryMsg
		b.Query = decQuery(d)
		b.Shard = int(d.varint())
		b.Fragments = int(d.varint())
		// Forward-compatible tail, as on MsgQuery.
		if d.err == nil && len(d.b) > 0 {
			b.TraceID = d.uvarint()
		}
		body = b
	case MsgClusterStats:
		var b ClusterStatsMsg
		if n := d.length(18); n > 0 {
			b.Shards = make([]ShardStats, n)
			for i := range b.Shards {
				s := &b.Shards[i]
				s.Shard = int(d.varint())
				s.Addr = d.str()
				s.Alive = d.boolean()
				s.Err = d.str()
				s.Stats = decStats(d)
			}
		}
		b.Aggregate = decStats(d)
		b.Degraded = d.boolean()
		body = b
	case MsgAdminResize:
		var b AdminResizeMsg
		if n := d.length(1); n > 0 {
			b.Shards = make([]string, n)
			for i := range b.Shards {
				b.Shards[i] = d.str()
			}
		}
		body = b
	case MsgRebalanceStatus:
		var b RebalanceStatusMsg
		b.Active = d.boolean()
		b.Phase = d.str()
		b.Epoch = int(d.varint())
		b.From = int(d.varint())
		b.To = int(d.varint())
		b.MovedObjects = d.varint()
		b.MovedBytes = cost.Bytes(d.varint())
		b.Completed = d.varint()
		b.LastError = d.str()
		body = b
	case MsgReshard:
		var b ReshardMsg
		b.Epoch = int(d.varint())
		b.Owned = decObjectIDs(d)
		if n := d.length(3); n > 0 {
			b.Universe = make([]model.Object, n)
			for i := range b.Universe {
				b.Universe[i] = decObject(d)
			}
		}
		b.Resident = int(d.varint())
		b.Dropped = int(d.varint())
		if d.err == nil && len(d.b) > 0 {
			b.Replicas = int(d.varint())
		}
		body = b
	case MsgMigrateBegin:
		var b MigrateBeginMsg
		b.Epoch = int(d.varint())
		b.Dest = d.str()
		b.Objects = decObjectIDs(d)
		b.Moved = d.varint()
		b.MovedBytes = cost.Bytes(d.varint())
		body = b
	case MsgMigrateChunk:
		var b MigrateChunkMsg
		b.Epoch = int(d.varint())
		if n := d.length(4); n > 0 {
			b.Objects = make([]MigratedObject, n)
			for i := range b.Objects {
				b.Objects[i].Object = decObject(d)
				b.Objects[i].Payload = d.bytes()
			}
		}
		b.Imported = int(d.varint())
		body = b
	case MsgMigrateDone:
		var b MigrateDoneMsg
		b.Epoch = int(d.varint())
		b.Sent = d.varint()
		b.Imported = d.varint()
		body = b
	case MsgObjectBirth:
		var b ObjectBirthMsg
		// Minimum birth encoding: 3-byte object + two raw f64s + time.
		if n := d.length(20); n > 0 {
			b.Births = make([]model.Birth, n)
			for i := range b.Births {
				b.Births[i] = decBirth(d)
			}
		}
		b.Accepted = int(d.varint())
		body = b
	case MsgBirthGrant:
		var b BirthGrantMsg
		if n := d.length(20); n > 0 {
			b.Births = make([]model.Birth, n)
			for i := range b.Births {
				b.Births[i] = decBirth(d)
			}
		}
		b.Accepted = int(d.varint())
		// Forward-compatible tail, as on MsgReshard's Replicas.
		if d.err == nil && len(d.b) > 0 {
			b.Epoch = int(d.varint())
		}
		body = b
	default:
		return nil, fmt.Errorf("netproto: v3 decode: unknown frame type %d", uint8(t))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("netproto: v3 decode: %d trailing bytes after %s body", len(d.b), t)
	}
	return body, nil
}
