package netproto

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// encodeFrames renders frames onto a persistent gob stream exactly as
// Conn.Send does, giving the fuzzer structurally valid prefixes to
// mutate.
func encodeFrames(t testing.TB, frames ...Frame) []byte {
	t.Helper()
	return encodeFramesVersion(t, 0, frames...)
}

// encodeFramesV3 renders frames with the v3 binary codec.
func encodeFramesV3(t testing.TB, frames ...Frame) []byte {
	t.Helper()
	return encodeFramesVersion(t, ProtoV3, frames...)
}

func encodeFramesVersion(t testing.TB, version int, frames ...Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: bytes.NewReader(nil), Writer: &buf})
	if version >= ProtoV3 {
		c.SetVersion(version)
	}
	for _, f := range frames {
		if err := c.Send(f); err != nil {
			t.Fatalf("encode seed frame %s: %v", f.Type, err)
		}
	}
	return buf.Bytes()
}

// seedFrames covers every body shape that crosses the wire, including
// the growth frames (births ride both the request path and the
// invalidation stream).
func seedFrames() []Frame {
	return []Frame{
		{Type: MsgHello, Body: Hello{Role: "cache", Version: ProtoV2}},
		{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}},
		{Type: MsgQuery, RequestID: 7, Body: QueryMsg{Query: model.Query{
			ID: 1, Objects: []model.ObjectID{1, 2}, Cost: cost.MB,
			Tolerance: model.AnyStaleness, Time: time.Second,
		}}},
		{Type: MsgQueryResult, RequestID: 7, Body: QueryResultMsg{
			QueryID: 1, Logical: cost.MB, Payload: []byte{1, 2, 3}, Source: "cache",
		}},
		{Type: MsgInvalidate, Body: InvalidateMsg{Update: model.Update{
			ID: 9, Object: 3, Cost: cost.KB, Time: time.Minute,
		}}},
		{Type: MsgObjectBirth, Body: ObjectBirthMsg{Births: []model.Birth{{
			Object: model.Object{ID: 69, Size: cost.GB, Trixel: 123},
			RA:     182.5, Dec: -1.25, Time: time.Hour,
		}}}},
		{Type: MsgReshard, Body: ReshardMsg{
			Epoch: 2, Owned: []model.ObjectID{1, 69},
			Universe: []model.Object{{ID: 69, Size: cost.GB}},
		}},
		{Type: MsgMigrateChunk, Body: MigrateChunkMsg{
			Epoch:   2,
			Objects: []MigratedObject{{Object: model.Object{ID: 4, Size: cost.MB}, Payload: []byte{42}}},
		}},
		{Type: MsgStats, Body: StatsMsg{Queries: 12, ObjectsBorn: 3}},
		{Type: MsgError, Body: ErrorMsg{Message: "boom"}},
		// Trace-bearing shapes: the forward-compatible v3 frame tails
		// carrying TraceID (queries) and TraceID+Spans (results), so the
		// fuzzer mutates tail bytes too. Appended last — earlier indices
		// are referenced by the corpus writer.
		{Type: MsgQuery, RequestID: 8, Body: QueryMsg{Query: model.Query{
			ID: 2, Objects: []model.ObjectID{3}, Cost: cost.KB,
			Tolerance: model.AnyStaleness,
		}, TraceID: 0xdeadbeef}},
		{Type: MsgShardQuery, RequestID: 9, Body: ShardQueryMsg{Query: model.Query{
			ID: 2, Objects: []model.ObjectID{3}, Cost: cost.KB,
		}, Shard: 1, Fragments: 2, TraceID: 0xdeadbeef}},
		{Type: MsgQueryResult, RequestID: 8, Body: QueryResultMsg{
			QueryID: 2, Logical: cost.KB, Source: "mixed", TraceID: 0xdeadbeef,
			Spans: []TraceSpan{
				{Name: "router", Node: "127.0.0.1:7708", Shard: -1, Epoch: 1,
					Fragments: 2, Objects: 3, Source: "mixed",
					Detail: "cover-cache=hit", Elapsed: time.Millisecond},
				{Name: "fragment", Node: "127.0.0.1:7801", Shard: 1,
					Objects: 1, Source: "cache", Elapsed: 300 * time.Microsecond},
			},
		}},
		// Replica-bearing shapes: the ReshardMsg Replicas field rides a
		// forward-compatible v3 frame tail (like the trace tails above),
		// and StatsMsg.Replicas sits mid-frame — seed both so the fuzzer
		// mutates the replicated encodings too.
		{Type: MsgReshard, Body: ReshardMsg{
			Epoch: 3, Owned: []model.ObjectID{1, 2, 69},
			Universe: []model.Object{{ID: 69, Size: cost.GB, Trixel: 123}},
			Replicas: 2,
		}},
		{Type: MsgStats, Body: StatsMsg{Queries: 12, ObjectsBorn: 3, Replicas: 2}},
		// Batched birth-grant shapes: the multi-birth grant frame with
		// its forward-compatible Epoch tail, and one with the tail
		// elided (Epoch 0), so the fuzzer mutates both encodings.
		{Type: MsgBirthGrant, RequestID: 10, Body: BirthGrantMsg{Births: []model.Birth{
			{Object: model.Object{ID: 70, Size: cost.GB, Trixel: 321}, RA: 10.5, Dec: 42.0, Time: time.Hour},
			{Object: model.Object{ID: 71, Size: cost.MB, Trixel: 322}, RA: 11.5, Dec: -42.0, Time: 2 * time.Hour},
		}, Epoch: 3}},
		{Type: MsgBirthGrant, RequestID: 11, Body: BirthGrantMsg{Births: []model.Birth{
			{Object: model.Object{ID: 72, Size: cost.KB, Trixel: 323}, RA: 0.25, Dec: 0.5, Time: time.Minute},
		}, Accepted: 1}},
		// StatsMsg carrying the router hot-path counters appended for
		// the result cache + batched grants.
		{Type: MsgStats, Body: StatsMsg{
			Queries: 12, ResultCacheHits: 5, ResultCacheMisses: 2,
			CoalescedQueries: 3, GrantBatches: 1,
		}},
	}
}

// drainStream feeds data to Conn.Recv under one codec until the first
// error: every frame either decodes or errors, never panics, and the
// input is finite so EOF terminates the loop.
func drainStream(version int, data []byte) {
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: bytes.NewReader(data), Writer: io.Discard})
	if version >= ProtoV3 {
		c.SetVersion(version)
	}
	for {
		if _, err := c.Recv(); err != nil {
			return
		}
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to Conn.Recv under BOTH codecs
// (gob and v3 binary): malformed, truncated, or bit-flipped streams —
// including the growth frames — must surface as errors, never as
// panics or unbounded allocations, whichever codec the connection
// negotiated. The checked-in seed corpus under
// testdata/fuzz/FuzzDecodeFrame holds hand-written malformed streams
// in both encodings; the programmatic seeds below add every valid
// frame shape in both encodings plus systematic truncations and flips.
func FuzzDecodeFrame(f *testing.F) {
	valid := encodeFrames(f, seedFrames()...)
	validV3 := encodeFramesV3(f, seedFrames()...)
	f.Add(valid)
	f.Add(validV3)
	f.Add(valid[:len(valid)/2])                                         // truncated mid-stream
	f.Add(validV3[:len(validV3)/2])                                     // truncated mid-stream (v3 framing)
	f.Add(valid[:1])                                                    // truncated inside the first length
	f.Add(validV3[:3])                                                  // truncated inside the v3 length prefix
	f.Add([]byte{})                                                     // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	for _, fr := range seedFrames() {
		for _, enc := range []func(testing.TB, ...Frame) []byte{encodeFrames, encodeFramesV3} {
			one := enc(f, fr)
			f.Add(one)
			if len(one) > 4 {
				flipped := bytes.Clone(one)
				flipped[len(flipped)/2] ^= 0x55
				f.Add(flipped)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		drainStream(0, data)
		drainStream(ProtoV3, data)
	})
}

// TestDecodeFrameSeedCorpus replays the programmatic seeds through the
// fuzz body on ordinary `go test` runs (the fuzz engine only replays
// testdata seeds), so the malformed-input contract is exercised in
// tier-1 CI too — under both codecs.
func TestDecodeFrameSeedCorpus(t *testing.T) {
	valid := encodeFrames(t, seedFrames()...)
	validV3 := encodeFramesV3(t, seedFrames()...)
	cases := [][]byte{
		valid,
		validV3,
		valid[:len(valid)/2],
		validV3[:len(validV3)/2],
		valid[:1],
		validV3[:3],
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for _, fr := range seedFrames() {
		for _, enc := range []func(testing.TB, ...Frame) []byte{encodeFrames, encodeFramesV3} {
			one := enc(t, fr)
			cases = append(cases, one)
			for cut := 1; cut < len(one); cut += 7 {
				cases = append(cases, one[:cut])
			}
			flipped := bytes.Clone(one)
			flipped[len(flipped)/2] ^= 0x55
			cases = append(cases, flipped)
		}
	}
	for i, data := range cases {
		for _, version := range []int{0, ProtoV3} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("case %d (codec v%d): Recv panicked: %v", i, version, r)
					}
				}()
				drainStream(version, data)
			}()
		}
	}
}

// TestWriteV3FuzzCorpus regenerates the checked-in v3 seed-corpus
// files (testdata/fuzz/FuzzDecodeFrame/*v3*) when WRITE_V3_CORPUS is
// set; it documents their provenance and skips otherwise. The files
// are deterministic renderings of the programmatic seeds, so the fuzz
// engine starts from structurally valid v3 streams even before its
// first minimization.
func TestWriteV3FuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_V3_CORPUS") == "" {
		t.Skip("set WRITE_V3_CORPUS=1 to regenerate the v3 seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := encodeFramesV3(t, seedFrames()...)
	oneBirth := encodeFramesV3(t, seedFrames()[5]) // MsgObjectBirth
	flipped := bytes.Clone(oneBirth)
	flipped[len(flipped)/2] ^= 0x55
	traced := encodeFramesV3(t, seedFrames()[12]) // QueryResultMsg with TraceID+Spans tail
	tracedFlip := bytes.Clone(traced)
	tracedFlip[len(tracedFlip)-2] ^= 0x55           // corrupt inside the trace tail
	reshardK := encodeFramesV3(t, seedFrames()[13]) // ReshardMsg with the Replicas tail
	reshardKFlip := bytes.Clone(reshardK)
	reshardKFlip[len(reshardKFlip)-1] ^= 0x55    // corrupt the Replicas tail byte
	grant := encodeFramesV3(t, seedFrames()[15]) // BirthGrantMsg with the Epoch tail
	grantFlip := bytes.Clone(grant)
	grantFlip[len(grantFlip)/2] ^= 0x55 // corrupt mid-batch
	entries := map[string][]byte{
		"valid-v3-stream":        valid,
		"truncated-v3-birth":     oneBirth[:len(oneBirth)*2/3],
		"bitflip-v3-birth":       flipped,
		"v3-absurd-length":       {0xff, 0xff, 0xff, 0x7f, 0x01},
		"valid-v3-traced":        traced,
		"truncated-v3-traced":    traced[:len(traced)*3/4],
		"bitflip-v3-traced":      tracedFlip,
		"valid-v3-reshard-k":     reshardK,
		"truncated-v3-reshard-k": reshardK[:len(reshardK)-1], // stream ends inside the Replicas tail
		"bitflip-v3-reshard-k":   reshardKFlip,
		"valid-v3-grant":         grant,
		"truncated-v3-grant":     grant[:len(grant)*2/3], // stream ends inside the birth batch
		"bitflip-v3-grant":       grantFlip,
	}
	for name, data := range entries {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
