package netproto

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// encodeFrames renders frames onto a persistent gob stream exactly as
// Conn.Send does, giving the fuzzer structurally valid prefixes to
// mutate.
func encodeFrames(t testing.TB, frames ...Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: bytes.NewReader(nil), Writer: &buf})
	for _, f := range frames {
		if err := c.Send(f); err != nil {
			t.Fatalf("encode seed frame %s: %v", f.Type, err)
		}
	}
	return buf.Bytes()
}

// seedFrames covers every body shape that crosses the wire, including
// the growth frames (births ride both the request path and the
// invalidation stream).
func seedFrames() []Frame {
	return []Frame{
		{Type: MsgHello, Body: Hello{Role: "cache", Version: ProtoV2}},
		{Type: MsgHelloAck, Body: HelloAck{Version: ProtoV2}},
		{Type: MsgQuery, RequestID: 7, Body: QueryMsg{Query: model.Query{
			ID: 1, Objects: []model.ObjectID{1, 2}, Cost: cost.MB,
			Tolerance: model.AnyStaleness, Time: time.Second,
		}}},
		{Type: MsgQueryResult, RequestID: 7, Body: QueryResultMsg{
			QueryID: 1, Logical: cost.MB, Payload: []byte{1, 2, 3}, Source: "cache",
		}},
		{Type: MsgInvalidate, Body: InvalidateMsg{Update: model.Update{
			ID: 9, Object: 3, Cost: cost.KB, Time: time.Minute,
		}}},
		{Type: MsgObjectBirth, Body: ObjectBirthMsg{Births: []model.Birth{{
			Object: model.Object{ID: 69, Size: cost.GB, Trixel: 123},
			RA:     182.5, Dec: -1.25, Time: time.Hour,
		}}}},
		{Type: MsgReshard, Body: ReshardMsg{
			Epoch: 2, Owned: []model.ObjectID{1, 69},
			Universe: []model.Object{{ID: 69, Size: cost.GB}},
		}},
		{Type: MsgMigrateChunk, Body: MigrateChunkMsg{
			Epoch:   2,
			Objects: []MigratedObject{{Object: model.Object{ID: 4, Size: cost.MB}, Payload: []byte{42}}},
		}},
		{Type: MsgStats, Body: StatsMsg{Queries: 12, ObjectsBorn: 3}},
		{Type: MsgError, Body: ErrorMsg{Message: "boom"}},
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to Conn.Recv: malformed,
// truncated, or bit-flipped streams (including the growth frames) must
// surface as errors, never as panics or unbounded allocations. The
// checked-in seed corpus under testdata/fuzz/FuzzDecodeFrame holds
// hand-written malformed streams; the programmatic seeds below add
// every valid frame shape plus systematic truncations and flips.
func FuzzDecodeFrame(f *testing.F) {
	valid := encodeFrames(f, seedFrames()...)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                         // truncated mid-stream
	f.Add(valid[:1])                                                    // truncated inside the first length
	f.Add([]byte{})                                                     // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	for _, fr := range seedFrames() {
		one := encodeFrames(f, fr)
		f.Add(one)
		if len(one) > 4 {
			flipped := bytes.Clone(one)
			flipped[len(flipped)/2] ^= 0x55
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{Reader: bytes.NewReader(data), Writer: io.Discard})
		// Drain the stream: every frame either decodes or errors; the
		// input is finite so EOF terminates the loop.
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}

// TestDecodeFrameSeedCorpus replays the programmatic seeds through the
// fuzz body on ordinary `go test` runs (the fuzz engine only replays
// testdata seeds), so the malformed-input contract is exercised in
// tier-1 CI too.
func TestDecodeFrameSeedCorpus(t *testing.T) {
	valid := encodeFrames(t, seedFrames()...)
	cases := [][]byte{
		valid,
		valid[:len(valid)/2],
		valid[:1],
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for _, fr := range seedFrames() {
		one := encodeFrames(t, fr)
		cases = append(cases, one)
		for cut := 1; cut < len(one); cut += 7 {
			cases = append(cases, one[:cut])
		}
		flipped := bytes.Clone(one)
		flipped[len(flipped)/2] ^= 0x55
		cases = append(cases, flipped)
	}
	for i, data := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("case %d: Recv panicked: %v", i, r)
				}
			}()
			c := NewConn(struct {
				io.Reader
				io.Writer
			}{Reader: bytes.NewReader(data), Writer: io.Discard})
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}()
	}
}
