package netproto

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// RemoteError is a failure the remote side reported in an ErrorMsg
// frame (as opposed to a transport failure).
type RemoteError struct {
	Message string
}

func (e *RemoteError) Error() string { return e.Message }

// SessionConfig parameterizes DialSession.
type SessionConfig struct {
	// PoolSize is how many TCP connections back the session. Each
	// connection multiplexes any number of in-flight requests, so the
	// pool mainly spreads encode/flush work; small values (2–4)
	// suffice. Defaults to 1.
	PoolSize int
	// DialTimeout bounds each connection attempt. Defaults to 5s.
	DialTimeout time.Duration
	// Lockstep forces protocol v1: one outstanding request per
	// connection, replies in order, no handshake ack. Use it to talk
	// to pre-v2 servers.
	Lockstep bool
	// DialRetry, when positive, keeps retrying a refused connection
	// for up to this total elapsed time with capped exponential
	// backoff and jitter. Connection-refused is the transient race of
	// a dialer starting alongside its server (a cluster router racing
	// shard startup, a client racing the router); other dial failures
	// (no route, timeout, DNS) still fail immediately. Zero disables
	// retrying.
	DialRetry time.Duration
	// WireVersion caps the protocol version the session announces in
	// its handshake, and therefore the stream codec it ends up on: 0
	// means the newest (v3, binary framing), ProtoV2 forces the gob v2
	// codec — the escape hatch for talking to peers pinned at v2.
	// Lockstep overrides this entirely (v1 semantics, gob framing).
	WireVersion int
}

// Session is a concurrency-safe request/response channel to a Delta
// node. In v2 mode (the default) it multiplexes: every request gets a
// fresh RequestID, requests round-robin across a small connection
// pool, a per-connection reader goroutine demultiplexes replies by
// RequestID, and any number of goroutines may call RoundTrip
// concurrently. In lockstep mode it serializes round trips per
// connection for v1 peers.
type Session struct {
	cfg   SessionConfig
	conns []*sessionConn
	reqID atomic.Uint64
	next  atomic.Uint64

	closeOnce sync.Once
	closed    atomic.Bool
}

// sessionConn is one pooled connection with its demux state.
type sessionConn struct {
	nc      net.Conn
	c       *Conn
	version int // negotiated protocol version (set during the handshake)

	lockMu sync.Mutex // lockstep mode: serializes send+recv pairs

	mu      sync.Mutex
	pending map[uint64]chan roundTripResult
	err     error // sticky after the reader dies
	dead    bool
}

type roundTripResult struct {
	frame Frame
	err   error
}

// DialSession connects a multiplexed session to addr, announcing the
// given role ("cache" or "client"). In v2 mode every pooled connection
// performs the Hello/HelloAck handshake before the session is usable.
func DialSession(addr, role string, cfg SessionConfig) (*Session, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	s := &Session{cfg: cfg}
	for i := 0; i < cfg.PoolSize; i++ {
		sc, err := dialSessionConn(addr, role, cfg)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.conns = append(s.conns, sc)
		if !cfg.Lockstep {
			go sc.readLoop()
		}
	}
	return s, nil
}

// dialRetry dials addr, retrying connection-refused failures with
// capped exponential backoff plus jitter for up to cfg.DialRetry of
// elapsed time. The jitter desynchronizes a fleet of dialers all
// racing the same server's startup.
func dialRetry(addr string, cfg SessionConfig) (net.Conn, error) {
	deadline := time.Now().Add(cfg.DialRetry)
	backoff := 10 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for {
		nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil || cfg.DialRetry <= 0 ||
			!errors.Is(err, syscall.ECONNREFUSED) || !time.Now().Before(deadline) {
			return nc, err
		}
		// Full jitter over (0, backoff]: retries spread instead of
		// thundering onto the server the instant it binds.
		sleep := time.Duration(rand.Int64N(int64(backoff))) + 1
		if remain := time.Until(deadline); sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

func dialSessionConn(addr, role string, cfg SessionConfig) (*sessionConn, error) {
	nc, err := dialRetry(addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial %s: %w", addr, err)
	}
	sc := &sessionConn{
		nc:      nc,
		c:       NewConn(nc),
		version: ProtoV1,
		pending: make(map[uint64]chan roundTripResult),
	}
	hello := Hello{Role: role}
	if !cfg.Lockstep {
		hello.Version = ProtoV3
		if cfg.WireVersion > 0 && cfg.WireVersion < hello.Version {
			hello.Version = max(cfg.WireVersion, ProtoV2)
		}
	}
	if err := sc.c.Send(Frame{Type: MsgHello, Body: hello}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("netproto: hello: %w", err)
	}
	if !cfg.Lockstep {
		// v2+ servers acknowledge before any request flows; a v1 server
		// would stay silent here, so pre-v2 peers need Lockstep.
		if err := nc.SetReadDeadline(time.Now().Add(cfg.DialTimeout)); err != nil {
			nc.Close()
			return nil, err
		}
		ack, err := sc.c.Recv()
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("netproto: handshake (is the server pre-v2? use Lockstep): %w", err)
		}
		body, ok := ack.Body.(HelloAck)
		if !ok || ack.Type != MsgHelloAck {
			nc.Close()
			return nil, fmt.Errorf("netproto: expected hello-ack, got %s", ack.Type)
		}
		if body.Version < ProtoV2 {
			nc.Close()
			return nil, fmt.Errorf("netproto: server negotiated v%d, need v%d", body.Version, ProtoV2)
		}
		sc.version = body.Version
		if body.Version >= ProtoV3 {
			// Both ends switch codecs at the same stream position:
			// immediately after the HelloAck.
			sc.c.SetVersion(ProtoV3)
		}
		if err := nc.SetReadDeadline(time.Time{}); err != nil {
			nc.Close()
			return nil, err
		}
	}
	return sc, nil
}

// readLoop demultiplexes replies by RequestID. Replies with no waiter
// (a cancelled RoundTrip) are dropped.
func (sc *sessionConn) readLoop() {
	for {
		f, err := sc.c.Recv()
		if err != nil {
			sc.fail(err)
			return
		}
		sc.mu.Lock()
		ch, ok := sc.pending[f.RequestID]
		delete(sc.pending, f.RequestID)
		sc.mu.Unlock()
		if ok {
			ch <- roundTripResult{frame: f} // buffered; never blocks
		}
	}
}

// fail marks the connection dead and unblocks every waiter.
func (sc *sessionConn) fail(err error) {
	sc.mu.Lock()
	sc.dead = true
	sc.err = err
	pending := sc.pending
	sc.pending = make(map[uint64]chan roundTripResult)
	sc.mu.Unlock()
	for _, ch := range pending {
		ch <- roundTripResult{err: err}
	}
}

// RoundTrip sends one request and waits for its correlated reply,
// honoring ctx for cancellation. An ErrorMsg reply is converted to a
// *RemoteError. Safe for concurrent use.
func (s *Session) RoundTrip(ctx context.Context, f Frame) (Frame, error) {
	if s.closed.Load() {
		return Frame{}, net.ErrClosed
	}
	if s.cfg.Lockstep {
		return s.roundTripLockstep(ctx, f)
	}
	sc := s.pick()
	if sc == nil {
		return Frame{}, fmt.Errorf("netproto: session has no live connections")
	}
	id := s.reqID.Add(1)
	f.RequestID = id
	ch := make(chan roundTripResult, 1)
	sc.mu.Lock()
	if sc.dead {
		err := sc.err
		sc.mu.Unlock()
		return Frame{}, err
	}
	sc.pending[id] = ch
	sc.mu.Unlock()
	if err := sc.c.Send(f); err != nil {
		// A send failure means the write side is broken (I/O error or
		// a poisoned encoder); stop routing new requests here. The
		// read side keeps draining replies for requests already in
		// flight until it fails on its own.
		sc.mu.Lock()
		delete(sc.pending, id)
		sc.dead = true
		if sc.err == nil {
			sc.err = err
		}
		sc.mu.Unlock()
		return Frame{}, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return Frame{}, res.err
		}
		return checkError(res.frame)
	case <-ctx.Done():
		sc.mu.Lock()
		delete(sc.pending, id)
		sc.mu.Unlock()
		return Frame{}, ctx.Err()
	}
}

// roundTripLockstep performs a v1 send+recv pair under the per-conn
// lock. A context deadline is enforced via the socket deadline — a v1
// stream cannot abandon a reply without desynchronizing, so expiry
// retires the connection rather than just the request.
func (s *Session) roundTripLockstep(ctx context.Context, f Frame) (Frame, error) {
	if err := ctx.Err(); err != nil {
		return Frame{}, err
	}
	sc := s.pick()
	if sc == nil {
		return Frame{}, fmt.Errorf("netproto: session has no live connections")
	}
	sc.lockMu.Lock()
	defer sc.lockMu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		if err := sc.nc.SetDeadline(dl); err != nil {
			return Frame{}, err
		}
		defer sc.nc.SetDeadline(time.Time{})
	}
	f.RequestID = 0
	if err := sc.c.Send(f); err != nil {
		sc.markDead(err)
		return Frame{}, err
	}
	reply, err := sc.c.Recv()
	if err != nil {
		// Any transport error (including deadline expiry)
		// desynchronizes a lockstep stream; retire the connection.
		sc.markDead(err)
		return Frame{}, err
	}
	return checkError(reply)
}

func (sc *sessionConn) markDead(err error) {
	sc.mu.Lock()
	sc.dead = true
	if sc.err == nil {
		sc.err = err
	}
	sc.mu.Unlock()
}

func checkError(f Frame) (Frame, error) {
	if e, ok := f.Body.(ErrorMsg); ok {
		return Frame{}, &RemoteError{Message: e.Message}
	}
	return f, nil
}

// pick returns a live connection, preferring round-robin order. The
// counter stays uint64 throughout: an int conversion would go
// negative on 32-bit platforms once it wraps, and a negative modulo
// would panic the indexing.
func (s *Session) pick() *sessionConn {
	n := uint64(len(s.conns))
	start := s.next.Add(1)
	for i := uint64(0); i < n; i++ {
		sc := s.conns[(start+i)%n]
		sc.mu.Lock()
		dead := sc.dead
		sc.mu.Unlock()
		if !dead {
			return sc
		}
	}
	return nil
}

// WireVersion reports the protocol version the session negotiated:
// ProtoV3 on the binary codec, ProtoV2 on gob multiplexing, ProtoV1
// for lockstep sessions. Every pooled connection negotiates against
// the same server, so the first connection's answer stands for all.
func (s *Session) WireVersion() int {
	if len(s.conns) == 0 {
		return 0
	}
	return s.conns[0].version
}

// Live reports whether the session still has at least one usable
// connection (routers use it to snapshot shard liveness without
// issuing a probe request).
func (s *Session) Live() bool {
	if s.closed.Load() {
		return false
	}
	for _, sc := range s.conns {
		sc.mu.Lock()
		dead := sc.dead
		sc.mu.Unlock()
		if !dead {
			return true
		}
	}
	return false
}

// Close tears the session down; in-flight round trips fail.
func (s *Session) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		for _, sc := range s.conns {
			if e := sc.nc.Close(); e != nil && err == nil {
				err = e
			}
		}
	})
	return err
}
