package gds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity int64, gdsf bool) *Cache {
	t.Helper()
	c, err := New(capacity, gdsf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewNegativeCapacity(t *testing.T) {
	if _, err := New(-1, false); err == nil {
		t.Error("New(-1) should fail")
	}
}

func TestAdmitAndContains(t *testing.T) {
	c := mustNew(t, 100, false)
	evicted, ok := c.Admit(Entry{Key: 1, Size: 40, Cost: 40})
	if !ok || len(evicted) != 0 {
		t.Fatalf("Admit = (%v, %v), want ([], true)", evicted, ok)
	}
	if !c.Contains(1) || c.Used() != 40 || c.Len() != 1 {
		t.Errorf("cache state wrong: used=%d len=%d", c.Used(), c.Len())
	}
}

func TestAdmitOversizedRejected(t *testing.T) {
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 50, Cost: 50})
	evicted, ok := c.Admit(Entry{Key: 2, Size: 101, Cost: 101})
	if ok || len(evicted) != 0 {
		t.Errorf("oversized admit = (%v, %v), want ([], false)", evicted, ok)
	}
	if !c.Contains(1) {
		t.Error("oversized admit disturbed existing contents")
	}
}

func TestAdmitNegativeSizeRejected(t *testing.T) {
	c := mustNew(t, 100, false)
	if _, ok := c.Admit(Entry{Key: 1, Size: -5, Cost: 1}); ok {
		t.Error("negative size should be rejected")
	}
	if _, ok := c.Admit(Entry{Key: 1, Size: 5, Cost: -1}); ok {
		t.Error("negative cost should be rejected")
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 60, Cost: 60})
	_, _ = c.Admit(Entry{Key: 2, Size: 40, Cost: 40})
	evicted, ok := c.Admit(Entry{Key: 3, Size: 50, Cost: 50})
	if !ok {
		t.Fatal("admission failed")
	}
	if len(evicted) == 0 {
		t.Fatal("expected evictions")
	}
	if c.Used() > c.Capacity() {
		t.Errorf("capacity exceeded: %d > %d", c.Used(), c.Capacity())
	}
}

func TestRecencyEviction(t *testing.T) {
	// Equal cost/size ratios: GDS degenerates to recency (Greedy-Dual),
	// but recency only manifests once the inflation level L has risen
	// past the initial credits — that is the aging mechanism.
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 50, Cost: 100}) // h = 2
	_, _ = c.Admit(Entry{Key: 2, Size: 50, Cost: 50})  // h = 1
	// Admitting 3 evicts 2 (lowest credit) and raises L to 1.
	if evicted, ok := c.Admit(Entry{Key: 3, Size: 50, Cost: 50}); !ok ||
		len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("warmup admission: evicted=%v ok=%v", evicted, ok)
	}
	// Refresh 1: its credit becomes L+2 = 3, above 3's credit of 2.
	// Without the touch, 1 and 3 would tie at 2 and 1 would be evicted.
	c.Touch(1)
	evicted, ok := c.Admit(Entry{Key: 4, Size: 50, Cost: 50})
	if !ok {
		t.Fatal("admission failed")
	}
	if len(evicted) != 1 || evicted[0] != 3 {
		t.Errorf("evicted %v, want [3]", evicted)
	}
	if !c.Contains(1) || !c.Contains(4) {
		t.Errorf("wrong survivors: %v", c.Keys())
	}
}

func TestCostAwareEviction(t *testing.T) {
	// With equal sizes, the cheaper-to-fetch object is evicted first.
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 50, Cost: 500}) // expensive
	_, _ = c.Admit(Entry{Key: 2, Size: 50, Cost: 5})   // cheap
	evicted, _ := c.Admit(Entry{Key: 3, Size: 50, Cost: 50})
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("evicted %v, want [2] (cheap object)", evicted)
	}
}

func TestSizeAwareEviction(t *testing.T) {
	// With equal costs, the larger object has lower credit density and
	// is evicted first.
	c := mustNew(t, 150, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 100, Cost: 50}) // big
	_, _ = c.Admit(Entry{Key: 2, Size: 10, Cost: 50})  // small
	evicted, _ := c.Admit(Entry{Key: 3, Size: 100, Cost: 50})
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Errorf("evicted %v, want [1] (big object)", evicted)
	}
}

func TestGDSFFrequencyProtects(t *testing.T) {
	c := mustNew(t, 100, true)
	_, _ = c.Admit(Entry{Key: 1, Size: 50, Cost: 50})
	_, _ = c.Admit(Entry{Key: 2, Size: 50, Cost: 50})
	// Hammer object 1; GDSF should protect it even though 2 is newer.
	for i := 0; i < 10; i++ {
		c.Touch(1)
	}
	evicted, _ := c.Admit(Entry{Key: 3, Size: 50, Cost: 50})
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("evicted %v, want [2] (frequent object protected)", evicted)
	}
}

func TestInflationAges(t *testing.T) {
	// After many evictions the inflation level must rise, letting new
	// cheap objects displace old expensive ones eventually.
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 100, Cost: 10000}) // very expensive
	for i := int64(2); i < 10; i++ {
		_, ok := c.Admit(Entry{Key: i, Size: 100, Cost: 150})
		if !ok {
			t.Fatalf("admission %d failed", i)
		}
	}
	if c.Contains(1) {
		t.Error("expensive object should age out after enough faults")
	}
}

func TestAdmitExistingRefreshes(t *testing.T) {
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 30, Cost: 30})
	h0, _ := c.Credit(1)
	// Force inflation up.
	_, _ = c.Admit(Entry{Key: 2, Size: 70, Cost: 70})
	_, _ = c.Admit(Entry{Key: 3, Size: 70, Cost: 70})
	evicted, ok := c.Admit(Entry{Key: 1, Size: 30, Cost: 30})
	if !ok || len(evicted) != 0 {
		t.Fatalf("re-admit = (%v,%v)", evicted, ok)
	}
	h1, _ := c.Credit(1)
	if h1 < h0 {
		t.Errorf("credit decreased on refresh: %v -> %v", h0, h1)
	}
	if c.Used() != 100 {
		t.Errorf("used = %d, want 100 (no double count)", c.Used())
	}
}

func TestRemove(t *testing.T) {
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 30, Cost: 30})
	c.Remove(1)
	if c.Contains(1) || c.Used() != 0 {
		t.Error("Remove failed")
	}
	c.Remove(99) // absent: no-op
}

func TestKeysSorted(t *testing.T) {
	c := mustNew(t, 100, false)
	for _, k := range []int64{5, 1, 3} {
		_, _ = c.Admit(Entry{Key: k, Size: 10, Cost: 10})
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 5 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestAdmitBatchLazyElision(t *testing.T) {
	// Candidates that are admitted then displaced within the same batch
	// must not appear in the load plan.
	c := mustNew(t, 100, false)
	res := c.AdmitBatch([]Entry{
		{Key: 1, Size: 90, Cost: 10},   // low credit density
		{Key: 2, Size: 90, Cost: 9000}, // displaces 1 within the batch
	})
	if len(res.Load) != 1 || res.Load[0] != 2 {
		t.Errorf("Load = %v, want [2]", res.Load)
	}
	if len(res.Evict) != 0 {
		t.Errorf("Evict = %v, want [] (1 was never physically loaded)", res.Evict)
	}
}

func TestAdmitBatchEvictsOldOnly(t *testing.T) {
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 80, Cost: 10})
	res := c.AdmitBatch([]Entry{{Key: 2, Size: 80, Cost: 8000}})
	if len(res.Load) != 1 || res.Load[0] != 2 {
		t.Errorf("Load = %v, want [2]", res.Load)
	}
	if len(res.Evict) != 1 || res.Evict[0] != 1 {
		t.Errorf("Evict = %v, want [1]", res.Evict)
	}
}

func TestAdmitBatchPreexistingReofferNotElided(t *testing.T) {
	// A pre-existing object displaced by a batch that also re-offered it
	// must be reported as evicted (it physically occupies space).
	c := mustNew(t, 100, false)
	_, _ = c.Admit(Entry{Key: 1, Size: 60, Cost: 1})
	res := c.AdmitBatch([]Entry{
		{Key: 1, Size: 60, Cost: 1},    // touch
		{Key: 2, Size: 90, Cost: 9000}, // displaces 1
	})
	if len(res.Evict) != 1 || res.Evict[0] != 1 {
		t.Errorf("Evict = %v, want [1]", res.Evict)
	}
	if len(res.Load) != 1 || res.Load[0] != 2 {
		t.Errorf("Load = %v, want [2]", res.Load)
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	// Random operation sequences never exceed capacity, and Used always
	// equals the sum of resident sizes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(rng.Intn(500) + 1)
		c, err := New(capacity, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		sizes := make(map[int64]int64)
		for i := 0; i < 300; i++ {
			key := int64(rng.Intn(30))
			switch rng.Intn(4) {
			case 0:
				c.Touch(key)
			case 1:
				c.Remove(key)
				delete(sizes, key)
			default:
				size := int64(rng.Intn(200) + 1)
				cost := int64(rng.Intn(1000))
				wasPresent := c.Contains(key)
				evicted, ok := c.Admit(Entry{Key: key, Size: size, Cost: cost})
				for _, v := range evicted {
					delete(sizes, v)
				}
				if ok && !wasPresent {
					sizes[key] = size
				}
			}
			if c.Used() > c.Capacity() {
				return false
			}
			var sum int64
			for _, s := range sizes {
				sum += s
			}
			if sum != c.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAdmitBatchMatchesSequentialState(t *testing.T) {
	// The cache state after AdmitBatch must equal the state after the
	// same Admit calls done sequentially (laziness only changes the
	// physical load plan, not the bookkeeping).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := mustNew(t, 300, true)
		b := mustNew(t, 300, true)
		var warm []Entry
		for i := 0; i < 5; i++ {
			warm = append(warm, Entry{Key: int64(i), Size: int64(rng.Intn(90) + 1), Cost: int64(rng.Intn(500))})
		}
		for _, e := range warm {
			_, _ = a.Admit(e)
			_, _ = b.Admit(e)
		}
		var batch []Entry
		for i := 0; i < 6; i++ {
			batch = append(batch, Entry{Key: int64(10 + i), Size: int64(rng.Intn(150) + 1), Cost: int64(rng.Intn(500))})
		}
		a.AdmitBatch(batch)
		for _, e := range batch {
			_, _ = b.Admit(e)
		}
		ka, kb := a.Keys(), b.Keys()
		if len(ka) != len(kb) {
			t.Fatalf("trial %d: key sets differ: %v vs %v", trial, ka, kb)
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("trial %d: key sets differ: %v vs %v", trial, ka, kb)
			}
		}
	}
}
