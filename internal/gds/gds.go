// Package gds implements the Greedy-Dual-Size web-caching algorithm of
// Cao and Irani (USITS 1997) and its frequency-aware variant GDSF, plus
// the lazy batched admission mode VCover's LoadManager relies on
// (Section 4 of the paper, "we use a lazy version of Aobj").
//
// Greedy-Dual-Size keeps a credit H for every cached object. When an
// object is requested it receives H = L + cost/size (GDSF additionally
// multiplies by the object's hit count), where L is an inflation value
// equal to the credit of the last evicted object. Eviction removes the
// minimum-H object, so objects fall out of the cache once their credit
// is overtaken by the inflation level — a smooth blend of recency,
// frequency, fetch cost and size.
package gds

import (
	"fmt"
	"sort"
)

// Entry describes an admission candidate.
type Entry struct {
	// Key identifies the object.
	Key int64
	// Size is the object's size; the cache charges Size units of
	// capacity for it.
	Size int64
	// Cost is the cost of fetching the object on a miss (for Delta, the
	// object's load cost).
	Cost int64
}

// Cache is a Greedy-Dual-Size cache over abstract objects. It tracks
// only metadata: the caller moves actual data. Cache is not safe for
// concurrent use.
type Cache struct {
	capacity int64
	used     int64
	inflate  float64 // the running L value
	gdsf     bool

	entries map[int64]*entry
}

type entry struct {
	size, cost int64
	h          float64
	freq       int64
}

// New returns an empty cache with the given capacity. If gdsf is true
// the frequency-aware GDSF credit function is used.
func New(capacity int64, gdsf bool) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("gds: negative capacity %d", capacity)
	}
	return &Cache{
		capacity: capacity,
		gdsf:     gdsf,
		entries:  make(map[int64]*entry),
	}, nil
}

// Capacity returns the configured capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the capacity currently consumed.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether the key is cached.
func (c *Cache) Contains(key int64) bool {
	_, ok := c.entries[key]
	return ok
}

// Keys returns the cached keys in ascending order.
func (c *Cache) Keys() []int64 {
	out := make([]int64, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Credit returns the current H value of a cached key (0, false if
// absent). Exposed for tests and introspection.
func (c *Cache) Credit(key int64) (float64, bool) {
	e, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	return e.h, true
}

func (c *Cache) credit(e *entry) float64 {
	if e.size <= 0 {
		return c.inflate + float64(e.cost)
	}
	ratio := float64(e.cost) / float64(e.size)
	if c.gdsf {
		return c.inflate + float64(e.freq)*ratio
	}
	return c.inflate + ratio
}

// Touch records a hit on a cached object, refreshing its credit. It is
// a no-op for absent keys.
func (c *Cache) Touch(key int64) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.freq++
	e.h = c.credit(e)
}

// Remove evicts the key unconditionally (e.g. the simulator invalidated
// it). It is a no-op for absent keys.
func (c *Cache) Remove(key int64) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	c.used -= e.size
	delete(c.entries, key)
}

// Admit inserts the candidate, evicting minimum-credit objects until it
// fits. It returns the evicted keys and whether the candidate was
// admitted. Candidates larger than the whole cache are rejected without
// disturbing current contents. Admitting a cached key refreshes it
// (Touch) and evicts nothing.
func (c *Cache) Admit(cand Entry) (evicted []int64, admitted bool) {
	if cand.Size > c.capacity || cand.Size < 0 || cand.Cost < 0 {
		return nil, false
	}
	if _, ok := c.entries[cand.Key]; ok {
		c.Touch(cand.Key)
		return nil, true
	}
	for c.used+cand.Size > c.capacity {
		victim, ok := c.minCredit()
		if !ok {
			return evicted, false // nothing left to evict; cannot happen with valid sizes
		}
		// The inflation level rises to the evicted credit: this is the
		// "aging" that lets stale high-cost objects eventually leave.
		c.inflate = c.entries[victim].h
		c.used -= c.entries[victim].size
		delete(c.entries, victim)
		evicted = append(evicted, victim)
	}
	e := &entry{size: cand.Size, cost: cand.Cost, freq: 1}
	e.h = c.credit(e)
	c.entries[cand.Key] = e
	c.used += cand.Size
	return evicted, true
}

// BatchResult reports the net effect of a lazy batched admission.
type BatchResult struct {
	// Load holds candidate keys that should actually be loaded: they
	// were admitted and survived the whole batch.
	Load []int64
	// Evict holds previously-cached keys that must be evicted to make
	// room. Keys admitted and evicted within the same batch appear in
	// neither list — that is the laziness: such objects are never
	// physically loaded (Section 4: "loading oi is not useful").
	Evict []int64
}

// AdmitBatch processes the candidates of one query in order with the
// lazy semantics of the paper's LoadManager: credits and inflation are
// updated exactly as sequential Admit calls would, but objects that a
// later candidate of the same batch would displace are elided from the
// physical load plan.
func (c *Cache) AdmitBatch(cands []Entry) BatchResult {
	newly := make(map[int64]bool, len(cands))
	evictedOld := make(map[int64]bool)
	for _, cand := range cands {
		wasPresent := c.Contains(cand.Key)
		evicted, admitted := c.Admit(cand)
		for _, v := range evicted {
			if newly[v] {
				delete(newly, v) // loaded and dropped within the batch: elide
			} else {
				evictedOld[v] = true
			}
		}
		if admitted && !wasPresent {
			newly[cand.Key] = true
		}
	}
	var res BatchResult
	for k := range newly {
		res.Load = append(res.Load, k)
	}
	for k := range evictedOld {
		res.Evict = append(res.Evict, k)
	}
	sort.Slice(res.Load, func(i, j int) bool { return res.Load[i] < res.Load[j] })
	sort.Slice(res.Evict, func(i, j int) bool { return res.Evict[i] < res.Evict[j] })
	return res
}

// minCredit returns the key with the smallest credit, breaking ties by
// smaller key for determinism.
func (c *Cache) minCredit() (int64, bool) {
	var (
		bestKey int64
		bestH   float64
		found   bool
	)
	for k, e := range c.entries {
		if !found || e.h < bestH || (e.h == bestH && k < bestKey) {
			bestKey, bestH, found = k, e.h, true
		}
	}
	return bestKey, found
}
