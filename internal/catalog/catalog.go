// Package catalog builds the synthetic survey the experiments run
// against: a PhotoObj-like star catalog with a clustered sky-density
// model, partitioned into data objects by a density-adaptive HTM mesh.
//
// The paper's server is a ~1 TB SDSS PhotoObj table partitioned into 68
// HTM objects holding ~800 GB, with object sizes from 50 MB to 90 GB.
// We do not have SDSS; the substitution (documented in DESIGN.md) is a
// parametric density model that reproduces the quantities Delta's
// decisions actually depend on: the object-size distribution, the
// query→object mapping, and the spatial clustering that makes query and
// update hotspots distinct.
package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/htm"
	"github.com/deltacache/delta/internal/model"
)

// Sky is a clustered density model: a uniform background plus Gaussian
// blobs (star-forming regions, the galactic plane, survey stripes).
// Density returns relative rows per steradian.
type Sky struct {
	background float64
	blobs      []Blob
}

// Blob is one Gaussian density cluster on the sphere.
type Blob struct {
	Center geom.Vec3
	// Sigma is the angular scale in radians.
	Sigma float64
	// Weight is the blob's peak density relative to the background.
	Weight float64
	// Role labels what the workload generator uses the blob for; blobs
	// are split between query hotspots and update hotspots so the two
	// stay spatially decoupled, as observed in the paper's Figure 7(a).
	Role BlobRole
}

// BlobRole classifies a density blob for the workload generator.
type BlobRole int

const (
	// QueryHot blobs attract query campaigns.
	QueryHot BlobRole = iota + 1
	// UpdateHot blobs attract telescope scan stripes.
	UpdateHot
)

// NewSky builds a density model with the given number of blobs,
// alternating query-hot and update-hot roles. Blob centers repel each
// other lightly so hotspots do not stack.
func NewSky(seed int64, nBlobs int) *Sky {
	rng := rand.New(rand.NewSource(seed))
	sky := &Sky{background: 0.15}
	for i := 0; i < nBlobs; i++ {
		var center geom.Vec3
		// Rejection: keep blob centers at least ~25° apart when
		// possible, so query and update hotspots occupy distinct sky.
		for attempt := 0; ; attempt++ {
			center = randomUnit(rng)
			ok := true
			for _, b := range sky.blobs {
				if center.AngleTo(b.Center) < 25*math.Pi/180 {
					ok = false
					break
				}
			}
			if ok || attempt > 50 {
				break
			}
		}
		role := QueryHot
		if i%2 == 1 {
			role = UpdateHot
		}
		// Update-hot regions are the dense sky the pipeline scans
		// (galactic plane class): strong density peaks, hence the large
		// 90 GB-class objects that make full replication expensive.
		// Query-hot regions are scientifically interesting but not
		// necessarily dense (quasar fields, deep stripes): mild bumps,
		// so their objects are small enough that caching them is
		// worthwhile — the paper's hot objects are cacheable while its
		// object sizes still span 50 MB to 90 GB.
		weight := 3 + 5*rng.Float64()
		if role == QueryHot {
			weight = 0.4 + 0.8*rng.Float64()
		}
		sky.blobs = append(sky.blobs, Blob{
			Center: center,
			Sigma:  (4 + 10*rng.Float64()) * math.Pi / 180,
			Weight: weight,
			Role:   role,
		})
	}
	return sky
}

// Density returns the relative row density at a sky position.
func (s *Sky) Density(v geom.Vec3) float64 {
	d := s.background
	for _, b := range s.blobs {
		a := v.AngleTo(b.Center)
		d += b.Weight * math.Exp(-a*a/(2*b.Sigma*b.Sigma))
	}
	return d
}

// Blobs returns the blobs with the given role (all blobs if role is 0).
func (s *Sky) Blobs(role BlobRole) []Blob {
	var out []Blob
	for _, b := range s.blobs {
		if role == 0 || b.Role == role {
			out = append(out, b)
		}
	}
	return out
}

// Config parameterizes a synthetic survey.
type Config struct {
	// Seed drives every random choice; equal seeds give identical
	// surveys.
	Seed int64
	// NumObjects is the number of data objects (HTM partitions).
	NumObjects int
	// TotalSize is the summed size of all objects (paper: ~800 GB at 68
	// objects).
	TotalSize cost.Bytes
	// MinObjectSize and MaxObjectSize clamp individual object sizes
	// (paper: 50 MB to 90 GB).
	MinObjectSize cost.Bytes
	MaxObjectSize cost.Bytes
	// Blobs is the number of density clusters on the sky.
	Blobs int
	// Uniform selects the complete uniform decomposition at a fixed HTM
	// level instead of the adaptive keep-the-densest mesh. NumObjects
	// must then be exactly 8·4^level (…, 32768, 131072, 524288,
	// 2097152). This is the million-object path: the adaptive builder
	// materializes the whole trixel tree and runs an O(n²) assignment
	// pass, while the uniform partition stores one weight per object
	// and resolves positions and covers on the implicit tree.
	Uniform bool
}

// DefaultConfig mirrors the paper's server: 68 objects, 800 GB total,
// sizes within [50 MB, 90 GB].
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		NumObjects:    68,
		TotalSize:     800 * cost.GB,
		MinObjectSize: 50 * cost.MB,
		MaxObjectSize: 90 * cost.GB,
		Blobs:         10,
	}
}

// Survey is a fully-built synthetic repository: density model, HTM
// partition, and sized data objects.
//
// The survey grows while serving: AddObject ingests newly published
// objects (the paper's rapidly-growing repository), which join the
// universe with dense sequential IDs and attach to the partition cell
// containing their sky position, so the query→object mapping covers
// them without recomputing the mesh. The base partition built by
// NewSurvey is immutable; only the born-object extension is guarded by
// the mutex, so concurrent readers and one grower are safe.
type Survey struct {
	cfg       Config
	sky       *Sky
	partition skyPartition
	objects   []model.Object
	maxDens   float64

	mu         sync.RWMutex
	born       []bornObject
	bornByCell map[int][]int // partition cell index → born indexes
}

// skyPartition is what the survey needs from a sphere decomposition;
// both the adaptive htm.Partition and the uniform htm.DensePartition
// satisfy it.
type skyPartition interface {
	N() int
	ObjectFor(geom.Vec3) int
	Cover(geom.Cap) []int
	Weights() []float64
	ObjectTrixelID(int) uint64
}

// bornObject is one live-ingested object with its sky position, its
// publication time, and the partition cell it attaches to.
type bornObject struct {
	obj  model.Object
	pos  geom.Vec3
	cell int
	t    time.Duration
}

// NewSurvey constructs the survey: the sky density model, the adaptive
// HTM partition with NumObjects objects, and per-object sizes
// proportional to integrated density, clamped to the configured range
// and rescaled to the configured total.
func NewSurvey(cfg Config) (*Survey, error) {
	if cfg.NumObjects < 8 {
		return nil, fmt.Errorf("catalog: need at least 8 objects, got %d", cfg.NumObjects)
	}
	if cfg.TotalSize <= 0 {
		return nil, fmt.Errorf("catalog: total size must be positive")
	}
	if cfg.MinObjectSize > cfg.MaxObjectSize {
		return nil, fmt.Errorf("catalog: min object size exceeds max")
	}
	sky := NewSky(cfg.Seed, cfg.Blobs)
	var part skyPartition
	if cfg.Uniform {
		// Complete decomposition: one density sample per trixel keeps
		// the build O(n) even at two million objects, where the 7-point
		// quadrature would cost seven sky evaluations apiece.
		weight := func(t htm.Trixel) float64 {
			return sky.Density(t.Center()) * t.AreaSr()
		}
		dense, err := htm.BuildDense(weight, cfg.NumObjects)
		if err != nil {
			return nil, fmt.Errorf("catalog: build partition: %w", err)
		}
		part = dense
	} else {
		weight := func(t htm.Trixel) float64 {
			return integrateDensity(sky, t)
		}
		// Equi-area partitions at a fixed HTM level, keeping the N
		// densest (the paper's construction); object sizes then follow
		// density and span the paper's 50 MB – 90 GB range.
		leveled, err := htm.BuildLeveled(weight, cfg.NumObjects)
		if err != nil {
			return nil, fmt.Errorf("catalog: build partition: %w", err)
		}
		part = leveled
	}
	s := &Survey{cfg: cfg, sky: sky, partition: part}
	s.sizeObjects()
	s.maxDens = s.estimateMaxDensity()
	return s, nil
}

// integrateDensity approximates the integral of sky density over a
// trixel by a fixed 7-point quadrature (vertices, edge midpoints,
// centroid) times the trixel's area.
func integrateDensity(sky *Sky, t htm.Trixel) float64 {
	pts := [7]geom.Vec3{
		t.V[0], t.V[1], t.V[2],
		t.V[0].Add(t.V[1]).Normalize(),
		t.V[1].Add(t.V[2]).Normalize(),
		t.V[2].Add(t.V[0]).Normalize(),
		t.Center(),
	}
	sum := 0.0
	for _, p := range pts {
		sum += sky.Density(p)
	}
	return sum / 7 * t.AreaSr()
}

func (s *Survey) sizeObjects() {
	weights := s.partition.Weights()
	total := 0.0
	for _, w := range weights {
		total += w
	}
	n := len(weights)
	s.objects = make([]model.Object, n)
	// First pass: proportional allocation with clamping.
	var allocated cost.Bytes
	for i, w := range weights {
		size := cost.Bytes(float64(s.cfg.TotalSize) * w / total)
		if size < s.cfg.MinObjectSize {
			size = s.cfg.MinObjectSize
		}
		if size > s.cfg.MaxObjectSize {
			size = s.cfg.MaxObjectSize
		}
		s.objects[i] = model.Object{
			ID:     model.ObjectID(i + 1),
			Size:   size,
			Trixel: s.partition.ObjectTrixelID(i),
		}
		allocated += size
	}
	// Second pass: rescale unclamped objects so the total approaches
	// the configured TotalSize.
	if allocated != s.cfg.TotalSize {
		scale := float64(s.cfg.TotalSize) / float64(allocated)
		for i := range s.objects {
			scaled := cost.Bytes(float64(s.objects[i].Size) * scale)
			if scaled < s.cfg.MinObjectSize {
				scaled = s.cfg.MinObjectSize
			}
			if scaled > s.cfg.MaxObjectSize {
				scaled = s.cfg.MaxObjectSize
			}
			s.objects[i].Size = scaled
		}
	}
}

func (s *Survey) estimateMaxDensity() float64 {
	maxD := s.sky.background
	for _, b := range s.sky.blobs {
		if d := s.sky.Density(b.Center); d > maxD {
			maxD = d
		}
	}
	return maxD * 1.1
}

// Config returns the survey's configuration.
func (s *Survey) Config() Config { return s.cfg }

// Sky returns the density model.
func (s *Survey) Sky() *Sky { return s.sky }

// Objects returns the data objects (base partition plus any born
// objects), indexed by ObjectID-1.
func (s *Survey) Objects() []model.Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Object, 0, len(s.objects)+len(s.born))
	out = append(out, s.objects...)
	for _, b := range s.born {
		out = append(out, b.obj)
	}
	return out
}

// Object returns the object with the given ID.
func (s *Survey) Object(id model.ObjectID) (model.Object, error) {
	idx := int(id) - 1
	if idx >= 0 && idx < len(s.objects) {
		return s.objects[idx], nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if bidx := idx - len(s.objects); bidx >= 0 && bidx < len(s.born) {
		return s.born[bidx].obj, nil
	}
	return model.Object{}, fmt.Errorf("catalog: unknown object %d", id)
}

// NumObjects returns the number of data objects, born included.
func (s *Survey) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects) + len(s.born)
}

// NextID returns the ID the next born object must carry: IDs are dense
// and sequential, continuing the base partition's 1..N.
func (s *Survey) NextID() model.ObjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return model.ObjectID(len(s.objects) + len(s.born) + 1)
}

// TotalSize returns the summed object size, born included.
func (s *Survey) TotalSize() cost.Bytes {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total cost.Bytes
	for _, o := range s.objects {
		total += o.Size
	}
	for _, b := range s.born {
		total += b.obj.Size
	}
	return total
}

// AddObject ingests one newly published object. The birth's ID must be
// exactly NextID (dense sequential growth; out-of-order publications
// are a pipeline bug) and its size positive. The object attaches to
// the partition cell containing its position, so CoverCap and the HTM
// ownership cuts place it next to its spatial neighbors.
func (s *Survey) AddObject(b model.Birth) error {
	if b.Object.Size <= 0 {
		return fmt.Errorf("catalog: born object %d has non-positive size", b.Object.ID)
	}
	pos := geom.FromRADec(b.RA, b.Dec)
	cell := s.partition.ObjectFor(pos)
	s.mu.Lock()
	defer s.mu.Unlock()
	want := model.ObjectID(len(s.objects) + len(s.born) + 1)
	if b.Object.ID != want {
		return fmt.Errorf("catalog: born object ID %d out of sequence (next is %d)", b.Object.ID, want)
	}
	obj := b.Object
	if obj.Trixel == 0 {
		// Inherit the containing cell's trixel so spatial sorts place
		// the newborn beside its neighbors.
		obj.Trixel = s.partition.ObjectTrixelID(cell)
	}
	if s.bornByCell == nil {
		s.bornByCell = make(map[int][]int)
	}
	s.bornByCell[cell] = append(s.bornByCell[cell], len(s.born))
	s.born = append(s.born, bornObject{obj: obj, pos: pos, cell: cell, t: b.Time})
	return nil
}

// GrowObjects publishes n new objects at density-sampled sky positions
// (newly released survey data lands where the sky is busy, which is
// where access concentrates), applies them to this survey, and returns
// the births for shipping to other parties. Sizes are lognormal around
// a quarter of the mean base-object size, clamped to the configured
// range — new partitions start small and cacheable. Deterministic for
// a given rng state.
func (s *Survey) GrowObjects(rng *rand.Rand, n int, at time.Duration) ([]model.Birth, error) {
	births := make([]model.Birth, 0, n)
	meanBase := float64(s.cfg.TotalSize) / float64(max(s.cfg.NumObjects, 1)) / 4
	for i := 0; i < n; i++ {
		pos := s.SamplePosition(rng)
		ra, dec := pos.RADec()
		const sigma = 1.0
		mu := math.Log(math.Max(meanBase, float64(s.cfg.MinObjectSize))) - sigma*sigma/2
		size := cost.Bytes(math.Exp(mu + sigma*rng.NormFloat64()))
		if size < s.cfg.MinObjectSize {
			size = s.cfg.MinObjectSize
		}
		if size > s.cfg.MaxObjectSize {
			size = s.cfg.MaxObjectSize
		}
		b := model.Birth{
			Object: model.Object{ID: s.NextID(), Size: size},
			RA:     ra,
			Dec:    dec,
			Time:   at,
		}
		if err := s.AddObject(b); err != nil {
			return births, err
		}
		// Return the stored copy so the shipped birth carries the
		// inherited trixel.
		obj, _ := s.Object(b.Object.ID)
		b.Object = obj
		births = append(births, b)
	}
	return births, nil
}

// ObjectAt returns the ID of the object owning a sky position.
func (s *Survey) ObjectAt(v geom.Vec3) model.ObjectID {
	return model.ObjectID(s.partition.ObjectFor(v) + 1)
}

// CoverCap returns the IDs of objects whose partitions may intersect
// the cap — the query→object mapping B(q). Born objects are included
// through the cell they attach to.
func (s *Survey) CoverCap(c geom.Cap) []model.ObjectID {
	idxs := s.partition.Cover(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.ObjectID, 0, len(idxs))
	for _, idx := range idxs {
		out = append(out, model.ObjectID(idx+1))
		for _, bidx := range s.bornByCell[idx] {
			out = append(out, s.born[bidx].obj.ID)
		}
	}
	return out
}

// BornObjects returns the objects ingested after construction, in
// publication order, as shippable births.
func (s *Survey) BornObjects() []model.Birth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Birth, len(s.born))
	for i, b := range s.born {
		ra, dec := b.pos.RADec()
		out[i] = model.Birth{Object: b.obj, RA: ra, Dec: dec, Time: b.t}
	}
	return out
}

// Density returns the relative row density at a sky position.
func (s *Survey) Density(v geom.Vec3) float64 { return s.sky.Density(v) }

// SamplePosition draws a sky position distributed proportionally to
// density, by rejection sampling.
func (s *Survey) SamplePosition(rng *rand.Rand) geom.Vec3 {
	for {
		v := randomUnit(rng)
		if rng.Float64()*s.maxDens <= s.sky.Density(v) {
			return v
		}
	}
}

// Row is one star record of the synthetic PhotoObj sample, used by the
// end-to-end demos and the mini SQL executor. Magnitudes follow the
// SDSS u,g,r,i,z bands.
type Row struct {
	ObjID  int64          `json:"objID"`
	Object model.ObjectID `json:"object"`
	RA     float64        `json:"ra"`
	Dec    float64        `json:"dec"`
	U      float64        `json:"u"`
	G      float64        `json:"g"`
	R      float64        `json:"r"`
	I      float64        `json:"i"`
	Z      float64        `json:"z"`
}

// SampleRows materializes n catalog rows with positions following the
// density model. The sample is deterministic for a given seed.
func (s *Survey) SampleRows(n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		v := s.SamplePosition(rng)
		ra, dec := v.RADec()
		r := 14 + rng.Float64()*8 // r-band magnitude 14..22
		rows[i] = Row{
			ObjID:  int64(i + 1),
			Object: s.ObjectAt(v),
			RA:     ra,
			Dec:    dec,
			U:      r + 1.2 + rng.NormFloat64()*0.3,
			G:      r + 0.5 + rng.NormFloat64()*0.2,
			R:      r,
			I:      r - 0.3 + rng.NormFloat64()*0.2,
			Z:      r - 0.5 + rng.NormFloat64()*0.3,
		}
	}
	return rows
}

func randomUnit(rng *rand.Rand) geom.Vec3 {
	return geom.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}.Normalize()
}
