package catalog

import (
	"math/rand"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

func testSurvey(t *testing.T) *Survey {
	t.Helper()
	s, err := NewSurvey(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSurveyDefault(t *testing.T) {
	s := testSurvey(t)
	if s.NumObjects() != 68 {
		t.Errorf("NumObjects = %d, want 68", s.NumObjects())
	}
}

func TestNewSurveyValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"too few objects", func(c *Config) { c.NumObjects = 3 }},
		{"zero total", func(c *Config) { c.TotalSize = 0 }},
		{"min above max", func(c *Config) { c.MinObjectSize = 2 * c.MaxObjectSize }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if _, err := NewSurvey(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestObjectSizesWithinBounds(t *testing.T) {
	s := testSurvey(t)
	cfg := s.Config()
	for _, o := range s.Objects() {
		if o.Size < cfg.MinObjectSize || o.Size > cfg.MaxObjectSize {
			t.Errorf("object %d size %v outside [%v, %v]",
				o.ID, o.Size, cfg.MinObjectSize, cfg.MaxObjectSize)
		}
	}
}

func TestObjectSizesVary(t *testing.T) {
	// The paper reports sizes from 50 MB to 90 GB; ours must at least
	// span an order of magnitude.
	s := testSurvey(t)
	minS, maxS := s.Objects()[0].Size, s.Objects()[0].Size
	for _, o := range s.Objects() {
		if o.Size < minS {
			minS = o.Size
		}
		if o.Size > maxS {
			maxS = o.Size
		}
	}
	if maxS < 10*minS {
		t.Errorf("object sizes too uniform: min %v max %v", minS, maxS)
	}
}

func TestTotalSizeNearTarget(t *testing.T) {
	s := testSurvey(t)
	got := float64(s.TotalSize())
	want := float64(s.Config().TotalSize)
	if got < 0.5*want || got > 1.5*want {
		t.Errorf("total size %v too far from target %v", s.TotalSize(), s.Config().TotalSize)
	}
}

func TestObjectLookup(t *testing.T) {
	s := testSurvey(t)
	if _, err := s.Object(1); err != nil {
		t.Errorf("Object(1): %v", err)
	}
	if _, err := s.Object(0); err == nil {
		t.Error("Object(0) should fail")
	}
	if _, err := s.Object(69); err == nil {
		t.Error("Object(69) should fail")
	}
}

func TestObjectAtInRange(t *testing.T) {
	s := testSurvey(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		id := s.ObjectAt(randomUnit(rng))
		if id < 1 || int(id) > s.NumObjects() {
			t.Fatalf("ObjectAt returned out-of-range ID %d", id)
		}
	}
}

func TestCoverCapNonEmptyAndValid(t *testing.T) {
	s := testSurvey(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		c := geom.NewCap(randomUnit(rng), rng.Float64()*10+0.1)
		ids := s.CoverCap(c)
		if len(ids) == 0 {
			t.Fatal("empty cover")
		}
		for _, id := range ids {
			if id < 1 || int(id) > s.NumObjects() {
				t.Fatalf("cover contains invalid ID %d", id)
			}
		}
	}
}

func TestSkyDensityPositiveAndClustered(t *testing.T) {
	sky := NewSky(7, 10)
	rng := rand.New(rand.NewSource(5))
	minD, maxD := 1e18, 0.0
	for i := 0; i < 5000; i++ {
		d := sky.Density(randomUnit(rng))
		if d <= 0 {
			t.Fatalf("non-positive density %v", d)
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 3*minD {
		t.Errorf("density not clustered: min %v max %v", minD, maxD)
	}
}

func TestSkyBlobRoles(t *testing.T) {
	sky := NewSky(7, 10)
	q := sky.Blobs(QueryHot)
	u := sky.Blobs(UpdateHot)
	if len(q) != 5 || len(u) != 5 {
		t.Errorf("blob roles: %d query, %d update, want 5/5", len(q), len(u))
	}
	if got := len(sky.Blobs(0)); got != 10 {
		t.Errorf("Blobs(0) = %d, want 10", got)
	}
}

func TestSurveyDeterministic(t *testing.T) {
	a := testSurvey(t)
	b := testSurvey(t)
	oa, ob := a.Objects(), b.Objects()
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("object %d differs across identical builds", i)
		}
	}
}

func TestSamplePositionFollowsDensity(t *testing.T) {
	s := testSurvey(t)
	rng := rand.New(rand.NewSource(6))
	// Average density at sampled positions must exceed the sky average
	// (samples concentrate in blobs).
	var sampleAvg, skyAvg float64
	const n = 2000
	for i := 0; i < n; i++ {
		sampleAvg += s.Density(s.SamplePosition(rng))
		skyAvg += s.Density(randomUnit(rng))
	}
	if sampleAvg <= skyAvg {
		t.Errorf("density-weighted sampling not concentrating: %v <= %v", sampleAvg/n, skyAvg/n)
	}
}

func TestSampleRows(t *testing.T) {
	s := testSurvey(t)
	rows := s.SampleRows(500, 42)
	if len(rows) != 500 {
		t.Fatalf("len = %d", len(rows))
	}
	for i, r := range rows {
		if r.RA < 0 || r.RA >= 360 || r.Dec < -90 || r.Dec > 90 {
			t.Fatalf("row %d has invalid coordinates (%v, %v)", i, r.RA, r.Dec)
		}
		if r.Object < 1 || int(r.Object) > s.NumObjects() {
			t.Fatalf("row %d has invalid object %d", i, r.Object)
		}
		if r.R < 13 || r.R > 23 {
			t.Fatalf("row %d magnitude out of range: %v", i, r.R)
		}
	}
	again := s.SampleRows(500, 42)
	if rows[123] != again[123] {
		t.Error("SampleRows not deterministic for equal seeds")
	}
}

func TestPaperGranularityObjectCounts(t *testing.T) {
	// The Fig 8(b) sweep requires surveys at each of the paper's object
	// counts.
	for _, n := range []int{10, 20, 68, 91} {
		cfg := DefaultConfig()
		cfg.NumObjects = n
		s, err := NewSurvey(cfg)
		if err != nil {
			t.Fatalf("NewSurvey(%d): %v", n, err)
		}
		if s.NumObjects() != n {
			t.Errorf("NumObjects = %d, want %d", s.NumObjects(), n)
		}
	}
}

func TestObjectSizeTotalForDifferentGranularities(t *testing.T) {
	// Total size should stay near the target regardless of granularity
	// (each object set covers the same sky).
	for _, n := range []int{20, 134} {
		cfg := DefaultConfig()
		cfg.NumObjects = n
		s, err := NewSurvey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(s.TotalSize())
		want := float64(cfg.TotalSize)
		if got < 0.4*want || got > 1.6*want {
			t.Errorf("n=%d: total %v too far from %v", n, s.TotalSize(), cfg.TotalSize)
		}
	}
}

func TestAddObjectSequentialIDs(t *testing.T) {
	s := testSurvey(t)
	base := s.NumObjects()
	next := s.NextID()
	if int(next) != base+1 {
		t.Fatalf("NextID = %d, want %d", next, base+1)
	}
	b := model.Birth{Object: model.Object{ID: next, Size: 200 * cost.MB}, RA: 120, Dec: 10}
	if err := s.AddObject(b); err != nil {
		t.Fatal(err)
	}
	if s.NumObjects() != base+1 {
		t.Errorf("NumObjects = %d after birth, want %d", s.NumObjects(), base+1)
	}
	got, err := s.Object(next)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 200*cost.MB {
		t.Errorf("born object size %v", got.Size)
	}
	if got.Trixel == 0 {
		t.Error("born object should inherit its cell's trixel")
	}
	// Out-of-sequence and duplicate births are rejected.
	if err := s.AddObject(model.Birth{Object: model.Object{ID: next, Size: cost.MB}}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := s.AddObject(model.Birth{Object: model.Object{ID: next + 5, Size: cost.MB}}); err == nil {
		t.Error("gapped ID should fail")
	}
	if err := s.AddObject(model.Birth{Object: model.Object{ID: next + 1, Size: 0}}); err == nil {
		t.Error("non-positive size should fail")
	}
}

func TestBornObjectCoveredByCap(t *testing.T) {
	s := testSurvey(t)
	next := s.NextID()
	if err := s.AddObject(model.Birth{
		Object: model.Object{ID: next, Size: cost.GB}, RA: 45, Dec: -20,
	}); err != nil {
		t.Fatal(err)
	}
	ids := s.CoverCap(geom.CapFromRADec(45, -20, 1))
	found := false
	for _, id := range ids {
		if id == next {
			found = true
		}
	}
	if !found {
		t.Errorf("cap over the birth position covers %v, missing born object %d", ids, next)
	}
	// A cap on the opposite side of the sky does not cover the birth.
	for _, id := range s.CoverCap(geom.CapFromRADec(225, 20, 1)) {
		if id == next {
			t.Error("far cap should not cover the born object")
		}
	}
	// Objects() includes the newborn at index ID-1.
	objs := s.Objects()
	if objs[len(objs)-1].ID != next {
		t.Errorf("Objects tail = %d, want %d", objs[len(objs)-1].ID, next)
	}
}

func TestGrowObjectsDeterministic(t *testing.T) {
	a, b := testSurvey(t), testSurvey(t)
	ba, err := a.GrowObjects(rand.New(rand.NewSource(9)), 5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.GrowObjects(rand.New(rand.NewSource(9)), 5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba) != 5 || len(bb) != 5 {
		t.Fatalf("grew %d and %d objects", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Errorf("birth %d diverged: %+v vs %+v", i, ba[i], bb[i])
		}
		if ba[i].Object.Size < a.Config().MinObjectSize || ba[i].Object.Size > a.Config().MaxObjectSize {
			t.Errorf("birth %d size %v outside configured range", i, ba[i].Object.Size)
		}
	}
	if total := a.TotalSize(); total <= a.Config().TotalSize {
		t.Errorf("grown survey total %v should exceed base %v", total, a.Config().TotalSize)
	}
	if got := a.BornObjects(); len(got) != 5 {
		t.Errorf("BornObjects = %d, want 5", len(got))
	}
}
