package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRADecCardinalPoints(t *testing.T) {
	tests := []struct {
		name    string
		ra, dec float64
		want    Vec3
	}{
		{"vernal equinox", 0, 0, Vec3{1, 0, 0}},
		{"ra 90", 90, 0, Vec3{0, 1, 0}},
		{"ra 180", 180, 0, Vec3{-1, 0, 0}},
		{"ra 270", 270, 0, Vec3{0, -1, 0}},
		{"north pole", 0, 90, Vec3{0, 0, 1}},
		{"south pole", 123, -90, Vec3{0, 0, -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromRADec(tt.ra, tt.dec)
			if !almostEqual(got.X, tt.want.X, eps) ||
				!almostEqual(got.Y, tt.want.Y, eps) ||
				!almostEqual(got.Z, tt.want.Z, eps) {
				t.Errorf("FromRADec(%v, %v) = %v, want %v", tt.ra, tt.dec, got, tt.want)
			}
		})
	}
}

func TestRADecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ra := rng.Float64() * 360
		dec := rng.Float64()*178 - 89 // avoid pole degeneracy where RA is undefined
		v := FromRADec(ra, dec)
		gotRA, gotDec := v.RADec()
		if !almostEqual(gotRA, ra, 1e-9) || !almostEqual(gotDec, dec, 1e-9) {
			t.Fatalf("round trip (%v,%v) -> (%v,%v)", ra, dec, gotRA, gotDec)
		}
	}
}

func TestUnitVectorProperty(t *testing.T) {
	f := func(raRaw, decRaw float64) bool {
		ra := math.Mod(math.Abs(raRaw), 360)
		dec := math.Mod(math.Abs(decRaw), 180) - 90
		v := FromRADec(ra, dec)
		return almostEqual(v.Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleTo(t *testing.T) {
	a := FromRADec(0, 0)
	tests := []struct {
		name string
		b    Vec3
		want float64 // degrees
	}{
		{"same point", FromRADec(0, 0), 0},
		{"orthogonal", FromRADec(90, 0), 90},
		{"antipodal", FromRADec(180, 0), 180},
		{"small sep", FromRADec(0.001, 0), 0.001},
		{"to pole", FromRADec(0, 90), 90},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := a.AngleToDeg(tt.b)
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("AngleToDeg = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAngleToSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := FromRADec(rng.Float64()*360, rng.Float64()*180-90)
		b := FromRADec(rng.Float64()*360, rng.Float64()*180-90)
		if !almostEqual(a.AngleTo(b), b.AngleTo(a), 1e-12) {
			t.Fatalf("AngleTo not symmetric for %v, %v", a, b)
		}
	}
}

func TestCrossOrthogonality(t *testing.T) {
	// Generate unit vectors from bounded angles; unconstrained float64
	// inputs overflow the intermediate products.
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := FromRADec(math.Mod(math.Abs(ra1), 360), math.Mod(math.Abs(dec1), 180)-90)
		b := FromRADec(math.Mod(math.Abs(ra2), 360), math.Mod(math.Abs(dec2), 180)-90)
		c := a.Cross(b)
		return almostEqual(c.Dot(a), 0, 1e-9) && almostEqual(c.Dot(b), 0, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCapContains(t *testing.T) {
	c := CapFromRADec(180, 0, 10)
	tests := []struct {
		name    string
		ra, dec float64
		want    bool
	}{
		{"center", 180, 0, true},
		{"inside", 185, 3, true},
		{"just inside boundary", 189.99, 0, true},
		{"just outside boundary", 190.01, 0, false},
		{"far away", 0, 0, false},
		{"north pole", 0, 90, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Contains(FromRADec(tt.ra, tt.dec)); got != tt.want {
				t.Errorf("Contains(%v,%v) = %v, want %v", tt.ra, tt.dec, got, tt.want)
			}
		})
	}
}

func TestCapRadiusRoundTrip(t *testing.T) {
	for _, r := range []float64{0.1, 1, 5, 30, 90, 150} {
		c := CapFromRADec(10, 20, r)
		if !almostEqual(c.RadiusDeg(), r, 1e-9) {
			t.Errorf("RadiusDeg() = %v, want %v", c.RadiusDeg(), r)
		}
	}
}

func TestGreatCirclePointsOnSphereAndPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		pole := FromRADec(rng.Float64()*360, rng.Float64()*180-90)
		g := NewGreatCircle(pole)
		for j := 0; j < 16; j++ {
			theta := float64(j) / 16 * 2 * math.Pi
			p := g.Point(theta)
			if !almostEqual(p.Norm(), 1, 1e-12) {
				t.Fatalf("point off unit sphere: %v", p)
			}
			if !almostEqual(p.Dot(g.Pole), 0, 1e-12) {
				t.Fatalf("point off great-circle plane: %v", p)
			}
		}
	}
}

func TestGreatCirclePhaseSpacing(t *testing.T) {
	g := NewGreatCircle(Vec3{0, 0, 1})
	// Consecutive points spaced dθ apart must be dθ apart on the sphere.
	const dTheta = 0.01
	for i := 0; i < 100; i++ {
		a := g.Point(float64(i) * dTheta)
		b := g.Point(float64(i+1) * dTheta)
		if !almostEqual(a.AngleTo(b), dTheta, 1e-9) {
			t.Fatalf("spacing %v, want %v", a.AngleTo(b), dTheta)
		}
	}
}

func TestTriangleAreaOctant(t *testing.T) {
	// One octant of the sphere has area 4π/8.
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	c := Vec3{0, 0, 1}
	got := TriangleAreaSr(a, b, c)
	want := SphereAreaSr / 8
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("octant area = %v, want %v", got, want)
	}
}

func TestTriangleAreaDegenerate(t *testing.T) {
	a := Vec3{1, 0, 0}
	if got := TriangleAreaSr(a, a, Vec3{0, 1, 0}); !almostEqual(got, 0, 1e-9) {
		t.Errorf("degenerate triangle area = %v, want 0", got)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	var v Vec3
	if got := v.Normalize(); got != v {
		t.Errorf("Normalize(zero) = %v, want zero", got)
	}
}

func TestScaleAddSub(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}
