// Package geom provides the spherical geometry primitives the HTM index
// and the workload generator are built on: unit vectors on the celestial
// sphere, RA/Dec conversions, angular distances, spherical caps (cones)
// and great-circle scans.
//
// Conventions: right ascension (RA) and declination (Dec) are degrees,
// RA ∈ [0, 360), Dec ∈ [-90, +90]. Unit vectors use the standard
// astronomical frame: x toward (RA=0, Dec=0), z toward the north
// celestial pole.
package geom

import (
	"fmt"
	"math"
)

// Degrees per radian.
const degPerRad = 180 / math.Pi

// Vec3 is a three-dimensional vector. Points on the celestial sphere are
// represented as unit vectors.
type Vec3 struct {
	X, Y, Z float64
}

// FromRADec converts equatorial coordinates in degrees to a unit vector.
func FromRADec(raDeg, decDeg float64) Vec3 {
	ra := raDeg / degPerRad
	dec := decDeg / degPerRad
	cd := math.Cos(dec)
	return Vec3{
		X: cd * math.Cos(ra),
		Y: cd * math.Sin(ra),
		Z: math.Sin(dec),
	}
}

// RADec converts a unit vector back to equatorial coordinates in
// degrees, with RA normalized to [0, 360).
func (v Vec3) RADec() (raDeg, decDeg float64) {
	ra := math.Atan2(v.Y, v.X) * degPerRad
	if ra < 0 {
		ra += 360
	}
	dec := math.Asin(clamp(v.Z, -1, 1)) * degPerRad
	return ra, dec
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|. It returns v unchanged if |v| is zero.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// AngleTo returns the angular separation between two unit vectors, in
// radians. It is numerically stable for both small and near-antipodal
// separations.
func (v Vec3) AngleTo(w Vec3) float64 {
	// atan2 of |v×w| and v·w is stable across the full range, unlike
	// acos(v·w) which loses precision near 0 and π.
	return math.Atan2(v.Cross(w).Norm(), v.Dot(w))
}

// AngleToDeg returns the angular separation in degrees.
func (v Vec3) AngleToDeg(w Vec3) float64 { return v.AngleTo(w) * degPerRad }

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.6f, %.6f, %.6f)", v.X, v.Y, v.Z) }

// Cap is a spherical cap (a cone about an axis): the set of unit vectors
// u with u·Center ≥ CosRadius. Caps model cone-search query regions.
type Cap struct {
	Center    Vec3
	CosRadius float64
}

// NewCap builds a cap centered on the given unit vector with the given
// angular radius in degrees.
func NewCap(center Vec3, radiusDeg float64) Cap {
	return Cap{Center: center.Normalize(), CosRadius: math.Cos(radiusDeg / degPerRad)}
}

// CapFromRADec builds a cap from equatorial coordinates in degrees.
func CapFromRADec(raDeg, decDeg, radiusDeg float64) Cap {
	return NewCap(FromRADec(raDeg, decDeg), radiusDeg)
}

// Contains reports whether the unit vector lies inside the cap.
func (c Cap) Contains(v Vec3) bool { return v.Dot(c.Center) >= c.CosRadius }

// RadiusDeg returns the cap's angular radius in degrees.
func (c Cap) RadiusDeg() float64 { return math.Acos(clamp(c.CosRadius, -1, 1)) * degPerRad }

// GreatCircle is an oriented great circle defined by its pole. Telescope
// surveys scan the sky along great circles in a coordinated fashion
// (Section 6.1 of the paper); the workload generator walks points along
// circles produced by this type.
type GreatCircle struct {
	// Pole is the unit normal of the circle's plane.
	Pole Vec3
	// u, v span the circle's plane; Point(θ) = u·cosθ + v·sinθ.
	u, v Vec3
}

// NewGreatCircle builds the great circle whose plane is normal to pole.
func NewGreatCircle(pole Vec3) GreatCircle {
	p := pole.Normalize()
	// Pick any vector not parallel to the pole to seed the in-plane
	// basis.
	seed := Vec3{X: 1}
	if math.Abs(p.X) > 0.9 {
		seed = Vec3{Y: 1}
	}
	u := seed.Sub(p.Scale(seed.Dot(p))).Normalize()
	v := p.Cross(u)
	return GreatCircle{Pole: p, u: u, v: v}
}

// Point returns the point at phase angle theta (radians) along the
// circle.
func (g GreatCircle) Point(theta float64) Vec3 {
	return g.u.Scale(math.Cos(theta)).Add(g.v.Scale(math.Sin(theta)))
}

// SphereAreaSr is the total solid angle of the sphere in steradians.
const SphereAreaSr = 4 * math.Pi

// TriangleAreaSr returns the solid angle of the spherical triangle with
// the given unit-vector vertices, via L'Huilier's theorem.
func TriangleAreaSr(a, b, c Vec3) float64 {
	sa := b.AngleTo(c)
	sb := c.AngleTo(a)
	sc := a.AngleTo(b)
	s := (sa + sb + sc) / 2
	t := math.Tan(s/2) * math.Tan((s-sa)/2) * math.Tan((s-sb)/2) * math.Tan((s-sc)/2)
	if t <= 0 {
		return 0
	}
	return 4 * math.Atan(math.Sqrt(t))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
