package sim

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func TestLatencyModelQueryTime(t *testing.T) {
	m := LatencyModel{
		RTT:       40 * time.Millisecond,
		Bandwidth: 100 * cost.MB, // 100 MB/s
		LocalTime: 5 * time.Millisecond,
	}
	// Shipped query with a 100 MB result: 40ms + 1s.
	if got, want := m.QueryTime(true, 100*cost.MB, 0), 1040*time.Millisecond; got != want {
		t.Errorf("shipped = %v, want %v", got, want)
	}
	// Fresh cache hit: local time only.
	if got := m.QueryTime(false, 100*cost.MB, 0); got != 5*time.Millisecond {
		t.Errorf("fresh hit = %v, want 5ms", got)
	}
	// Cache hit waiting for a 50 MB update shipment: 5ms + 40ms + 0.5s.
	if got, want := m.QueryTime(false, 100*cost.MB, 50*cost.MB), 545*time.Millisecond; got != want {
		t.Errorf("hit with updates = %v, want %v", got, want)
	}
}

func TestLatencyModelZeroBandwidth(t *testing.T) {
	m := LatencyModel{RTT: 10 * time.Millisecond}
	if got := m.QueryTime(true, cost.GB, 0); got != 10*time.Millisecond {
		t.Errorf("zero bandwidth should skip transfer: %v", got)
	}
}

func TestRunWithLatencyNoCache(t *testing.T) {
	// Every NoCache query is shipped: response = RTT + transfer.
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, 125*cost.MB, 0), // 1s at 125MB/s
		qEvent(1, 2, []model.ObjectID{1}, 125*cost.MB, 0),
	}
	res, lat, err := RunWithLatency(core.NewNoCache(), twoObjects(), events,
		Config{CacheCapacity: cost.GB}, DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatal(res.Violations)
	}
	if lat.Queries != 2 {
		t.Fatalf("queries = %d", lat.Queries)
	}
	want := 40*time.Millisecond + time.Second
	if lat.Mean != want || lat.P50 != want || lat.Max != want {
		t.Errorf("latency = %+v, want uniform %v", lat, want)
	}
}

func TestRunWithLatencyReplicaIsLocal(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
	}
	_, lat, err := RunWithLatency(core.NewReplica(), twoObjects(), events,
		Config{CacheCapacity: cost.GB}, DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	if lat.Mean != 5*time.Millisecond {
		t.Errorf("replica answers locally: %v", lat.Mean)
	}
}

func TestRunWithLatencyPreservesPreload(t *testing.T) {
	// The observer must forward Preload; otherwise Replica would answer
	// at an empty cache and the simulator would flag violations.
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1, 2}, cost.GB, 0),
	}
	res, _, err := RunWithLatency(core.NewReplica(), twoObjects(), events,
		Config{CacheCapacity: cost.GB}, DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestPreshipImprovesResponseTime is the point of the Section 4
// extension: on an update-then-query hot loop, preshipping removes the
// synchronous update wait from the query path.
func TestPreshipImprovesResponseTime(t *testing.T) {
	objects := []model.Object{{ID: 1, Size: 10 * cost.GB}}
	var events []model.Event
	seq := int64(0)
	// A big warm query to load the object deterministically, then
	// alternating update/query rounds.
	events = append(events, qEvent(seq, 1, []model.ObjectID{1}, 10*cost.GB, 0))
	seq++
	uid := model.UpdateID(0)
	qid := model.QueryID(1)
	for i := 0; i < 40; i++ {
		uid++
		events = append(events, uEvent(seq, uid, 1, 10*cost.MB))
		seq++
		qid++
		events = append(events, qEvent(seq, qid, []model.ObjectID{1}, cost.GB, 0))
		seq++
	}

	run := func(preship bool) *LatencySummary {
		p := core.NewVCover(core.VCoverConfig{
			Seed: 1, GDSF: true, Preship: preship, PreshipAfter: 3,
		})
		res, lat, err := RunWithLatency(p, objects, events,
			Config{CacheCapacity: 20 * cost.GB}, DefaultLatencyModel())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatal(res.Violations)
		}
		return lat
	}
	plain := run(false)
	preship := run(true)
	if preship.Mean >= plain.Mean {
		t.Errorf("preshipping should cut mean response time: %v >= %v",
			preship.Mean, plain.Mean)
	}
	if preship.P95 > plain.P95 {
		t.Errorf("preshipping should not raise the tail: %v > %v",
			preship.P95, plain.P95)
	}
}
