package sim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// randomTrace builds an adversarial random workload: random object sets,
// heavy-tailed costs, mixed tolerances, bursts of updates.
func randomTrace(rng *rand.Rand, objects []model.Object, n int) []model.Event {
	events := make([]model.Event, 0, n)
	var qid model.QueryID
	var uid model.UpdateID
	for i := 0; i < n; i++ {
		t := time.Duration(i+1) * time.Second
		if rng.Intn(2) == 0 {
			qid++
			nObjs := rng.Intn(3) + 1
			seen := make(map[model.ObjectID]struct{}, nObjs)
			var objs []model.ObjectID
			for len(objs) < nObjs {
				id := objects[rng.Intn(len(objects))].ID
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				objs = append(objs, id)
			}
			var tol time.Duration
			switch rng.Intn(3) {
			case 0:
				tol = model.NoTolerance
			case 1:
				tol = model.AnyStaleness
			default:
				tol = time.Duration(rng.Intn(100)) * time.Second
			}
			events = append(events, model.Event{
				Seq: int64(i), Kind: model.EventQuery,
				Query: &model.Query{
					ID: qid, Objects: objs,
					Cost:      cost.Bytes(rng.Intn(1<<28) + 1),
					Tolerance: tol, Time: t,
				},
			})
		} else {
			uid++
			events = append(events, model.Event{
				Seq: int64(i), Kind: model.EventUpdate,
				Update: &model.Update{
					ID:     uid,
					Object: objects[rng.Intn(len(objects))].ID,
					Cost:   cost.Bytes(rng.Intn(1<<26) + 1),
					Time:   t,
				},
			})
		}
	}
	return events
}

func randomObjects(rng *rand.Rand, n int) []model.Object {
	objs := make([]model.Object, n)
	for i := range objs {
		objs[i] = model.Object{
			ID:   model.ObjectID(i + 1),
			Size: cost.Bytes(rng.Intn(1<<30) + 1<<20),
		}
	}
	return objs
}

// TestPoliciesNeverViolateOnRandomWorkloads is the central robustness
// property: whatever the workload, every policy must respect the cache
// capacity and every query's staleness tolerance — the simulator checks
// both on every event.
func TestPoliciesNeverViolateOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		objects := randomObjects(rng, rng.Intn(20)+5)
		events := randomTrace(rng, objects, 3000)
		var total cost.Bytes
		for _, o := range objects {
			total += o.Size
		}
		capacity := cost.Bytes(float64(total) * (0.1 + rng.Float64()*0.9))

		policies := []core.Policy{
			core.NewNoCache(),
			core.NewReplica(),
			core.NewBenefit(core.BenefitConfig{
				Window: rng.Intn(400) + 10, Alpha: rng.Float64(),
				LoadAmortization: rng.Intn(32) + 1,
			}),
			core.NewVCover(core.VCoverConfig{Seed: rng.Int63(), GDSF: rng.Intn(2) == 0}),
			core.NewSOptimal(events),
		}
		for _, p := range policies {
			res, err := Run(p, objects, events, Config{CacheCapacity: capacity, SampleEvery: 500})
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, p.Name(), err)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("trial %d, %s violated: %s", trial, p.Name(), res.Violations[0])
			}
			if res.Queries+res.Updates != int64(len(events)) {
				t.Fatalf("trial %d, %s: event accounting off", trial, p.Name())
			}
			if res.QueriesAtCache+res.QueriesShipped != res.Queries {
				t.Fatalf("trial %d, %s: query split off", trial, p.Name())
			}
		}
	}
}

// TestVCoverBoundedByWorstCase checks a sanity invariant of the online
// algorithm on random workloads: its total traffic never exceeds
// NoCache + Replica + all-object loads (the trivial upper bound of
// doing everything).
func TestVCoverBoundedByWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		objects := randomObjects(rng, 12)
		events := randomTrace(rng, objects, 2000)
		var sizes cost.Bytes
		for _, o := range objects {
			sizes += o.Size
		}
		res, err := Run(
			core.NewVCover(core.VCoverConfig{Seed: int64(trial), GDSF: true}),
			objects, events, Config{CacheCapacity: sizes / 3},
		)
		if err != nil {
			t.Fatal(err)
		}
		// Loads are justified by attributed shipping costs, so expected
		// load traffic is bounded by query traffic; allow generous slack
		// for the randomization's variance on adversarial traces.
		bound := 2*(model.TotalQueryCost(events)+model.TotalUpdateCost(events)) + 8*sizes
		if res.Total() > bound {
			t.Fatalf("trial %d: VCover %v above trivial bound %v", trial, res.Total(), bound)
		}
	}
}

// TestReplicaEqualsUpdateTraffic pins Replica's accounting exactly.
func TestReplicaEqualsUpdateTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objects := randomObjects(rng, 10)
	events := randomTrace(rng, objects, 2000)
	res, err := Run(core.NewReplica(), objects, events, Config{CacheCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatal(res.Violations[0])
	}
	if got, want := res.Total(), model.TotalUpdateCost(events); got != want {
		t.Errorf("Replica total %v != update traffic %v", got, want)
	}
}

// TestNoCacheEqualsQueryTraffic pins NoCache's accounting exactly.
func TestNoCacheEqualsQueryTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objects := randomObjects(rng, 10)
	events := randomTrace(rng, objects, 2000)
	res, err := Run(core.NewNoCache(), objects, events, Config{CacheCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Total(), model.TotalQueryCost(events); got != want {
		t.Errorf("NoCache total %v != query traffic %v", got, want)
	}
}
