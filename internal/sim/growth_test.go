package sim

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/workload"
)

func bEvent(seq int64, id model.ObjectID, size cost.Bytes) model.Event {
	return model.Event{Seq: seq, Kind: model.EventBirth, Birth: &model.Birth{
		Object: model.Object{ID: id, Size: size},
		Time:   time.Duration(seq+1) * time.Second,
	}}
}

// TestGrowthTraceZeroViolations replays a handcrafted birth-then-query
// sequence through every policy: the universe grows mid-trace, later
// queries touch the newborns, and no policy may breach capacity or
// staleness.
func TestGrowthTraceZeroViolations(t *testing.T) {
	objects := twoObjects() // IDs 1, 2
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
		bEvent(1, 3, 2*cost.GB),
		qEvent(2, 2, []model.ObjectID{3}, 4*cost.GB, 0), // cost covers the newborn's load
		uEvent(3, 1, 3, 10*cost.MB),
		bEvent(4, 4, cost.GB),
		qEvent(5, 3, []model.ObjectID{1, 3, 4}, cost.GB, model.AnyStaleness),
		qEvent(6, 4, []model.ObjectID{4}, 3*cost.GB, 0),
	}
	policies := []core.Policy{
		core.NewNoCache(),
		core.NewReplica(),
		core.NewVCover(core.DefaultVCoverConfig()),
		core.NewBenefit(core.BenefitConfig{Window: 2, Alpha: 0.5, LoadAmortization: 2}),
		core.NewSOptimal(events),
	}
	for _, p := range policies {
		res, err := Run(p, objects, events, Config{CacheCapacity: 40 * cost.GB})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s violations: %v", p.Name(), res.Violations)
		}
		if res.Births != 2 {
			t.Errorf("%s counted %d births", p.Name(), res.Births)
		}
	}
}

// TestGrowthReplicaMirrorsBirths pins the Replica yardstick on growth:
// every newborn is loaded on publication (charged traffic) and its
// queries stay local, even when the grown universe exceeds the nominal
// capacity — the replica is as large as the (growing) server.
func TestGrowthReplicaMirrorsBirths(t *testing.T) {
	objects := twoObjects() // 10 GB + 5 GB (see sim_test.go)
	events := []model.Event{
		bEvent(0, 3, 8*cost.GB),
		qEvent(1, 1, []model.ObjectID{3}, cost.GB, 0),
		uEvent(2, 1, 3, 50*cost.MB),
		qEvent(3, 2, []model.ObjectID{1, 3}, cost.GB, 0),
	}
	// Capacity equals the base universe: the birth alone overflows it,
	// which the capacity-exempt mirror is allowed to do.
	res, err := Run(core.NewReplica(), objects, events, Config{CacheCapacity: 15 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.QueriesAtCache != 2 || res.QueriesShipped != 0 {
		t.Errorf("replica shipped queries on a grown universe: %+v", res)
	}
	if res.Loads != 1 {
		t.Errorf("loads = %d, want 1 (the birth)", res.Loads)
	}
	if res.Ledger.ObjectLoad != 8*cost.GB {
		t.Errorf("birth load charged %v, want 8GB", res.Ledger.ObjectLoad)
	}
}

// TestGrowthDuplicateBirthIsStructural pins the contract that a trace
// re-publishing a live object is malformed input, not a violation.
func TestGrowthDuplicateBirthIsStructural(t *testing.T) {
	objects := twoObjects()
	events := []model.Event{bEvent(0, 1, cost.GB)}
	if _, err := Run(core.NewNoCache(), objects, events, Config{CacheCapacity: cost.GB}); err == nil {
		t.Fatal("birth of an existing object should be a structural error")
	}
}

// TestGrowthWorkloadThroughSimulator replays a generator-produced
// growth trace (universe +25%, biased access to newborns) through
// VCover and Benefit under the paper's 30% capacity, asserting zero
// violations — the satellite's end-to-end determinism check at the
// simulation layer.
func TestGrowthWorkloadThroughSimulator(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 24
	scfg.TotalSize = 24 * cost.GB
	scfg.MinObjectSize = 200 * cost.MB
	scfg.MaxObjectSize = 2 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.NumQueries = 3000
	wcfg.NumUpdates = 3000
	wcfg.GrowthObjects = 6
	wcfg.BirthBias = 0.3
	gen, err := workload.NewGenerator(survey, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	objects := survey.Objects()[:scfg.NumObjects] // universe as of t=0; births arrive via events
	capacity := cost.Bytes(float64(survey.TotalSize()) * 0.3)
	for _, p := range []core.Policy{
		core.NewVCover(core.DefaultVCoverConfig()),
		core.NewBenefit(core.DefaultBenefitConfig()),
	} {
		res, err := Run(p, objects, events, Config{CacheCapacity: capacity})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s violations: %v", p.Name(), res.Violations[:min(3, len(res.Violations))])
		}
		if res.Births != int64(wcfg.GrowthObjects) {
			t.Errorf("%s births = %d", p.Name(), res.Births)
		}
	}
}
