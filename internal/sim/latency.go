package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// LatencyModel estimates per-query response times from the decisions a
// policy makes. The paper focuses its evaluation on network traffic and
// defers latency to Section 4's discussion ("decisions that reduce
// network traffic naturally decrease response times of queries that
// access objects in cache, but queries for which updates need to be
// applied may be delayed"); this model quantifies exactly that effect
// and is what the preshipping extension improves.
//
// Response time of a query:
//
//   - answered at cache, fresh:        LocalTime
//   - answered at cache after updates: LocalTime + RTT + update bytes / Bandwidth
//   - shipped to the repository:       RTT + result bytes / Bandwidth
//
// Object loads happen in the background and do not delay the query that
// triggered them.
type LatencyModel struct {
	// RTT is the cache↔repository round-trip time.
	RTT time.Duration
	// Bandwidth is the WAN bandwidth in bytes per second.
	Bandwidth cost.Bytes
	// LocalTime is the cache-local execution time of a query.
	LocalTime time.Duration
}

// DefaultLatencyModel models a well-provisioned research WAN: 40 ms
// RTT, 1 Gbit/s (125 MB/s), 5 ms local execution.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		RTT:       40 * time.Millisecond,
		Bandwidth: 125 * cost.MB,
		LocalTime: 5 * time.Millisecond,
	}
}

func (m LatencyModel) transfer(b cost.Bytes) time.Duration {
	if m.Bandwidth <= 0 {
		return 0
	}
	sec := float64(b) / float64(m.Bandwidth)
	return time.Duration(sec * float64(time.Second))
}

// QueryTime returns the modeled response time for one query decision.
// updateBytes is the total size of updates shipped synchronously for the
// query (zero if none).
func (m LatencyModel) QueryTime(shipped bool, resultBytes, updateBytes cost.Bytes) time.Duration {
	if shipped {
		return m.RTT + m.transfer(resultBytes)
	}
	t := m.LocalTime
	if updateBytes > 0 {
		t += m.RTT + m.transfer(updateBytes)
	}
	return t
}

// LatencySummary aggregates per-query response times.
type LatencySummary struct {
	Queries int64         `json:"queries"`
	Mean    time.Duration `json:"mean"`
	P50     time.Duration `json:"p50"`
	P95     time.Duration `json:"p95"`
	P99     time.Duration `json:"p99"`
	Max     time.Duration `json:"max"`
}

// RunWithLatency replays events like Run and additionally models
// response times for every query under the given latency model. The
// traffic accounting is identical to Run.
func RunWithLatency(policy core.Policy, objects []model.Object, events []model.Event,
	cfg Config, lm LatencyModel) (*Result, *LatencySummary, error) {

	// Wrap the policy to observe decisions alongside the normal run.
	obs := &latencyObserver{inner: policy, lm: lm}
	res, err := Run(obs, objects, events, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, obs.summary(), nil
}

// latencyObserver decorates a policy, recording modeled response times.
type latencyObserver struct {
	inner core.Policy
	lm    LatencyModel

	updCost map[model.UpdateID]cost.Bytes
	samples []time.Duration
}

var _ core.Policy = (*latencyObserver)(nil)

func (o *latencyObserver) Name() string { return o.inner.Name() }

func (o *latencyObserver) Init(objects []model.Object, capacity cost.Bytes) error {
	o.updCost = make(map[model.UpdateID]cost.Bytes)
	return o.inner.Init(objects, capacity)
}

// Preload forwards the inner policy's preload if any.
func (o *latencyObserver) Preload() ([]model.ObjectID, bool) {
	if pre, ok := o.inner.(core.Preloader); ok {
		return pre.Preload()
	}
	return nil, false
}

func (o *latencyObserver) OnUpdate(u *model.Update) (core.Decision, error) {
	o.updCost[u.ID] = u.Cost
	return o.inner.OnUpdate(u)
}

// AddObjects forwards universe growth to the inner policy (births are
// background work and do not produce a latency sample).
func (o *latencyObserver) AddObjects(objs []model.Object) (core.Decision, error) {
	g, ok := o.inner.(core.Grower)
	if !ok {
		return core.Decision{}, fmt.Errorf("sim: policy %s cannot grow its universe", o.inner.Name())
	}
	return g.AddObjects(objs)
}

func (o *latencyObserver) OnQuery(q *model.Query) (core.Decision, error) {
	d, err := o.inner.OnQuery(q)
	if err != nil {
		return d, err
	}
	var updBytes cost.Bytes
	for _, uid := range d.ApplyUpdates {
		updBytes += o.updCost[uid]
	}
	o.samples = append(o.samples, o.lm.QueryTime(d.ShipQuery, q.Cost, updBytes))
	return d, nil
}

func (o *latencyObserver) summary() *LatencySummary {
	s := &LatencySummary{Queries: int64(len(o.samples))}
	if len(o.samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), o.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, t := range sorted {
		total += t
	}
	s.Mean = total / time.Duration(len(sorted))
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
