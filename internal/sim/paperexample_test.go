package sim

import (
	"testing"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// TestPaperExamplePlanA replays the optimal strategy of Section 3.1:
// evict o3 and load o4 at the beginning, ship u1, u2, u4 and q7, for a
// total of 26 GB.
func TestPaperExamplePlanA(t *testing.T) {
	objects, initial, capacity, events := core.PaperExample()
	plan := &Scripted{
		PolicyName: "PlanA",
		Preloaded:  initial,
		Decisions: []core.Decision{
			{Evict: []model.ObjectID{3}, Load: []model.ObjectID{4}}, // u1 arrives; reshape cache first
			{},                                     // u2
			{ApplyUpdates: []model.UpdateID{1, 2}}, // q3: ship u1, u2; answer at cache
			{},                                     // u4
			{},                                     // u6
			{ShipQuery: true},                      // q7: cheaper than shipping u6
			{},                                     // u5
			{ApplyUpdates: []model.UpdateID{4}},    // q8: ship u4; u5 is within tolerance
		},
	}
	res, err := Run(plan, objects, events, Config{CacheCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if got, want := res.Total(), 26*cost.GB; got != want {
		t.Errorf("Plan A cost = %v, want %v", got, want)
	}
	if res.QueriesAtCache != 2 || res.QueriesShipped != 1 {
		t.Errorf("query split = %d at cache / %d shipped, want 2/1",
			res.QueriesAtCache, res.QueriesShipped)
	}
}

// TestPaperExamplePlanB replays the alternative: load nothing, ship
// queries q3, q7, q8, for 28 GB.
func TestPaperExamplePlanB(t *testing.T) {
	objects, initial, capacity, events := core.PaperExample()
	plan := &Scripted{
		PolicyName: "PlanB",
		Preloaded:  initial,
		Decisions: []core.Decision{
			{}, {}, // u1, u2
			{ShipQuery: true}, // q3
			{}, {},            // u4, u6
			{ShipQuery: true}, // q7
			{},                // u5
			{ShipQuery: true}, // q8
		},
	}
	res, err := Run(plan, objects, events, Config{CacheCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if got, want := res.Total(), 28*cost.GB; got != want {
		t.Errorf("Plan B cost = %v, want %v", got, want)
	}
}

// TestPaperExampleStaleAnswerCaught verifies the simulator rejects the
// illegal variant of Plan A that skips shipping u4 before answering q8
// at the cache.
func TestPaperExampleStaleAnswerCaught(t *testing.T) {
	objects, initial, capacity, events := core.PaperExample()
	plan := &Scripted{
		Preloaded: initial,
		Decisions: []core.Decision{
			{Evict: []model.ObjectID{3}, Load: []model.ObjectID{4}},
			{},
			{ApplyUpdates: []model.UpdateID{1, 2}},
			{}, {},
			{ShipQuery: true},
			{},
			{}, // q8 answered at cache WITHOUT shipping u4: stale!
		},
	}
	res, err := Run(plan, objects, events, Config{CacheCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("expected a staleness violation")
	}
}

// TestPaperExampleToleranceMatters verifies that u5 really is skippable
// only because of q8's tolerance: a zero-tolerance q8 must trigger a
// violation under Plan A.
func TestPaperExampleToleranceMatters(t *testing.T) {
	objects, initial, capacity, events := core.PaperExample()
	// Make q8 demand full currency.
	q8 := *events[7].Query
	q8.Tolerance = model.NoTolerance
	events[7].Query = &q8
	plan := &Scripted{
		Preloaded: initial,
		Decisions: []core.Decision{
			{Evict: []model.ObjectID{3}, Load: []model.ObjectID{4}},
			{},
			{ApplyUpdates: []model.UpdateID{1, 2}},
			{}, {},
			{ShipQuery: true},
			{},
			{ApplyUpdates: []model.UpdateID{4}}, // u5 now missing
		},
	}
	res, err := Run(plan, objects, events, Config{CacheCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("expected a staleness violation for unapplied u5")
	}
}

// TestPaperExampleVCover runs the actual VCover policy over the example
// sequence: starting from a cold cache it must satisfy every constraint
// and spend no more than NoCache would.
func TestPaperExampleVCover(t *testing.T) {
	objects, _, capacity, events := core.PaperExample()
	res, err := Run(core.NewVCover(core.DefaultVCoverConfig()), objects, events,
		Config{CacheCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// On an 8-event trace VCover's speculative loads cannot pay off, so
	// only bound its cost by NoCache plus the total size of everything
	// it could possibly load (o1+o2+o4 = 34 GB; o3 is never queried).
	noCache := model.TotalQueryCost(events)
	if res.Total() > noCache+34*cost.GB {
		t.Errorf("VCover cost %v above the NoCache+loads bound (%v)", res.Total(), noCache+34*cost.GB)
	}
}
