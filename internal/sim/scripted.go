package sim

import (
	"fmt"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// Scripted is a policy that replays a pre-written list of decisions, one
// per event, optionally starting from a preloaded cache. It exists so
// tests and examples can evaluate hand-constructed plans — such as the
// two strategies of the paper's Section 3.1 example — under the
// simulator's full cost accounting and constraint checking.
type Scripted struct {
	// PolicyName labels the run.
	PolicyName string
	// Preloaded objects are resident at t=0; PreloadCharged controls
	// whether their load cost is charged.
	Preloaded      []model.ObjectID
	PreloadCharged bool
	// Decisions are consumed in event order; events beyond the script
	// get empty decisions for updates and ShipQuery for queries.
	Decisions []core.Decision

	next int
}

var _ core.Policy = (*Scripted)(nil)
var _ core.Preloader = (*Scripted)(nil)

// Name implements core.Policy.
func (p *Scripted) Name() string {
	if p.PolicyName == "" {
		return "Scripted"
	}
	return p.PolicyName
}

// Init implements core.Policy.
func (p *Scripted) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.next != 0 {
		return fmt.Errorf("sim: scripted policy reused")
	}
	return nil
}

// Preload implements core.Preloader.
func (p *Scripted) Preload() ([]model.ObjectID, bool) {
	return p.Preloaded, p.PreloadCharged
}

// OnQuery implements core.Policy.
func (p *Scripted) OnQuery(q *model.Query) (core.Decision, error) {
	return p.take(true), nil
}

// OnUpdate implements core.Policy.
func (p *Scripted) OnUpdate(u *model.Update) (core.Decision, error) {
	return p.take(false), nil
}

// AddObjects implements core.Grower: a birth consumes one scripted
// decision, like any other event.
func (p *Scripted) AddObjects(objs []model.Object) (core.Decision, error) {
	return p.take(false), nil
}

func (p *Scripted) take(isQuery bool) core.Decision {
	if p.next < len(p.Decisions) {
		d := p.Decisions[p.next]
		p.next++
		return d
	}
	p.next++
	if isQuery {
		return core.Decision{ShipQuery: true}
	}
	return core.Decision{}
}
