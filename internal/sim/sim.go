// Package sim replays a workload trace against a decoupling policy,
// maintaining the ground-truth state of the repository and the cache,
// charging every data movement to a traffic ledger, and verifying on
// every event that the policy respected the two hard constraints of the
// decoupling problem: the cache capacity and each query's tolerance for
// staleness.
//
// The simulator is deliberately paranoid: policies keep their own state
// mirrors, and any divergence (shipping an update that is not
// outstanding, loading an object that is already resident, answering a
// stale query at the cache) is recorded as a violation. Experiments
// assert zero violations.
package sim

import (
	"fmt"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// Config parameterizes a simulation run.
type Config struct {
	// CacheCapacity is the middleware cache size (paper default: 30% of
	// the server's total).
	CacheCapacity cost.Bytes
	// SampleEvery controls the cumulative-cost series resolution: one
	// point per this many events (default 5000).
	SampleEvery int
}

// Point is one sample of the cumulative traffic series (the y-axis of
// Figures 7b and 8b).
type Point struct {
	Seq        int64      `json:"seq"`
	Total      cost.Bytes `json:"total"`
	QueryShip  cost.Bytes `json:"queryShip"`
	UpdateShip cost.Bytes `json:"updateShip"`
	ObjectLoad cost.Bytes `json:"objectLoad"`
}

// Result summarizes a simulation run.
type Result struct {
	Policy string        `json:"policy"`
	Ledger cost.Snapshot `json:"ledger"`
	Series []Point       `json:"series"`

	Queries        int64 `json:"queries"`
	QueriesShipped int64 `json:"queriesShipped"`
	QueriesAtCache int64 `json:"queriesAtCache"`
	Updates        int64 `json:"updates"`
	UpdatesShipped int64 `json:"updatesShipped"`
	Births         int64 `json:"births"`
	Loads          int64 `json:"loads"`
	Evictions      int64 `json:"evictions"`

	// MaxUsed is the peak cache occupancy observed.
	MaxUsed cost.Bytes `json:"maxUsed"`
	// Violations lists every constraint breach; correct policies produce
	// none.
	Violations []string `json:"violations,omitempty"`
}

// Total returns the final total traffic.
func (r *Result) Total() cost.Bytes { return r.Ledger.Total() }

// state is the simulator's ground truth.
type state struct {
	sizes    map[model.ObjectID]cost.Bytes
	cached   map[model.ObjectID]struct{}
	used     cost.Bytes
	capacity cost.Bytes
	// exemptUsed is the preload occupancy of capacity-exempt yardsticks
	// (Replica); dynamic violations are measured against
	// max(capacity, exemptUsed).
	exemptUsed cost.Bytes

	// pending maps outstanding update IDs (for cached objects) to the
	// update; perObject indexes them for eviction cleanup and currency
	// checks.
	pending   map[model.UpdateID]model.Update
	perObject map[model.ObjectID]map[model.UpdateID]struct{}
}

// Run replays events against the policy and returns the accounting. An
// error is returned for structural problems (nil policy, invalid
// events); constraint breaches by the policy are reported as violations
// in the Result instead.
func Run(policy core.Policy, objects []model.Object, events []model.Event, cfg Config) (*Result, error) {
	if policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if cfg.CacheCapacity < 0 {
		return nil, fmt.Errorf("sim: negative capacity")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5000
	}
	st := &state{
		sizes:     make(map[model.ObjectID]cost.Bytes, len(objects)),
		cached:    make(map[model.ObjectID]struct{}),
		capacity:  cfg.CacheCapacity,
		pending:   make(map[model.UpdateID]model.Update),
		perObject: make(map[model.ObjectID]map[model.UpdateID]struct{}),
	}
	for _, o := range objects {
		st.sizes[o.ID] = o.Size
	}

	if err := policy.Init(objects, cfg.CacheCapacity); err != nil {
		return nil, fmt.Errorf("sim: init %s: %w", policy.Name(), err)
	}

	res := &Result{Policy: policy.Name()}
	var ledger cost.Ledger

	// Preloading yardsticks start with a resident set.
	if pre, ok := policy.(core.Preloader); ok {
		objs, charge := pre.Preload()
		for _, id := range objs {
			size, ok := st.sizes[id]
			if !ok {
				return nil, fmt.Errorf("sim: preload of unknown object %d", id)
			}
			if _, dup := st.cached[id]; dup {
				return nil, fmt.Errorf("sim: duplicate preload of object %d", id)
			}
			st.cached[id] = struct{}{}
			st.used += size
			if charge {
				ledger.Charge(cost.ObjectLoad, size)
				res.Loads++
			}
		}
		st.exemptUsed = st.used
	}
	if st.used > res.MaxUsed {
		res.MaxUsed = st.used
	}

	violate := func(format string, args ...any) {
		if len(res.Violations) < 100 { // cap memory on broken policies
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
	}

	for i := range events {
		e := &events[i]
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}

		var (
			d   core.Decision
			err error
		)
		switch e.Kind {
		case model.EventQuery:
			res.Queries++
			d, err = policy.OnQuery(e.Query)
		case model.EventUpdate:
			res.Updates++
			d, err = policy.OnUpdate(e.Update)
		case model.EventBirth:
			// A new object is published at the repository: the ground
			// truth grows, and the policy's universe must grow with it.
			res.Births++
			b := e.Birth
			if _, dup := st.sizes[b.Object.ID]; dup {
				return nil, fmt.Errorf("sim: birth of existing object %d at event %d", b.Object.ID, e.Seq)
			}
			st.sizes[b.Object.ID] = b.Object.Size
			g, ok := policy.(core.Grower)
			if !ok {
				return nil, fmt.Errorf("sim: policy %s cannot grow its universe", policy.Name())
			}
			d, err = g.AddObjects([]model.Object{b.Object})
		}
		if err != nil {
			return nil, fmt.Errorf("sim: %s at event %d: %w", policy.Name(), e.Seq, err)
		}

		// 1. Evictions.
		for _, id := range d.Evict {
			if _, ok := st.cached[id]; !ok {
				violate("event %d: evict of non-resident object %d", e.Seq, id)
				continue
			}
			delete(st.cached, id)
			st.used -= st.sizes[id]
			for uid := range st.perObject[id] {
				delete(st.pending, uid)
			}
			delete(st.perObject, id)
			res.Evictions++
		}
		// 2. Loads (the object arrives fresh: any updates that occurred
		// while it was away are part of the copy).
		for _, id := range d.Load {
			size, ok := st.sizes[id]
			if !ok {
				violate("event %d: load of unknown object %d", e.Seq, id)
				continue
			}
			if _, dup := st.cached[id]; dup {
				violate("event %d: load of already-resident object %d", e.Seq, id)
				continue
			}
			st.cached[id] = struct{}{}
			st.used += size
			ledger.Charge(cost.ObjectLoad, size)
			res.Loads++
		}
		// A capacity-exempt mirror (Replica) grows with the repository:
		// its birth-time loads raise the exempt allowance the way its
		// preload established it.
		if e.Kind == model.EventBirth && st.exemptUsed > 0 {
			st.exemptUsed = maxBytes(st.exemptUsed, st.used)
		}
		if limit := maxBytes(st.capacity, st.exemptUsed); st.used > limit {
			violate("event %d: cache over capacity: %v > %v", e.Seq, st.used, limit)
		}
		if st.used > res.MaxUsed {
			res.MaxUsed = st.used
		}

		// 3. The update itself arrives at the repository; outstanding
		// bookkeeping applies only to resident objects.
		if e.Kind == model.EventUpdate {
			u := e.Update
			if _, ok := st.cached[u.Object]; ok {
				st.pending[u.ID] = *u
				if st.perObject[u.Object] == nil {
					st.perObject[u.Object] = make(map[model.UpdateID]struct{})
				}
				st.perObject[u.Object][u.ID] = struct{}{}
			}
		}

		// 4. Update shipments.
		for _, uid := range d.ApplyUpdates {
			u, ok := st.pending[uid]
			if !ok {
				violate("event %d: shipping update %d that is not outstanding", e.Seq, uid)
				continue
			}
			ledger.Charge(cost.UpdateShip, u.Cost)
			res.UpdatesShipped++
			delete(st.pending, uid)
			delete(st.perObject[u.Object], uid)
		}

		// 5. Answer the query.
		if e.Kind == model.EventQuery {
			q := e.Query
			if d.ShipQuery {
				ledger.Charge(cost.QueryShip, q.Cost)
				res.QueriesShipped++
			} else {
				res.QueriesAtCache++
				for _, id := range q.Objects {
					if _, ok := st.cached[id]; !ok {
						violate("event %d: query %d answered at cache but object %d absent",
							e.Seq, q.ID, id)
						continue
					}
					for uid := range st.perObject[id] {
						u := st.pending[uid]
						if model.UpdateRequired(&u, q) {
							violate("event %d: query %d answered stale: update %d on object %d unapplied",
								e.Seq, q.ID, uid, id)
						}
					}
				}
			}
		}

		if (i+1)%cfg.SampleEvery == 0 || i == len(events)-1 {
			snap := ledger.Snapshot()
			res.Series = append(res.Series, Point{
				Seq:        e.Seq,
				Total:      snap.Total(),
				QueryShip:  snap.QueryShip,
				UpdateShip: snap.UpdateShip,
				ObjectLoad: snap.ObjectLoad,
			})
		}
	}

	res.Ledger = ledger.Snapshot()
	return res, nil
}

func maxBytes(a, b cost.Bytes) cost.Bytes {
	if a > b {
		return a
	}
	return b
}
