package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func twoObjects() []model.Object {
	return []model.Object{
		{ID: 1, Size: 10 * cost.GB},
		{ID: 2, Size: 20 * cost.GB},
	}
}

func qEvent(seq int64, id model.QueryID, objs []model.ObjectID, c cost.Bytes, tol time.Duration) model.Event {
	return model.Event{Seq: seq, Kind: model.EventQuery, Query: &model.Query{
		ID: id, Objects: objs, Cost: c, Tolerance: tol,
		Time: time.Duration(seq+1) * time.Second,
	}}
}

func uEvent(seq int64, id model.UpdateID, obj model.ObjectID, c cost.Bytes) model.Event {
	return model.Event{Seq: seq, Kind: model.EventUpdate, Update: &model.Update{
		ID: id, Object: obj, Cost: c, Time: time.Duration(seq+1) * time.Second,
	}}
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run(nil, nil, nil, Config{}); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := Run(core.NewNoCache(), twoObjects(), nil, Config{CacheCapacity: -1}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestNoCacheAccounting(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, 5*cost.GB, 0),
		uEvent(1, 1, 1, 2*cost.GB),
		qEvent(2, 2, []model.ObjectID{2}, 7*cost.GB, 0),
	}
	res, err := Run(core.NewNoCache(), twoObjects(), events, Config{CacheCapacity: 10 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if got := res.Total(); got != 12*cost.GB {
		t.Errorf("total = %v, want 12GB", got)
	}
	if got := res.Ledger.QueryShip; got != 12*cost.GB {
		t.Errorf("query ship = %v", got)
	}
	if res.Ledger.UpdateShip != 0 || res.Ledger.ObjectLoad != 0 {
		t.Error("NoCache must only pay query shipping")
	}
	if res.QueriesShipped != 2 || res.QueriesAtCache != 0 {
		t.Errorf("query counters wrong: %+v", res)
	}
}

func TestReplicaAccounting(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1, 2}, 5*cost.GB, 0),
		uEvent(1, 1, 1, 2*cost.GB),
		uEvent(2, 2, 2, 3*cost.GB),
		qEvent(3, 2, []model.ObjectID{2}, 7*cost.GB, 0),
	}
	// Capacity is irrelevant for Replica (exempt).
	res, err := Run(core.NewReplica(), twoObjects(), events, Config{CacheCapacity: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if got := res.Total(); got != 5*cost.GB {
		t.Errorf("total = %v, want 5GB (updates only)", got)
	}
	if res.Ledger.ObjectLoad != 0 {
		t.Error("Replica preload must not be charged")
	}
	if res.QueriesAtCache != 2 {
		t.Errorf("all queries must be at cache: %+v", res)
	}
}

func TestViolationAbsentObject(t *testing.T) {
	events := []model.Event{qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0)}
	p := &Scripted{Decisions: []core.Decision{{}}} // answer at cache with empty cache
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 || !strings.Contains(res.Violations[0], "absent") {
		t.Fatalf("expected absent-object violation, got %v", res.Violations)
	}
}

func TestViolationOverCapacity(t *testing.T) {
	events := []model.Event{qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0)}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{1, 2}}, // 30 GB into a 15 GB cache
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 15 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 || !strings.Contains(res.Violations[0], "capacity") {
		t.Fatalf("expected capacity violation, got %v", res.Violations)
	}
}

func TestViolationUnknownLoadAndEvict(t *testing.T) {
	events := []model.Event{qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0)}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{99}, Evict: []model.ObjectID{2}},
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("expected 2 violations, got %v", res.Violations)
	}
}

func TestViolationDoubleLoad(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
		qEvent(1, 2, []model.ObjectID{1}, cost.GB, 0),
	}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{1}},
		{ShipQuery: true, Load: []model.ObjectID{1}},
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 || !strings.Contains(res.Violations[0], "already-resident") {
		t.Fatalf("expected double-load violation, got %v", res.Violations)
	}
}

func TestViolationGhostUpdate(t *testing.T) {
	events := []model.Event{
		uEvent(0, 1, 1, cost.GB), // object 1 not cached: update not outstanding
	}
	p := &Scripted{Decisions: []core.Decision{
		{ApplyUpdates: []model.UpdateID{1}},
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 || !strings.Contains(res.Violations[0], "not outstanding") {
		t.Fatalf("expected ghost-update violation, got %v", res.Violations)
	}
}

func TestEvictionDropsOutstandingUpdates(t *testing.T) {
	// Evict object then reload: the reloaded copy is fresh, so a
	// zero-tolerance query needs no update shipping.
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
		uEvent(1, 1, 1, 2*cost.GB),
		qEvent(2, 2, []model.ObjectID{1}, cost.GB, 0),
		qEvent(3, 3, []model.ObjectID{1}, cost.GB, 0),
	}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{1}},
		{},
		{ShipQuery: true, Evict: []model.ObjectID{1}, Load: []model.ObjectID{1}},
		{}, // fresh after reload: answering at cache is legal
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Two loads of object 1 at 10 GB each.
	if res.Ledger.ObjectLoad != 20*cost.GB {
		t.Errorf("object load = %v, want 20GB", res.Ledger.ObjectLoad)
	}
}

func TestToleranceAllowsStaleAnswer(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
		uEvent(1, 1, 1, 2*cost.GB),
		qEvent(2, 2, []model.ObjectID{1}, cost.GB, model.AnyStaleness),
	}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{1}},
		{},
		{}, // stale answer is fine: infinite tolerance
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 50 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestSeriesSampling(t *testing.T) {
	var events []model.Event
	for i := int64(0); i < 10; i++ {
		events = append(events, qEvent(i, model.QueryID(i+1), []model.ObjectID{1}, cost.GB, 0))
	}
	res, err := Run(core.NewNoCache(), twoObjects(), events,
		Config{CacheCapacity: 10 * cost.GB, SampleEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Samples at events 3, 6, 9 plus the final event: 4 points.
	if len(res.Series) != 4 {
		t.Fatalf("series has %d points: %+v", len(res.Series), res.Series)
	}
	last := res.Series[len(res.Series)-1]
	if last.Total != 10*cost.GB {
		t.Errorf("final point total = %v, want 10GB", last.Total)
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Total < res.Series[i-1].Total {
			t.Error("cumulative series must be non-decreasing")
		}
	}
}

func TestMaxUsedTracked(t *testing.T) {
	events := []model.Event{
		qEvent(0, 1, []model.ObjectID{1}, cost.GB, 0),
		qEvent(1, 2, []model.ObjectID{2}, cost.GB, 0),
	}
	p := &Scripted{Decisions: []core.Decision{
		{ShipQuery: true, Load: []model.ObjectID{1}},
		{ShipQuery: true, Evict: []model.ObjectID{1}, Load: []model.ObjectID{2}},
	}}
	res, err := Run(p, twoObjects(), events, Config{CacheCapacity: 25 * cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUsed != 20*cost.GB {
		t.Errorf("MaxUsed = %v, want 20GB", res.MaxUsed)
	}
}

func TestDecisionIsNoop(t *testing.T) {
	if !(core.Decision{}).IsNoop() {
		t.Error("empty decision should be noop")
	}
	if (core.Decision{ShipQuery: true}).IsNoop() {
		t.Error("ship decision is not a noop")
	}
}
