package core

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func TestNoCacheAlwaysShips(t *testing.T) {
	p := NewNoCache()
	if err := p.Init(vcObjects(), cost.GB); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(vcObjects(), cost.GB); err == nil {
		t.Error("double init should fail")
	}
	d, err := p.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery {
		t.Error("NoCache must ship every query")
	}
	du, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if !du.IsNoop() {
		t.Error("NoCache must ignore updates")
	}
	if p.Name() != "NoCache" {
		t.Error("name wrong")
	}
}

func TestReplicaPreloadsAllUncharged(t *testing.T) {
	p := NewReplica()
	if err := p.Init(vcObjects(), cost.GB); err != nil {
		t.Fatal(err)
	}
	objs, charge := p.Preload()
	if charge {
		t.Error("Replica preload must be free (paper: load costs ignored)")
	}
	if len(objs) != 3 || objs[0] != 1 || objs[2] != 3 {
		t.Errorf("Preload = %v, want all objects sorted", objs)
	}
	d, err := p.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{1, 2, 3}, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsNoop() {
		t.Error("Replica answers everything at cache")
	}
	du, err := p.OnUpdate(&model.Update{ID: 1, Object: 2, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(du.ApplyUpdates) != 1 || du.ApplyUpdates[0] != 1 {
		t.Errorf("Replica must push every update: %+v", du)
	}
}

func soEvents() []model.Event {
	// Object 1 (10 GB): heavily queried, no updates -> cache it.
	// Object 2 (20 GB): heavily updated, rarely queried -> skip it.
	// Object 3 (5 GB): lightly queried, not worth its load cost -> skip.
	var events []model.Event
	seq := int64(0)
	add := func(e model.Event) { e.Seq = seq; seq++; events = append(events, e) }
	for i := 0; i < 10; i++ {
		add(model.Event{Kind: model.EventQuery, Query: &model.Query{
			ID: model.QueryID(i + 1), Objects: []model.ObjectID{1}, Cost: 5 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(seq) * time.Second}})
		add(model.Event{Kind: model.EventUpdate, Update: &model.Update{
			ID: model.UpdateID(i + 1), Object: 2, Cost: 3 * cost.GB,
			Time: time.Duration(seq) * time.Second}})
	}
	add(model.Event{Kind: model.EventQuery, Query: &model.Query{
		ID: 100, Objects: []model.ObjectID{2}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: time.Duration(seq) * time.Second}})
	add(model.Event{Kind: model.EventQuery, Query: &model.Query{
		ID: 101, Objects: []model.ObjectID{3}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: time.Duration(seq) * time.Second}})
	return events
}

func TestSOptimalChoosesQueryHotObject(t *testing.T) {
	p := NewSOptimal(soEvents())
	if err := p.Init(vcObjects(), 15*cost.GB); err != nil {
		t.Fatal(err)
	}
	if !p.Chosen(1) {
		t.Error("object 1 (50 GB saved vs 10 GB load) must be chosen")
	}
	if p.Chosen(2) {
		t.Error("object 2 (30 GB updates vs 1 GB saved) must not be chosen")
	}
	if p.Chosen(3) {
		t.Error("object 3 (1 GB saved vs 5 GB load) must not be chosen")
	}
	objs, charge := p.Preload()
	if !charge {
		t.Error("SOptimal loads are charged")
	}
	if len(objs) != 1 || objs[0] != 1 {
		t.Errorf("Preload = %v, want [1]", objs)
	}
}

func TestSOptimalQueryRouting(t *testing.T) {
	p := NewSOptimal(soEvents())
	if err := p.Init(vcObjects(), 15*cost.GB); err != nil {
		t.Fatal(err)
	}
	d, err := p.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShipQuery {
		t.Error("query inside the chosen set must be free")
	}
	d2, err := p.OnQuery(&model.Query{ID: 2, Objects: []model.ObjectID{1, 2}, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.ShipQuery {
		t.Error("query touching an unchosen object must ship")
	}
}

func TestSOptimalUpdateRouting(t *testing.T) {
	p := NewSOptimal(soEvents())
	if err := p.Init(vcObjects(), 15*cost.GB); err != nil {
		t.Fatal(err)
	}
	d, err := p.OnUpdate(&model.Update{ID: 999, Object: 1, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ApplyUpdates) != 1 {
		t.Error("updates for chosen objects must ship")
	}
	d2, err := p.OnUpdate(&model.Update{ID: 1000, Object: 2, Cost: cost.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.ApplyUpdates) != 0 {
		t.Error("updates for unchosen objects must not ship")
	}
}

func TestSOptimalRespectsCapacity(t *testing.T) {
	// With capacity below object 1's size, nothing can be cached even
	// though object 1 is hugely beneficial.
	p := NewSOptimal(soEvents())
	if err := p.Init(vcObjects(), 5*cost.GB); err != nil {
		t.Fatal(err)
	}
	if p.Chosen(1) {
		t.Error("object 1 (10 GB) cannot fit a 5 GB cache")
	}
}

func TestObjectIndexBookkeeping(t *testing.T) {
	idx, err := newObjectIndex(vcObjects(), 30*cost.GB)
	if err != nil {
		t.Fatal(err)
	}
	if idx.isCached(1) {
		t.Error("fresh index must be empty")
	}
	if err := idx.markCached(1); err != nil {
		t.Fatal(err)
	}
	if err := idx.markCached(1); err == nil {
		t.Error("double cache should fail")
	}
	if idx.used != 10*cost.GB {
		t.Errorf("used = %v", idx.used)
	}
	if !idx.allCached([]model.ObjectID{1}) || idx.allCached([]model.ObjectID{1, 2}) {
		t.Error("allCached wrong")
	}
	if err := idx.markEvicted(1); err != nil {
		t.Fatal(err)
	}
	if err := idx.markEvicted(1); err == nil {
		t.Error("double evict should fail")
	}
	if idx.used != 0 {
		t.Errorf("used = %v after evict", idx.used)
	}
	if _, err := idx.size(42); err == nil {
		t.Error("unknown object should fail")
	}
}

func TestObjectIndexValidation(t *testing.T) {
	if _, err := newObjectIndex(vcObjects(), -1); err == nil {
		t.Error("negative capacity should fail")
	}
	dup := []model.Object{{ID: 1, Size: 1}, {ID: 1, Size: 2}}
	if _, err := newObjectIndex(dup, 10); err == nil {
		t.Error("duplicate IDs should fail")
	}
	neg := []model.Object{{ID: 1, Size: -1}}
	if _, err := newObjectIndex(neg, 10); err == nil {
		t.Error("negative size should fail")
	}
}

func TestUpdateRequiredSemantics(t *testing.T) {
	q := &model.Query{Time: 100 * time.Second, Tolerance: 10 * time.Second}
	old := &model.Update{Time: 80 * time.Second}
	fresh := &model.Update{Time: 95 * time.Second}
	if !model.UpdateRequired(old, q) {
		t.Error("update older than the tolerance window must be required")
	}
	if model.UpdateRequired(fresh, q) {
		t.Error("update within the tolerance window must be skippable")
	}
	anyQ := &model.Query{Time: 100 * time.Second, Tolerance: model.AnyStaleness}
	if model.UpdateRequired(old, anyQ) {
		t.Error("AnyStaleness never requires updates")
	}
	zeroQ := &model.Query{Time: 100 * time.Second, Tolerance: model.NoTolerance}
	if !model.UpdateRequired(fresh, zeroQ) {
		t.Error("zero tolerance requires every prior update")
	}
}
