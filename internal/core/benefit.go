package core

import (
	"fmt"
	"sort"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// BenefitConfig parameterizes the Benefit heuristic.
type BenefitConfig struct {
	// Window is δ, the number of events per decision window (paper
	// default: 1000, chosen by parameter sweep).
	Window int
	// Alpha is the exponential-smoothing learning parameter in [0,1].
	Alpha float64
	// LoadAmortization spreads an uncached object's load-cost penalty
	// over this many windows when computing its would-be benefit. The
	// paper says the benefit of a non-cached object is "further
	// reduce[d] by the cost to load the object" without specifying the
	// horizon; subtracting the full load cost from every window's
	// benefit would make the heuristic refuse to ever load an object
	// whose per-window savings are below its full load cost — i.e.
	// degenerate to NoCache on any realistic window size. Amortizing
	// over a few windows preserves the heuristic's greedy character
	// while letting it actually cache, as it visibly does in the
	// paper's figures. 1 reproduces the literal reading.
	LoadAmortization int
}

// DefaultBenefitConfig returns the paper's tuned parameters.
func DefaultBenefitConfig() BenefitConfig {
	return BenefitConfig{Window: 1000, Alpha: 0.3, LoadAmortization: 16}
}

// Benefit is the alternative, heuristics-based algorithm of Section 5 —
// an exponential-smoothing greedy scheme representative of commercial
// dynamic-data caches (and of the online view-materialization systems of
// Labrinidis & Roussopoulos). The event sequence is divided into windows
// of δ events. During a window the cache set is frozen: queries whose
// objects are all cached are answered locally (updates are pushed
// eagerly for cached objects, so they are always current); everything
// else is shipped. At each window boundary the per-object benefit of the
// past window — query traffic saved, split among B(q) in proportion to
// object sizes, minus update traffic caused, minus (for non-cached
// objects) the load cost — feeds the forecast
//
//	µᵢ = (1−α)·µᵢ₋₁ + α·bᵢ₋₁
//
// and objects with positive forecast are cached greedily in decreasing
// µ order until the capacity is full.
//
// Its weaknesses (Section 5): it ignores the combinatorial structure of
// the decoupling problem by splitting query costs proportionally, its
// decisions hinge on the window size, and it keeps per-object state for
// every object whether cached or not.
type Benefit struct {
	cfg BenefitConfig

	idx *objectIndex

	mu         map[model.ObjectID]float64 // the forecast µ
	winBenefit map[model.ObjectID]float64 // b for the current window
	eventCount int64

	stats BenefitStats
}

// BenefitStats counts internal decisions.
type BenefitStats struct {
	QueriesAtCache int64
	QueriesShipped int64
	UpdatesShipped int64
	ObjectsLoaded  int64
	ObjectsEvicted int64
	Windows        int64
}

// NewBenefit returns a Benefit policy.
func NewBenefit(cfg BenefitConfig) *Benefit {
	return &Benefit{cfg: cfg}
}

// Name implements Policy.
func (p *Benefit) Name() string { return "Benefit" }

// Config returns the policy's configuration (after Init it reflects
// applied defaults).
func (p *Benefit) Config() BenefitConfig { return p.cfg }

// Stats returns internal decision counters.
func (p *Benefit) Stats() BenefitStats { return p.stats }

// Init implements Policy.
func (p *Benefit) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.idx != nil {
		return fmt.Errorf("core: Benefit initialized twice")
	}
	if p.cfg.Window <= 0 {
		return fmt.Errorf("core: Benefit window must be positive, got %d", p.cfg.Window)
	}
	if p.cfg.Alpha < 0 || p.cfg.Alpha > 1 {
		return fmt.Errorf("core: Benefit alpha %v out of [0,1]", p.cfg.Alpha)
	}
	if p.cfg.LoadAmortization == 0 {
		p.cfg.LoadAmortization = 1
	}
	if p.cfg.LoadAmortization < 0 {
		return fmt.Errorf("core: Benefit load amortization must be positive")
	}
	idx, err := newObjectIndex(objects, capacity)
	if err != nil {
		return err
	}
	p.idx = idx
	p.mu = make(map[model.ObjectID]float64, len(objects))
	p.winBenefit = make(map[model.ObjectID]float64, len(objects))
	return nil
}

// Warm implements Warmable: adopt already-resident objects that fit
// the capacity. Warmed objects start with no forecast history; the
// next window boundary judges them like any other cached object.
func (p *Benefit) Warm(ids []model.ObjectID) ([]model.ObjectID, error) {
	if p.idx == nil {
		return nil, fmt.Errorf("core: Benefit not initialized")
	}
	adopted := make([]model.ObjectID, 0, len(ids))
	for _, id := range ids {
		if p.idx.isCached(id) {
			adopted = append(adopted, id)
			continue
		}
		size, err := p.idx.size(id)
		if err != nil {
			return nil, err
		}
		if p.idx.used+size > p.idx.capacity {
			continue
		}
		if err := p.idx.markCached(id); err != nil {
			return nil, err
		}
		adopted = append(adopted, id)
	}
	return adopted, nil
}

// AddObjects implements Grower: newborns enter the forecast with no
// history (µ = 0) and start uncached; the next window boundary judges
// them like any other object once queries accrue benefit on them.
func (p *Benefit) AddObjects(objs []model.Object) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: Benefit not initialized")
	}
	for _, o := range objs {
		if err := p.idx.addObject(o); err != nil {
			return Decision{}, err
		}
	}
	return Decision{}, nil
}

// OnQuery implements Policy.
func (p *Benefit) OnQuery(q *model.Query) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: Benefit not initialized")
	}
	d := p.tickWindow()

	// Accrue benefit: the query's cost is what caching B(q) saves (or
	// would save), divided among the objects in proportion to size.
	var totalSize cost.Bytes
	for _, id := range q.Objects {
		size, err := p.idx.size(id)
		if err != nil {
			return Decision{}, err
		}
		totalSize += size
	}
	for _, id := range q.Objects {
		size, _ := p.idx.size(id)
		share := float64(q.Cost)
		if totalSize > 0 {
			share *= float64(size) / float64(totalSize)
		} else {
			share /= float64(len(q.Objects))
		}
		p.winBenefit[id] += share
	}

	if p.idx.allCached(q.Objects) {
		// Cached objects are kept current by eager update shipping, so
		// any tolerance is satisfied.
		p.stats.QueriesAtCache++
		return d, nil
	}
	d.ShipQuery = true
	p.stats.QueriesShipped++
	return d, nil
}

// OnUpdate implements Policy: cached objects receive updates eagerly —
// the push model the benefit metric assumes.
func (p *Benefit) OnUpdate(u *model.Update) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: Benefit not initialized")
	}
	d := p.tickWindow()
	if _, err := p.idx.size(u.Object); err != nil {
		return Decision{}, err
	}
	p.winBenefit[u.Object] -= float64(u.Cost)
	if p.idx.isCached(u.Object) {
		d.ApplyUpdates = append(d.ApplyUpdates, u.ID)
		p.stats.UpdatesShipped++
	}
	return d, nil
}

// tickWindow advances the event counter and, at the first event of each
// window after the first, recomputes the cache placement, returning the
// load/evict actions.
func (p *Benefit) tickWindow() Decision {
	p.eventCount++
	if p.eventCount > 1 && (p.eventCount-1)%int64(p.cfg.Window) == 0 {
		return p.replan()
	}
	return Decision{}
}

// replan performs the window-boundary placement decision.
func (p *Benefit) replan() Decision {
	p.stats.Windows++
	// Fold the window's benefit into the forecast.
	for id := range p.idx.objects {
		b := p.winBenefit[id]
		if !p.idx.isCached(id) {
			// A non-cached object would pay its load cost first; the
			// penalty is amortized over LoadAmortization windows (see
			// BenefitConfig).
			size, _ := p.idx.size(id)
			b -= float64(size) / float64(p.cfg.LoadAmortization)
		}
		p.mu[id] = (1-p.cfg.Alpha)*p.mu[id] + p.cfg.Alpha*b
		p.winBenefit[id] = 0
	}

	// Greedy placement: positive-forecast objects in decreasing µ.
	ids := make([]model.ObjectID, 0, len(p.idx.objects))
	for id := range p.idx.objects {
		if p.mu[id] > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if p.mu[ids[i]] != p.mu[ids[j]] {
			return p.mu[ids[i]] > p.mu[ids[j]]
		}
		return ids[i] < ids[j]
	})
	target := make(map[model.ObjectID]struct{}, len(ids))
	var used cost.Bytes
	for _, id := range ids {
		size, _ := p.idx.size(id)
		if used+size > p.idx.capacity {
			continue
		}
		target[id] = struct{}{}
		used += size
	}

	// Diff against the current contents. Objects already present do not
	// have to be reloaded (Section 5).
	var d Decision
	for id := range p.idx.cached {
		if _, keep := target[id]; !keep {
			d.Evict = append(d.Evict, id)
		}
	}
	for id := range target {
		if !p.idx.isCached(id) {
			d.Load = append(d.Load, id)
		}
	}
	sortObjectIDs(d.Evict)
	sortObjectIDs(d.Load)
	for _, id := range d.Evict {
		// Mirror maintenance; errors impossible by construction.
		_ = p.idx.markEvicted(id)
		p.stats.ObjectsEvicted++
	}
	for _, id := range d.Load {
		_ = p.idx.markCached(id)
		p.stats.ObjectsLoaded++
	}
	return d
}

// CachedObjects returns the mirror's resident set (for tests).
func (p *Benefit) CachedObjects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(p.idx.cached))
	for id := range p.idx.cached {
		out = append(out, id)
	}
	sortObjectIDs(out)
	return out
}
