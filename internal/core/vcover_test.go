package core

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func vcObjects() []model.Object {
	return []model.Object{
		{ID: 1, Size: 10 * cost.GB},
		{ID: 2, Size: 20 * cost.GB},
		{ID: 3, Size: 5 * cost.GB},
	}
}

func newTestVCover(t *testing.T, capacity cost.Bytes) *VCover {
	t.Helper()
	p := NewVCover(DefaultVCoverConfig())
	if err := p.Init(vcObjects(), capacity); err != nil {
		t.Fatal(err)
	}
	return p
}

// warmLoad gets an object into VCover's cache deterministically: a query
// on just that object with cost >= its size always makes it a load
// candidate.
func warmLoad(t *testing.T, p *VCover, id model.ObjectID, qid model.QueryID, at time.Duration) {
	t.Helper()
	size, err := p.idx.size(id)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.OnQuery(&model.Query{
		ID: qid, Objects: []model.ObjectID{id}, Cost: size,
		Tolerance: model.NoTolerance, Time: at,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery {
		t.Fatal("warm query must be shipped (object was missing)")
	}
	if len(d.Load) != 1 || d.Load[0] != id {
		t.Fatalf("warm load of %d failed: %+v", id, d)
	}
}

func TestVCoverInitValidation(t *testing.T) {
	p := NewVCover(DefaultVCoverConfig())
	if err := p.Init(vcObjects(), 30*cost.GB); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(vcObjects(), 30*cost.GB); err == nil {
		t.Error("double init should fail")
	}
	q := NewVCover(DefaultVCoverConfig())
	if err := q.Init(vcObjects(), -1); err == nil {
		t.Error("negative capacity should fail")
	}
	r := NewVCover(DefaultVCoverConfig())
	if _, err := r.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: 1}); err == nil {
		t.Error("use before init should fail")
	}
}

func TestVCoverUnknownObjectRejected(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	if _, err := p.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{99}, Cost: 1}); err == nil {
		t.Error("query on unknown object should fail")
	}
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 99, Cost: 1}); err == nil {
		t.Error("update on unknown object should fail")
	}
}

func TestVCoverMissShipsQuery(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	d, err := p.OnQuery(&model.Query{
		ID: 1, Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery {
		t.Error("miss must ship the query")
	}
}

func TestVCoverDeterministicLoadWhenCostCoversSize(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	if got := p.CachedObjects(); len(got) != 1 || got[0] != 1 {
		t.Errorf("cached = %v, want [1]", got)
	}
	if p.Stats().ObjectsLoaded != 1 {
		t.Errorf("stats: %+v", p.Stats())
	}
}

func TestVCoverHitAnswersAtCacheFree(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsNoop() {
		t.Errorf("fresh hit must be free: %+v", d)
	}
	if p.Stats().QueriesAtCache != 1 {
		t.Errorf("stats: %+v", p.Stats())
	}
}

func TestVCoverShipsCheapUpdatesOverExpensiveQuery(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	// A cheap update invalidates the object.
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.MB, Time: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// An expensive zero-tolerance query: the cover must ship the update.
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShipQuery {
		t.Error("query should be answered at cache")
	}
	if len(d.ApplyUpdates) != 1 || d.ApplyUpdates[0] != 1 {
		t.Errorf("expected update 1 shipped, got %+v", d)
	}
	// The update is applied: a follow-up query is free.
	d2, err := p.OnQuery(&model.Query{
		ID: 3, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsNoop() {
		t.Errorf("update should have been applied: %+v", d2)
	}
}

func TestVCoverShipsCheapQueryOverExpensiveUpdate(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.GB, Time: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery || len(d.ApplyUpdates) != 0 {
		t.Errorf("cheap query should ship, not the 1GB update: %+v", d)
	}
}

// TestVCoverAccumulationFlipsToUpdates is the heart of the online
// behaviour: repeated cheap queries against the same outstanding update
// accumulate weight in the remainder graph until shipping the update
// becomes the minimum cover.
func TestVCoverAccumulationFlipsToUpdates(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: 10 * cost.MB, Time: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// First query (6 MB) < update (10 MB): ship the query.
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: 6 * cost.MB,
		Tolerance: model.NoTolerance, Time: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery || len(d.ApplyUpdates) != 0 {
		t.Fatalf("first query should ship: %+v", d)
	}
	// Second query (6 MB): accumulated 12 MB > 10 MB: the cover flips
	// and the update ships; this query is answered at the cache.
	d2, err := p.OnQuery(&model.Query{
		ID: 3, Objects: []model.ObjectID{1}, Cost: 6 * cost.MB,
		Tolerance: model.NoTolerance, Time: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ShipQuery {
		t.Errorf("second query should be answered at cache: %+v", d2)
	}
	if len(d2.ApplyUpdates) != 1 || d2.ApplyUpdates[0] != 1 {
		t.Errorf("update should finally ship: %+v", d2)
	}
}

func TestVCoverToleranceSkipsFreshUpdates(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.GB, Time: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The update arrived 1s before the query; tolerance 5s covers it.
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: 5 * time.Second, Time: 11 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsNoop() {
		t.Errorf("tolerant query must be free: %+v", d)
	}
	// An infinitely tolerant query likewise.
	d2, err := p.OnQuery(&model.Query{
		ID: 3, Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.AnyStaleness, Time: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsNoop() {
		t.Errorf("AnyStaleness query must be free: %+v", d2)
	}
	// A zero-tolerance query must interact with the update.
	d3, err := p.OnQuery(&model.Query{
		ID: 4, Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: 13 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d3.ShipQuery {
		t.Errorf("zero-tolerance query should ship (update is 1GB): %+v", d3)
	}
}

func TestVCoverUpdatesForUncachedObjectIgnored(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 2, Cost: cost.GB, Time: time.Second}); err != nil {
		t.Fatal(err)
	}
	if len(p.outstanding[2]) != 0 {
		t.Error("updates for uncached objects must not accumulate")
	}
}

func TestVCoverLoadClearsOutstanding(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.GB, Time: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// Evict 1 by loading 2 and 3 (capacity 30 GB: 10+20+5 > 30).
	warmLoad(t, p, 2, 2, 3*time.Second)
	// Whether 1 survived depends on GDS credits; force the point by
	// checking graph consistency instead: no vertices for evicted
	// objects' updates.
	for uid, obj := range p.updObject {
		if !p.idx.isCached(obj) {
			t.Errorf("graph retains update %d for evicted object %d", uid, obj)
		}
	}
	for obj := range p.outstanding {
		if len(p.outstanding[obj]) > 0 && !p.idx.isCached(obj) {
			t.Errorf("outstanding updates retained for evicted object %d", obj)
		}
	}
}

func TestVCoverMirrorMatchesGDS(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	warmLoad(t, p, 3, 2, 2*time.Second)
	cached := p.CachedObjects()
	gdsKeys := p.loads.Keys()
	if len(cached) != len(gdsKeys) {
		t.Fatalf("mirror %v vs gds %v", cached, gdsKeys)
	}
	for i := range cached {
		if int64(cached[i]) != gdsKeys[i] {
			t.Fatalf("mirror %v vs gds %v", cached, gdsKeys)
		}
	}
}

func TestVCoverDeterministicAcrossRuns(t *testing.T) {
	run := func() []model.ObjectID {
		p := NewVCover(VCoverConfig{Seed: 7, GDSF: true})
		if err := p.Init(vcObjects(), 30*cost.GB); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			id := model.ObjectID(i%3 + 1)
			_, err := p.OnQuery(&model.Query{
				ID: model.QueryID(i + 1), Objects: []model.ObjectID{id},
				Cost: cost.Bytes(i%7+1) * cost.GB, Tolerance: model.NoTolerance,
				Time: time.Duration(i) * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return p.CachedObjects()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestVCoverMultiObjectQueryNeedsAll(t *testing.T) {
	p := newTestVCover(t, 35*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	// Query touching cached 1 and uncached 3 must ship.
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1, 3}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery {
		t.Error("partially-cached query must ship")
	}
}

func TestVCoverCoverSharedUpdateAcrossQueries(t *testing.T) {
	// Two queries on different objects share no updates; a query on two
	// objects interacts with updates on both.
	p := newTestVCover(t, 35*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	warmLoad(t, p, 3, 2, 2*time.Second)
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: 2 * cost.MB, Time: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnUpdate(&model.Update{ID: 2, Object: 3, Cost: 3 * cost.MB, Time: 4 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// Query on both objects, cost 100 MB >> 5 MB of updates: cover ships
	// both updates.
	d, err := p.OnQuery(&model.Query{
		ID: 3, Objects: []model.ObjectID{1, 3}, Cost: 100 * cost.MB,
		Tolerance: model.NoTolerance, Time: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShipQuery || len(d.ApplyUpdates) != 2 {
		t.Errorf("both updates should ship: %+v", d)
	}
}

func TestVCoverStatsProgress(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	st := p.Stats()
	if st.QueriesShipped != 1 || st.ObjectsLoaded != 1 {
		t.Errorf("stats after warm: %+v", st)
	}
	if _, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.KB, Time: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 3 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.UpdatesShipped != 1 || st.CoverComputations != 1 || st.QueriesAtCache != 1 {
		t.Errorf("stats after cover: %+v", st)
	}
}
