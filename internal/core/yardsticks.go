package core

import (
	"fmt"
	"sort"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// NoCache is the first yardstick of Section 6: no cache at all; every
// query is shipped to the repository. Any algorithm performing worse is
// of no use.
type NoCache struct {
	initialized bool
}

// NewNoCache returns the NoCache yardstick.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements Policy.
func (p *NoCache) Name() string { return "NoCache" }

// Init implements Policy.
func (p *NoCache) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.initialized {
		return fmt.Errorf("core: NoCache initialized twice")
	}
	p.initialized = true
	return nil
}

// AddObjects implements Grower: NoCache keeps no universe state, so
// growth is a no-op.
func (p *NoCache) AddObjects(objs []model.Object) (Decision, error) {
	return Decision{}, nil
}

// OnQuery implements Policy: always ship.
func (p *NoCache) OnQuery(q *model.Query) (Decision, error) {
	return Decision{ShipQuery: true}, nil
}

// OnUpdate implements Policy: updates never travel.
func (p *NoCache) OnUpdate(u *model.Update) (Decision, error) {
	return Decision{}, nil
}

// Replica is the second yardstick: the cache is as large as the server
// and holds all data; every update is shipped to the cache the moment it
// arrives. Load costs and the capacity constraint are ignored (Figure 7
// caption). Any capacity-respecting algorithm that beats Replica is
// clearly good.
type Replica struct {
	idx *objectIndex
}

// NewReplica returns the Replica yardstick.
func NewReplica() *Replica { return &Replica{} }

// Name implements Policy.
func (p *Replica) Name() string { return "Replica" }

// Init implements Policy.
func (p *Replica) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.idx != nil {
		return fmt.Errorf("core: Replica initialized twice")
	}
	// Capacity is deliberately ignored: the replica mirrors the server.
	idx, err := newObjectIndex(objects, capacity)
	if err != nil {
		return err
	}
	p.idx = idx
	return nil
}

// Preload implements Preloader: everything resident, nothing charged.
func (p *Replica) Preload() (objs []model.ObjectID, charge bool) {
	ids := make([]model.ObjectID, 0, len(p.idx.objects))
	for id := range p.idx.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, false
}

// Warm implements Warmable: a replica mirrors the server, so every
// known object is adopted unconditionally (capacity is ignored, as in
// Init/Preload).
func (p *Replica) Warm(ids []model.ObjectID) ([]model.ObjectID, error) {
	if p.idx == nil {
		return nil, fmt.Errorf("core: Replica not initialized")
	}
	adopted := make([]model.ObjectID, 0, len(ids))
	for _, id := range ids {
		if !p.idx.isCached(id) {
			if err := p.idx.markCached(id); err != nil {
				return nil, err
			}
		}
		adopted = append(adopted, id)
	}
	return adopted, nil
}

// AddObjects implements Grower: a replica mirrors the server, so every
// newborn is loaded immediately (and the mirror marks it cached so the
// returned decision is consistent with the policy's own view).
func (p *Replica) AddObjects(objs []model.Object) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: Replica not initialized")
	}
	var d Decision
	for _, o := range objs {
		if err := p.idx.addObject(o); err != nil {
			return Decision{}, err
		}
		if err := p.idx.markCached(o.ID); err != nil {
			return Decision{}, err
		}
		d.Load = append(d.Load, o.ID)
	}
	return d, nil
}

// OnQuery implements Policy: everything is cached and current, so every
// query is answered locally for free.
func (p *Replica) OnQuery(q *model.Query) (Decision, error) {
	return Decision{}, nil
}

// OnUpdate implements Policy: push every update immediately.
func (p *Replica) OnUpdate(u *model.Update) (Decision, error) {
	return Decision{ApplyUpdates: []model.UpdateID{u.ID}}, nil
}

// SOptimal is the third yardstick: the best *static* set of objects to
// cache, decided with full knowledge of the query and update sequence —
// "equivalent to the single decision of Benefit using a window-size as
// large as the entire sequence, but in an offline manner" (Section 6.1).
// Chosen objects are loaded up front (load costs charged); updates for
// them are shipped as they arrive; queries entirely inside the set are
// free; all other queries are shipped. An online algorithm close to
// SOptimal is outstanding.
type SOptimal struct {
	events []model.Event

	idx    *objectIndex
	chosen map[model.ObjectID]struct{}
	// born marks objects that enter the trace via a birth event: a
	// chosen born object cannot be preloaded (it does not exist at
	// t=0), so it is loaded at its publication instead.
	born map[model.ObjectID]struct{}
}

// NewSOptimal returns the offline static-best yardstick for the given
// full event sequence.
func NewSOptimal(events []model.Event) *SOptimal {
	return &SOptimal{events: events}
}

// Name implements Policy.
func (p *SOptimal) Name() string { return "SOptimal" }

// Init implements Policy: performs the offline analysis. Per-object
// benefit over the whole trace is the saved query traffic (each query's
// cost divided among the objects it accesses in proportion to their
// sizes, as in Benefit), minus the update traffic the object would cause
// while cached, minus its one-time load cost. Positive-benefit objects
// are cached greedily in decreasing order until the capacity is full.
func (p *SOptimal) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.idx != nil {
		return fmt.Errorf("core: SOptimal initialized twice")
	}
	idx, err := newObjectIndex(objects, capacity)
	if err != nil {
		return err
	}
	p.idx = idx
	benefit := make(map[model.ObjectID]float64, len(objects))

	for i := range p.events {
		e := &p.events[i]
		switch e.Kind {
		case model.EventBirth:
			// The oracle reads the whole trace, births included: the
			// newborn joins the candidate universe at its publication
			// point, so later queries accrue benefit on it.
			if err := idx.addObject(e.Birth.Object); err != nil {
				return fmt.Errorf("core: SOptimal: %w", err)
			}
			if p.born == nil {
				p.born = make(map[model.ObjectID]struct{})
			}
			p.born[e.Birth.Object.ID] = struct{}{}
		case model.EventQuery:
			q := e.Query
			var totalSize cost.Bytes
			for _, id := range q.Objects {
				size, err := idx.size(id)
				if err != nil {
					return fmt.Errorf("core: SOptimal: %w", err)
				}
				totalSize += size
			}
			for _, id := range q.Objects {
				size, _ := idx.size(id)
				share := float64(q.Cost)
				if totalSize > 0 {
					share *= float64(size) / float64(totalSize)
				} else {
					share /= float64(len(q.Objects))
				}
				benefit[id] += share
			}
		case model.EventUpdate:
			benefit[e.Update.Object] -= float64(e.Update.Cost)
		}
	}
	for id := range benefit {
		size, _ := idx.size(id)
		benefit[id] -= float64(size) // load cost
	}

	ids := make([]model.ObjectID, 0, len(benefit))
	for id := range benefit {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if benefit[ids[i]] != benefit[ids[j]] {
			return benefit[ids[i]] > benefit[ids[j]]
		}
		return ids[i] < ids[j]
	})
	p.chosen = make(map[model.ObjectID]struct{})
	var used cost.Bytes
	for _, id := range ids {
		if benefit[id] <= 0 {
			break
		}
		size, _ := idx.size(id)
		if used+size > capacity {
			continue // try smaller candidates further down the ranking
		}
		p.chosen[id] = struct{}{}
		used += size
	}
	return nil
}

// Preload implements Preloader: the chosen static set, load charged.
// Chosen objects that are born mid-trace are excluded — they do not
// exist at t=0 and load at their publication instead (AddObjects).
func (p *SOptimal) Preload() (objs []model.ObjectID, charge bool) {
	ids := make([]model.ObjectID, 0, len(p.chosen))
	for id := range p.chosen {
		if _, isBorn := p.born[id]; isBorn {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// AddObjects implements Grower. A birth the offline scan saw coming is
// already in the universe; if the oracle chose it, it loads now — its
// earliest possible moment. A birth outside the analyzed trace (live
// use past the planned sequence) joins the universe but is never
// cached: the static decision predates it.
func (p *SOptimal) AddObjects(objs []model.Object) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: SOptimal not initialized")
	}
	var d Decision
	for _, o := range objs {
		if _, known := p.idx.objects[o.ID]; !known {
			if err := p.idx.addObject(o); err != nil {
				return Decision{}, err
			}
			continue
		}
		if _, ok := p.chosen[o.ID]; ok && !p.idx.isCached(o.ID) {
			if err := p.idx.markCached(o.ID); err != nil {
				return Decision{}, err
			}
			d.Load = append(d.Load, o.ID)
		}
	}
	return d, nil
}

// Chosen reports whether an object is in the static set (for tests).
func (p *SOptimal) Chosen(id model.ObjectID) bool {
	_, ok := p.chosen[id]
	return ok
}

// OnQuery implements Policy.
func (p *SOptimal) OnQuery(q *model.Query) (Decision, error) {
	for _, id := range q.Objects {
		if _, ok := p.chosen[id]; !ok {
			return Decision{ShipQuery: true}, nil
		}
	}
	return Decision{}, nil
}

// OnUpdate implements Policy: push updates for chosen objects so they
// stay current.
func (p *SOptimal) OnUpdate(u *model.Update) (Decision, error) {
	if _, ok := p.chosen[u.Object]; ok {
		return Decision{ApplyUpdates: []model.UpdateID{u.ID}}, nil
	}
	return Decision{}, nil
}
