// Package core implements Delta's decision framework: the data
// decoupling problem and the algorithms the paper evaluates on it.
//
// The decoupling problem (Section 3): given the repository's object set,
// an online sequence of queries at the cache and updates at the
// repository, decide which objects to load, which to evict, which
// queries to ship and which updates to ship, such that the cache never
// exceeds its capacity, every query is answered within its tolerance for
// staleness, and total network traffic is minimized.
//
// Five policies are provided:
//
//   - VCover — the paper's contribution: an online algorithm whose
//     UpdateManager solves incremental minimum-weight vertex covers on
//     the query–update interaction graph, and whose LoadManager does
//     randomized, lazily-batched Greedy-Dual-Size object loading.
//   - Benefit — the exponential-smoothing greedy heuristic
//     representative of commercial dynamic-data caches.
//   - NoCache, Replica, SOptimal — the three yardsticks of Section 6.
//
// Policies are deliberately passive: they return Decisions and the
// caller (the simulator or the live cache service) applies them. Each
// policy maintains an internal mirror of cache state that is, by
// construction, consistent with the caller's ground truth; the simulator
// cross-checks the two on every event.
package core

import (
	"fmt"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// Decision is a policy's response to one event. The caller applies the
// parts in this order: Evict, Load, ApplyUpdates, then answers the query
// (shipping it if ShipQuery, otherwise from the cache).
type Decision struct {
	// ShipQuery routes the query to the repository; its result (of size
	// ν(q)) travels the network.
	ShipQuery bool
	// ApplyUpdates ships the identified outstanding updates from the
	// repository and applies them to cached objects.
	ApplyUpdates []model.UpdateID
	// Load bulk-copies whole objects into the cache (cost ν(o) each);
	// loaded objects are fresh: all their outstanding updates are
	// included in the copy.
	Load []model.ObjectID
	// Evict drops objects from the cache (no network cost).
	Evict []model.ObjectID
}

// IsNoop reports whether the decision takes no action.
func (d Decision) IsNoop() bool {
	return !d.ShipQuery && len(d.ApplyUpdates) == 0 && len(d.Load) == 0 && len(d.Evict) == 0
}

// Policy is a decoupling algorithm. Implementations are single-threaded:
// the caller serializes OnQuery/OnUpdate.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Init provides the object universe and cache capacity. It must be
	// called exactly once before any event.
	Init(objects []model.Object, capacity cost.Bytes) error
	// OnQuery decides how to answer a query.
	OnQuery(q *model.Query) (Decision, error)
	// OnUpdate reacts to an update arriving at the repository. Most
	// policies only record it; push-based policies return
	// ApplyUpdates to ship it to the cache immediately.
	OnUpdate(u *model.Update) (Decision, error)
}

// Preloader is implemented by policies whose cache starts non-empty
// (Replica, SOptimal). Preload returns the initially resident objects
// and whether their load cost is charged to the ledger (the paper
// charges SOptimal but not Replica).
type Preloader interface {
	Preload() (objs []model.ObjectID, charge bool)
}

// Grower is implemented by policies whose object universe can extend
// while running — the rapidly-growing repository the paper is built
// for, where newly published objects join the universe live instead of
// requiring a restart. AddObjects registers the newborns so later
// decisions (benefit bookkeeping, cover computations, load candidacy)
// reason about them exactly like start-time objects; it may return a
// Decision for immediate action (Replica loads every newborn so its
// mirror stays complete). Objects already known are an error — the
// caller deduplicates.
type Grower interface {
	AddObjects(objs []model.Object) (Decision, error)
}

// Warmable is implemented by policies that can adopt already-resident
// objects into a freshly initialized instance without a load — the
// warm half of a live cluster reshard, where a shard's cached state
// survives an ownership change (carried residents) or arrives from a
// sibling shard (migration) instead of being re-fetched from the
// repository. Its second consumer is durable restart (internal/persist
// + cache.Middleware recovery, see docs/PERSISTENCE.md): residents
// recovered from a node's snapshot+journal are re-adopted through the
// same call, so a restarted node rejoins warm. Warm is called after
// Init and before any event; it returns the subset of ids the policy
// actually adopted (an object may be declined when it no longer fits
// the capacity). A policy that does not implement Warmable starts cold
// after a reshard — and restarts cold from disk.
type Warmable interface {
	Warm(ids []model.ObjectID) ([]model.ObjectID, error)
}

// objectIndex is the shared bookkeeping helper for policies: object
// metadata plus a mirror of cache residency.
type objectIndex struct {
	objects  map[model.ObjectID]model.Object
	capacity cost.Bytes

	cached map[model.ObjectID]struct{}
	used   cost.Bytes
}

func newObjectIndex(objects []model.Object, capacity cost.Bytes) (*objectIndex, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("core: negative cache capacity")
	}
	idx := &objectIndex{
		objects:  make(map[model.ObjectID]model.Object, len(objects)),
		capacity: capacity,
		cached:   make(map[model.ObjectID]struct{}),
	}
	for _, o := range objects {
		if o.Size < 0 {
			return nil, fmt.Errorf("core: object %d has negative size", o.ID)
		}
		if _, dup := idx.objects[o.ID]; dup {
			return nil, fmt.Errorf("core: duplicate object %d", o.ID)
		}
		idx.objects[o.ID] = o
	}
	return idx, nil
}

// addObject extends the universe with one new object.
func (idx *objectIndex) addObject(o model.Object) error {
	if o.Size < 0 {
		return fmt.Errorf("core: object %d has negative size", o.ID)
	}
	if _, dup := idx.objects[o.ID]; dup {
		return fmt.Errorf("core: duplicate object %d", o.ID)
	}
	idx.objects[o.ID] = o
	return nil
}

func (idx *objectIndex) size(id model.ObjectID) (cost.Bytes, error) {
	o, ok := idx.objects[id]
	if !ok {
		return 0, fmt.Errorf("core: unknown object %d", id)
	}
	return o.Size, nil
}

func (idx *objectIndex) isCached(id model.ObjectID) bool {
	_, ok := idx.cached[id]
	return ok
}

func (idx *objectIndex) allCached(ids []model.ObjectID) bool {
	for _, id := range ids {
		if !idx.isCached(id) {
			return false
		}
	}
	return true
}

func (idx *objectIndex) markCached(id model.ObjectID) error {
	if idx.isCached(id) {
		return fmt.Errorf("core: object %d already cached", id)
	}
	size, err := idx.size(id)
	if err != nil {
		return err
	}
	idx.cached[id] = struct{}{}
	idx.used += size
	return nil
}

func (idx *objectIndex) markEvicted(id model.ObjectID) error {
	if !idx.isCached(id) {
		return fmt.Errorf("core: object %d not cached", id)
	}
	size, err := idx.size(id)
	if err != nil {
		return err
	}
	delete(idx.cached, id)
	idx.used -= size
	return nil
}
