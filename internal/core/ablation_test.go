package core

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func TestCounterLoadingDeterministicThreshold(t *testing.T) {
	p := NewVCover(VCoverConfig{Seed: 1, GDSF: true, CounterLoading: true})
	if err := p.Init(vcObjects(), 30*cost.GB); err != nil {
		t.Fatal(err)
	}
	// Object 3 is 5 GB. Two queries of 2 GB must not load it; the third
	// (total 6 GB ≥ 5 GB) must.
	for i := 1; i <= 2; i++ {
		d, err := p.OnQuery(&model.Query{
			ID: model.QueryID(i), Objects: []model.ObjectID{3}, Cost: 2 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(i) * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Load) != 0 {
			t.Fatalf("query %d: premature load %+v", i, d)
		}
	}
	d, err := p.OnQuery(&model.Query{
		ID: 3, Objects: []model.ObjectID{3}, Cost: 2 * cost.GB,
		Tolerance: model.NoTolerance, Time: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Load) != 1 || d.Load[0] != 3 {
		t.Fatalf("counter should trip at accumulated 6GB >= 5GB: %+v", d)
	}
}

func TestCounterLoadingResetsAfterCandidate(t *testing.T) {
	p := NewVCover(VCoverConfig{Seed: 1, GDSF: true, CounterLoading: true})
	if err := p.Init(vcObjects(), 30*cost.GB); err != nil {
		t.Fatal(err)
	}
	// One big query loads object 3 immediately (5 GB >= 5 GB).
	d, err := p.OnQuery(&model.Query{
		ID: 1, Objects: []model.ObjectID{3}, Cost: 5 * cost.GB,
		Tolerance: model.NoTolerance, Time: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Load) != 1 {
		t.Fatalf("expected immediate load: %+v", d)
	}
	if p.attributed[3] != 0 {
		t.Errorf("counter not reset: %d", p.attributed[3])
	}
}

func TestPreshipArmsAfterRepeatedCoverShips(t *testing.T) {
	p := NewVCover(VCoverConfig{Seed: 1, GDSF: true, Preship: true, PreshipAfter: 2})
	if err := p.Init(vcObjects(), 30*cost.GB); err != nil {
		t.Fatal(err)
	}
	warmLoad(t, p, 1, 1, time.Second)

	// Two rounds of: cheap update, expensive query -> cover ships the
	// update. That arms preshipping.
	qid := model.QueryID(1)
	for i := 1; i <= 2; i++ {
		if _, err := p.OnUpdate(&model.Update{
			ID: model.UpdateID(i), Object: 1, Cost: cost.MB,
			Time: time.Duration(10*i) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		qid++
		d, err := p.OnQuery(&model.Query{
			ID: qid, Objects: []model.ObjectID{1}, Cost: cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(10*i+1) * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.ApplyUpdates) != 1 {
			t.Fatalf("round %d: cover should ship the update: %+v", i, d)
		}
	}
	// The third update must now be preshipped on arrival.
	d, err := p.OnUpdate(&model.Update{ID: 99, Object: 1, Cost: cost.MB, Time: 100 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ApplyUpdates) != 1 || d.ApplyUpdates[0] != 99 {
		t.Fatalf("expected preship: %+v", d)
	}
	if p.Stats().UpdatesPreshipped != 1 {
		t.Errorf("stats: %+v", p.Stats())
	}
	// A zero-tolerance query right after is answered at cache with no
	// waiting for update shipment — the response-time win.
	d2, err := p.OnQuery(&model.Query{
		ID: 50, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 101 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsNoop() {
		t.Errorf("preshipped object should be fresh: %+v", d2)
	}
}

func TestPreshipDisabledByDefault(t *testing.T) {
	p := newTestVCover(t, 30*cost.GB)
	warmLoad(t, p, 1, 1, time.Second)
	for i := 1; i <= 5; i++ {
		p.coverShips[1]++ // simulate history
	}
	d, err := p.OnUpdate(&model.Update{ID: 1, Object: 1, Cost: cost.MB, Time: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ApplyUpdates) != 0 {
		t.Errorf("preship must be off by default: %+v", d)
	}
}
