package core

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func newTestBenefit(t *testing.T, window int, capacity cost.Bytes) *Benefit {
	t.Helper()
	p := NewBenefit(BenefitConfig{Window: window, Alpha: 0.5})
	if err := p.Init(vcObjects(), capacity); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBenefitConfigValidation(t *testing.T) {
	p := NewBenefit(BenefitConfig{Window: 0, Alpha: 0.5})
	if err := p.Init(vcObjects(), cost.GB); err == nil {
		t.Error("zero window should fail")
	}
	p = NewBenefit(BenefitConfig{Window: 10, Alpha: 1.5})
	if err := p.Init(vcObjects(), cost.GB); err == nil {
		t.Error("alpha > 1 should fail")
	}
	p = NewBenefit(DefaultBenefitConfig())
	if err := p.Init(vcObjects(), cost.GB); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(vcObjects(), cost.GB); err == nil {
		t.Error("double init should fail")
	}
	q := NewBenefit(DefaultBenefitConfig())
	if _, err := q.OnQuery(&model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: 1}); err == nil {
		t.Error("use before init should fail")
	}
}

func TestBenefitStartsEmptyAndShips(t *testing.T) {
	p := newTestBenefit(t, 4, 30*cost.GB)
	d, err := p.OnQuery(&model.Query{
		ID: 1, Objects: []model.ObjectID{1}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShipQuery {
		t.Error("cold cache must ship")
	}
}

func TestBenefitLoadsHotObjectAtWindowBoundary(t *testing.T) {
	p := newTestBenefit(t, 4, 30*cost.GB)
	// Four expensive queries on object 3 (5 GB): benefit 4*20GB - 5GB
	// load cost > 0.
	for i := 0; i < 4; i++ {
		if _, err := p.OnQuery(&model.Query{
			ID: model.QueryID(i + 1), Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(i+1) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The 5th event starts a new window: replan must load object 3.
	d, err := p.OnQuery(&model.Query{
		ID: 5, Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
		Tolerance: model.NoTolerance, Time: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Load) != 1 || d.Load[0] != 3 {
		t.Fatalf("expected load of object 3 at boundary: %+v", d)
	}
	if d.ShipQuery {
		t.Error("query should be answered at cache after the load")
	}
	if p.Stats().Windows != 1 {
		t.Errorf("stats: %+v", p.Stats())
	}
}

func TestBenefitEagerUpdateShipping(t *testing.T) {
	p := newTestBenefit(t, 2, 30*cost.GB)
	// Get object 3 loaded: 2 hot queries then boundary.
	for i := 0; i < 2; i++ {
		if _, err := p.OnQuery(&model.Query{
			ID: model.QueryID(i + 1), Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(i+1) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := p.OnUpdate(&model.Update{ID: 1, Object: 3, Cost: cost.MB, Time: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Load) != 1 || d.Load[0] != 3 {
		t.Fatalf("boundary replan should load 3: %+v", d)
	}
	if len(d.ApplyUpdates) != 1 || d.ApplyUpdates[0] != 1 {
		t.Fatalf("update on cached object must ship eagerly: %+v", d)
	}
	// Updates on uncached objects are not shipped.
	d2, err := p.OnUpdate(&model.Update{ID: 2, Object: 1, Cost: cost.MB, Time: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.ApplyUpdates) != 0 {
		t.Errorf("update on uncached object should not ship: %+v", d2)
	}
}

func TestBenefitEvictsWhenBenefitTurnsNegative(t *testing.T) {
	p := newTestBenefit(t, 2, 30*cost.GB)
	// Window 1: object 3 hot.
	for i := 0; i < 2; i++ {
		if _, err := p.OnQuery(&model.Query{
			ID: model.QueryID(i + 1), Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(i+1) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Window 2 starts: 3 loaded. Now hammer it with huge updates for
	// several windows until its forecast goes negative.
	uid := model.UpdateID(0)
	evicted := false
	for w := 0; w < 6 && !evicted; w++ {
		for i := 0; i < 2; i++ {
			uid++
			d, err := p.OnUpdate(&model.Update{
				ID: uid, Object: 3, Cost: 30 * cost.GB,
				Time: time.Duration(10*int(uid)) * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range d.Evict {
				if id == 3 {
					evicted = true
				}
			}
		}
	}
	if !evicted {
		t.Error("object 3 should be evicted once update traffic dominates")
	}
}

func TestBenefitRespectsCapacity(t *testing.T) {
	// Capacity fits only object 3 (5 GB): even if all objects are hot,
	// only 3 can be cached.
	p := newTestBenefit(t, 3, 6*cost.GB)
	for i := 0; i < 3; i++ {
		obj := model.ObjectID(i + 1)
		if _, err := p.OnQuery(&model.Query{
			ID: model.QueryID(i + 1), Objects: []model.ObjectID{obj}, Cost: 50 * cost.GB,
			Tolerance: model.NoTolerance, Time: time.Duration(i+1) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.OnQuery(&model.Query{
		ID: 4, Objects: []model.ObjectID{3}, Cost: cost.GB,
		Tolerance: model.NoTolerance, Time: 4 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	cached := p.CachedObjects()
	var used cost.Bytes
	for _, id := range cached {
		size, _ := p.idx.size(id)
		used += size
	}
	if used > 6*cost.GB {
		t.Errorf("capacity exceeded: %v cached (%v)", cached, used)
	}
}

func TestBenefitSplitsQueryCostBySize(t *testing.T) {
	p := newTestBenefit(t, 100, 40*cost.GB)
	// One query across objects 1 (10 GB) and 2 (20 GB): shares 1/3 and
	// 2/3.
	if _, err := p.OnQuery(&model.Query{
		ID: 1, Objects: []model.ObjectID{1, 2}, Cost: 30 * cost.GB,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := p.winBenefit[1], float64(10*cost.GB); got != want {
		t.Errorf("object 1 share = %v, want %v", got, want)
	}
	if got, want := p.winBenefit[2], float64(20*cost.GB); got != want {
		t.Errorf("object 2 share = %v, want %v", got, want)
	}
}

func TestBenefitWindowOneReplansEveryEvent(t *testing.T) {
	p := newTestBenefit(t, 1, 30*cost.GB)
	if _, err := p.OnQuery(&model.Query{
		ID: 1, Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	d, err := p.OnQuery(&model.Query{
		ID: 2, Objects: []model.ObjectID{3}, Cost: 20 * cost.GB,
		Tolerance: model.NoTolerance, Time: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Load) != 1 || d.Load[0] != 3 {
		t.Errorf("window=1 should load at the second event: %+v", d)
	}
	if p.Stats().Windows != 1 {
		t.Errorf("stats: %+v", p.Stats())
	}
}
