package core

import (
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// PaperExample reconstructs the worked example of Section 3.1 (Figure 2
// of the paper): four data objects o1..o4, three of them initially
// cached, and a sequence of updates and queries over eight seconds for
// which two strategies compete:
//
//   - Plan A (26 GB): evict o3 and load o4 at the very beginning, then
//     ship updates u1, u2, u4 and query q7;
//   - Plan B (28 GB): load nothing and ship queries q3, q7 and q8.
//
// Plan A wins only because q8's tolerance for staleness allows omitting
// u5; were u5 required, Plan A would cost 31 GB and Plan B would become
// optimal — the paper's illustration of how slight workload variations
// flip the optimal decoupling.
//
// It returns the object set, the initially cached objects, the cache
// capacity, and the event sequence.
func PaperExample() (objects []model.Object, initialCache []model.ObjectID, capacity cost.Bytes, events []model.Event) {
	objects = []model.Object{
		{ID: 1, Size: 10 * cost.GB}, // o1
		{ID: 2, Size: 8 * cost.GB},  // o2
		{ID: 3, Size: 12 * cost.GB}, // o3
		{ID: 4, Size: 16 * cost.GB}, // o4
	}
	initialCache = []model.ObjectID{1, 2, 3}
	capacity = 40 * cost.GB

	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	events = []model.Event{
		{Seq: 0, Kind: model.EventUpdate, Update: &model.Update{
			ID: 1, Object: 2, Cost: 1 * cost.GB, Time: sec(1)}}, // u1(o2, 1)
		{Seq: 1, Kind: model.EventUpdate, Update: &model.Update{
			ID: 2, Object: 1, Cost: 3 * cost.GB, Time: sec(2)}}, // u2(o1, 3)
		{Seq: 2, Kind: model.EventQuery, Query: &model.Query{
			ID: 3, Objects: []model.ObjectID{1, 2, 4}, Cost: 15 * cost.GB,
			Tolerance: model.NoTolerance, Time: sec(3)}}, // q3(o1,o2,o4; 15; t=0)
		{Seq: 3, Kind: model.EventUpdate, Update: &model.Update{
			ID: 4, Object: 4, Cost: 2 * cost.GB, Time: sec(4)}}, // u4(o4, 2)
		{Seq: 4, Kind: model.EventUpdate, Update: &model.Update{
			ID: 6, Object: 2, Cost: 6 * cost.GB, Time: sec(5)}}, // u6(o2, 6)
		{Seq: 5, Kind: model.EventQuery, Query: &model.Query{
			ID: 7, Objects: []model.ObjectID{2}, Cost: 4 * cost.GB,
			Tolerance: model.NoTolerance, Time: sec(6)}}, // q7(o2; 4; t=0)
		{Seq: 6, Kind: model.EventUpdate, Update: &model.Update{
			ID: 5, Object: 1, Cost: 5 * cost.GB, Time: sec(7)}}, // u5(o1, 5)
		{Seq: 7, Kind: model.EventQuery, Query: &model.Query{
			ID: 8, Objects: []model.ObjectID{1, 4}, Cost: 9 * cost.GB,
			Tolerance: 2 * time.Second, Time: sec(8)}}, // q8(o1,o4; 9; t=2s): u5 within tolerance
	}
	return objects, initialCache, capacity, events
}
