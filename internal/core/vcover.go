package core

import (
	"fmt"
	"math/rand"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/flow"
	"github.com/deltacache/delta/internal/gds"
	"github.com/deltacache/delta/internal/model"
)

// VCoverConfig parameterizes VCover.
type VCoverConfig struct {
	// Seed drives the LoadManager's randomized cost attribution.
	Seed int64
	// GDSF selects the frequency-aware Greedy-Dual-Size variant for the
	// LoadManager's object-usage tracking (the paper measures usage
	// "from frequency and recency of use").
	GDSF bool
	// CounterLoading replaces the randomized cost attribution with
	// explicit per-object counters: an object becomes a load candidate
	// exactly when its accumulated attributed cost reaches its load
	// cost. The paper rejects this variant as space-inefficient
	// ("counters on each object are not maintained") but it is the
	// natural ablation: both variants should produce similar traffic,
	// which BenchmarkAblationCounterLoading verifies.
	CounterLoading bool
	// Preship enables the response-time extension sketched in the
	// paper's Section 4 discussion: once an object's updates have been
	// shipped by vertex covers repeatedly, further updates for it are
	// preshipped (proactively sent on arrival), trading update traffic
	// for lower response times on currency-demanding queries.
	Preship bool
	// PreshipAfter is the number of cover-driven update shipments on an
	// object that arms preshipping for it (default 3).
	PreshipAfter int
}

// DefaultVCoverConfig returns the configuration used in the experiments.
func DefaultVCoverConfig() VCoverConfig {
	return VCoverConfig{Seed: 1, GDSF: true, PreshipAfter: 3}
}

// VCover is the paper's online algorithm for the data decoupling
// problem (Section 4). It is composed of two managers:
//
//   - UpdateManager: for queries whose objects are all cached, it
//     maintains a *remainder* interaction graph of query and update
//     vertices (weights ν(q), ν(u)) and computes the minimum-weight
//     vertex cover incrementally via network flow. Updates in the cover
//     are shipped; if the query is in the cover it is shipped. Update
//     vertices picked in a cover and query vertices not picked are
//     excluded from the remainder graph, keeping it small and making the
//     cover computation robust to workload changes.
//   - LoadManager: for queries that miss, the query is shipped, and in
//     the background the query's cost is attributed to its missing
//     objects in random order; an object whose attributed cost covers
//     its load cost becomes a load candidate deterministically,
//     otherwise with probability c/l(o) — in expectation an object is
//     loaded only after shipping costs equal to its load cost have been
//     paid, the bound shown optimal in the bypass-caching work the paper
//     builds on. Candidates pass through a lazy Greedy-Dual-Size cache
//     that decides actual loads and evictions.
type VCover struct {
	cfg VCoverConfig

	idx   *objectIndex
	bip   *flow.Bipartite
	loads *gds.Cache
	rng   *rand.Rand

	// outstanding[o] holds updates received for cached object o that
	// have not been shipped, in arrival order.
	outstanding map[model.ObjectID][]pendingUpdate
	// updObject maps update vertices present in the interaction graph to
	// their object.
	updObject map[model.UpdateID]model.ObjectID
	// attributed holds per-object accumulated query costs when
	// CounterLoading is enabled.
	attributed map[model.ObjectID]int64
	// coverShips counts cover-driven update shipments per object; when
	// Preship is enabled and the count reaches PreshipAfter, the object
	// switches to push mode.
	coverShips map[model.ObjectID]int

	stats VCoverStats
}

type pendingUpdate struct {
	update model.Update
}

// VCoverStats counts internal decisions, exposed for experiments and
// tests.
type VCoverStats struct {
	QueriesAtCache    int64 // answered from cache without shipping
	QueriesShipped    int64
	UpdatesShipped    int64
	ObjectsLoaded     int64
	ObjectsEvicted    int64
	CoverComputations int64
	UpdatesPreshipped int64
}

// NewVCover returns a VCover policy with the given configuration.
func NewVCover(cfg VCoverConfig) *VCover {
	return &VCover{cfg: cfg}
}

// Name implements Policy.
func (p *VCover) Name() string { return "VCover" }

// Stats returns internal decision counters.
func (p *VCover) Stats() VCoverStats { return p.stats }

// Init implements Policy.
func (p *VCover) Init(objects []model.Object, capacity cost.Bytes) error {
	if p.idx != nil {
		return fmt.Errorf("core: VCover initialized twice")
	}
	idx, err := newObjectIndex(objects, capacity)
	if err != nil {
		return err
	}
	loadCache, err := gds.New(int64(capacity), p.cfg.GDSF)
	if err != nil {
		return err
	}
	p.idx = idx
	p.bip = flow.NewBipartite()
	p.loads = loadCache
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
	p.outstanding = make(map[model.ObjectID][]pendingUpdate)
	p.updObject = make(map[model.UpdateID]model.ObjectID)
	p.attributed = make(map[model.ObjectID]int64)
	p.coverShips = make(map[model.ObjectID]int)
	if p.cfg.PreshipAfter <= 0 {
		p.cfg.PreshipAfter = 3
	}
	return nil
}

// Warm implements Warmable: adopt already-resident objects into a
// fresh instance without a load (live reshard carry-over and warm
// migration). Each object is admitted to the GDS load cache only when
// it fits the remaining free capacity — warming never evicts, so the
// adopted set is order-independent up to capacity exhaustion; declined
// objects simply stay cold and reload on demand.
func (p *VCover) Warm(ids []model.ObjectID) ([]model.ObjectID, error) {
	if p.idx == nil {
		return nil, fmt.Errorf("core: VCover not initialized")
	}
	adopted := make([]model.ObjectID, 0, len(ids))
	for _, id := range ids {
		if p.idx.isCached(id) {
			adopted = append(adopted, id)
			continue
		}
		size, err := p.idx.size(id)
		if err != nil {
			return nil, err
		}
		if p.idx.used+size > p.idx.capacity {
			continue
		}
		l := int64(size)
		if _, ok := p.loads.Admit(gds.Entry{Key: int64(id), Size: l, Cost: l}); !ok {
			continue
		}
		if err := p.idx.markCached(id); err != nil {
			return nil, err
		}
		// A migrated copy is as fresh as the source's: any updates it
		// missed are the source's outstanding set, which the reshard
		// protocol does not carry — treat the copy as fresh, the same
		// optimism a repository load has.
		p.outstanding[id] = nil
		adopted = append(adopted, id)
	}
	return adopted, nil
}

// AddObjects implements Grower: newborns join the universe cold. The
// LoadManager's randomized cost attribution needs no per-object state,
// so a born object becomes a load candidate the same way any uncached
// object does — once queries attribute enough cost to it.
func (p *VCover) AddObjects(objs []model.Object) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: VCover not initialized")
	}
	for _, o := range objs {
		if err := p.idx.addObject(o); err != nil {
			return Decision{}, err
		}
	}
	return Decision{}, nil
}

// OnUpdate implements Policy. Updates are never shipped eagerly: the
// cached copy is merely invalidated (design choice A of Section 1); the
// update becomes outstanding and a vertex for it enters the interaction
// graph only when a query interacts with it.
func (p *VCover) OnUpdate(u *model.Update) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: VCover not initialized")
	}
	if _, err := p.idx.size(u.Object); err != nil {
		return Decision{}, err
	}
	if p.idx.isCached(u.Object) {
		if p.cfg.Preship && p.coverShips[u.Object] >= p.cfg.PreshipAfter {
			// The object has proven query-hot and update-cheap: push the
			// update immediately so currency-demanding queries are not
			// delayed by on-demand shipping (Section 4 discussion).
			p.stats.UpdatesPreshipped++
			return Decision{ApplyUpdates: []model.UpdateID{u.ID}}, nil
		}
		p.outstanding[u.Object] = append(p.outstanding[u.Object], pendingUpdate{update: *u})
	}
	return Decision{}, nil
}

// OnQuery implements Policy (Figure 3 of the paper).
func (p *VCover) OnQuery(q *model.Query) (Decision, error) {
	if p.idx == nil {
		return Decision{}, fmt.Errorf("core: VCover not initialized")
	}
	for _, id := range q.Objects {
		if _, err := p.idx.size(id); err != nil {
			return Decision{}, err
		}
	}
	// Track usage of cached objects for the LoadManager's eviction
	// decisions regardless of which manager handles the query.
	for _, id := range q.Objects {
		if p.idx.isCached(id) {
			p.loads.Touch(int64(id))
		}
	}
	if p.idx.allCached(q.Objects) {
		return p.updateManager(q)
	}
	return p.loadManager(q)
}

// updateManager decides between shipping q and shipping its outstanding
// interacting updates (Figure 4 of the paper).
func (p *VCover) updateManager(q *model.Query) (Decision, error) {
	// Collect the updates q interacts with: outstanding updates on B(q)
	// outside q's tolerance for staleness.
	var needed []model.Update
	for _, id := range q.Objects {
		for _, pu := range p.outstanding[id] {
			if model.UpdateRequired(&pu.update, q) {
				needed = append(needed, pu.update)
			}
		}
	}
	if len(needed) == 0 {
		// Every interacting update has been shipped: execute at cache.
		p.stats.QueriesAtCache++
		return Decision{}, nil
	}

	// Grow the interaction graph: query vertex, update vertices, edges.
	if err := p.bip.AddLeft(int64(q.ID), int64(q.Cost)); err != nil {
		return Decision{}, fmt.Errorf("core: VCover: %w", err)
	}
	for i := range needed {
		u := &needed[i]
		if !p.bip.HasRight(int64(u.ID)) {
			if err := p.bip.AddRight(int64(u.ID), int64(u.Cost)); err != nil {
				return Decision{}, fmt.Errorf("core: VCover: %w", err)
			}
			p.updObject[u.ID] = u.Object
		}
		if err := p.bip.Connect(int64(q.ID), int64(u.ID)); err != nil {
			return Decision{}, fmt.Errorf("core: VCover: %w", err)
		}
	}

	// Incremental minimum-weight vertex cover.
	cover := p.bip.Solve()
	p.stats.CoverComputations++

	var d Decision
	// Ship every update vertex picked in the cover and drop it from the
	// remainder graph — its shipping is justified by past queries alone
	// and will never be revisited.
	for _, key := range cover.Right {
		uid := model.UpdateID(key)
		obj, ok := p.updObject[uid]
		if !ok {
			return Decision{}, fmt.Errorf("core: VCover: cover update %d not tracked", uid)
		}
		if err := p.applyOutstanding(obj, uid); err != nil {
			return Decision{}, err
		}
		if err := p.bip.RemoveRight(key); err != nil {
			return Decision{}, fmt.Errorf("core: VCover: %w", err)
		}
		delete(p.updObject, uid)
		d.ApplyUpdates = append(d.ApplyUpdates, uid)
		p.coverShips[obj]++
		p.stats.UpdatesShipped++
	}
	if cover.ContainsLeft(int64(q.ID)) {
		// Cheaper to ship the query; its vertex stays in the remainder
		// graph so its sunk cost keeps justifying future update covers.
		d.ShipQuery = true
		p.stats.QueriesShipped++
	} else {
		p.stats.QueriesAtCache++
	}
	// Remainder subgraph maintenance: drop query vertices not picked in
	// the cover (their currency was paid for by shipped updates) and
	// query vertices that have become isolated.
	for _, key := range p.bip.Lefts() {
		if !cover.ContainsLeft(key) || p.bip.DegreeLeft(key) == 0 {
			if err := p.bip.RemoveLeft(key); err != nil {
				return Decision{}, fmt.Errorf("core: VCover: %w", err)
			}
		}
	}
	return d, nil
}

// applyOutstanding removes one update from an object's outstanding list.
func (p *VCover) applyOutstanding(obj model.ObjectID, uid model.UpdateID) error {
	lst := p.outstanding[obj]
	for i := range lst {
		if lst[i].update.ID == uid {
			p.outstanding[obj] = append(lst[:i], lst[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("core: VCover: update %d not outstanding on object %d", uid, obj)
}

// loadManager ships the query and decides, in the background, whether to
// load the missing objects (Figure 6 of the paper).
func (p *VCover) loadManager(q *model.Query) (Decision, error) {
	d := Decision{ShipQuery: true}
	p.stats.QueriesShipped++

	// Missing objects in random order: the random sequence plus the
	// probabilistic admission below implement the randomized cost
	// attribution that avoids per-object counters.
	var missing []model.ObjectID
	for _, id := range q.Objects {
		if !p.idx.isCached(id) {
			missing = append(missing, id)
		}
	}
	p.rng.Shuffle(len(missing), func(i, j int) {
		missing[i], missing[j] = missing[j], missing[i]
	})

	c := int64(q.Cost)
	var candidates []gds.Entry
	for _, id := range missing {
		if c <= 0 {
			break
		}
		size, err := p.idx.size(id)
		if err != nil {
			return Decision{}, err
		}
		l := int64(size)
		entry := gds.Entry{Key: int64(id), Size: l, Cost: l}
		if p.cfg.CounterLoading {
			// Ablation: explicit per-object counters instead of the
			// randomized attribution. Deterministic, but needs state for
			// every object ever queried.
			take := c
			if take > l {
				take = l
			}
			p.attributed[id] += take
			c -= take
			if p.attributed[id] >= l {
				candidates = append(candidates, entry)
				p.attributed[id] = 0
			}
			continue
		}
		if c >= l {
			// The query's cost alone covers the load cost: the object is
			// made a candidate immediately.
			candidates = append(candidates, entry)
			c -= l
			continue
		}
		// Randomized loading: candidate with probability c/l(o), so in
		// expectation the object becomes a candidate once total
		// attributed cost reaches its load cost — without maintaining a
		// counter.
		if l > 0 && p.rng.Float64() < float64(c)/float64(l) {
			candidates = append(candidates, entry)
		}
		c = 0
	}
	if len(candidates) == 0 {
		return d, nil
	}

	// Lazy Greedy-Dual-Size decides the actual loads and evictions.
	res := p.loads.AdmitBatch(candidates)
	for _, key := range res.Evict {
		id := model.ObjectID(key)
		if err := p.evictObject(id); err != nil {
			return Decision{}, err
		}
		d.Evict = append(d.Evict, id)
		p.stats.ObjectsEvicted++
	}
	for _, key := range res.Load {
		id := model.ObjectID(key)
		if err := p.idx.markCached(id); err != nil {
			return Decision{}, err
		}
		// A load bulk-copies the object including all updates received
		// while it was away: the object arrives fresh on both sides
		// ("Both server and cache mark o fresh").
		p.outstanding[id] = nil
		d.Load = append(d.Load, id)
		p.stats.ObjectsLoaded++
	}
	return d, nil
}

// evictObject drops an object from the mirror along with every piece of
// decision state attached to it: outstanding updates and their
// interaction-graph vertices.
func (p *VCover) evictObject(id model.ObjectID) error {
	if err := p.idx.markEvicted(id); err != nil {
		return err
	}
	for _, pu := range p.outstanding[id] {
		uid := pu.update.ID
		if p.bip.HasRight(int64(uid)) {
			if err := p.bip.RemoveRight(int64(uid)); err != nil {
				return fmt.Errorf("core: VCover: %w", err)
			}
			delete(p.updObject, uid)
		}
	}
	delete(p.outstanding, id)
	return nil
}

// CachedObjects returns the mirror's resident set, for tests and the
// live cache service.
func (p *VCover) CachedObjects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(p.idx.cached))
	for id := range p.idx.cached {
		out = append(out, id)
	}
	sortObjectIDs(out)
	return out
}

func sortObjectIDs(ids []model.ObjectID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
