package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/model"
)

// File names inside a store directory.
const (
	snapshotFile = "snapshot.dp"
	journalFile  = "journal.dp"
	tempSuffix   = ".tmp"
)

// DefaultFsyncInterval is the journal's fsync batching window: an
// appended record is durable within this long (sooner under burst
// load, since a full batch also syncs). Snapshots always sync before
// rename regardless.
const DefaultFsyncInterval = 100 * time.Millisecond

// fsyncBatchRecords forces a sync once this many records are pending
// even inside the batching window, bounding the loss window by count
// as well as time.
const fsyncBatchRecords = 256

// Options parameterizes a Store.
type Options struct {
	// Dir is the store directory; created if absent.
	Dir string
	// FsyncInterval overrides the journal fsync batching window
	// (0 = DefaultFsyncInterval; negative syncs every append).
	FsyncInterval time.Duration
	// Logf logs recovery events (torn tails, ignored journals); nil
	// silences.
	Logf func(format string, args ...any)
	// SyncObserve, when non-nil, is called with the wall-clock duration
	// of every journal fsync (batched or forced) — the hook the owning
	// node's fsync-latency histogram observes through. Called with the
	// store lock held; must not block.
	SyncObserve func(time.Duration)
}

// Store is one node's durability directory: a snapshot file and the
// journal extending it. All methods are safe for concurrent use.
type Store struct {
	opts Options

	mu         sync.Mutex
	journal    *os.File
	pending    int  // journal records written since the last sync
	dirty      bool // journal bytes not yet synced
	generation uint64
	closed     bool

	records  atomic.Int64 // journal records appended since open
	lastSnap atomic.Int64 // unix nanos of the newest snapshot

	flushWake chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if necessary) the store directory and starts
// the journal fsync batcher. Call Recover before writing anything to
// get the prior incarnation's state.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: store directory required")
	}
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{
		opts:      opts,
		flushWake: make(chan struct{}, 1),
		flushDone: make(chan struct{}),
	}
	s.lastSnap.Store(time.Now().UnixNano())
	go s.flushLoop()
	return s, nil
}

// Recover loads the snapshot (if any) and replays the journal over it,
// tolerating a truncated or corrupt journal tail: replay stops at the
// first bad record and reports how much survived. It returns nil state
// when the directory holds no usable prior state (fresh start). A
// snapshot that fails its own CRC is an error — unlike a journal tail,
// a torn snapshot means the atomic-replace contract was violated
// outside a crash window, and silently starting cold would hide it.
func (s *Store) Recover() (*State, error) {
	snapRaw, err := os.ReadFile(filepath.Join(s.opts.Dir, snapshotFile))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	var st *State
	if len(snapRaw) > 0 {
		st, err = decodeSnapshotFile(snapRaw)
		if err != nil {
			return nil, err
		}
	}

	jRaw, err := os.ReadFile(filepath.Join(s.opts.Dir, journalFile))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("persist: read journal: %w", err)
	}
	var gen uint64
	if st != nil {
		gen = st.generation
	}
	if len(jRaw) > 0 {
		if st == nil {
			// A journal with no snapshot still replays (the node crashed
			// before its first snapshot ever landed; generation 0).
			st = &State{}
		}
		applied, tailErr := replayJournal(jRaw, gen, st)
		if tailErr != nil {
			s.opts.Logf("persist: journal tail dropped after %d records: %v", applied, tailErr)
		}
	}
	// Future snapshots extend the recovered lineage.
	s.mu.Lock()
	s.generation = gen
	s.mu.Unlock()
	return st, nil
}

// decodeSnapshotFile validates magic, framing and CRC of a snapshot
// file and decodes its state. The generation rides in the header
// record so WriteSnapshot can link the next journal to it — but
// Recover tolerates any generation (the journal's must match).
func decodeSnapshotFile(raw []byte) (*State, error) {
	if len(raw) < len(snapshotMagic) || !bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic) {
		return nil, fmt.Errorf("persist: bad snapshot magic")
	}
	b := raw[len(snapshotMagic):]
	typ, payload, rest, err := readRecord(b)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot: %w", err)
	}
	if typ != recHeader {
		return nil, fmt.Errorf("persist: snapshot opens with record type %d", typ)
	}
	hd := &dec{b: payload}
	generation := hd.uvarint()
	if hd.err != nil {
		return nil, hd.err
	}
	typ, payload, rest, err = readRecord(rest)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot: %w", err)
	}
	if typ != recSnapshot {
		return nil, fmt.Errorf("persist: snapshot body has record type %d", typ)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after snapshot record", len(rest))
	}
	st, err := decodeState(payload)
	if err != nil {
		return nil, err
	}
	st.generation = generation
	return st, nil
}

// replayJournal folds a journal's clean prefix into st. The journal's
// header generation must match gen... see Store.Recover for how the
// caller learns the snapshot's generation.
func replayJournal(raw []byte, wantGen uint64, st *State) (applied int, tailErr error) {
	if len(raw) < len(journalMagic) || !bytes.Equal(raw[:len(journalMagic)], journalMagic) {
		return 0, fmt.Errorf("persist: bad journal magic")
	}
	b := raw[len(journalMagic):]
	typ, payload, rest, err := readRecord(b)
	if err != nil {
		return 0, fmt.Errorf("persist: journal header: %w", err)
	}
	if typ != recHeader {
		return 0, fmt.Errorf("persist: journal opens with record type %d", typ)
	}
	hd := &dec{b: payload}
	gen := hd.uvarint()
	if hd.err != nil {
		return 0, hd.err
	}
	if gen != wantGen {
		// A crash between snapshot rename and journal reset leaves the
		// previous generation's journal behind; its records are already
		// folded into the snapshot (or superseded by it), so replaying
		// them would be wrong. Ignore the whole journal.
		return 0, fmt.Errorf("persist: journal generation %d does not extend snapshot generation %d", gen, wantGen)
	}
	b = rest
	for len(b) > 0 {
		typ, payload, rest, err = readRecord(b)
		if err != nil {
			return applied, err // torn tail: keep the clean prefix
		}
		if err := st.apply(typ, payload); err != nil {
			return applied, err
		}
		applied++
		b = rest
	}
	return applied, nil
}

// WriteSnapshot atomically replaces the snapshot with st and resets
// the journal to extend it. Ordering guarantees a crash at any point
// recovers to either the old snapshot plus its full journal or the new
// snapshot alone: the journal is synced first, the temp snapshot is
// synced before rename, the directory is synced after, and only then
// is the journal reset under a new generation.
func (s *Store) WriteSnapshot(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store closed")
	}
	if err := s.syncJournalLocked(); err != nil {
		return err
	}

	gen := s.generation + 1
	var head enc
	head.uvarint(gen)
	out := append([]byte(nil), snapshotMagic...)
	out = frameRecord(out, recHeader, head.b)
	out = frameRecord(out, recSnapshot, encodeState(st))

	path := filepath.Join(s.opts.Dir, snapshotFile)
	tmp := path + tempSuffix
	if err := writeFileSync(tmp, out); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: rename snapshot: %w", err)
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	s.generation = gen
	if err := s.resetJournalLocked(); err != nil {
		return err
	}
	s.lastSnap.Store(time.Now().UnixNano())
	return nil
}

// writeFileSync writes data to path and fsyncs it before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	return nil
}

// resetJournalLocked truncates the journal and writes a fresh header
// bound to the current generation. mu must be held.
func (s *Store) resetJournalLocked() error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	f, err := os.OpenFile(filepath.Join(s.opts.Dir, journalFile), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	var head enc
	head.uvarint(s.generation)
	out := append([]byte(nil), journalMagic...)
	out = frameRecord(out, recHeader, head.b)
	if _, err := f.Write(out); err != nil {
		f.Close()
		return fmt.Errorf("persist: journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync journal: %w", err)
	}
	s.journal = f
	s.pending, s.dirty = 0, false
	return nil
}

// append writes one framed record to the journal, syncing when the
// batch fills (the time-based batcher covers the rest).
func (s *Store) append(typ byte, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store closed")
	}
	if s.journal == nil {
		if err := s.resetJournalLocked(); err != nil {
			return err
		}
	}
	if _, err := s.journal.Write(frameRecord(nil, typ, payload)); err != nil {
		return fmt.Errorf("persist: journal append: %w", err)
	}
	s.records.Add(1)
	s.pending++
	s.dirty = true
	if s.opts.FsyncInterval < 0 || s.pending >= fsyncBatchRecords {
		return s.syncJournalLocked()
	}
	select {
	case s.flushWake <- struct{}{}:
	default:
	}
	return nil
}

// syncJournalLocked fsyncs pending journal bytes. mu must be held.
func (s *Store) syncJournalLocked() error {
	if s.journal == nil || !s.dirty {
		return nil
	}
	start := time.Now()
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("persist: sync journal: %w", err)
	}
	if s.opts.SyncObserve != nil {
		s.opts.SyncObserve(time.Since(start))
	}
	s.pending, s.dirty = 0, false
	return nil
}

// flushLoop is the fsync batcher: it wakes on the first append of a
// batch, sleeps the batching window, and syncs whatever accumulated.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	interval := s.opts.FsyncInterval
	if interval <= 0 {
		interval = DefaultFsyncInterval
	}
	for range s.flushWake {
		time.Sleep(interval)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if err := s.syncJournalLocked(); err != nil {
			s.opts.Logf("%v", err)
		}
		s.mu.Unlock()
	}
}

// AppendBirth journals one adopted object birth.
func (s *Store) AppendBirth(b model.Birth) error {
	var e enc
	encBirth(&e, &b)
	return s.append(recBirth, e.b)
}

// AppendAdmit journals one object admitted to the resident set.
func (s *Store) AppendAdmit(id model.ObjectID) error {
	var e enc
	e.varint(int64(id))
	return s.append(recAdmit, e.b)
}

// AppendEvict journals one object evicted from the resident set.
func (s *Store) AppendEvict(id model.ObjectID) error {
	var e enc
	e.varint(int64(id))
	return s.append(recEvict, e.b)
}

// JournalRecords reports how many records were appended since open.
func (s *Store) JournalRecords() int64 { return s.records.Load() }

// SnapshotAge reports how long ago the newest snapshot landed (since
// open, when none has yet).
func (s *Store) SnapshotAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastSnap.Load())
}

// Close flushes and syncs the journal and stops the batcher. It does
// NOT write a final snapshot — that is the owning node's job (it knows
// its final state); see cache.Middleware.Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.syncJournalLocked()
	if s.journal != nil {
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
		s.journal = nil
	}
	s.closed = true
	close(s.flushWake)
	s.mu.Unlock()
	<-s.flushDone
	return err
}
