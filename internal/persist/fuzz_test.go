package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// seedJournal renders a valid journal stream (magic, generation-gen
// header, one record of each type) for the fuzzer to mutate.
func seedJournal(gen uint64) []byte {
	var head enc
	head.uvarint(gen)
	out := append([]byte(nil), journalMagic...)
	out = frameRecord(out, recHeader, head.b)
	var b enc
	encBirth(&b, &model.Birth{
		Object: model.Object{ID: 69, Size: cost.GB, Trixel: 123},
		RA:     182.5, Dec: -1.25, Time: time.Hour,
	})
	out = frameRecord(out, recBirth, b.b)
	var admit enc
	admit.varint(69)
	out = frameRecord(out, recAdmit, admit.b)
	var evict enc
	evict.varint(69)
	return frameRecord(out, recEvict, evict.b)
}

// seedSnapshot renders a valid snapshot file for the same treatment.
func seedSnapshot() []byte {
	var head enc
	head.uvarint(1)
	out := append([]byte(nil), snapshotMagic...)
	out = frameRecord(out, recHeader, head.b)
	return frameRecord(out, recSnapshot, encodeState(testState()))
}

// replayArbitrary feeds one byte stream through both decode paths — as
// a journal (over an empty state and over a populated one) and as a
// snapshot file. Malformed, truncated, or bit-flipped input must
// surface as an error or a cleanly dropped tail, never as a panic or
// an unbounded allocation.
func replayArbitrary(data []byte) {
	st := &State{}
	_, _ = replayJournal(data, 0, st)
	st2 := testState()
	_, _ = replayJournal(data, 1, st2)
	_, _ = decodeSnapshotFile(data)
}

// FuzzJournalReplay is the durability twin of netproto's
// FuzzDecodeFrame: arbitrary bytes as journal or snapshot content.
// The checked-in corpus under testdata/fuzz/FuzzJournalReplay holds
// deterministic valid, truncated, and CRC-corrupted streams;
// the programmatic seeds below add systematic cuts and flips.
func FuzzJournalReplay(f *testing.F) {
	valid := seedJournal(0)
	snap := seedSnapshot()
	f.Add(valid)
	f.Add(snap)
	f.Add(seedJournal(1))                           // wrong-generation journal
	f.Add(valid[:len(valid)/2])                     // truncated mid-record
	f.Add(valid[:len(journalMagic)+2])              // truncated inside the header
	f.Add([]byte{})                                 // empty file
	f.Add(append([]byte("DPJ1"), 0xff, 0xff, 0xff)) // absurd length prefix
	for _, seed := range [][]byte{valid, snap} {
		flipped := bytes.Clone(seed)
		flipped[len(flipped)/2] ^= 0x55
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		replayArbitrary(data)
	})
}

// TestJournalReplaySeedCorpus replays the programmatic seeds (plus
// systematic truncations and single-byte flips of each) through the
// fuzz body on ordinary `go test` runs, so the malformed-input
// contract is exercised in tier-1 CI exactly like netproto's
// TestDecodeFrameSeedCorpus.
func TestJournalReplaySeedCorpus(t *testing.T) {
	valid := seedJournal(0)
	snap := seedSnapshot()
	cases := [][]byte{
		valid,
		snap,
		seedJournal(1),
		{},
		append([]byte("DPJ1"), 0xff, 0xff, 0xff),
		append([]byte("DPS1"), 0xff, 0xff, 0xff),
	}
	for _, seed := range [][]byte{valid, snap} {
		for cut := 1; cut < len(seed); cut += 3 {
			cases = append(cases, seed[:cut])
		}
		for pos := 0; pos < len(seed); pos += 3 {
			flipped := bytes.Clone(seed)
			flipped[pos] ^= 0x55
			cases = append(cases, flipped)
		}
	}
	for i, data := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("case %d: replay panicked: %v", i, r)
				}
			}()
			replayArbitrary(data)
		}()
	}
	// The valid streams must actually decode, or the corpus is testing
	// nothing: the journal replays all three records, the snapshot
	// round-trips.
	st := &State{}
	if applied, err := replayJournal(valid, 0, st); err != nil || applied != 3 {
		t.Fatalf("valid journal: applied %d, err %v", applied, err)
	}
	if len(st.Births) != 1 || len(st.Resident) != 0 {
		t.Fatalf("valid journal state: %+v", st)
	}
	if _, err := decodeSnapshotFile(snap); err != nil {
		t.Fatalf("valid snapshot: %v", err)
	}
	// A CRC-corrupted snapshot must error (never silently half-load).
	corrupt := bytes.Clone(snap)
	corrupt[len(corrupt)-2] ^= 0x55
	if _, err := decodeSnapshotFile(corrupt); err == nil {
		t.Fatal("corrupt snapshot decoded without error")
	}
}

// TestWritePersistFuzzCorpus regenerates the checked-in seed-corpus
// files under testdata/fuzz/FuzzJournalReplay when WRITE_PERSIST_CORPUS
// is set; it documents their provenance and skips otherwise (the same
// arrangement as netproto's TestWriteV3FuzzCorpus).
func TestWritePersistFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_PERSIST_CORPUS") == "" {
		t.Skip("set WRITE_PERSIST_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := seedJournal(0)
	snap := seedSnapshot()
	flippedJournal := bytes.Clone(valid)
	flippedJournal[len(flippedJournal)/2] ^= 0x55
	flippedSnap := bytes.Clone(snap)
	flippedSnap[len(flippedSnap)-2] ^= 0x55
	entries := map[string][]byte{
		"valid-journal":        valid,
		"valid-snapshot":       snap,
		"truncated-journal":    valid[:len(valid)*2/3],
		"bitflip-journal":      flippedJournal,
		"corrupt-crc-snapshot": flippedSnap,
		"wrong-generation":     seedJournal(7),
		"absurd-length":        append([]byte("DPJ1"), 0xff, 0xff, 0xff, 0x7f, 0x01),
	}
	for name, data := range entries {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
