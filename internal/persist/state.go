package persist

import (
	"fmt"
	"slices"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// State is everything a node persists to rejoin warm: the newest
// routing epoch it resharded for, the object universe it knows beyond
// what its static configuration rebuilds (born objects in full
// fidelity, plus bare metadata that arrived via reshard or migration),
// its owned set when it is a cluster shard, and the resident set its
// policy should re-adopt.
//
// Residency is a warmth hint, not a durability contract: recovery
// re-validates every resident against current ownership and re-offers
// it to a freshly built policy through core.Warmable, which adopts
// only what fits. A stale or slightly wrong resident set therefore
// costs warmth, never correctness — which is what lets journal replay
// treat admissions and evictions as idempotent set operations.
type State struct {
	// Epoch is the newest reshard epoch the state was valid for; a
	// restarted shard resumes rejecting superseded reshard frames from
	// here.
	Epoch int
	// Universe holds object metadata the node cannot rebuild from its
	// static configuration: born objects plus reshard/migration
	// arrivals. Base-partition objects need not appear (they are
	// derived from the survey seed), but including them is harmless —
	// recovery merges by ID.
	Universe []model.Object
	// Births are the adopted object births in publication order, full
	// fidelity (sky position and publication time), so a resolver or a
	// repository catalog can replay them through AddObject.
	Births []model.Birth
	// Owned is the owned object set, nil when the node owns everything
	// (standalone cache or repository).
	Owned []model.ObjectID
	// Resident is the resident set at snapshot time.
	Resident []model.ObjectID

	// generation is the snapshot generation this state was decoded
	// from; Recover uses it to pair the journal with its snapshot.
	generation uint64
}

// Clone returns a deep copy (recovery hands the state to callers that
// mutate it while the store keeps its own copy for compaction).
func (st *State) Clone() *State {
	if st == nil {
		return nil
	}
	return &State{
		Epoch:    st.Epoch,
		Universe: slices.Clone(st.Universe),
		Births:   slices.Clone(st.Births),
		Owned:    slices.Clone(st.Owned),
		Resident: slices.Clone(st.Resident),
	}
}

func encObject(e *enc, o *model.Object) {
	e.varint(int64(o.ID))
	e.varint(int64(o.Size))
	e.uvarint(o.Trixel)
}

func decObject(d *dec) model.Object {
	return model.Object{
		ID:     model.ObjectID(d.varint()),
		Size:   cost.Bytes(d.varint()),
		Trixel: d.uvarint(),
	}
}

func encBirth(e *enc, b *model.Birth) {
	encObject(e, &b.Object)
	e.f64(b.RA)
	e.f64(b.Dec)
	e.varint(int64(b.Time))
}

func decBirth(d *dec) model.Birth {
	return model.Birth{
		Object: decObject(d),
		RA:     d.f64(),
		Dec:    d.f64(),
		Time:   time.Duration(d.varint()),
	}
}

func encIDs(e *enc, ids []model.ObjectID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.varint(int64(id))
	}
}

func decIDs(d *dec) []model.ObjectID {
	n := d.length(1)
	if n == 0 {
		return nil
	}
	ids := make([]model.ObjectID, n)
	for i := range ids {
		ids[i] = model.ObjectID(d.varint())
	}
	return ids
}

// encodeState renders a State as a recSnapshot payload.
func encodeState(st *State) []byte {
	e := &enc{b: make([]byte, 0, 64+16*(len(st.Universe)+len(st.Births))+8*(len(st.Owned)+len(st.Resident)))}
	e.uvarint(uint64(st.Epoch))
	e.uvarint(uint64(len(st.Universe)))
	for i := range st.Universe {
		encObject(e, &st.Universe[i])
	}
	e.uvarint(uint64(len(st.Births)))
	for i := range st.Births {
		encBirth(e, &st.Births[i])
	}
	e.boolean(st.Owned != nil)
	encIDs(e, st.Owned)
	encIDs(e, st.Resident)
	return e.b
}

// decodeState parses a recSnapshot payload.
func decodeState(payload []byte) (*State, error) {
	d := &dec{b: payload}
	st := &State{Epoch: int(d.uvarint())}
	if n := d.length(3); n > 0 {
		st.Universe = make([]model.Object, n)
		for i := range st.Universe {
			st.Universe[i] = decObject(d)
		}
	}
	if n := d.length(19); n > 0 {
		st.Births = make([]model.Birth, n)
		for i := range st.Births {
			st.Births[i] = decBirth(d)
		}
	}
	hasOwned := d.boolean()
	owned := decIDs(d)
	if hasOwned {
		if owned == nil {
			owned = []model.ObjectID{}
		}
		st.Owned = owned
	}
	st.Resident = decIDs(d)
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// apply folds one journal record into the state. Admissions and
// evictions are idempotent set operations and births dedup by ID (see
// the State doc for why that tolerance is sound here).
func (st *State) apply(typ byte, payload []byte) error {
	d := &dec{b: payload}
	switch typ {
	case recBirth:
		b := decBirth(d)
		if d.err != nil {
			return d.err
		}
		for _, known := range st.Births {
			if known.Object.ID == b.Object.ID {
				return nil
			}
		}
		st.Births = append(st.Births, b)
		if !slices.ContainsFunc(st.Universe, func(o model.Object) bool { return o.ID == b.Object.ID }) {
			st.Universe = append(st.Universe, b.Object)
		}
		if st.Owned != nil && !slices.Contains(st.Owned, b.Object.ID) {
			st.Owned = append(st.Owned, b.Object.ID)
		}
	case recAdmit:
		id := model.ObjectID(d.varint())
		if d.err != nil {
			return d.err
		}
		if !slices.Contains(st.Resident, id) {
			st.Resident = append(st.Resident, id)
		}
	case recEvict:
		id := model.ObjectID(d.varint())
		if d.err != nil {
			return d.err
		}
		if i := slices.Index(st.Resident, id); i >= 0 {
			st.Resident = slices.Delete(st.Resident, i, i+1)
		}
	default:
		// An unknown record type is indistinguishable from corruption;
		// treat it as the end of the clean prefix.
		return fmt.Errorf("persist: unknown journal record type %d", typ)
	}
	return nil
}
