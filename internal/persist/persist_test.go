package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func testState() *State {
	return &State{
		Epoch: 3,
		Universe: []model.Object{
			{ID: 1, Size: cost.GB, Trixel: 40},
			{ID: 69, Size: 2 * cost.GB, Trixel: 41},
		},
		Births: []model.Birth{
			{Object: model.Object{ID: 69, Size: 2 * cost.GB, Trixel: 41}, RA: 182.5, Dec: -1.25, Time: time.Hour},
		},
		Owned:    []model.ObjectID{1, 69},
		Resident: []model.ObjectID{69},
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if st, err := s.Recover(); err != nil || st != nil {
		t.Fatalf("fresh store recovered (%+v, %v), want nil, nil", st, err)
	}
	want := testState()
	if err := s.WriteSnapshot(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	got, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no state recovered")
	}
	assertState(t, got, want)
}

func assertState(t *testing.T, got, want *State) {
	t.Helper()
	if got.Epoch != want.Epoch {
		t.Errorf("epoch %d, want %d", got.Epoch, want.Epoch)
	}
	if len(got.Universe) != len(want.Universe) {
		t.Fatalf("universe %v, want %v", got.Universe, want.Universe)
	}
	for i := range want.Universe {
		if got.Universe[i] != want.Universe[i] {
			t.Errorf("universe[%d] = %+v, want %+v", i, got.Universe[i], want.Universe[i])
		}
	}
	if len(got.Births) != len(want.Births) {
		t.Fatalf("births %v, want %v", got.Births, want.Births)
	}
	for i := range want.Births {
		if got.Births[i] != want.Births[i] {
			t.Errorf("births[%d] = %+v, want %+v", i, got.Births[i], want.Births[i])
		}
	}
	if (got.Owned == nil) != (want.Owned == nil) {
		t.Errorf("owned nil-ness %v, want %v", got.Owned == nil, want.Owned == nil)
	}
	assertIDs(t, "owned", got.Owned, want.Owned)
	assertIDs(t, "resident", got.Resident, want.Resident)
}

func assertIDs(t *testing.T, what string, got, want []model.ObjectID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestNilOwnedRoundTrips pins the standalone-node shape: a nil owned
// set (owns everything) must not come back as an empty one.
func TestNilOwnedRoundTrips(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	st := testState()
	st.Owned = nil
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	got, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got.Owned != nil {
		t.Errorf("owned = %v, want nil", got.Owned)
	}
}

func TestJournalReplayOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testState()); err != nil {
		t.Fatal(err)
	}
	newborn := model.Birth{Object: model.Object{ID: 70, Size: cost.MB, Trixel: 42}, RA: 10, Dec: 20, Time: 2 * time.Hour}
	if err := s.AppendBirth(newborn); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAdmit(70); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAdmit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict(69); err != nil {
		t.Fatal(err)
	}
	if got := s.JournalRecords(); got != 4 {
		t.Errorf("JournalRecords = %d, want 4", got)
	}
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	got, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := testState()
	want.Universe = append(want.Universe, newborn.Object)
	want.Births = append(want.Births, newborn)
	want.Owned = append(want.Owned, 70)
	want.Resident = []model.ObjectID{70, 1}
	assertState(t, got, want)
}

// TestTruncatedTailRecovers pins the crash-mid-append contract: a
// journal cut anywhere keeps its clean prefix and never errors the
// recovery.
func TestTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(&State{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	for id := model.ObjectID(1); id <= 10; id++ {
		if err := s.AppendAdmit(id); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(raw) - 1; cut > 0; cut -= 3 {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir)
		st, err := s2.Recover()
		s2.Close()
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if st == nil {
			t.Fatalf("cut at %d: no state", cut)
		}
		if len(st.Resident) > 10 {
			t.Fatalf("cut at %d: %d residents from 10 appends", cut, len(st.Resident))
		}
		// The clean prefix must be exactly the residents 1..k.
		for i, id := range st.Resident {
			if id != model.ObjectID(i+1) {
				t.Fatalf("cut at %d: resident[%d] = %d", cut, i, id)
			}
		}
	}
}

// TestBitFlippedTailRecovers pins CRC protection: flipping any byte of
// the journal drops that record (and the records after it) but never
// panics or corrupts the prefix before it.
func TestBitFlippedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(&State{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	for id := model.ObjectID(1); id <= 8; id++ {
		if err := s.AppendAdmit(id); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := len(journalMagic); pos < len(raw); pos += 5 {
		flipped := bytes.Clone(raw)
		flipped[pos] ^= 0x55
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir)
		st, err := s2.Recover()
		s2.Close()
		if err != nil && st == nil {
			// A flip inside the header region may invalidate the whole
			// journal; the snapshot must still recover on its own.
			continue
		}
		if st == nil {
			t.Fatalf("flip at %d: no state and no error", pos)
		}
		for i, id := range st.Resident {
			if id != model.ObjectID(i+1) {
				t.Fatalf("flip at %d: resident[%d] = %d (prefix corrupted)", pos, i, id)
			}
		}
	}
}

// TestStaleGenerationJournalIgnored pins the crash window between
// snapshot rename and journal reset: a journal from the previous
// generation must be ignored, not replayed onto the newer snapshot.
func TestStaleGenerationJournalIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(&State{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAdmit(5); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Keep the generation-1 journal, then land a generation-2 snapshot
	// as if the crash hit after rename but before journal reset.
	staleJournal, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteSnapshot(&State{Epoch: 2, Resident: []model.ObjectID{9}}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := os.WriteFile(filepath.Join(dir, journalFile), staleJournal, 0o644); err != nil {
		t.Fatal(err)
	}

	s3 := openStore(t, dir)
	defer s3.Close()
	st, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Errorf("epoch %d, want 2", st.Epoch)
	}
	assertIDs(t, "resident", st.Resident, []model.ObjectID{9})
}

// TestTempSnapshotLeftoverIgnored pins atomic replacement: a temp file
// left by a crash mid-write never shadows the real snapshot.
func TestTempSnapshotLeftoverIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(&State{Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	tmp := filepath.Join(dir, snapshotFile+tempSuffix)
	if err := os.WriteFile(tmp, []byte("torn half-written snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	st, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Epoch != 7 {
		t.Fatalf("recovered %+v, want epoch 7", st)
	}
}

// TestCorruptSnapshotErrors pins the asymmetry with the journal: a
// snapshot failing its CRC is an error, not a silent cold start.
func TestCorruptSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testState()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0x55
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	if _, err := s2.Recover(); err == nil {
		t.Fatal("corrupt snapshot recovered without error")
	}
}

// TestSnapshotAgeAndCounters sanity-checks the observability hooks.
func TestSnapshotAgeAndCounters(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.WriteSnapshot(&State{}); err != nil {
		t.Fatal(err)
	}
	if age := s.SnapshotAge(); age < 0 || age > time.Minute {
		t.Errorf("SnapshotAge = %v", age)
	}
	if err := s.AppendAdmit(1); err != nil {
		t.Fatal(err)
	}
	if got := s.JournalRecords(); got != 1 {
		t.Errorf("JournalRecords = %d, want 1", got)
	}
}
