// Package persist is the durability layer under a Delta node: a
// snapshot file holding the node's warm state (resident set, owned
// universe metadata, born objects, reshard epoch) plus an append-only
// journal recording the births and admission/eviction decisions made
// since that snapshot. Together they let a restarted node rejoin the
// deployment warm — the policy is rebuilt over the persisted universe
// and re-adopts its residents through the same core.Warmable boundary
// a live reshard uses — instead of paying the full warmup the caching
// policies exist to avoid.
//
// File formats follow the v3 wire codec conventions (no gob): each
// record is a little-endian uint32 length prefix over a one-byte
// record type plus a varint-encoded payload, followed by a
// little-endian uint32 CRC-32C over the type and payload. Snapshots
// are replaced atomically (write temp, fsync, rename, fsync dir);
// the journal is append-only with batched fsyncs and tolerates a
// truncated or corrupt tail, so a crash mid-write never loses more
// than the records after the last clean one. A generation counter
// links the journal to the snapshot it extends: a crash between
// snapshot rename and journal reset leaves a stale-generation journal
// that replay ignores instead of misapplying. docs/PERSISTENCE.md
// specifies the formats and the recovery semantics in full.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record types. The zero value is invalid so a zero-filled tail never
// parses as a record.
const (
	// recHeader opens a journal: payload is the uvarint generation of
	// the snapshot this journal extends.
	recHeader byte = iota + 1
	// recSnapshot is a snapshot file's single state record.
	recSnapshot
	// recBirth journals one adopted object birth (full fidelity:
	// metadata plus sky position and publication time).
	recBirth
	// recAdmit journals one object admitted to the resident set.
	recAdmit
	// recEvict journals one object evicted from the resident set.
	recEvict
)

// Magic prefixes distinguish the two files (and their format version).
var (
	snapshotMagic = []byte("DPS1")
	journalMagic  = []byte("DPJ1")
)

// maxRecord bounds a single record so a corrupt length prefix cannot
// trigger an unbounded read; 64 MiB is far above any real snapshot of
// a paper-scale universe.
const maxRecord = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on the
// platforms that matter).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// enc is an append-only encode cursor mirroring the v3 wire codec's
// scalar conventions: uvarints for unsigned, zigzag varints for signed
// (including durations and cost.Bytes), raw little-endian float64s.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte)        { e.b = append(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64)    { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is a bounds-checked decode cursor with a sticky error: every
// getter reports truncation or corruption through err instead of
// panicking, and slice lengths are validated against the bytes
// actually remaining before any allocation — the same contract the
// wire codec's fuzzers pin, here pinned by FuzzJournalReplay.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: truncated or corrupt %s", what)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) boolean() bool { return d.u8() != 0 }

// length decodes a slice length and validates it against the remaining
// bytes at minSize encoded bytes per element.
func (d *dec) length(minSize int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(d.b)/minSize) {
		d.fail("slice length")
		return 0
	}
	return int(n)
}

// frameRecord renders one record (length prefix, type, payload, CRC)
// onto dst and returns the extended slice.
func frameRecord(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(payload)))
	start := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// readRecord parses one record from b, returning the record type, its
// payload (aliasing b), and the remaining bytes. Any truncation,
// absurd length, or CRC mismatch returns an error — the caller decides
// whether that terminates a replay cleanly (journal tail) or fails a
// load (snapshot body).
func readRecord(b []byte) (typ byte, payload, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, b, fmt.Errorf("persist: truncated record length")
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > maxRecord {
		return 0, nil, b, fmt.Errorf("persist: corrupt record length %d", n)
	}
	if uint32(len(b)-4) < n+4 {
		return 0, nil, b, fmt.Errorf("persist: truncated record body")
	}
	body := b[4 : 4+n]
	want := binary.LittleEndian.Uint32(b[4+n:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, b, fmt.Errorf("persist: record CRC mismatch (got %08x want %08x)", got, want)
	}
	return body[0], body[1:], b[8+n:], nil
}
