package cluster_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// startResizableCluster spins up repository + N VCover shards sized to
// hold their owned subsets, and warms every object into its owner (a
// query whose cost covers the object's load cost makes VCover load
// it).
func startResizableCluster(t *testing.T, shards int) (*catalog.Survey, *cluster.LocalCluster) {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 32
	scfg.TotalSize = 32 * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   shards,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })

	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, o := range survey.Objects() {
		if _, err := cl.Query(ctx, model.Query{
			Objects:   []model.ObjectID{o.ID},
			Cost:      o.Size,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		}); err != nil {
			t.Fatalf("warmup query for object %d: %v", o.ID, err)
		}
	}
	return survey, lc
}

// sweepHitRate queries every object once and returns the fraction
// answered from cache. The probe cost is tiny so VCover never decides
// to (re)load on its account — the sweep observes residency, it does
// not create it.
func sweepHitRate(t *testing.T, survey *catalog.Survey, addr string) float64 {
	t.Helper()
	cl, err := client.DialCluster(addr, client.WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	hits := 0
	objects := survey.Objects()
	for _, o := range objects {
		res, err := cl.Query(ctx, model.Query{
			Objects:   []model.ObjectID{o.ID},
			Cost:      cost.KB,
			Tolerance: model.AnyStaleness,
			Time:      time.Minute,
		})
		if err != nil {
			t.Fatalf("sweep query for object %d: %v", o.ID, err)
		}
		if res.Source == "cache" {
			hits++
		}
	}
	return float64(hits) / float64(len(objects))
}

// TestResizeLiveTraffic is the acceptance test for live elastic
// resharding: 4→8 and back 8→4 while 16 concurrent clients query
// continuously. Zero queries may fail; degraded answers are allowed
// only during the transition windows; and the post-resize hit rate
// must stay within 10% of the pre-resize one (warm migration).
func TestResizeLiveTraffic(t *testing.T) {
	survey, lc := startResizableCluster(t, 4)
	objects := survey.Objects()

	preHit := sweepHitRate(t, survey, lc.Router.Addr())
	if preHit < 0.99 {
		t.Fatalf("warmup left hit rate at %.2f, want ~1", preHit)
	}

	const nClients = 16
	var (
		stop            atomic.Bool
		inWindow        atomic.Bool
		queries         atomic.Int64
		failures        atomic.Int64
		degradedIn      atomic.Int64
		degradedOutside atomic.Int64
		errOnce         sync.Once
		firstErr        error
		wg              sync.WaitGroup
	)
	for c := 0; c < nClients; c++ {
		cl, err := client.DialCluster(lc.Router.Addr(), client.WithRequestTimeout(10*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(c int, cl *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; !stop.Load(); i++ {
				windowBefore := inWindow.Load()
				o := objects[rng.Intn(len(objects))]
				res, err := cl.Query(ctx, model.Query{
					Objects:   []model.ObjectID{o.ID},
					Cost:      cost.KB,
					Tolerance: model.AnyStaleness,
					Time:      time.Minute + time.Duration(i)*time.Millisecond,
				})
				windowAfter := inWindow.Load()
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					errOnce.Do(func() { firstErr = err })
					continue
				}
				if res.Degraded {
					if windowBefore || windowAfter {
						degradedIn.Add(1)
					} else {
						degradedOutside.Add(1)
					}
				}
			}
		}(c, cl)
	}

	settle := func() { time.Sleep(100 * time.Millisecond) }
	settle()

	// Grow 4→8, live.
	inWindow.Store(true)
	st, err := lc.Resize(ctx, 8, false)
	if err != nil {
		t.Fatalf("resize 4→8: %v", err)
	}
	settle()
	inWindow.Store(false)
	if st.Phase != "done" || st.Epoch != 1 || st.From != 4 || st.To != 8 {
		t.Errorf("resize status = %+v", st)
	}
	if st.MovedObjects == 0 {
		t.Error("grow 4→8 migrated nothing; expected warm state transfer")
	}
	if got := len(lc.Router.Topology().Shards); got != 8 {
		t.Errorf("topology has %d shards after grow, want 8", got)
	}
	settle()

	// Shrink 8→4, live.
	inWindow.Store(true)
	st, err = lc.Resize(ctx, 4, false)
	if err != nil {
		t.Fatalf("resize 8→4: %v", err)
	}
	settle()
	inWindow.Store(false)
	if st.Epoch != 2 || st.From != 8 || st.To != 4 {
		t.Errorf("shrink status = %+v", st)
	}
	if st.MovedObjects == 0 {
		t.Error("shrink 8→4 migrated nothing; expected warm state transfer")
	}
	settle()

	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Errorf("%d of %d queries failed during live resizes; first: %v",
			n, queries.Load(), firstErr)
	}
	if n := degradedOutside.Load(); n != 0 {
		t.Errorf("%d degraded answers outside the transition windows", n)
	}
	if queries.Load() < 100 {
		t.Errorf("only %d queries ran; the traffic never overlapped the resizes", queries.Load())
	}

	postHit := sweepHitRate(t, survey, lc.Router.Addr())
	if postHit < preHit*0.9 {
		t.Errorf("hit rate after resizes = %.2f, want within 10%% of pre-resize %.2f", postHit, preHit)
	}
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.MigratedIn == 0 || cs.Aggregate.MigratedOut == 0 {
		t.Errorf("migration counters in=%d out=%d; warm moves should be visible in stats",
			cs.Aggregate.MigratedIn, cs.Aggregate.MigratedOut)
	}
}

// TestResizeColdBaselineLosesWarmth pins the difference warm migration
// makes: a resize with migration skipped flips routing correctly but
// the moved objects arrive cold, so the post-resize hit rate drops by
// roughly the moving fraction.
func TestResizeColdBaselineLosesWarmth(t *testing.T) {
	survey, lc := startResizableCluster(t, 4)

	old := lc.Ownership
	st, err := lc.Resize(ctx, 8, true /* skip migration */)
	if err != nil {
		t.Fatalf("cold resize: %v", err)
	}
	if st.MovedObjects != 0 {
		t.Errorf("cold resize reports %d moved objects", st.MovedObjects)
	}
	moving, err := cluster.Moving(old, lc.Ownership)
	if err != nil {
		t.Fatal(err)
	}
	if len(moving) == 0 {
		t.Fatal("4→8 moved nothing; test needs a real ownership diff")
	}

	hit := sweepHitRate(t, survey, lc.Router.Addr())
	expected := 1 - float64(len(moving))/float64(len(survey.Objects()))
	if hit > expected+0.05 {
		t.Errorf("cold resize hit rate %.2f; moved objects (%d/%d) should have been cold (expected ≈%.2f)",
			hit, len(moving), len(survey.Objects()), expected)
	}
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.MigratedIn != 0 {
		t.Errorf("cold resize imported %d objects", cs.Aggregate.MigratedIn)
	}
}

// TestResizeAdminFrames drives a resize through the wire protocol the
// way an operator would: client.Resize against the router, then
// client.RebalanceStatus.
func TestResizeAdminFrames(t *testing.T) {
	survey, lc := startResizableCluster(t, 2)
	_ = survey

	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Grow 2→4 over the wire: spawn the two extra shards first, as an
	// operator would, then hand the router the full address list.
	// LocalCluster.Resize does exactly that; here we need the admin
	// frame path, so grow via a second LocalCluster-spawned pair is
	// not available — instead resize down 2→1, which needs no new
	// processes.
	addrs := []string{lc.Shards[0].Addr()}
	st, err := cl.Resize(ctx, addrs)
	if err != nil {
		t.Fatalf("admin resize: %v", err)
	}
	if st.Phase != "done" || st.To != 1 {
		t.Errorf("admin resize status = %+v", st)
	}
	if st.MovedObjects == 0 {
		t.Error("admin resize migrated nothing")
	}
	got, err := cl.RebalanceStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != 1 || got.Active {
		t.Errorf("rebalance status after resize = %+v", got)
	}
	// The routing table now fronts one shard; every object answers.
	hit := sweepHitRate(t, survey, lc.Router.Addr())
	if hit < 0.99 {
		t.Errorf("hit rate after 2→1 admin resize = %.2f, want ~1 (all state migrated to the survivor)", hit)
	}
}

// TestRouterCloseDuringInflightScatter is the regression test for
// Router.Close racing live scatters: closing the router while
// fragments dwell on slow shards must fail the pending queries
// promptly (not hang them) and leak no goroutines.
func TestRouterCloseDuringInflightScatter(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   3,
		Policy:   func(int) core.Policy { return core.NewReplica() },
		Scale:    netproto.PayloadScale{},
		// Each shard dwells 100ms per query under its serial execution
		// lock, so the scatters below are reliably in flight at Close.
		ExecDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	baseline := runtime.NumGoroutine()

	router := lc.Router
	const nQueries = 16
	var spanning []model.ObjectID
	for s := 0; s < lc.Ownership.Shards(); s++ {
		spanning = append(spanning, lc.Ownership.ShardObjects(s)[0])
	}
	clients := make([]*client.Client, nQueries)
	for i := range clients {
		cl, err := client.DialCluster(router.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			// Errors are expected once the router closes; what matters
			// is that every call returns.
			cl.Query(ctx, model.Query{
				Objects:   spanning,
				Cost:      3 * cost.MB,
				Tolerance: model.AnyStaleness,
				Time:      time.Duration(i) * time.Millisecond,
			})
		}(i, cl)
	}
	go func() { wg.Wait(); close(done) }()

	time.Sleep(30 * time.Millisecond) // let the scatters reach the shards
	if err := router.Close(); err != nil {
		t.Logf("router close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queries still pending 5s after Router.Close; in-flight scatters must fail promptly")
	}
	for _, cl := range clients {
		cl.Close()
	}

	// Goroutine accounting: everything the router and the clients
	// spawned must unwind (shard servers keep their own).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Router.Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
