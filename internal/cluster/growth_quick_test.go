package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// checkPartition verifies the core ownership invariant at any
// replication factor: every universe object has a ranked replica set of
// exactly min(K, shards) distinct shards in [0, shards), rank 0 agrees
// with the primary owner map, and the per-shard held lists mirror the
// replica sets exactly (sorted, no duplicates, no strays). At K=1 this
// reduces to the original single-owner partition invariant.
func checkPartition(o *Ownership) error {
	if len(o.owner) != len(o.universe) {
		return fmt.Errorf("owner map spans %d objects, universe %d", len(o.owner), len(o.universe))
	}
	wantK := min(o.replicas, o.shards)
	holders := make(map[model.ObjectID]map[int]bool, len(o.owner))
	for s, objs := range o.byShard {
		for i, id := range objs {
			if i > 0 && objs[i-1] >= id {
				return fmt.Errorf("shard %d held list unsorted or duplicated around object %d", s, id)
			}
			if _, ok := o.pos(id); !ok {
				return fmt.Errorf("shard %d holds object %d outside the universe", s, id)
			}
			if holders[id] == nil {
				holders[id] = make(map[int]bool, wantK)
			}
			holders[id][s] = true
		}
	}
	for _, u := range o.universe {
		ranked, ok := o.Owners(u.ID)
		if !ok {
			return fmt.Errorf("universe object %d has no replica set", u.ID)
		}
		if len(ranked) != wantK {
			return fmt.Errorf("object %d has %d replicas, want min(K=%d, shards=%d)=%d",
				u.ID, len(ranked), o.replicas, o.shards, wantK)
		}
		if primary, _ := o.Owner(u.ID); ranked[0] != primary {
			return fmt.Errorf("object %d rank-0 replica %d disagrees with primary %d",
				u.ID, ranked[0], primary)
		}
		distinct := make(map[int]bool, wantK)
		for _, s := range ranked {
			if s < 0 || s >= o.shards {
				return fmt.Errorf("object %d replicated on out-of-range shard %d", u.ID, s)
			}
			if distinct[s] {
				return fmt.Errorf("object %d replica set repeats shard %d", u.ID, s)
			}
			distinct[s] = true
		}
		held := holders[u.ID]
		if len(held) != wantK {
			return fmt.Errorf("object %d held by %d shards, replica set has %d", u.ID, len(held), wantK)
		}
		for s := range distinct {
			if !held[s] {
				return fmt.Errorf("object %d assigned to shard %d but absent from its held list", u.ID, s)
			}
		}
	}
	return nil
}

// growthOp is one step of a random growth/resize schedule.
type growthOp struct {
	// Births is how many objects to publish before the resize (0-3).
	Births uint8
	// Shards is the resize target (mapped into a sane range); 0 means
	// no resize this step.
	Shards uint8
	// Trixel seeds the born objects' spatial placement.
	Trixel uint64
	// Size seeds the born objects' size.
	Size uint16
}

// TestQuickGrowthResizeSingleOwner is the satellite property test:
// across any growth sequence and any interleaved Resize, each live
// object is owned by exactly one shard per epoch, in both ownership
// modes — and extension is deterministic, so every party that replays
// the same schedule computes the identical map.
func TestQuickGrowthResizeSingleOwner(t *testing.T) {
	base := testObjects(t, 16)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		prop := func(startShards uint8, ops []growthOp) bool {
			n := int(startShards)%6 + 1
			own, err := NewOwnership(base, n, mode)
			if err != nil {
				t.Logf("new ownership: %v", err)
				return false
			}
			replay, _ := NewOwnership(base, n, mode)
			nextID := model.ObjectID(len(base) + 1)
			if len(ops) > 24 {
				ops = ops[:24]
			}
			for _, op := range ops {
				var objs []model.Object
				for i := 0; i < int(op.Births)%4; i++ {
					objs = append(objs, model.Object{
						ID:     nextID,
						Size:   cost.Bytes(int64(op.Size)%(1<<20) + 1),
						Trixel: op.Trixel % 4096,
					})
					nextID++
				}
				if own, err = own.Extend(objs); err != nil {
					t.Logf("extend: %v", err)
					return false
				}
				if replay, err = replay.Extend(objs); err != nil {
					return false
				}
				if err := checkPartition(own); err != nil {
					t.Logf("after extend: %v", err)
					return false
				}
				if m := int(op.Shards) % 8; m > 0 {
					if own, err = own.Resize(m); err != nil {
						t.Logf("resize to %d: %v", m, err)
						return false
					}
					if replay, err = replay.Resize(m); err != nil {
						return false
					}
					if err := checkPartition(own); err != nil {
						t.Logf("after resize to %d: %v", m, err)
						return false
					}
				}
				// Determinism: the replayed schedule computes the same map.
				for p := range own.universe {
					id := own.universe[p].ID
					rs, ok := replay.Owner(id)
					if !ok || rs != int(own.owner[p]) {
						t.Logf("replay diverged on object %d: %d vs %d", id, own.owner[p], rs)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

// TestQuickExtendNeverMovesExisting pins the "no relabeling" half of
// the growth design: extending the universe must not change any
// existing object's owner, in either mode.
func TestQuickExtendNeverMovesExisting(t *testing.T) {
	base := testObjects(t, 16)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		prop := func(shards uint8, trixels []uint64) bool {
			n := int(shards)%6 + 2
			own, err := NewOwnership(base, n, mode)
			if err != nil {
				return false
			}
			if len(trixels) > 16 {
				trixels = trixels[:16]
			}
			nextID := model.ObjectID(len(base) + 1)
			for _, tx := range trixels {
				before := make(map[model.ObjectID]int, len(own.owner))
				for p := range own.universe {
					before[own.universe[p].ID] = int(own.owner[p])
				}
				own, err = own.Extend([]model.Object{{ID: nextID, Size: cost.MB, Trixel: tx % 4096}})
				if err != nil {
					return false
				}
				nextID++
				for id, s := range before {
					if got, _ := own.Owner(id); got != s {
						t.Logf("%s: object %d moved %d→%d on extension", mode, id, s, got)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

// TestQuickFragmentSharesSumToNu is the other satellite property:
// however a query's objects spread across shards — through any grown,
// resized ownership — the fragment cost shares the router assigns sum
// exactly to ν(q), so cluster-wide traffic accounting stays exact.
func TestQuickFragmentSharesSumToNu(t *testing.T) {
	base := testObjects(t, 16)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		prop := func(shards uint8, births uint8, nu uint32, picks []uint16) bool {
			n := int(shards)%6 + 1
			own, err := NewOwnership(base, n, mode)
			if err != nil {
				return false
			}
			var objs []model.Object
			for i := 0; i < int(births)%24; i++ {
				objs = append(objs, model.Object{
					ID:     model.ObjectID(len(base) + i + 1),
					Size:   cost.MB,
					Trixel: uint64(i) * 97 % 4096,
				})
			}
			if own, err = own.Extend(objs); err != nil {
				return false
			}
			universe := own.Universe()
			if len(picks) == 0 {
				picks = []uint16{0}
			}
			if len(picks) > 12 {
				picks = picks[:12]
			}
			seen := make(map[model.ObjectID]struct{})
			var ids []model.ObjectID
			for _, p := range picks {
				id := universe[int(p)%len(universe)].ID
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
			q := &model.Query{ID: 1, Objects: ids, Cost: cost.Bytes(nu)}
			parts, err := own.Split(ids)
			if err != nil {
				t.Logf("split: %v", err)
				return false
			}
			links := make([]*shardLink, own.Shards())
			for i := range links {
				links[i] = &shardLink{index: i}
			}
			frags := fragmentsFor(&routing{own: own, links: links}, q, parts)
			var sum cost.Bytes
			covered := make(map[model.ObjectID]struct{})
			for _, fr := range frags {
				sum += fr.query.Cost
				for _, id := range fr.query.Objects {
					if _, dup := covered[id]; dup {
						t.Logf("object %d in two fragments", id)
						return false
					}
					covered[id] = struct{}{}
				}
			}
			if sum != q.Cost {
				t.Logf("shares sum %d, ν(q) %d", sum, q.Cost)
				return false
			}
			if len(covered) != len(ids) {
				t.Logf("fragments cover %d of %d objects", len(covered), len(ids))
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

// TestQuickReplicatedGrowthResize is the replication property test:
// across any growth sequence and any interleaved Resize, at any
// replication factor K ∈ 1..3 and in both ownership modes, every live
// object keeps exactly min(K, shards) distinct ranked owners per epoch
// — Extend and Resize preserve K, never duplicate a replica, and keep
// the per-shard held lists consistent with the replica sets.
func TestQuickReplicatedGrowthResize(t *testing.T) {
	base := testObjects(t, 16)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		prop := func(startShards, k uint8, ops []growthOp) bool {
			n := int(startShards)%6 + 1
			kk := int(k)%3 + 1
			own, err := NewOwnershipReplicated(base, n, kk, mode)
			if err != nil {
				t.Logf("new ownership: %v", err)
				return false
			}
			if err := checkPartition(own); err != nil {
				t.Logf("K=%d initial: %v", kk, err)
				return false
			}
			nextID := model.ObjectID(len(base) + 1)
			if len(ops) > 16 {
				ops = ops[:16]
			}
			for _, op := range ops {
				var objs []model.Object
				for i := 0; i < int(op.Births)%4; i++ {
					objs = append(objs, model.Object{
						ID:     nextID,
						Size:   cost.Bytes(int64(op.Size)%(1<<20) + 1),
						Trixel: op.Trixel % 4096,
					})
					nextID++
				}
				if own, err = own.Extend(objs); err != nil {
					t.Logf("extend: %v", err)
					return false
				}
				if own.Replicas() != kk {
					t.Logf("extend changed K: %d → %d", kk, own.Replicas())
					return false
				}
				if err := checkPartition(own); err != nil {
					t.Logf("K=%d after extend: %v", kk, err)
					return false
				}
				if m := int(op.Shards) % 8; m > 0 {
					if own, err = own.Resize(m); err != nil {
						t.Logf("resize to %d: %v", m, err)
						return false
					}
					if own.Replicas() != kk {
						t.Logf("resize changed K: %d → %d", kk, own.Replicas())
						return false
					}
					if err := checkPartition(own); err != nil {
						t.Logf("K=%d after resize to %d: %v", kk, m, err)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

// TestQuickFailoverSharesSumToNu extends the cost-share property to
// shard failure under replication: kill any one shard, re-route its
// fragments through the ranked replica sets exactly as the router does
// (rerouteTargets + the proportional split scatterGroups applies), and
// the cost shares across surviving fragments and failover sub-fragments
// still sum exactly to ν(q), with every object answered exactly once.
func TestQuickFailoverSharesSumToNu(t *testing.T) {
	base := testObjects(t, 16)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		prop := func(shards, dead uint8, nu uint32, picks []uint16) bool {
			n := int(shards)%5 + 2 // ≥ 2 so a replica survives the kill
			own, err := NewOwnershipReplicated(base, n, 2, mode)
			if err != nil {
				return false
			}
			links := make([]*shardLink, n)
			for i := range links {
				links[i] = &shardLink{index: i, addr: fmt.Sprintf("shard-%d", i)}
			}
			rt := &routing{own: own, links: links}
			universe := own.Universe()
			if len(picks) == 0 {
				picks = []uint16{0}
			}
			if len(picks) > 12 {
				picks = picks[:12]
			}
			seen := make(map[model.ObjectID]struct{})
			var ids []model.ObjectID
			for _, p := range picks {
				id := universe[int(p)%len(universe)].ID
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
			q := &model.Query{ID: 1, Objects: ids, Cost: cost.Bytes(nu)}
			parts, err := own.Split(ids)
			if err != nil {
				return false
			}
			deadShard := int(dead) % n
			var (
				sum     cost.Bytes
				covered = make(map[model.ObjectID]struct{})
			)
			answer := func(ids []model.ObjectID) bool {
				for _, id := range ids {
					if _, dup := covered[id]; dup {
						t.Logf("object %d answered twice", id)
						return false
					}
					covered[id] = struct{}{}
				}
				return true
			}
			for _, fr := range fragmentsFor(rt, q, parts) {
				if fr.link.index != deadShard {
					sum += fr.query.Cost
					if !answer(fr.query.Objects) {
						return false
					}
					continue
				}
				// The dead shard's fragment fails over: group objects by
				// their surviving replica and split ν proportionally, the
				// rounding remainder charged to the first group — the exact
				// arithmetic scatterGroups performs.
				groups, stranded, viaReplica := rerouteTargets(rt, fr)
				if len(stranded) > 0 {
					t.Logf("K=2 stranded %d objects on single-shard death", len(stranded))
					return false
				}
				if !viaReplica {
					t.Logf("failover of shard %d's fragment touched no replica", deadShard)
					return false
				}
				targets := make([]*shardLink, 0, len(groups))
				var groupSum cost.Bytes
				for l, objs := range groups {
					if l.index == deadShard {
						t.Logf("failover re-targeted the dead shard %d", deadShard)
						return false
					}
					targets = append(targets, l)
					share := fr.query.Cost * cost.Bytes(len(objs)) / cost.Bytes(len(fr.query.Objects))
					groupSum += share
					if !answer(objs) {
						return false
					}
				}
				if len(targets) == 0 {
					return false
				}
				// The remainder scatterGroups charges to the first group is
				// the truncation loss of the proportional splits: it must be
				// a small non-negative correction (< one unit per group), not
				// a sign the shares drifted.
				remainder := fr.query.Cost - groupSum
				if remainder < 0 || remainder >= cost.Bytes(len(targets)) {
					t.Logf("failover remainder %d out of range for %d groups", remainder, len(targets))
					return false
				}
				sum += groupSum + remainder
			}
			if sum != q.Cost {
				t.Logf("shares sum %d under failover, ν(q) %d", sum, q.Cost)
				return false
			}
			if len(covered) != len(ids) {
				t.Logf("failover covered %d of %d objects", len(covered), len(ids))
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

// TestExtendHTMJoinsOwningCut pins the HTM placement rule: a birth
// inheriting an existing object's trixel is owned by that object's
// shard (it joins the cut that spatially contains it).
func TestExtendHTMJoinsOwningCut(t *testing.T) {
	base := testObjects(t, 24)
	own, err := NewOwnership(base, 4, HTMAware)
	if err != nil {
		t.Fatal(err)
	}
	for i, host := range []int{0, 7, 23} {
		b := model.Object{
			ID:     model.ObjectID(len(base) + i + 1),
			Size:   cost.MB,
			Trixel: base[host].Trixel,
		}
		grown, err := own.Extend([]model.Object{b})
		if err != nil {
			t.Fatal(err)
		}
		wantOwner, _ := own.Owner(base[host].ID)
		if got, _ := grown.Owner(b.ID); got != wantOwner {
			t.Errorf("birth sharing object %d's trixel owned by shard %d, want %d",
				base[host].ID, got, wantOwner)
		}
		own = grown
	}
}

// TestExtendRejectsKnownObject pins dedup responsibility: extension
// with an already-owned ID is a caller bug, not a silent overwrite.
func TestExtendRejectsKnownObject(t *testing.T) {
	base := testObjects(t, 16)
	own, err := NewOwnership(base, 2, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := own.Extend([]model.Object{base[3]}); err == nil {
		t.Fatal("extend with an existing object should fail")
	}
	if _, err := own.Extend(nil); err != nil {
		t.Fatalf("empty extension should be the identity: %v", err)
	}
}
