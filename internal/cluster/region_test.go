package cluster_test

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// TestRouterResolvesRegionQueries covers the router-side sky-region
// path: a client that knows only a sky cap (no object universe) sends
// region queries, the router resolves them to B(q) through its
// memoized cover cache, scatters as usual, and the repeated-region
// traffic shows up as cover-cache hits in the aggregate stats.
func TestRouterResolvesRegionQueries(t *testing.T) {
	survey, err := catalog.NewSurvey(growthSurveyConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   4,
		Mode:     cluster.HTMAware,
		Policy:   func(int) core.Policy { return core.NewReplica() },
		Scale:    netproto.PayloadScale{},
		Resolver: survey.CoverCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const ra, dec, radius = 180.0, 0.0, 12.0
	want := survey.CoverCap(geom.CapFromRADec(ra, dec, radius))
	if len(want) < 2 {
		t.Fatalf("test region covers %d objects; want a multi-object cap", len(want))
	}
	var totalLogical int64
	const repeats = 5
	for i := 0; i < repeats; i++ {
		res, err := cl.QueryRegion(ctx, ra, dec, radius, model.Query{
			Cost:      cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Duration(i+1) * time.Second,
		})
		if err != nil {
			t.Fatalf("region query %d: %v", i, err)
		}
		if res.Degraded {
			t.Fatalf("region query %d degraded on a healthy cluster", i)
		}
		totalLogical += res.Logical
	}
	// Fragment cost shares sum exactly to ν(q) per query.
	if totalLogical != repeats*int64(cost.MB) {
		t.Errorf("summed logical = %d, want %d", totalLogical, repeats*int64(cost.MB))
	}

	// The result rows must come from the covered objects only.
	res, err := cl.QueryRegion(ctx, ra, dec, radius, model.Query{
		Cost: cost.MB, Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		obj := survey.ObjectAt(geom.FromRADec(row.RA, row.Dec))
		if !slices.Contains(want, obj) {
			t.Errorf("row at (%v,%v) belongs to object %d outside the region cover", row.RA, row.Dec, obj)
		}
	}

	// Repeated identical regions hit the router's memoized cover cache;
	// the counters ride the cluster stats aggregate.
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.CoverCacheMisses < 1 {
		t.Errorf("cover-cache misses = %d, want ≥1", cs.Aggregate.CoverCacheMisses)
	}
	if cs.Aggregate.CoverCacheHits < repeats {
		t.Errorf("cover-cache hits = %d, want ≥%d (region repeated)", cs.Aggregate.CoverCacheHits, repeats)
	}

	// A region query against a router with no resolver fails cleanly.
	// (Growth is covered by TestRegionResolverLearnsBirths.)
	bare, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   2,
		Mode:     cluster.HTMAware,
		Policy:   func(int) core.Policy { return core.NewReplica() },
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	bareCl, err := client.DialCluster(bare.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bareCl.Close()
	if _, err := bareCl.QueryRegion(ctx, ra, dec, radius, model.Query{
		Cost: cost.MB, Tolerance: model.AnyStaleness, Time: time.Minute,
	}); err == nil {
		t.Error("region query succeeded against a router with no resolver")
	}
}

// TestRegionResolverLearnsBirths pins the resolver-growth contract:
// objects published after startup must join sky-region covers — the
// router's ResolverGrow extends the resolver survey with each adopted
// birth before the memoized covers are invalidated, so a region query
// over a newborn's position routes to it.
func TestRegionResolverLearnsBirths(t *testing.T) {
	const nBase = 16
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	// The router's resolver survey: a third mirror, fed exclusively by
	// the ResolverGrow hook, so the test observes exactly what the
	// router taught it.
	resolverSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   2,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
		Resolver: resolverSurvey.CoverCap,
		ResolverGrow: func(births []model.Birth) error {
			for _, b := range births {
				if err := resolverSurvey.AddObject(b); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	births, err := mirror.GrowObjects(rand.New(rand.NewSource(9)), 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cover cache on each newborn's position BEFORE the
	// births, so the test also proves the post-growth invalidation (a
	// stale memoized cover would otherwise keep excluding the newborn).
	for _, b := range births {
		if _, err := cl.QueryRegion(ctx, b.RA, b.Dec, 2, model.Query{
			Cost: cost.KB, Tolerance: model.AnyStaleness, Time: time.Second,
		}); err != nil {
			t.Fatalf("pre-birth region query at (%v,%v): %v", b.RA, b.Dec, err)
		}
	}
	if _, err := cl.AddObjects(ctx, births); err != nil {
		t.Fatal(err)
	}
	for _, b := range births {
		cover := resolverSurvey.CoverCap(geom.CapFromRADec(b.RA, b.Dec, 2))
		if !slices.Contains(cover, b.Object.ID) {
			t.Errorf("resolver survey cover at (%v,%v) misses newborn %d: %v",
				b.RA, b.Dec, b.Object.ID, cover)
		}
		// And end to end: the same region query now routes the newborn
		// (its fragment lands on the owning shard without error).
		res, err := cl.QueryRegion(ctx, b.RA, b.Dec, 2, model.Query{
			Cost: cost.KB, Tolerance: model.AnyStaleness, Time: time.Minute,
		})
		if err != nil {
			t.Fatalf("post-birth region query at (%v,%v): %v", b.RA, b.Dec, err)
		}
		if res.Degraded {
			t.Errorf("post-birth region query at (%v,%v) degraded", b.RA, b.Dec)
		}
	}
}
