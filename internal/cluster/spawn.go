package cluster

import (
	"context"
	"fmt"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/clock"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// LocalConfig parameterizes SpawnLocal.
type LocalConfig struct {
	// RepoAddr is the repository every shard loads from.
	RepoAddr string
	// Objects is the full object universe (each shard owns a subset).
	Objects []model.Object
	// Shards is how many cache shards to spawn.
	Shards int
	// Mode selects the ownership assignment. Defaults to HTMAware.
	Mode Mode
	// Replicas is the replication factor K: how many shards hold each
	// object (0 and 1 both mean unreplicated). With K ≥ 2 the router
	// fails fragments over to the next replica and may hedge reads.
	Replicas int
	// Hedge enables hedged reads at the router (requires Replicas ≥ 2
	// to have any effect; see cluster.Config.Hedge).
	Hedge bool
	// HedgeDelay pins the router's hedge delay (0 derives it from the
	// observed fragment latency p99; see cluster.Config.HedgeDelay).
	HedgeDelay time.Duration
	// ShardCapacity is each shard's cache size. Zero sizes every shard
	// to hold its entire owned subset (the replicated-cluster shape),
	// and keeps it sized that way across live resizes.
	ShardCapacity cost.Bytes
	// Policy builds one policy instance per shard; nil defaults each
	// shard to VCover. It doubles as the shard's reshard policy
	// factory, so live resizes rebuild policies through it too.
	Policy func(shard int) core.Policy
	// Scale converts logical sizes to physical payloads.
	Scale netproto.PayloadScale
	// ExecDelay is each shard's simulated local scan time (see
	// cache.Config.ExecDelay).
	ExecDelay time.Duration
	// ShardExecDelay, when non-nil, overrides ExecDelay per shard index
	// — how tests and BenchmarkReplicaHedging make one shard a
	// straggler. Return a negative duration for "no override".
	ShardExecDelay func(shard int) time.Duration
	// Clock paces each shard's ExecDelay; nil means the wall clock.
	Clock clock.Clock
	// RepoPool is each shard's repository session pool size.
	RepoPool int
	// RouterPool is the router's per-shard session pool size.
	RouterPool int
	// ResultCacheSize bounds the router's result cache + coalescer
	// (see cluster.Config.ResultCacheSize: 0 = default, negative
	// disables; only effective with a RepoAddr).
	ResultCacheSize int
	// Resolver, when set, lets the router answer sky-region queries
	// (typically catalog.Survey.CoverCap; see cluster.Config.Resolver).
	Resolver func(geom.Cap) []model.ObjectID
	// ResolverGrow extends the resolver's universe with adopted births
	// (see cluster.Config.ResolverGrow).
	ResolverGrow func([]model.Birth) error
	// WireVersion caps the whole topology's negotiated protocol
	// version (0 = newest; 2 pins gob v2).
	WireVersion int
	// ShardWireVersion, when non-nil, overrides WireVersion per shard
	// index — how tests stand up mixed-version topologies (e.g. one
	// shard pinned at gob v2 inside an otherwise-v3 cluster). Return 0
	// for "no override".
	ShardWireVersion func(shard int) int
	// ShardDataDir, when non-nil, gives each shard a persistence
	// directory (cache.Config.DataDir), enabling durable warm restarts:
	// RestartShard respawns a shard from its directory and the recovered
	// residents rejoin warm. Return "" to leave a shard ephemeral.
	ShardDataDir func(shard int) string
	// SnapshotInterval paces each persistent shard's snapshot loop
	// (cache.Config.SnapshotInterval).
	SnapshotInterval time.Duration
	// DisableObs spawns every node without metrics registries or trace
	// rings — the baseline side of BenchmarkObsOverhead.
	DisableObs bool
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// LocalCluster is an in-process sharded deployment: N cache shards and
// the router fronting them, all on loopback. Tests, benchmarks, and
// examples use it to stand up a whole topology in a few milliseconds
// — and resize it live with Resize.
type LocalCluster struct {
	Ownership *Ownership
	Shards    []*cache.Middleware
	Router    *Router

	cfg LocalConfig
}

// SpawnLocal builds the ownership map, spawns every shard (each a full
// cache.Middleware restricted to its owned objects), and starts the
// router over them.
func SpawnLocal(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: shard count must be positive")
	}
	own, err := NewOwnershipReplicated(cfg.Objects, cfg.Shards, max(cfg.Replicas, 1), cfg.Mode)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{Ownership: own, cfg: cfg}
	fail := func(err error) (*LocalCluster, error) {
		lc.Close()
		return nil, err
	}
	addrs := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		mw, err := lc.spawnShard(s, own)
		if err != nil {
			return fail(err)
		}
		lc.Shards = append(lc.Shards, mw)
		addrs[s] = mw.Addr()
	}
	router, err := NewRouter(Config{
		Shards:          addrs,
		Ownership:       own,
		RepoAddr:        cfg.RepoAddr,
		ShardPool:       cfg.RouterPool,
		ResultCacheSize: cfg.ResultCacheSize,
		Resolver:        cfg.Resolver,
		ResolverGrow:    cfg.ResolverGrow,
		WireVersion:     cfg.WireVersion,
		Hedge:           cfg.Hedge,
		HedgeDelay:      cfg.HedgeDelay,
		DisableObs:      cfg.DisableObs,
		Logf:            cfg.Logf,
	})
	if err != nil {
		return fail(err)
	}
	lc.Router = router
	if err := router.Start(); err != nil {
		return fail(err)
	}
	return lc, nil
}

// spawnShard builds and starts one cache shard owning own's shard s.
// The shard's configured universe is the ownership's (base objects
// plus births adopted before the spawn), so a shard joining a grown
// cluster knows every object it may own.
func (lc *LocalCluster) spawnShard(s int, own *Ownership) (*cache.Middleware, error) {
	cfg := lc.cfg
	factory := func() core.Policy {
		if cfg.Policy != nil {
			return cfg.Policy(s)
		}
		return core.NewVCover(core.DefaultVCoverConfig())
	}
	// Shards treat the universe as read-only, so share the ownership's
	// slice instead of cloning a million objects per shard.
	universe := own.universe
	capacity := cfg.ShardCapacity
	var reshardCapacity func([]model.Object) cost.Bytes
	if capacity == 0 {
		reshardCapacity = cache.ReplicatedCapacity
		for _, o := range own.Objects(own.ShardObjects(s)) {
			capacity += o.Size
		}
	}
	wire := cfg.WireVersion
	if cfg.ShardWireVersion != nil {
		if v := cfg.ShardWireVersion(s); v > 0 {
			wire = v
		}
	}
	var dataDir string
	if cfg.ShardDataDir != nil {
		dataDir = cfg.ShardDataDir(s)
	}
	execDelay := cfg.ExecDelay
	if cfg.ShardExecDelay != nil {
		if d := cfg.ShardExecDelay(s); d >= 0 {
			execDelay = d
		}
	}
	mw, err := cache.New(cache.Config{
		RepoAddr:         cfg.RepoAddr,
		RepoPool:         cfg.RepoPool,
		PolicyFactory:    factory,
		Objects:          universe,
		ObjectFilter:     own.Filter(s),
		Capacity:         capacity,
		ReshardCapacity:  reshardCapacity,
		Scale:            cfg.Scale,
		ExecDelay:        execDelay,
		Clock:            cfg.Clock,
		Replicas:         max(cfg.Replicas, 1),
		WireVersion:      wire,
		DataDir:          dataDir,
		SnapshotInterval: cfg.SnapshotInterval,
		DisableObs:       cfg.DisableObs,
		Logf:             cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
	}
	if err := mw.Start(); err != nil {
		mw.Close()
		return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
	}
	return mw, nil
}

// Resize takes the local cluster to m shards, live: growing spawns
// fresh (empty) shards for the new indices before handing the router
// the new address list; shrinking closes the released shards once the
// router has drained them from the routing table. Traffic keeps
// flowing throughout; cached state follows ownership via warm
// migration unless skipMigration (the cold baseline) is set.
func (lc *LocalCluster) Resize(ctx context.Context, m int, skipMigration bool) (netproto.RebalanceStatusMsg, error) {
	if m <= 0 {
		return netproto.RebalanceStatusMsg{}, fmt.Errorf("cluster: shard count must be positive")
	}
	// Resize over the router's live ownership, not the spawn-time one:
	// births adopted since spawn are part of the universe the new cut
	// must span.
	ownNew, err := lc.Router.Ownership().Resize(m)
	if err != nil {
		return netproto.RebalanceStatusMsg{}, err
	}
	shards := lc.Shards
	for s := len(shards); s < m; s++ {
		mw, err := lc.spawnShard(s, ownNew)
		if err != nil {
			for _, added := range shards[len(lc.Shards):] {
				added.Close()
			}
			return netproto.RebalanceStatusMsg{}, err
		}
		shards = append(shards, mw)
	}
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		addrs[i] = shards[i].Addr()
	}
	st, err := lc.Router.Resize(ctx, ResizeSpec{Shards: addrs, SkipMigration: skipMigration})
	if err != nil && st.Phase != "done" {
		// The resize never flipped: close any shards spawned for it.
		for _, added := range shards[len(lc.Shards):] {
			added.Close()
		}
		return st, err
	}
	for _, removed := range shards[m:] {
		removed.Close()
	}
	lc.Shards = shards[:m:m]
	lc.Ownership = lc.Router.Ownership()
	return st, err
}

// RestartShard stops shard s and brings it back from its persistence
// directory — the durable-warm-restart path. The old process closes
// (flushing a final snapshot), a fresh Middleware recovers the shard's
// grown universe and resident set from disk, and the router is resized
// in place over the same shard count so the replacement address joins
// the routing table: the accompanying reshard at the next epoch
// re-grants ownership, and the recovered residents — already
// re-validated against ownership during recovery — carry over warm
// through the same core.Warmable path a live resize uses. Queries
// issued between Close and the resize completing fail over nothing (the
// routing table still names the dead address), so callers pause traffic
// to the shard or tolerate errors for the window.
func (lc *LocalCluster) RestartShard(ctx context.Context, s int) error {
	if s < 0 || s >= len(lc.Shards) {
		return fmt.Errorf("cluster: no shard %d to restart", s)
	}
	if err := lc.Shards[s].Close(); err != nil {
		return fmt.Errorf("cluster: stop shard %d: %w", s, err)
	}
	own := lc.Router.Ownership()
	mw, err := lc.spawnShard(s, own)
	if err != nil {
		return err
	}
	addrs := make([]string, len(lc.Shards))
	for i, sh := range lc.Shards {
		addrs[i] = sh.Addr()
	}
	addrs[s] = mw.Addr()
	// Same shard count, one replaced address: the ownership cut is
	// unchanged, so nothing migrates — the restarted shard's warmth
	// comes from its own disk, not from siblings.
	if _, err := lc.Router.Resize(ctx, ResizeSpec{Shards: addrs, SkipMigration: true}); err != nil {
		mw.Close()
		return fmt.Errorf("cluster: rejoin restarted shard %d: %w", s, err)
	}
	lc.Shards[s] = mw
	lc.Ownership = lc.Router.Ownership()
	return nil
}

// Close tears the whole topology down, router first.
func (lc *LocalCluster) Close() error {
	var err error
	if lc.Router != nil {
		err = lc.Router.Close()
	}
	for _, s := range lc.Shards {
		if e := s.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
