package cluster

import (
	"fmt"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// LocalConfig parameterizes SpawnLocal.
type LocalConfig struct {
	// RepoAddr is the repository every shard loads from.
	RepoAddr string
	// Objects is the full object universe (each shard owns a subset).
	Objects []model.Object
	// Shards is how many cache shards to spawn.
	Shards int
	// Mode selects the ownership assignment. Defaults to HTMAware.
	Mode Mode
	// ShardCapacity is each shard's cache size. Zero sizes every shard
	// to hold its entire owned subset (the replicated-cluster shape).
	ShardCapacity cost.Bytes
	// Policy builds one policy instance per shard; nil defaults each
	// shard to VCover.
	Policy func(shard int) core.Policy
	// Scale converts logical sizes to physical payloads.
	Scale netproto.PayloadScale
	// ExecDelay is each shard's simulated local scan time (see
	// cache.Config.ExecDelay).
	ExecDelay time.Duration
	// RepoPool is each shard's repository session pool size.
	RepoPool int
	// RouterPool is the router's per-shard session pool size.
	RouterPool int
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// LocalCluster is an in-process sharded deployment: N cache shards and
// the router fronting them, all on loopback. Tests, benchmarks, and
// examples use it to stand up a whole topology in a few milliseconds.
type LocalCluster struct {
	Ownership *Ownership
	Shards    []*cache.Middleware
	Router    *Router
}

// SpawnLocal builds the ownership map, spawns every shard (each a full
// cache.Middleware restricted to its owned objects), and starts the
// router over them.
func SpawnLocal(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: shard count must be positive")
	}
	own, err := NewOwnership(cfg.Objects, cfg.Shards, cfg.Mode)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{Ownership: own}
	fail := func(err error) (*LocalCluster, error) {
		lc.Close()
		return nil, err
	}
	addrs := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		capacity := cfg.ShardCapacity
		if capacity == 0 {
			for _, id := range own.ShardObjects(s) {
				for _, o := range cfg.Objects {
					if o.ID == id {
						capacity += o.Size
						break
					}
				}
			}
		}
		var policy core.Policy
		if cfg.Policy != nil {
			policy = cfg.Policy(s)
		}
		mw, err := cache.New(cache.Config{
			RepoAddr:     cfg.RepoAddr,
			RepoPool:     cfg.RepoPool,
			Policy:       policy,
			Objects:      cfg.Objects,
			ObjectFilter: own.Filter(s),
			Capacity:     capacity,
			Scale:        cfg.Scale,
			ExecDelay:    cfg.ExecDelay,
			Logf:         cfg.Logf,
		})
		if err != nil {
			return fail(fmt.Errorf("cluster: shard %d: %w", s, err))
		}
		lc.Shards = append(lc.Shards, mw)
		if err := mw.Start(); err != nil {
			return fail(fmt.Errorf("cluster: shard %d: %w", s, err))
		}
		addrs[s] = mw.Addr()
	}
	router, err := NewRouter(Config{
		Shards:    addrs,
		Ownership: own,
		ShardPool: cfg.RouterPool,
		Logf:      cfg.Logf,
	})
	if err != nil {
		return fail(err)
	}
	lc.Router = router
	if err := router.Start(); err != nil {
		return fail(err)
	}
	return lc, nil
}

// Close tears the whole topology down, router first.
func (lc *LocalCluster) Close() error {
	var err error
	if lc.Router != nil {
		err = lc.Router.Close()
	}
	for _, s := range lc.Shards {
		if e := s.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
