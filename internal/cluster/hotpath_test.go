package cluster_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// TestRouterResultCacheInvalidation is the staleness contract test for
// the router's result cache: a cached merged result must stop being
// served the moment the repository publishes an update to any member
// object — the re-query scatters again instead of answering from the
// now-evicted entry.
func TestRouterResultCacheInvalidation(t *testing.T) {
	_, repo, lc := startCluster(t, 2, func(int) core.Policy { return core.NewReplica() })
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	objs := spanningObjects(t, lc)
	q := model.Query{
		Objects:   objs,
		Cost:      cost.Bytes(len(objs)) * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	}
	if _, err := cl.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := lc.Router.ResultCacheHits(); got < 1 {
		t.Fatalf("repeat of an identical query recorded %d cache hits, want >= 1", got)
	}
	// The shared answer is re-stamped per client: its Logical must be
	// this query's declared ν(q), keeping cost shares exact.
	if res.Logical != int64(q.Cost) {
		t.Errorf("cached result logical = %d, want the declared cost %d", res.Logical, q.Cost)
	}

	// An update to one member object must evict the cached entry via
	// the invalidation stream (asynchronous, so poll).
	repo.ApplyUpdate(model.Update{ID: 1, Object: objs[0], Cost: cost.MB, Time: 2 * time.Second})
	deadline := time.Now().Add(5 * time.Second)
	for lc.Router.ResultCacheInvalidations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("result cache never saw the member-object invalidation")
		}
		time.Sleep(2 * time.Millisecond)
	}

	hits, misses := lc.Router.ResultCacheHits(), lc.Router.ResultCacheMisses()
	if _, err := cl.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := lc.Router.ResultCacheHits(); got != hits {
		t.Errorf("query after invalidation hit the cache (%d -> %d hits): stale answer", hits, got)
	}
	if got := lc.Router.ResultCacheMisses(); got != misses+1 {
		t.Errorf("query after invalidation recorded %d misses, want %d", got, misses+1)
	}
}

// TestRouterResultCacheEpochFlipClears pins the resize interaction:
// flipping the routing epoch clears the result cache wholesale, so a
// query warm in the cache before the resize scatters afresh after it.
func TestRouterResultCacheEpochFlipClears(t *testing.T) {
	_, _, lc := startCluster(t, 2, func(int) core.Policy { return core.NewReplica() })
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	objs := spanningObjects(t, lc)
	q := model.Query{
		Objects:   objs,
		Cost:      cost.Bytes(len(objs)) * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if got := lc.Router.ResultCacheHits(); got < 1 {
		t.Fatalf("warmup recorded %d cache hits, want >= 1", got)
	}

	if _, err := lc.Resize(ctx, 3, false); err != nil {
		t.Fatal(err)
	}

	hits := lc.Router.ResultCacheHits()
	res, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("post-resize query degraded")
	}
	if got := lc.Router.ResultCacheHits(); got != hits {
		t.Errorf("query after the epoch flip hit the cache (%d -> %d hits): resize must clear it", hits, got)
	}
}

// TestRouterCoalescesIdenticalQueries pins the singleflight contract:
// a flash crowd of identical concurrent queries costs one scatter —
// followers join the leader's flight (or hit the cache it populates)
// and every client still gets its own exact cost share.
func TestRouterCoalescesIdenticalQueries(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   2,
		Policy:   func(int) core.Policy { return core.NewReplica() },
		Scale:    netproto.PayloadScale{},
		// Each shard dwells on its serial execution lock, so the
		// followers reliably arrive while the leader's scatter is in
		// flight.
		ExecDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	objs := spanningObjects(t, lc)
	const crowd = 8
	q := model.Query{
		Objects:   objs,
		Cost:      cost.Bytes(len(objs)) * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	}
	var wg sync.WaitGroup
	errs := make([]error, crowd)
	results := make([]*client.Result, crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := client.DialCluster(lc.Router.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			results[i], errs[i] = cl.Query(ctx, q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("crowd client %d: %v", i, err)
		}
		if results[i].Degraded {
			t.Errorf("crowd client %d got a degraded answer", i)
		}
		if results[i].Logical != int64(q.Cost) {
			t.Errorf("crowd client %d logical = %d, want %d", i, results[i].Logical, q.Cost)
		}
	}
	shared := lc.Router.Coalesced() + lc.Router.ResultCacheHits()
	if shared < crowd/2 {
		t.Errorf("only %d of %d identical queries were answered shared (coalesced=%d hits=%d)",
			shared, crowd, lc.Router.Coalesced(), lc.Router.ResultCacheHits())
	}
}

// TestBatchedBirthGrants pins the grant-batching contract: concurrent
// birth publications are adopted in batches — one multi-object grant
// frame per owning shard per adoption round, not one frame per object
// — and every born object is queryable once its publish call returns.
func TestBatchedBirthGrants(t *testing.T) {
	const nBase = 16
	mirror, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Publish through the router's publish path in bursts (the catalog
	// assigns sequential IDs, so bursts are ordered; concurrency rides
	// the announcement stream, soaked elsewhere). The batching contract
	// under test: a K-birth burst ships at most one grant frame per
	// owning shard — not one frame per object.
	const (
		bursts   = 2
		perBurst = 8
	)
	growRng := rand.New(rand.NewSource(11))
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < bursts; i++ {
		births, err := mirror.GrowObjects(growRng, perBurst, time.Duration(i)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		n, err := cl.AddObjects(ctx, births)
		if err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
		if n != perBurst {
			t.Errorf("burst %d: accepted %d births, want %d", i, n, perBurst)
		}

		// The publish contract: once AddObjects returns, the burst's
		// objects are queryable through the router — batching must not
		// defer adoption past the publish ack.
		for _, b := range births {
			res, qerr := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{b.Object.ID}, Cost: cost.KB,
				Tolerance: model.AnyStaleness, Time: time.Minute,
			})
			if qerr != nil {
				t.Errorf("burst %d: born object %d not queryable: %v", i, b.Object.ID, qerr)
			} else if res.Degraded {
				t.Errorf("burst %d: born object %d answered degraded", i, b.Object.ID)
			}
		}
	}

	const total = int64(bursts * perBurst)
	if got := lc.Router.Births(); got != total {
		t.Errorf("router adopted %d births, want %d", got, total)
	}
	batches := lc.Router.GrantBatches()
	if batches < 1 {
		t.Fatal("no batched grant frames were shipped")
	}
	// Batching bound: each adoption round grants at most one frame per
	// shard, and each burst is at most one round (fewer frames when a
	// burst's births all land on a subset of shards). 16 births in 2
	// bursts across 3 shards must ship at most 6 grant frames — the
	// unbatched path would have shipped 16.
	if maxFrames := int64(bursts * lc.Ownership.Shards()); batches > maxFrames {
		t.Errorf("shipped %d grant frames for %d bursts across %d shards (max %d)",
			batches, bursts, lc.Ownership.Shards(), maxFrames)
	}

	// The shards admitted every birth through the grant frames.
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.ObjectsBorn != total {
		t.Errorf("shards admitted %d births, want %d", cs.Aggregate.ObjectsBorn, total)
	}
	if cs.Aggregate.GrantBatches != batches {
		t.Errorf("aggregate stats report %d grant batches, router counted %d", cs.Aggregate.GrantBatches, batches)
	}
}
