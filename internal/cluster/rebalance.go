// Live elastic resharding: taking the routing tier from N to M shards
// while serving queries, with warm migration of cached state instead
// of cold restarts.
//
// Because ownership is a pure function of (universe, shard count,
// mode), a resize is an ownership diff plus choreography. The
// rebalancer runs four phases:
//
//  1. widen   — every shard in the new config accepts the union of
//     its old and new owned sets (MsgReshard), so queries keep
//     landing on a willing shard no matter which side of the flip
//     routed them. Still-owned residents carry over warm.
//  2. migrate — each source shard streams the cached state of its
//     moving objects directly to their new owner (MsgMigrateBegin →
//     MsgMigrateChunk/Done, shard to shard), commanded by the router.
//  3. flip    — the router publishes the new routing epoch atomically;
//     new queries route to the new owners, which are already warm.
//  4. narrow  — continuing shards drop ownership (and residency) of
//     what they gave away (MsgReshard with the exact new set).
//
// Queries are double-routed throughout the window: every moving
// object's routing snapshot records an alternate owner (the migration
// destination before the flip, the still-warm source after it), so a
// fragment that fails on its primary is re-sent instead of degrading
// the answer. Failure semantics: a failed widen aborts the resize
// before any routing change (a partially widened filter is harmless —
// it only accepts more than the router will send); a failed migration
// demotes the moving objects to cold arrivals, costing traffic, never
// correctness; a failed narrow leaves a filter wide until the next
// successful resize.
package cluster

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// reshardTarget pairs a shard link with the owned set a reshard phase
// should install on it.
type reshardTarget struct {
	link  *shardLink
	owned []model.ObjectID
}

// ResizeSpec parameterizes a live resize.
type ResizeSpec struct {
	// Shards is the complete new shard address list, in new shard
	// index order. Addresses already in the cluster keep their
	// sessions and — when they keep their position, which grow/shrink
	// by appending/truncating naturally does, and which the aligned
	// ownership resize optimizes for — most of their cached state; new
	// addresses are dialed (the shards must already be running and own
	// nothing the router will route to them before the flip);
	// addresses no longer listed are drained from the routing table
	// but not shut down (they are not the router's to stop).
	Shards []string
	// SkipMigration skips the warm state transfer, so new owners
	// start cold — the "restart" baseline BenchmarkRebalance compares
	// warm migration against. Routing still flips atomically.
	SkipMigration bool
}

// RebalanceStatus returns the router's current rebalance view.
func (r *Router) RebalanceStatus() netproto.RebalanceStatusMsg {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	st := r.status
	return st
}

func (r *Router) setStatus(mut func(*netproto.RebalanceStatusMsg)) {
	r.statusMu.Lock()
	mut(&r.status)
	r.statusMu.Unlock()
}

// Resize takes the cluster from its current shard set to spec.Shards,
// live. It blocks until the resize completes (the admin frame path
// serves it synchronously) and returns the final status. Exactly one
// resize runs at a time; a second request fails fast.
func (r *Router) Resize(ctx context.Context, spec ResizeSpec) (netproto.RebalanceStatusMsg, error) {
	if len(spec.Shards) == 0 {
		return r.RebalanceStatus(), fmt.Errorf("cluster: resize needs at least one shard")
	}
	if !r.resizeMu.TryLock() {
		return r.RebalanceStatus(), fmt.Errorf("cluster: a resize is already in progress")
	}
	defer r.resizeMu.Unlock()
	// Serialize against birth adoption: a birth in flight finishes
	// extending the routing universe before the resize snapshots it,
	// and no birth extends a snapshot this resize is about to replace.
	r.growMu.Lock()
	defer r.growMu.Unlock()

	rt := r.routing.Load()
	from, to := len(rt.links), len(spec.Shards)
	epoch := rt.epoch + 1
	r.setStatus(func(st *netproto.RebalanceStatusMsg) {
		*st = netproto.RebalanceStatusMsg{
			Active: true, Phase: "widen", Epoch: epoch,
			From: from, To: to,
			Completed: st.Completed,
		}
	})
	oldIndexByAddr := make(map[string]int, from)
	for _, l := range rt.links {
		oldIndexByAddr[l.addr] = l.index
	}
	// An aborted resize must not leak the sessions it dialed to shards
	// that never joined the routing table.
	var dialedNew []string
	fail := func(err error) (netproto.RebalanceStatusMsg, error) {
		for _, addr := range dialedNew {
			r.dropLink(addr)
		}
		r.setStatus(func(st *netproto.RebalanceStatusMsg) {
			st.Active = false
			st.Phase = "failed"
			st.LastError = err.Error()
		})
		return r.RebalanceStatus(), err
	}

	ownNew, err := rt.own.Resize(to)
	if err != nil {
		return fail(err)
	}
	linksNew := make([]*shardLink, to)
	for i, addr := range spec.Shards {
		if _, continuing := oldIndexByAddr[addr]; !continuing {
			dialedNew = append(dialedNew, addr)
		}
		link, err := r.linkAt(addr, i)
		if err != nil {
			return fail(fmt.Errorf("cluster: dial new shard %d (%s): %w", i, addr, err))
		}
		linksNew[i] = link
	}

	// The ownership diff, by address set: with replication an object is
	// held by K shards on each side of the recut, so the diff compares
	// the old and new holder ADDRESS sets rank by address. Every new
	// holder not already warm is seeded from the old primary; an object
	// with any new holder double-routes to the first of them pre-flip,
	// and to a still-warm departing holder post-flip. At K=1 this
	// reduces exactly to the old owner-address comparison.
	movingPre := make(map[model.ObjectID]*shardLink)  // pre-flip alternate: a new holder
	movingPost := make(map[model.ObjectID]*shardLink) // post-flip alternate: an old holder
	moves := make(map[*shardLink]map[string][]model.ObjectID)
	for _, u := range rt.own.universe {
		id := u.ID
		oldRanked, _ := rt.own.Owners(id)
		newRanked, ok := ownNew.Owners(id)
		if !ok || len(oldRanked) == 0 {
			return fail(fmt.Errorf("cluster: object %d lost by resize", id))
		}
		oldAddrs := make(map[string]bool, len(oldRanked))
		for _, s := range oldRanked {
			oldAddrs[rt.links[s].addr] = true
		}
		newAddrs := make(map[string]bool, len(newRanked))
		for _, d := range newRanked {
			newAddrs[linksNew[d].addr] = true
		}
		src := rt.links[oldRanked[0]] // old primary seeds the movers warm
		for _, d := range newRanked {
			dst := linksNew[d]
			if oldAddrs[dst.addr] {
				continue // already warm at some rank
			}
			if movingPre[id] == nil {
				movingPre[id] = dst
			}
			group := moves[src]
			if group == nil {
				group = make(map[string][]model.ObjectID)
				moves[src] = group
			}
			group[dst.addr] = append(group[dst.addr], id)
		}
		for _, s := range oldRanked {
			if !newAddrs[rt.links[s].addr] {
				movingPost[id] = rt.links[s]
				break
			}
		}
	}
	r.cfg.Logf("resize %d→%d (epoch %d): %d objects gaining holders across %d source shards",
		from, to, epoch, len(movingPre), len(moves))

	// Phase 1: widen. Every shard of the new config accepts the union
	// of its old and new owned sets before any routing changes.
	widen := make([]reshardTarget, 0, to)
	for i, link := range linksNew {
		owned := ownNew.ShardObjects(i)
		if oldIdx, ok := oldIndexByAddr[link.addr]; ok {
			owned = unionIDs(owned, rt.own.ShardObjects(oldIdx))
		}
		widen = append(widen, reshardTarget{link: link, owned: owned})
	}
	if err := r.reshardAll(ctx, epoch, ownNew, widen); err != nil {
		return fail(fmt.Errorf("cluster: widen: %w", err))
	}

	// Double-route moving objects while their state is in flight. The
	// result cache clears with every routing snapshot a resize
	// publishes (here, at the flip, and after narrow): cached merged
	// payloads stay bytewise valid across placement changes, but a
	// resize is rare and wholesale invalidation keeps the cache's
	// epoch semantics trivially auditable.
	r.routing.Store(&routing{epoch: rt.epoch, own: rt.own, links: rt.links, alt: movingPre})
	r.results.clear()

	// Phase 2: migrate warm state, shard to shard.
	if !spec.SkipMigration && len(moves) > 0 {
		r.setStatus(func(st *netproto.RebalanceStatusMsg) { st.Phase = "migrate" })
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			migrErrs []string
		)
		for src, dests := range moves {
			wg.Add(1)
			go func(src *shardLink, dests map[string][]model.ObjectID) {
				defer wg.Done()
				addrs := make([]string, 0, len(dests))
				for a := range dests {
					addrs = append(addrs, a)
				}
				slices.Sort(addrs)
				for _, dst := range addrs {
					ids := dests[dst]
					slices.Sort(ids)
					ctx, cancel := context.WithTimeout(ctx, r.cfg.MigrateTimeout)
					reply, err := src.sess.RoundTrip(ctx, netproto.Frame{
						Type: netproto.MsgMigrateBegin,
						Body: netproto.MigrateBeginMsg{Epoch: epoch, Dest: dst, Objects: ids},
					})
					cancel()
					if err != nil {
						errMu.Lock()
						migrErrs = append(migrErrs, fmt.Sprintf("shard %d→%s: %v", src.index, dst, err))
						errMu.Unlock()
						continue
					}
					if sum, ok := reply.Body.(netproto.MigrateBeginMsg); ok {
						r.setStatus(func(st *netproto.RebalanceStatusMsg) {
							st.MovedObjects += sum.Moved
							st.MovedBytes += sum.MovedBytes
						})
					}
				}
			}(src, dests)
		}
		wg.Wait()
		if len(migrErrs) > 0 {
			// Failed moves arrive cold at their new owner — a traffic
			// cost, not a correctness problem; the resize proceeds.
			r.cfg.Logf("resize epoch %d: %d migration failures (state arrives cold): %s",
				epoch, len(migrErrs), strings.Join(migrErrs, "; "))
			r.setStatus(func(st *netproto.RebalanceStatusMsg) {
				st.LastError = fmt.Sprintf("migration: %s", strings.Join(migrErrs, "; "))
			})
		}
	}

	// Phase 3: flip. New queries route to the new owners; the old
	// owners stay warm alternates until narrow completes.
	r.setStatus(func(st *netproto.RebalanceStatusMsg) { st.Phase = "flip" })
	r.routing.Store(&routing{epoch: epoch, own: ownNew, links: linksNew, alt: movingPost})
	r.results.clear()

	// Phase 4: narrow continuing shards to exactly their new sets
	// (new shards already are exact — their union had no old half).
	r.setStatus(func(st *netproto.RebalanceStatusMsg) { st.Phase = "narrow" })
	narrow := make([]reshardTarget, 0, to)
	for i, link := range linksNew {
		if _, continuing := oldIndexByAddr[link.addr]; continuing {
			narrow = append(narrow, reshardTarget{link: link, owned: ownNew.ShardObjects(i)})
		}
	}
	var narrowErr error
	if err := r.reshardAll(ctx, epoch, ownNew, narrow); err != nil {
		// The flip already happened and wide filters are harmless;
		// report the failure without unwinding the resize.
		narrowErr = fmt.Errorf("cluster: narrow: %w", err)
		r.setStatus(func(st *netproto.RebalanceStatusMsg) { st.LastError = narrowErr.Error() })
	}

	r.routing.Store(&routing{epoch: epoch, own: ownNew, links: linksNew})
	r.results.clear()
	for addr := range oldIndexByAddr {
		if !slices.Contains(spec.Shards, addr) {
			r.dropLink(addr)
		}
	}
	r.setStatus(func(st *netproto.RebalanceStatusMsg) {
		st.Active = false
		st.Phase = "done"
		st.Completed++
	})
	r.cfg.Logf("resize %d→%d complete (epoch %d)", from, to, epoch)
	return r.RebalanceStatus(), narrowErr
}

// reshardAll swaps the owned sets of several shards concurrently and
// returns the first failure. Each command carries the owned objects'
// metadata so a shard can take ownership of objects born after it
// spawned.
func (r *Router) reshardAll(ctx context.Context, epoch int, own *Ownership, targets []reshardTarget) error {
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, link *shardLink, owned []model.ObjectID) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
			defer cancel()
			reply, err := link.sess.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgReshard,
				Body: netproto.ReshardMsg{
					Epoch:    epoch,
					Owned:    owned,
					Universe: own.Objects(owned),
					Replicas: own.Replicas(),
				},
			})
			if err != nil {
				errs[i] = fmt.Errorf("shard %d (%s): %w", link.index, link.addr, err)
				return
			}
			ack, ok := reply.Body.(netproto.ReshardMsg)
			if !ok {
				errs[i] = fmt.Errorf("shard %d replied %s to reshard", link.index, reply.Type)
				return
			}
			r.cfg.Logf("shard %d resharded for epoch %d: %d owned, %d resident, %d dropped",
				link.index, epoch, len(owned), ack.Resident, ack.Dropped)
		}(i, t.link, t.owned)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// unionIDs merges two sorted ID slices, deduplicated.
func unionIDs(a, b []model.ObjectID) []model.ObjectID {
	out := make([]model.ObjectID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	slices.Sort(out)
	return slices.Compact(out)
}
