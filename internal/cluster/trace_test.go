package cluster_test

import (
	"strings"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
	"github.com/deltacache/delta/internal/server"

	"github.com/deltacache/delta/internal/catalog"
)

// checkSpanTree validates a scattered query's fan-out trace: one
// router span at the head carrying the routing epoch and scatter
// width, one fragment span per touched shard, and every repository
// span following the fragment that shipped to it.
func checkSpanTree(t *testing.T, res *client.Result, wantShards int) {
	t.Helper()
	if res.TraceID == 0 {
		t.Fatal("traced query returned TraceID 0")
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced query returned no spans")
	}
	router := res.Spans[0]
	if router.Name != "router" {
		t.Fatalf("first span is %q, want router (spans: %+v)", router.Name, res.Spans)
	}
	if router.Fragments != wantShards {
		t.Errorf("router span fragments = %d, want %d", router.Fragments, wantShards)
	}
	if router.Epoch != 0 {
		t.Errorf("fresh cluster routed at epoch %d, want 0", router.Epoch)
	}
	if router.Shard != -1 || router.Source != res.Source {
		t.Errorf("router span = %+v, want shard -1 and source %q", router, res.Source)
	}
	if router.Elapsed <= 0 {
		t.Errorf("router span elapsed = %v, want > 0", router.Elapsed)
	}
	seen := map[int]bool{}
	lastFragment := -1
	for _, s := range res.Spans[1:] {
		switch s.Name {
		case "fragment":
			if seen[s.Shard] {
				t.Errorf("duplicate fragment span for shard %d", s.Shard)
			}
			seen[s.Shard] = true
			lastFragment = s.Shard
			if s.Elapsed <= 0 {
				t.Errorf("fragment shard %d elapsed = %v, want > 0", s.Shard, s.Elapsed)
			}
			if s.Source == "" {
				t.Errorf("fragment shard %d has no source", s.Shard)
			}
		case "repository", "load":
			if lastFragment < 0 {
				t.Errorf("%s span precedes any fragment span", s.Name)
			}
		default:
			t.Errorf("unexpected span %q under a router trace", s.Name)
		}
	}
	if len(seen) != wantShards {
		t.Errorf("fragment spans cover %d shards, want %d (spans: %+v)",
			len(seen), wantShards, res.Spans)
	}
}

// TestTracedQuerySpanTree drives a traced query across a 3-shard
// cluster and checks the assembled fan-out tree, its rendering, and
// that untraced queries stay untraced.
func TestTracedQuerySpanTree(t *testing.T) {
	_, _, lc := startCluster(t, 3, nil)
	cl, err := client.DialCluster(lc.Router.Addr(), client.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	objs := spanningObjects(t, lc)
	res, err := cl.Query(ctx, model.Query{
		Objects:   objs,
		Cost:      9 * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSpanTree(t, res, 3)

	// A cold cluster ships every fragment to the repository, so the
	// tree must also show the repository hops.
	repoSpans := 0
	for _, s := range res.Spans {
		if s.Name == "repository" {
			repoSpans++
		}
	}
	if repoSpans == 0 {
		t.Errorf("cold scattered query recorded no repository spans: %+v", res.Spans)
	}

	// The rendered tree (what delta-client -trace prints) names every
	// hop with the router at the root.
	tree := obs.FormatSpans(res.Spans)
	if !strings.HasPrefix(tree, "router ") || !strings.Contains(tree, "epoch=0") {
		t.Errorf("rendered tree missing router root:\n%s", tree)
	}
	for _, want := range []string{"fragment shard=0", "fragment shard=1", "fragment shard=2"} {
		if !strings.Contains(tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree)
		}
	}

	// A second, identically-shaped traced query gets a distinct ID.
	res2, err := cl.Query(ctx, model.Query{
		Objects: objs, Cost: 9 * cost.MB, Tolerance: model.AnyStaleness, Time: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TraceID == res.TraceID {
		t.Errorf("two queries share trace ID %#x", res.TraceID)
	}

	// A client dialed without WithTrace stays untraced end to end.
	plain, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	res3, err := plain.Query(ctx, model.Query{
		Objects: objs, Cost: 9 * cost.MB, Tolerance: model.AnyStaleness, Time: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.TraceID != 0 || len(res3.Spans) != 0 {
		t.Errorf("untraced query returned trace %#x with %d spans", res3.TraceID, len(res3.Spans))
	}
}

// TestTracedQueryGobPinnedShard pins trace interop across the codec
// split: a shard negotiated down to the gob v2 codec still receives
// the TraceID (gob carries it as a named field rather than a v3 frame
// tail) and its fragment span still joins the assembled tree.
func TestTracedQueryGobPinnedShard(t *testing.T) {
	const pinnedShard = 1
	survey, err := catalog.NewSurvey(growthSurveyConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
		ShardWireVersion: func(shard int) int {
			if shard == pinnedShard {
				return netproto.ProtoV2
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	cl, err := client.DialCluster(lc.Router.Addr(), client.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query(ctx, model.Query{
		Objects:   spanningObjects(t, lc),
		Cost:      9 * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSpanTree(t, res, 3)
	for _, s := range res.Spans {
		if s.Name == "fragment" && s.Shard == pinnedShard {
			return // the gob-pinned shard's span made it into the tree
		}
	}
	t.Fatalf("gob-pinned shard %d recorded no fragment span: %+v", pinnedShard, res.Spans)
}
