package cluster_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// restartCluster is one cluster under the restart-recovery soak: its
// own repository and survey mirror (so growth bursts mint identical
// births on both clusters), and the shared set of queryable IDs.
type restartCluster struct {
	repo   *server.Repository
	mirror *catalog.Survey
	lc     *cluster.LocalCluster

	knownMu sync.RWMutex
	known   []model.ObjectID
}

// spawnRestartCluster stands up a repository plus a 3-shard cluster
// over nBase equal-sized objects. When dataDir is non-empty every
// shard persists to dataDir/shard-<i> on a fast snapshot cadence.
func spawnRestartCluster(t *testing.T, nBase int, dataDir string) *restartCluster {
	t.Helper()
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	cfg := cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	}
	if dataDir != "" {
		cfg.ShardDataDir = func(s int) string {
			return filepath.Join(dataDir, fmt.Sprintf("shard-%d", s))
		}
		cfg.SnapshotInterval = 50 * time.Millisecond
	}
	lc, err := cluster.SpawnLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	rc := &restartCluster{repo: repo, mirror: mirror, lc: lc}
	for _, o := range repoSurvey.Objects() {
		rc.known = append(rc.known, o.ID)
	}
	return rc
}

func (rc *restartCluster) pick(rng *rand.Rand) model.ObjectID {
	rc.knownMu.RLock()
	defer rc.knownMu.RUnlock()
	return rc.known[rng.Intn(len(rc.known))]
}

// grow publishes a burst of n births through the cluster and adds the
// acked IDs to the queryable set.
func (rc *restartCluster) grow(t *testing.T, rng *rand.Rand, n int, at time.Duration) {
	t.Helper()
	births, err := rc.mirror.GrowObjects(rng, n, at)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.DialCluster(rc.lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.AddObjects(ctx, births); err != nil {
		t.Fatalf("growth burst: %v", err)
	}
	rc.knownMu.Lock()
	for _, b := range births {
		rc.known = append(rc.known, b.Object.ID)
	}
	rc.knownMu.Unlock()
}

// soakPhase drives nWorkers concurrent clients through perWorker
// queries each against the cluster, every query costing a full object
// size so first touches load deterministically and repeats hit cache.
// Returns (queries, cache hits); any failed query fails the test.
func soakPhase(t *testing.T, rc *restartCluster, seedBase int64, nWorkers, perWorker int) (int64, int64) {
	t.Helper()
	var queries, hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		cl, err := client.DialCluster(rc.lc.Router.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, cl *client.Client) {
			defer wg.Done()
			defer cl.Close()
			rng := rand.New(rand.NewSource(seedBase + int64(w)))
			for i := 0; i < perWorker; i++ {
				id := rc.pick(rng)
				res, err := cl.Query(ctx, model.Query{
					Objects: []model.ObjectID{id}, Cost: cost.GB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i) * time.Millisecond,
				})
				if err != nil {
					t.Errorf("worker %d query %d (object %d): %v", w, i, id, err)
					return
				}
				queries.Add(1)
				if res.Source == "cache" {
					hits.Add(1)
				}
			}
		}(w, cl)
	}
	wg.Wait()
	return queries.Load(), hits.Load()
}

// TestRestartRecoverySoak is the crash-recovery matrix of the issue: a
// persistent cluster soaks under concurrent clients with growth
// bursts, resizes 3→4, then has a shard stopped and restarted from its
// data directory. An identical ephemeral cluster runs the same
// workload with no restart as the never-restarted baseline. The
// restarted cluster's post-restart hit rate must land within 10% of
// the baseline's (the shard rejoined warm, not cold), with zero failed
// queries and a non-zero RecoveredWarm surfaced through cluster stats.
//
// The shard is bounced between workload phases: RestartShard documents
// that queries racing the Close→rejoin window fail (the routing table
// briefly names a dead address), and this soak's contract is zero
// failed queries, so traffic pauses for the bounce exactly as an
// operator draining a node would.
func TestRestartRecoverySoak(t *testing.T) {
	const (
		nBase     = 24
		nWorkers  = 3
		perWorker = 120
		burstSize = 4
	)
	durable := spawnRestartCluster(t, nBase, t.TempDir())
	baseline := spawnRestartCluster(t, nBase, "")
	growRng := func() *rand.Rand { return rand.New(rand.NewSource(77)) }

	// Phase 1: identical warm-up soak on both clusters, a growth burst
	// landing mid-phase on each.
	type phaseResult struct{ q, h int64 }
	phase := func(seed int64, grow bool, growAt time.Duration) (phaseResult, phaseResult) {
		var res [2]phaseResult
		var wg sync.WaitGroup
		for i, rc := range []*restartCluster{durable, baseline} {
			wg.Add(1)
			go func(i int, rc *restartCluster) {
				defer wg.Done()
				if grow {
					rc.grow(t, growRng(), burstSize, growAt)
				}
				q, h := soakPhase(t, rc, seed, nWorkers, perWorker)
				res[i] = phaseResult{q, h}
			}(i, rc)
		}
		wg.Wait()
		return res[0], res[1]
	}
	phase(100, true, time.Second)

	// Both clusters resize 3→4 (staying comparable); only the durable
	// one then has shard 1 bounced — restart-after-resize is the harder
	// case, since the recovered state must re-validate against the
	// post-resize ownership cut and epoch.
	if _, err := durable.lc.Resize(ctx, 4, false); err != nil {
		t.Fatalf("resize durable cluster: %v", err)
	}
	if _, err := baseline.lc.Resize(ctx, 4, false); err != nil {
		t.Fatalf("resize baseline cluster: %v", err)
	}
	if err := durable.lc.RestartShard(ctx, 1); err != nil {
		t.Fatalf("restart shard: %v", err)
	}

	// Phase 2: identical post-restart soak, another growth burst.
	dur2, base2 := phase(200, true, 2*time.Second)
	if dur2.q == 0 || base2.q == 0 {
		t.Fatal("a phase-2 soak recorded no queries")
	}
	durRate := float64(dur2.h) / float64(dur2.q)
	baseRate := float64(base2.h) / float64(base2.q)
	t.Logf("phase-2 hit rate: restarted %.3f (%d/%d), never-restarted %.3f (%d/%d)",
		durRate, dur2.h, dur2.q, baseRate, base2.h, base2.q)
	if durRate < 0.9*baseRate {
		t.Errorf("restarted cluster hit rate %.3f below 90%% of never-restarted %.3f: shard rejoined cold", durRate, baseRate)
	}

	// The recovery must be observable, not incidental: the bounced
	// shard re-adopted residents from disk, and the aggregation path
	// surfaces it through cluster stats.
	verify, err := client.DialCluster(durable.lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	cs, err := verify.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.RecoveredWarm == 0 {
		t.Error("restarted shard recovered no residents from disk (RecoveredWarm == 0)")
	}
	if cs.Aggregate.ObjectsBorn == 0 {
		t.Error("no shard admitted the growth bursts")
	}

	// Every birth — including ones published before the restart — must
	// remain queryable on the restarted cluster.
	durable.knownMu.RLock()
	born := append([]model.ObjectID(nil), durable.known[nBase:]...)
	durable.knownMu.RUnlock()
	if len(born) != 2*burstSize {
		t.Fatalf("expected %d births, tracked %d", 2*burstSize, len(born))
	}
	for _, id := range born {
		if _, err := verify.Query(ctx, model.Query{
			Objects: []model.ObjectID{id}, Cost: cost.KB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		}); err != nil {
			t.Errorf("born object %d not queryable after restart: %v", id, err)
		}
	}
}
