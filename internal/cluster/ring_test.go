package cluster

import (
	"testing"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

func testObjects(t *testing.T, n int) []model.Object {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = n
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return survey.Objects()
}

func TestOwnershipCoversUniverse(t *testing.T) {
	objects := testObjects(t, 68)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		for _, shards := range []int{1, 2, 4, 8} {
			own, err := NewOwnership(objects, shards, mode)
			if err != nil {
				t.Fatalf("%s/%d: %v", mode, shards, err)
			}
			// Every object owned by exactly one shard; per-shard lists
			// partition the universe.
			total := 0
			for s := 0; s < shards; s++ {
				ids := own.ShardObjects(s)
				if len(ids) == 0 {
					t.Errorf("%s/%d: shard %d owns nothing", mode, shards, s)
				}
				total += len(ids)
				filter := own.Filter(s)
				for _, id := range ids {
					if got, ok := own.Owner(id); !ok || got != s {
						t.Fatalf("%s/%d: owner(%d) = %d,%v, want %d", mode, shards, id, got, ok, s)
					}
					if !filter(id) {
						t.Fatalf("%s/%d: filter(%d) false for owner", mode, shards, id)
					}
				}
			}
			if total != len(objects) {
				t.Errorf("%s/%d: shards own %d objects, universe has %d", mode, shards, total, len(objects))
			}
		}
	}
}

func TestOwnershipDeterministic(t *testing.T) {
	objects := testObjects(t, 68)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		a, err := NewOwnership(objects, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		// A permuted universe must produce the identical assignment —
		// the router and the shards build it independently.
		permuted := make([]model.Object, len(objects))
		for i, o := range objects {
			permuted[(i*7)%len(objects)] = o
		}
		b, err := NewOwnership(permuted, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objects {
			sa, _ := a.Owner(o.ID)
			sb, _ := b.Owner(o.ID)
			if sa != sb {
				t.Fatalf("%s: owner(%d) differs across construction orders: %d vs %d", mode, o.ID, sa, sb)
			}
		}
	}
}

// TestRendezvousStability verifies the defining property of
// highest-random-weight hashing: growing the cluster from n to n+1
// shards only moves objects onto the new shard — survivors keep
// everything they had.
func TestRendezvousStability(t *testing.T) {
	objects := testObjects(t, 68)
	before, err := NewOwnership(objects, 4, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewOwnership(objects, 5, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, o := range objects {
		was, _ := before.Owner(o.ID)
		now, _ := after.Owner(o.ID)
		if was != now {
			moved++
			if now != 4 {
				t.Errorf("object %d moved %d→%d; rendezvous may only move objects to the new shard", o.ID, was, now)
			}
		}
	}
	if moved == 0 {
		t.Error("no objects moved to the new shard (suspicious hash)")
	}
	if moved > len(objects)/2 {
		t.Errorf("%d/%d objects moved; expected roughly 1/5", moved, len(objects))
	}
}

// TestHTMAwareLocality checks the mode's purpose: a cap query's cover
// (a spatially contiguous object set) should touch few shards —
// strictly fewer scatter fragments on average than rendezvous
// placement of the same universe.
func TestHTMAwareLocality(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 68
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	objects := survey.Objects()
	const shards = 8
	htmOwn, err := NewOwnership(objects, shards, HTMAware)
	if err != nil {
		t.Fatal(err)
	}
	rdvOwn, err := NewOwnership(objects, shards, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	touched := func(own *Ownership, ids []model.ObjectID) int {
		parts, err := own.Split(ids)
		if err != nil {
			t.Fatal(err)
		}
		return len(parts)
	}
	var htmTotal, rdvTotal int
	caps := 0
	for ra := 0.0; ra < 360; ra += 30 {
		for _, dec := range []float64{-45, 0, 45} {
			ids := survey.CoverCap(geom.CapFromRADec(ra, dec, 4))
			if len(ids) < 2 {
				continue
			}
			caps++
			htmTotal += touched(htmOwn, ids)
			rdvTotal += touched(rdvOwn, ids)
		}
	}
	if caps == 0 {
		t.Fatal("no multi-object caps generated")
	}
	if htmTotal >= rdvTotal {
		t.Errorf("HTM-aware placement touches %d shard-fragments over %d caps, rendezvous %d; spatial co-location should scatter less",
			htmTotal, caps, rdvTotal)
	}
}

// TestHTMAwareBalance checks that size-balanced cutting keeps the
// heaviest shard within a reasonable factor of the mean.
func TestHTMAwareBalance(t *testing.T) {
	objects := testObjects(t, 68)
	const shards = 4
	own, err := NewOwnership(objects, shards, HTMAware)
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := make(map[model.ObjectID]cost.Bytes, len(objects))
	var total cost.Bytes
	for _, o := range objects {
		sizeOf[o.ID] = o.Size
		total += o.Size
	}
	mean := total / shards
	for s := 0; s < shards; s++ {
		var sum cost.Bytes
		for _, id := range own.ShardObjects(s) {
			sum += sizeOf[id]
		}
		// The survey's object sizes span orders of magnitude (50 MB –
		// 90 GB), so a single giant object bounds achievable balance;
		// 2.5× mean catches gross mis-cuts without flaking on skew.
		if sum > mean*5/2 {
			t.Errorf("shard %d holds %v of %v total (mean %v)", s, sum, total, mean)
		}
	}
}

func TestSplitRejectsUnknownObject(t *testing.T) {
	objects := testObjects(t, 16)
	own, err := NewOwnership(objects, 2, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := own.Split([]model.ObjectID{1, 999}); err == nil {
		t.Error("Split accepted an object outside the universe")
	}
}

// clusteredUniverse builds the spatially clustered shape the HTM
// resize advantage shows up on: many tiny objects packed into one
// trixel neighborhood, a few huge objects spread across the rest of
// the sky. Size-balanced HTM cuts then move boundary segments through
// the sparse huge-object regions (few objects per byte), while
// rendezvous moves a count-uniform sample of the whole universe.
func clusteredUniverse() []model.Object {
	var objs []model.Object
	id := model.ObjectID(1)
	for i := 0; i < 48; i++ {
		objs = append(objs, model.Object{ID: id, Size: cost.MB, Trixel: uint64(1000 + i)})
		id++
	}
	for i := 0; i < 16; i++ {
		objs = append(objs, model.Object{ID: id, Size: 4 * cost.GB, Trixel: uint64(10000 + i*500)})
		id++
	}
	return objs
}

// TestResizeMovingEqualsSymmetricDifference pins the ownership-diff
// math a live resize is built on: for any N→M resize, the moving set
// equals the union of per-shard symmetric differences of the old and
// new ownership maps, and every moving object appears in exactly two
// of those symmetric differences (its old owner's and its new
// owner's) while non-moving objects appear in none.
func TestResizeMovingEqualsSymmetricDifference(t *testing.T) {
	universes := map[string][]model.Object{
		"survey":    testObjects(t, 68),
		"clustered": clusteredUniverse(),
	}
	pairs := [][2]int{{1, 4}, {4, 8}, {8, 4}, {4, 6}, {6, 4}, {2, 7}, {7, 2}, {3, 3}}
	for name, objects := range universes {
		for _, mode := range []Mode{Rendezvous, HTMAware} {
			for _, pair := range pairs {
				n, m := pair[0], pair[1]
				old, err := NewOwnership(objects, n, mode)
				if err != nil {
					t.Fatalf("%s %s %d→%d: %v", name, mode, n, m, err)
				}
				resized, err := old.Resize(m)
				if err != nil {
					t.Fatalf("%s %s %d→%d: %v", name, mode, n, m, err)
				}
				moving, err := Moving(old, resized)
				if err != nil {
					t.Fatalf("%s %s %d→%d: %v", name, mode, n, m, err)
				}
				movingSet := make(map[model.ObjectID]bool, len(moving))
				for _, id := range moving {
					movingSet[id] = true
				}
				// Count symmetric-difference appearances per object across
				// all shard indices of either ownership.
				appearances := make(map[model.ObjectID]int)
				maxShards := max(n, m)
				for s := 0; s < maxShards; s++ {
					oldSet := make(map[model.ObjectID]bool)
					if s < n {
						for _, id := range old.ShardObjects(s) {
							oldSet[id] = true
						}
					}
					newSet := make(map[model.ObjectID]bool)
					if s < m {
						for _, id := range resized.ShardObjects(s) {
							newSet[id] = true
						}
					}
					for id := range oldSet {
						if !newSet[id] {
							appearances[id]++
						}
					}
					for id := range newSet {
						if !oldSet[id] {
							appearances[id]++
						}
					}
				}
				for _, o := range objects {
					want := 0
					if movingSet[o.ID] {
						want = 2
					}
					if appearances[o.ID] != want {
						t.Errorf("%s %s %d→%d: object %d appears in %d shard symdiffs, want %d (moving=%v)",
							name, mode, n, m, o.ID, appearances[o.ID], want, movingSet[o.ID])
					}
				}
				// Sanity: a resized ownership still populates every shard.
				for s := 0; s < m; s++ {
					if len(resized.ShardObjects(s)) == 0 {
						t.Errorf("%s %s %d→%d: shard %d owns nothing after resize", name, mode, n, m, s)
					}
				}
				if resized.Shards() != m {
					t.Errorf("%s %s %d→%d: resized to %d shards", name, mode, n, m, resized.Shards())
				}
			}
		}
	}
}

// TestRendezvousResizeMinimalMovement pins rendezvous's defining
// resize property through the Resize API: growing moves objects only
// onto new shards, shrinking only off removed shards.
func TestRendezvousResizeMinimalMovement(t *testing.T) {
	objects := testObjects(t, 68)
	old, err := NewOwnership(objects, 4, Rendezvous)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := old.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	moving, err := Moving(old, grown)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range moving {
		if now, _ := grown.Owner(id); now < 4 {
			t.Errorf("grow 4→6 moved object %d to continuing shard %d", id, now)
		}
	}
	shrunk, err := grown.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	moving, err = Moving(grown, shrunk)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range moving {
		if was, _ := grown.Owner(id); was < 4 {
			t.Errorf("shrink 6→4 moved object %d off continuing shard %d", id, was)
		}
	}
}

// TestHTMResizeMovesFewerThanRendezvous checks the payoff of the
// movement-aligned HTM relabeling: on a spatially clustered universe,
// an HTM-mode resize migrates fewer objects than a rendezvous-mode
// resize of the same universe (boundary shifts slice through sparse
// regions; rendezvous reshuffles a count-uniform sample).
func TestHTMResizeMovesFewerThanRendezvous(t *testing.T) {
	objects := clusteredUniverse()
	for _, pair := range [][2]int{{4, 8}, {8, 4}, {4, 6}, {2, 8}} {
		n, m := pair[0], pair[1]
		count := func(mode Mode) int {
			old, err := NewOwnership(objects, n, mode)
			if err != nil {
				t.Fatalf("%s %d→%d: %v", mode, n, m, err)
			}
			resized, err := old.Resize(m)
			if err != nil {
				t.Fatalf("%s %d→%d: %v", mode, n, m, err)
			}
			moving, err := Moving(old, resized)
			if err != nil {
				t.Fatalf("%s %d→%d: %v", mode, n, m, err)
			}
			return len(moving)
		}
		htm, rdv := count(HTMAware), count(Rendezvous)
		if htm >= rdv {
			t.Errorf("%d→%d: HTM moves %d objects, rendezvous %d; aligned HTM cuts should move fewer on a clustered universe",
				n, m, htm, rdv)
		}
	}
}

// TestResizeSameCountIsIdentity checks that resizing to the current
// shard count moves nothing.
func TestResizeSameCountIsIdentity(t *testing.T) {
	objects := testObjects(t, 68)
	for _, mode := range []Mode{Rendezvous, HTMAware} {
		own, err := NewOwnership(objects, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		same, err := own.Resize(4)
		if err != nil {
			t.Fatal(err)
		}
		moving, err := Moving(own, same)
		if err != nil {
			t.Fatal(err)
		}
		if len(moving) != 0 {
			t.Errorf("%s: resize 4→4 moves %d objects", mode, len(moving))
		}
	}
}

func TestOwnershipRejectsBadShapes(t *testing.T) {
	objects := testObjects(t, 16)
	if _, err := NewOwnership(objects, 0, Rendezvous); err == nil {
		t.Error("accepted zero shards")
	}
	if _, err := NewOwnership(objects, 17, Rendezvous); err == nil {
		t.Error("accepted more shards than objects")
	}
	if _, err := NewOwnership(nil, 1, Rendezvous); err == nil {
		t.Error("accepted empty universe")
	}
}
