// Package cluster scales the Delta middleware out: a partition-aware
// routing tier that fronts N independent cache shards, each a full
// cache.Middleware owning a deterministic subset of the data objects.
// Ownership needs no coordination service — it is a pure function of
// the object universe, the shard count, and the assignment mode, so
// the router, every shard, and any out-of-band tool (delta-cache
// -shard-index) compute identical maps from the shared survey config.
//
// The router scatters multi-object queries to the owning shards over
// multiplexed netproto sessions, gathers and merges the fragments, and
// degrades gracefully when a shard dies: surviving fragments are
// returned with a Degraded flag instead of failing the query. Stats
// aggregate the same way, so a client sees one cache regardless of the
// shard count.
package cluster

import (
	"fmt"
	"slices"
	"sort"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// Mode selects how object ownership maps to shards.
type Mode int

const (
	// Rendezvous assigns each object independently by
	// highest-random-weight hashing of (object, shard). Ownership is
	// stable under shard-count changes: resizing from N to N+1 moves
	// only the objects the new shard wins, never reshuffles the rest.
	Rendezvous Mode = iota
	// HTMAware assigns contiguous runs of the spatially sorted object
	// list (HTM trixel order) to shards, balanced by object size.
	// Spatially adjacent objects co-locate, so a cap query's cover —
	// always a spatially contiguous object set — touches few shards.
	HTMAware
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Rendezvous:
		return "rendezvous"
	case HTMAware:
		return "htm"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a mode name as used by command-line flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "rendezvous":
		return Rendezvous, nil
	case "htm", "htm-aware":
		return HTMAware, nil
	default:
		return 0, fmt.Errorf("cluster: unknown ownership mode %q (want rendezvous|htm)", s)
	}
}

// Ownership is the deterministic object→shard assignment shared by the
// router and every shard. It is immutable after construction and safe
// for concurrent use; Resize derives a new Ownership rather than
// mutating this one.
type Ownership struct {
	mode   Mode
	shards int
	// replicas is the requested replication factor K (≥ 1); the
	// effective per-object factor is min(replicas, shards).
	replicas int
	// owner maps each object to its rank-0 (primary) shard.
	owner map[model.ObjectID]int
	// owners maps each object to its ranked replica set: owners[id][0]
	// is the primary, owners[id][r] the r-th failover target. Length is
	// min(replicas, shards) and entries are distinct.
	owners map[model.ObjectID][]int
	// byShard[s] lists the objects shard s holds at any replica rank,
	// sorted by ID.
	byShard [][]model.ObjectID
	// universe is the object set the assignment was computed over,
	// retained so Resize can recompute ownership at a new shard count;
	// meta indexes it by ID for the reshard-metadata lookups.
	universe []model.Object
	meta     map[model.ObjectID]model.Object
}

// NewOwnership assigns every object in the universe to one of n shards
// without replication (K=1).
func NewOwnership(objects []model.Object, n int, mode Mode) (*Ownership, error) {
	return NewOwnershipReplicated(objects, n, 1, mode)
}

// NewOwnershipReplicated assigns every object in the universe to a
// ranked set of min(k, n) distinct shards. Rank 0 is the primary — the
// shard queries route to first — and ranks 1..K-1 are failover and
// hedging targets holding warm copies. Like the unreplicated form, the
// assignment is a pure function of (universe, n, k, mode), so every
// party computes identical replica sets with no coordination.
func NewOwnershipReplicated(objects []model.Object, n, k int, mode Mode) (*Ownership, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: shard count must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: replication factor must be positive, got %d", k)
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("cluster: empty object universe")
	}
	if len(objects) < n {
		return nil, fmt.Errorf("cluster: %d objects cannot populate %d shards", len(objects), n)
	}
	o := &Ownership{
		mode:     mode,
		shards:   n,
		replicas: k,
		owner:    make(map[model.ObjectID]int, len(objects)),
		byShard:  make([][]model.ObjectID, n),
		universe: slices.Clone(objects),
		meta:     make(map[model.ObjectID]model.Object, len(objects)),
	}
	for _, obj := range objects {
		o.meta[obj.ID] = obj
	}
	switch mode {
	case Rendezvous:
		o.assignRendezvous(objects)
	case HTMAware:
		o.assignHTMAware(objects)
	default:
		return nil, fmt.Errorf("cluster: unknown mode %d", int(mode))
	}
	o.deriveReplicas()
	return o, nil
}

// assignRendezvous gives each object to the shard with the highest
// hash of (object, shard) — classic highest-random-weight hashing.
func (o *Ownership) assignRendezvous(objects []model.Object) {
	for _, obj := range objects {
		o.place(obj.ID, rendezvousOwner(obj.ID, o.shards))
	}
}

// rendezvousOwner returns the highest-random-weight shard for an
// object at the given shard count. It is a pure function, which is
// what makes rendezvous growth free: a newborn's owner needs no state
// beyond (id, shards).
func rendezvousOwner(id model.ObjectID, shards int) int {
	best, bestScore := 0, uint64(0)
	for s := 0; s < shards; s++ {
		score := mix64(uint64(id)<<32 | uint64(s)&0xFFFFFFFF)
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousRanked returns the k highest-random-weight shards for an
// object, best first — the full ranked list rendezvous hashing induces,
// truncated to the replication factor. rendezvousRanked(id, n, 1)[0]
// equals rendezvousOwner(id, n); ties break toward the lower shard
// index, matching rendezvousOwner's strict-greater comparison.
func rendezvousRanked(id model.ObjectID, shards, k int) []int {
	type scored struct {
		shard int
		score uint64
	}
	all := make([]scored, shards)
	for s := 0; s < shards; s++ {
		all[s] = scored{shard: s, score: mix64(uint64(id)<<32 | uint64(s)&0xFFFFFFFF)}
	}
	slices.SortFunc(all, func(a, b scored) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return a.shard - b.shard
	})
	if k > shards {
		k = shards
	}
	ranked := make([]int, k)
	for i := 0; i < k; i++ {
		ranked[i] = all[i].shard
	}
	return ranked
}

// deriveReplicas rebuilds the ranked replica sets and the per-shard
// held lists from the primary assignment. Rendezvous takes the top-K
// of the ranked score list; HTMAware assigns ranks to the K cuts
// starting at the owning one and walking right along the spatial order
// (mod shards), so a shard's replica set is its two spatially adjacent
// neighbors' primaries — contiguity is preserved at every rank.
func (o *Ownership) deriveReplicas() {
	k := o.replicas
	if k < 1 {
		k = 1
	}
	if k > o.shards {
		k = o.shards
	}
	o.owners = make(map[model.ObjectID][]int, len(o.owner))
	o.byShard = make([][]model.ObjectID, o.shards)
	for _, u := range o.universe {
		id := u.ID
		var ranked []int
		switch o.mode {
		case Rendezvous:
			ranked = rendezvousRanked(id, o.shards, k)
		default: // HTMAware: the owning cut plus its right neighbors
			ranked = make([]int, k)
			c := o.owner[id]
			for r := 0; r < k; r++ {
				ranked[r] = (c + r) % o.shards
			}
		}
		o.owner[id] = ranked[0]
		o.owners[id] = ranked
		for _, s := range ranked {
			o.byShard[s] = append(o.byShard[s], id)
		}
	}
	for s := range o.byShard {
		slices.Sort(o.byShard[s])
	}
}

// assignHTMAware sorts the universe spatially (by trixel ID, which
// orders the HTM mesh depth-first so numeric neighbors are spatial
// neighbors) and cuts it into n contiguous, size-balanced runs.
// Objects without a trixel (a non-HTM universe) fall back to ID order,
// which the survey builder also derives from sky position.
func (o *Ownership) assignHTMAware(objects []model.Object) {
	sorted := make([]model.Object, len(objects))
	copy(sorted, objects)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Trixel != sorted[b].Trixel {
			return sorted[a].Trixel < sorted[b].Trixel
		}
		return sorted[a].ID < sorted[b].ID
	})
	var total int64
	for _, obj := range sorted {
		total += int64(obj.Size)
	}
	// Greedy balanced cut: close the current run once it reaches its
	// fair share of the remaining weight, always leaving enough
	// objects to populate the remaining shards.
	shard, acc := 0, int64(0)
	remaining, remainingShards := total, int64(o.shards)
	for i, obj := range sorted {
		objectsLeft := len(sorted) - i
		shardsLeft := o.shards - shard
		if shard < o.shards-1 && acc > 0 &&
			(acc+int64(obj.Size)/2 >= remaining/remainingShards || objectsLeft <= shardsLeft) {
			remaining -= acc
			remainingShards--
			shard++
			acc = 0
		}
		o.place(obj.ID, shard)
		acc += int64(obj.Size)
	}
}

func (o *Ownership) place(id model.ObjectID, shard int) {
	o.owner[id] = shard
	o.byShard[shard] = append(o.byShard[shard], id)
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed 64-bit
// mixer for rendezvous scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Resize derives the ownership of the same universe over m shards,
// aligned to o so that as little cached state as possible moves:
//
//   - Rendezvous is inherently stable — growing adds only the objects
//     the new shards win, shrinking redistributes only the removed
//     shards' objects — so the fresh assignment is already aligned.
//   - HTMAware recuts the spatially sorted universe into m balanced
//     runs and then relabels the runs to maximize the total size of
//     objects keeping their old owner index (greedy maximum-overlap
//     matching). Without the relabeling a 4→8 recut would renumber
//     every run and "move" nearly the whole universe even though the
//     cuts barely shifted.
//
// The result is deterministic, so a router and an out-of-band tool
// compute identical resized maps from the same inputs.
func (o *Ownership) Resize(m int) (*Ownership, error) {
	if m == o.shards {
		return o, nil
	}
	n, err := NewOwnershipReplicated(o.universe, m, o.replicas, o.mode)
	if err != nil {
		return nil, err
	}
	if o.mode == HTMAware {
		n.relabel(o)
	}
	return n, nil
}

// relabel permutes n's shard indices to maximize the total object size
// that keeps its owner from o (labels ≥ n.shards cannot be kept when
// shrinking). Greedy by descending overlap, which is optimal for the
// contiguous-run structure HTM cuts produce: a new run overlaps at
// most a few old runs, and overlaps are nested along the spatial
// order.
func (n *Ownership) relabel(o *Ownership) {
	size := make(map[model.ObjectID]cost.Bytes, len(n.universe))
	for _, obj := range n.universe {
		size[obj.ID] = obj.Size
	}
	type overlap struct {
		raw, label int
		bytes      cost.Bytes
	}
	byPair := make(map[[2]int]cost.Bytes)
	for id, raw := range n.owner {
		old, ok := o.owner[id]
		if !ok || old >= n.shards {
			continue
		}
		byPair[[2]int{raw, old}] += size[id]
	}
	cands := make([]overlap, 0, len(byPair))
	for pair, b := range byPair {
		cands = append(cands, overlap{raw: pair[0], label: pair[1], bytes: b})
	}
	slices.SortFunc(cands, func(a, b overlap) int {
		if a.bytes != b.bytes {
			if a.bytes > b.bytes {
				return -1
			}
			return 1
		}
		if a.raw != b.raw {
			return a.raw - b.raw
		}
		return a.label - b.label
	})
	perm := make([]int, n.shards) // raw index → final label
	for i := range perm {
		perm[i] = -1
	}
	labelUsed := make([]bool, n.shards)
	for _, c := range cands {
		if perm[c.raw] == -1 && !labelUsed[c.label] {
			perm[c.raw] = c.label
			labelUsed[c.label] = true
		}
	}
	next := 0
	for raw := range perm {
		if perm[raw] != -1 {
			continue
		}
		for labelUsed[next] {
			next++
		}
		perm[raw] = next
		labelUsed[next] = true
	}
	for id, raw := range n.owner {
		n.owner[id] = perm[raw]
	}
	// The HTM replica rule is anchored to primary labels, so the
	// permutation invalidates the derived sets — rebuild them.
	n.deriveReplicas()
}

// Extend derives the ownership of the universe grown by newly born
// objects, at the same shard count. Extension never relabels existing
// assignments — only the newborns are placed:
//
//   - Rendezvous placement is free: the newborn's owner is the pure
//     hash function of (id, shard count), no state consulted.
//   - HTMAware places the newborn in the cut that spatially contains
//     it: the owner of its predecessor in the (trixel, ID) sort order
//     the cuts were made over (births inherit their partition cell's
//     trixel, so the predecessor is the cell's base object or an
//     earlier sibling birth). No existing object moves.
//
// The returned ownership retains the grown universe, so a later Resize
// recuts over newborns and base objects alike. Deterministic: every
// party extends to the identical map. A newborn already owned is an
// error — callers deduplicate against the current universe.
func (o *Ownership) Extend(objs []model.Object) (*Ownership, error) {
	if len(objs) == 0 {
		return o, nil
	}
	n := &Ownership{
		mode:     o.mode,
		shards:   o.shards,
		replicas: o.replicas,
		owner:    make(map[model.ObjectID]int, len(o.owner)+len(objs)),
		universe: make([]model.Object, 0, len(o.universe)+len(objs)),
		meta:     make(map[model.ObjectID]model.Object, len(o.universe)+len(objs)),
	}
	for id, s := range o.owner {
		n.owner[id] = s
	}
	for id, obj := range o.meta {
		n.meta[id] = obj
	}
	n.universe = append(n.universe, o.universe...)
	for _, obj := range objs {
		if _, dup := n.owner[obj.ID]; dup {
			return nil, fmt.Errorf("cluster: extend with already-owned object %d", obj.ID)
		}
		var s int
		switch o.mode {
		case Rendezvous:
			s = rendezvousOwner(obj.ID, o.shards)
		case HTMAware:
			s = n.cutOwner(obj)
		default:
			return nil, fmt.Errorf("cluster: unknown mode %d", int(o.mode))
		}
		n.owner[obj.ID] = s
		n.universe = append(n.universe, obj)
		n.meta[obj.ID] = obj
	}
	n.deriveReplicas()
	return n, nil
}

// cutOwner returns the shard whose contiguous HTM cut contains the
// newborn: the owner of its predecessor in the (trixel, ID) order the
// cuts were made over, falling back to the spatially first object for
// a newborn before every cut.
func (n *Ownership) cutOwner(obj model.Object) int {
	bestOwner, haveBest := -1, false
	var bestT uint64
	var bestID model.ObjectID
	firstOwner := 0
	var firstT uint64
	var firstID model.ObjectID
	haveFirst := false
	for _, u := range n.universe {
		t, id := u.Trixel, u.ID
		if !haveFirst || t < firstT || (t == firstT && id < firstID) {
			firstT, firstID, firstOwner = t, id, n.owner[u.ID]
			haveFirst = true
		}
		if t > obj.Trixel || (t == obj.Trixel && id > obj.ID) {
			continue // past the newborn in cut order
		}
		if !haveBest || t > bestT || (t == bestT && id > bestID) {
			bestT, bestID, bestOwner = t, id, n.owner[u.ID]
			haveBest = true
		}
	}
	if haveBest {
		return bestOwner
	}
	return firstOwner
}

// Objects returns the metadata of the given owned objects, in input
// order — what a reshard command ships so shards can take ownership of
// objects born after they spawned. Unknown IDs are skipped.
func (o *Ownership) Objects(ids []model.ObjectID) []model.Object {
	out := make([]model.Object, 0, len(ids))
	for _, id := range ids {
		if u, ok := o.meta[id]; ok {
			out = append(out, u)
		}
	}
	return out
}

// Moving returns the objects whose owning shard index differs between
// two ownerships of the same universe, sorted by ID — exactly the set
// a live resize must migrate. An object known to only one side is an
// error: the ownerships describe different universes.
func Moving(from, to *Ownership) ([]model.ObjectID, error) {
	if len(from.owner) != len(to.owner) {
		return nil, fmt.Errorf("cluster: ownerships span %d vs %d objects", len(from.owner), len(to.owner))
	}
	var moving []model.ObjectID
	for id, src := range from.owner {
		dst, ok := to.owner[id]
		if !ok {
			return nil, fmt.Errorf("cluster: object %d missing from target ownership", id)
		}
		if src != dst {
			moving = append(moving, id)
		}
	}
	slices.Sort(moving)
	return moving, nil
}

// Universe returns the object universe this ownership spans (base
// objects plus any births it was extended with).
func (o *Ownership) Universe() []model.Object {
	return slices.Clone(o.universe)
}

// Mode returns the assignment mode.
func (o *Ownership) Mode() Mode { return o.mode }

// Shards returns the shard count.
func (o *Ownership) Shards() int { return o.shards }

// Replicas returns the requested replication factor K (the effective
// per-object factor is min(K, Shards())).
func (o *Ownership) Replicas() int { return o.replicas }

// Owner returns the primary shard owning an object, or false for an
// object outside the universe.
func (o *Ownership) Owner(id model.ObjectID) (int, bool) {
	s, ok := o.owner[id]
	return s, ok
}

// Owners returns an object's ranked replica set — primary first, then
// the failover order — or false for an object outside the universe.
// The returned slice is a copy.
func (o *Ownership) Owners(id model.ObjectID) ([]int, bool) {
	ranked, ok := o.owners[id]
	if !ok {
		return nil, false
	}
	return slices.Clone(ranked), true
}

// ShardObjects returns the objects shard s holds at any replica rank,
// sorted by ID.
func (o *Ownership) ShardObjects(s int) []model.ObjectID {
	out := make([]model.ObjectID, len(o.byShard[s]))
	copy(out, o.byShard[s])
	return out
}

// Filter returns the shard-local object predicate for
// cache.Config.ObjectFilter: true for objects the shard holds at any
// replica rank. Objects outside the cluster's universe are owned by
// nobody (a shard whose survey config disagrees with the router's must
// reject the strays, not adopt them).
func (o *Ownership) Filter(s int) func(model.ObjectID) bool {
	return func(id model.ObjectID) bool {
		for _, owner := range o.owners[id] {
			if owner == s {
				return true
			}
		}
		return false
	}
}

// Split partitions a query's object set by owning shard (shard indices
// map to sorted object subsets, preserving the input's order within
// each subset). An object outside the universe is an error: it means
// the client and the cluster disagree about the survey.
func (o *Ownership) Split(objs []model.ObjectID) (map[int][]model.ObjectID, error) {
	parts := make(map[int][]model.ObjectID)
	for _, id := range objs {
		s, ok := o.owner[id]
		if !ok {
			return nil, fmt.Errorf("cluster: object %d is outside the cluster's universe", id)
		}
		parts[s] = append(parts[s], id)
	}
	return parts, nil
}
