// Package cluster scales the Delta middleware out: a partition-aware
// routing tier that fronts N independent cache shards, each a full
// cache.Middleware owning a deterministic subset of the data objects.
// Ownership needs no coordination service — it is a pure function of
// the object universe, the shard count, and the assignment mode, so
// the router, every shard, and any out-of-band tool (delta-cache
// -shard-index) compute identical maps from the shared survey config.
//
// The router scatters multi-object queries to the owning shards over
// multiplexed netproto sessions, gathers and merges the fragments, and
// degrades gracefully when a shard dies: surviving fragments are
// returned with a Degraded flag instead of failing the query. Stats
// aggregate the same way, so a client sees one cache regardless of the
// shard count.
package cluster

import (
	"fmt"
	"slices"
	"sort"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// Mode selects how object ownership maps to shards.
type Mode int

const (
	// Rendezvous assigns each object independently by
	// highest-random-weight hashing of (object, shard). Ownership is
	// stable under shard-count changes: resizing from N to N+1 moves
	// only the objects the new shard wins, never reshuffles the rest.
	Rendezvous Mode = iota
	// HTMAware assigns contiguous runs of the spatially sorted object
	// list (HTM trixel order) to shards, balanced by object size.
	// Spatially adjacent objects co-locate, so a cap query's cover —
	// always a spatially contiguous object set — touches few shards.
	HTMAware
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Rendezvous:
		return "rendezvous"
	case HTMAware:
		return "htm"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a mode name as used by command-line flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "rendezvous":
		return Rendezvous, nil
	case "htm", "htm-aware":
		return HTMAware, nil
	default:
		return 0, fmt.Errorf("cluster: unknown ownership mode %q (want rendezvous|htm)", s)
	}
}

// Ownership is the deterministic object→shard assignment shared by the
// router and every shard. It is immutable after construction and safe
// for concurrent use; Resize derives a new Ownership rather than
// mutating this one.
//
// The representation is position-indexed: survey universes carry dense
// sequential IDs (1..N, births continuing the sequence), so the
// primary owner and the ranked replica sets live in flat slices
// indexed by universe position — 4 bytes and 4·K bytes per object —
// instead of per-object map entries and ranked []int allocations,
// which at a million objects cost hundreds of megabytes and dominated
// construction time under the race detector. Universes with
// non-sequential IDs fall back to an explicit index map.
type Ownership struct {
	mode   Mode
	shards int
	// replicas is the requested replication factor K (≥ 1); kEff is
	// the effective per-object factor min(replicas, shards).
	replicas int
	kEff     int
	// universe is the object set the assignment was computed over,
	// retained so Resize can recompute ownership at a new shard count.
	universe []model.Object
	// seq records that universe[i].ID == i+1 for every i, making
	// position lookup arithmetic; idx is the fallback index otherwise.
	seq bool
	idx map[model.ObjectID]int
	// owner[i] is the rank-0 (primary) shard of universe[i].
	owner []int32
	// ownersFlat holds the ranked replica sets back to back:
	// universe[i]'s set is ownersFlat[i*kEff : (i+1)*kEff], rank 0
	// first, entries distinct.
	ownersFlat []int32
	// byShard[s] lists the objects shard s holds at any replica rank,
	// sorted by ID.
	byShard [][]model.ObjectID
}

// NewOwnership assigns every object in the universe to one of n shards
// without replication (K=1).
func NewOwnership(objects []model.Object, n int, mode Mode) (*Ownership, error) {
	return NewOwnershipReplicated(objects, n, 1, mode)
}

// NewOwnershipReplicated assigns every object in the universe to a
// ranked set of min(k, n) distinct shards. Rank 0 is the primary — the
// shard queries route to first — and ranks 1..K-1 are failover and
// hedging targets holding warm copies. Like the unreplicated form, the
// assignment is a pure function of (universe, n, k, mode), so every
// party computes identical replica sets with no coordination.
func NewOwnershipReplicated(objects []model.Object, n, k int, mode Mode) (*Ownership, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: shard count must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: replication factor must be positive, got %d", k)
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("cluster: empty object universe")
	}
	if len(objects) < n {
		return nil, fmt.Errorf("cluster: %d objects cannot populate %d shards", len(objects), n)
	}
	o := &Ownership{
		mode:     mode,
		shards:   n,
		replicas: k,
		kEff:     min(k, n),
		universe: slices.Clone(objects),
		owner:    make([]int32, len(objects)),
	}
	o.reindex()
	switch mode {
	case Rendezvous:
		o.assignRendezvous()
	case HTMAware:
		o.assignHTMAware()
	default:
		return nil, fmt.Errorf("cluster: unknown mode %d", int(mode))
	}
	o.deriveReplicas()
	return o, nil
}

// reindex establishes position lookup: the sequential fast path when
// IDs are dense 1..N, an index map otherwise.
func (o *Ownership) reindex() {
	o.seq = true
	for i := range o.universe {
		if o.universe[i].ID != model.ObjectID(i+1) {
			o.seq = false
			break
		}
	}
	if o.seq {
		o.idx = nil
		return
	}
	o.idx = make(map[model.ObjectID]int, len(o.universe))
	for i := range o.universe {
		o.idx[o.universe[i].ID] = i
	}
}

// pos returns the universe position of an object, or false for an
// object outside the universe.
func (o *Ownership) pos(id model.ObjectID) (int, bool) {
	if o.seq {
		p := int(id) - 1
		if p >= 0 && p < len(o.universe) {
			return p, true
		}
		return 0, false
	}
	p, ok := o.idx[id]
	return p, ok
}

// assignRendezvous gives each object to the shard with the highest
// hash of (object, shard) — classic highest-random-weight hashing.
func (o *Ownership) assignRendezvous() {
	for i := range o.universe {
		o.owner[i] = int32(rendezvousOwner(o.universe[i].ID, o.shards))
	}
}

// rendezvousOwner returns the highest-random-weight shard for an
// object at the given shard count. It is a pure function, which is
// what makes rendezvous growth free: a newborn's owner needs no state
// beyond (id, shards).
func rendezvousOwner(id model.ObjectID, shards int) int {
	best, bestScore := 0, uint64(0)
	for s := 0; s < shards; s++ {
		score := mix64(uint64(id)<<32 | uint64(s)&0xFFFFFFFF)
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousRankInto writes the len(out) highest-random-weight shards
// for an object into out, best first — the ranked list rendezvous
// hashing induces, truncated to the replication factor, computed
// without any allocation. Ties break toward the lower shard index,
// matching rendezvousOwner's strict-greater comparison, so
// out[0] always equals rendezvousOwner(id, shards).
func rendezvousRankInto(id model.ObjectID, shards int, out []int32) {
	for r := range out {
		best, bestScore := -1, uint64(0)
		for s := 0; s < shards; s++ {
			taken := false
			for _, prev := range out[:r] {
				if int(prev) == s {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			score := mix64(uint64(id)<<32 | uint64(s)&0xFFFFFFFF)
			if best == -1 || score > bestScore {
				best, bestScore = s, score
			}
		}
		out[r] = int32(best)
	}
}

// deriveReplicas rebuilds the ranked replica sets and the per-shard
// held lists from the primary assignment. Rendezvous takes the top-K
// of the ranked score list; HTMAware assigns ranks to the K cuts
// starting at the owning one and walking right along the spatial order
// (mod shards), so a shard's replica set is its two spatially adjacent
// neighbors' primaries — contiguity is preserved at every rank.
func (o *Ownership) deriveReplicas() {
	k := o.kEff
	o.ownersFlat = make([]int32, len(o.universe)*k)
	counts := make([]int, o.shards)
	for i := range o.universe {
		ranked := o.ownersFlat[i*k : (i+1)*k]
		switch o.mode {
		case Rendezvous:
			rendezvousRankInto(o.universe[i].ID, o.shards, ranked)
		default: // HTMAware: the owning cut plus its right neighbors
			c := o.owner[i]
			for r := 0; r < k; r++ {
				ranked[r] = (c + int32(r)) % int32(o.shards)
			}
		}
		o.owner[i] = ranked[0]
		for _, s := range ranked {
			counts[s]++
		}
	}
	o.byShard = make([][]model.ObjectID, o.shards)
	for s := range o.byShard {
		o.byShard[s] = make([]model.ObjectID, 0, counts[s])
	}
	for i := range o.universe {
		id := o.universe[i].ID
		for _, s := range o.ownersFlat[i*k : (i+1)*k] {
			o.byShard[s] = append(o.byShard[s], id)
		}
	}
	for s := range o.byShard {
		// Universe order already yields ascending IDs on the
		// sequential fast path; sort only when it does not.
		if !slices.IsSorted(o.byShard[s]) {
			slices.Sort(o.byShard[s])
		}
	}
}

// assignHTMAware sorts the universe spatially (by trixel ID, which
// orders the HTM mesh depth-first so numeric neighbors are spatial
// neighbors) and cuts it into n contiguous, size-balanced runs.
// Objects without a trixel (a non-HTM universe) fall back to ID order,
// which the survey builder also derives from sky position.
func (o *Ownership) assignHTMAware() {
	order := make([]int, len(o.universe))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := &o.universe[order[a]], &o.universe[order[b]]
		if oa.Trixel != ob.Trixel {
			return oa.Trixel < ob.Trixel
		}
		return oa.ID < ob.ID
	})
	var total int64
	for i := range o.universe {
		total += int64(o.universe[i].Size)
	}
	// Greedy balanced cut: close the current run once it reaches its
	// fair share of the remaining weight, always leaving enough
	// objects to populate the remaining shards.
	shard, acc := 0, int64(0)
	remaining, remainingShards := total, int64(o.shards)
	for i, p := range order {
		size := int64(o.universe[p].Size)
		objectsLeft := len(order) - i
		shardsLeft := o.shards - shard
		if shard < o.shards-1 && acc > 0 &&
			(acc+size/2 >= remaining/remainingShards || objectsLeft <= shardsLeft) {
			remaining -= acc
			remainingShards--
			shard++
			acc = 0
		}
		o.owner[p] = int32(shard)
		acc += size
	}
}

// mix64 is splitmix64's finalizer: a cheap, well-distributed 64-bit
// mixer for rendezvous scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Resize derives the ownership of the same universe over m shards,
// aligned to o so that as little cached state as possible moves:
//
//   - Rendezvous is inherently stable — growing adds only the objects
//     the new shards win, shrinking redistributes only the removed
//     shards' objects — so the fresh assignment is already aligned.
//   - HTMAware recuts the spatially sorted universe into m balanced
//     runs and then relabels the runs to maximize the total size of
//     objects keeping their old owner index (greedy maximum-overlap
//     matching). Without the relabeling a 4→8 recut would renumber
//     every run and "move" nearly the whole universe even though the
//     cuts barely shifted.
//
// The result is deterministic, so a router and an out-of-band tool
// compute identical resized maps from the same inputs.
func (o *Ownership) Resize(m int) (*Ownership, error) {
	if m == o.shards {
		return o, nil
	}
	n, err := NewOwnershipReplicated(o.universe, m, o.replicas, o.mode)
	if err != nil {
		return nil, err
	}
	if o.mode == HTMAware {
		n.relabel(o)
	}
	return n, nil
}

// relabel permutes n's shard indices to maximize the total object size
// that keeps its owner from o (labels ≥ n.shards cannot be kept when
// shrinking). Greedy by descending overlap, which is optimal for the
// contiguous-run structure HTM cuts produce: a new run overlaps at
// most a few old runs, and overlaps are nested along the spatial
// order.
func (n *Ownership) relabel(o *Ownership) {
	// pairBytes[raw*n.shards+label] accumulates the object bytes that
	// keep their owner if raw run index `raw` takes old label `label`.
	pairBytes := make([]cost.Bytes, n.shards*n.shards)
	for pos := range n.universe {
		obj := &n.universe[pos]
		oldPos, ok := o.pos(obj.ID)
		if !ok {
			continue
		}
		old := int(o.owner[oldPos])
		if old >= n.shards {
			continue
		}
		pairBytes[int(n.owner[pos])*n.shards+old] += obj.Size
	}
	type overlap struct {
		raw, label int
		bytes      cost.Bytes
	}
	cands := make([]overlap, 0, len(pairBytes))
	for i, b := range pairBytes {
		if b > 0 {
			cands = append(cands, overlap{raw: i / n.shards, label: i % n.shards, bytes: b})
		}
	}
	slices.SortFunc(cands, func(a, b overlap) int {
		if a.bytes != b.bytes {
			if a.bytes > b.bytes {
				return -1
			}
			return 1
		}
		if a.raw != b.raw {
			return a.raw - b.raw
		}
		return a.label - b.label
	})
	perm := make([]int, n.shards) // raw index → final label
	for i := range perm {
		perm[i] = -1
	}
	labelUsed := make([]bool, n.shards)
	for _, c := range cands {
		if perm[c.raw] == -1 && !labelUsed[c.label] {
			perm[c.raw] = c.label
			labelUsed[c.label] = true
		}
	}
	next := 0
	for raw := range perm {
		if perm[raw] != -1 {
			continue
		}
		for labelUsed[next] {
			next++
		}
		perm[raw] = next
		labelUsed[next] = true
	}
	for pos := range n.owner {
		n.owner[pos] = int32(perm[n.owner[pos]])
	}
	// The HTM replica rule is anchored to primary labels, so the
	// permutation invalidates the derived sets — rebuild them.
	n.deriveReplicas()
}

// Extend derives the ownership of the universe grown by newly born
// objects, at the same shard count. Extension never relabels existing
// assignments — only the newborns are placed:
//
//   - Rendezvous placement is free: the newborn's owner is the pure
//     hash function of (id, shard count), no state consulted.
//   - HTMAware places the newborn in the cut that spatially contains
//     it: the owner of its predecessor in the (trixel, ID) sort order
//     the cuts were made over (births inherit their partition cell's
//     trixel, so the predecessor is the cell's base object or an
//     earlier sibling birth). No existing object moves.
//
// The returned ownership retains the grown universe, so a later Resize
// recuts over newborns and base objects alike. Deterministic: every
// party extends to the identical map. A newborn already owned is an
// error — callers deduplicate against the current universe.
func (o *Ownership) Extend(objs []model.Object) (*Ownership, error) {
	if len(objs) == 0 {
		return o, nil
	}
	added := make(map[model.ObjectID]struct{}, len(objs))
	for _, obj := range objs {
		if _, dup := o.pos(obj.ID); dup {
			return nil, fmt.Errorf("cluster: extend with already-owned object %d", obj.ID)
		}
		if _, dup := added[obj.ID]; dup {
			return nil, fmt.Errorf("cluster: extend with already-owned object %d", obj.ID)
		}
		added[obj.ID] = struct{}{}
	}
	n := &Ownership{
		mode:     o.mode,
		shards:   o.shards,
		replicas: o.replicas,
		kEff:     o.kEff,
		universe: make([]model.Object, 0, len(o.universe)+len(objs)),
		owner:    make([]int32, len(o.universe)+len(objs)),
	}
	n.universe = append(n.universe, o.universe...)
	n.universe = append(n.universe, objs...)
	n.reindex()
	copy(n.owner, o.owner)
	for i, obj := range objs {
		p := len(o.universe) + i
		switch o.mode {
		case Rendezvous:
			n.owner[p] = int32(rendezvousOwner(obj.ID, o.shards))
		case HTMAware:
			n.owner[p] = int32(n.cutOwner(obj, p))
		default:
			return nil, fmt.Errorf("cluster: unknown mode %d", int(o.mode))
		}
	}
	n.deriveReplicas()
	return n, nil
}

// cutOwner returns the shard whose contiguous HTM cut contains the
// newborn: the owner of its predecessor in the (trixel, ID) order the
// cuts were made over, falling back to the spatially first object for
// a newborn before every cut. Only universe[:limit] — the objects
// placed before this newborn — participates.
func (n *Ownership) cutOwner(obj model.Object, limit int) int {
	bestOwner, haveBest := -1, false
	var bestT uint64
	var bestID model.ObjectID
	firstOwner := 0
	var firstT uint64
	var firstID model.ObjectID
	haveFirst := false
	for p := 0; p < limit; p++ {
		u := &n.universe[p]
		t, id := u.Trixel, u.ID
		if !haveFirst || t < firstT || (t == firstT && id < firstID) {
			firstT, firstID, firstOwner = t, id, int(n.owner[p])
			haveFirst = true
		}
		if t > obj.Trixel || (t == obj.Trixel && id > obj.ID) {
			continue // past the newborn in cut order
		}
		if !haveBest || t > bestT || (t == bestT && id > bestID) {
			bestT, bestID, bestOwner = t, id, int(n.owner[p])
			haveBest = true
		}
	}
	if haveBest {
		return bestOwner
	}
	return firstOwner
}

// Objects returns the metadata of the given owned objects, in input
// order — what a reshard command ships so shards can take ownership of
// objects born after they spawned. Unknown IDs are skipped.
func (o *Ownership) Objects(ids []model.ObjectID) []model.Object {
	out := make([]model.Object, 0, len(ids))
	for _, id := range ids {
		if p, ok := o.pos(id); ok {
			out = append(out, o.universe[p])
		}
	}
	return out
}

// Moving returns the objects whose owning shard index differs between
// two ownerships of the same universe, sorted by ID — exactly the set
// a live resize must migrate. An object known to only one side is an
// error: the ownerships describe different universes.
func Moving(from, to *Ownership) ([]model.ObjectID, error) {
	if len(from.universe) != len(to.universe) {
		return nil, fmt.Errorf("cluster: ownerships span %d vs %d objects",
			len(from.universe), len(to.universe))
	}
	var moving []model.ObjectID
	for p := range from.universe {
		id := from.universe[p].ID
		tp, ok := to.pos(id)
		if !ok {
			return nil, fmt.Errorf("cluster: object %d missing from target ownership", id)
		}
		if from.owner[p] != to.owner[tp] {
			moving = append(moving, id)
		}
	}
	if !slices.IsSorted(moving) {
		slices.Sort(moving)
	}
	return moving, nil
}

// Universe returns a copy of the object universe this ownership spans
// (base objects plus any births it was extended with). Same-package
// callers on hot paths read o.universe directly instead of cloning.
func (o *Ownership) Universe() []model.Object {
	return slices.Clone(o.universe)
}

// Mode returns the assignment mode.
func (o *Ownership) Mode() Mode { return o.mode }

// Shards returns the shard count.
func (o *Ownership) Shards() int { return o.shards }

// Replicas returns the requested replication factor K (the effective
// per-object factor is min(K, Shards())).
func (o *Ownership) Replicas() int { return o.replicas }

// Owner returns the primary shard owning an object, or false for an
// object outside the universe.
func (o *Ownership) Owner(id model.ObjectID) (int, bool) {
	p, ok := o.pos(id)
	if !ok {
		return 0, false
	}
	return int(o.owner[p]), true
}

// Owners returns an object's ranked replica set — primary first, then
// the failover order — or false for an object outside the universe.
// The returned slice is a copy.
func (o *Ownership) Owners(id model.ObjectID) ([]int, bool) {
	p, ok := o.pos(id)
	if !ok {
		return nil, false
	}
	ranked := make([]int, o.kEff)
	for r, s := range o.ownersFlat[p*o.kEff : (p+1)*o.kEff] {
		ranked[r] = int(s)
	}
	return ranked, true
}

// ShardObjects returns the objects shard s holds at any replica rank,
// sorted by ID.
func (o *Ownership) ShardObjects(s int) []model.ObjectID {
	out := make([]model.ObjectID, len(o.byShard[s]))
	copy(out, o.byShard[s])
	return out
}

// Filter returns the shard-local object predicate for
// cache.Config.ObjectFilter: true for objects the shard holds at any
// replica rank. Objects outside the cluster's universe are owned by
// nobody (a shard whose survey config disagrees with the router's must
// reject the strays, not adopt them).
func (o *Ownership) Filter(s int) func(model.ObjectID) bool {
	return func(id model.ObjectID) bool {
		p, ok := o.pos(id)
		if !ok {
			return false
		}
		for _, owner := range o.ownersFlat[p*o.kEff : (p+1)*o.kEff] {
			if int(owner) == s {
				return true
			}
		}
		return false
	}
}

// Split partitions a query's object set by owning shard (shard indices
// map to sorted object subsets, preserving the input's order within
// each subset). An object outside the universe is an error: it means
// the client and the cluster disagree about the survey.
func (o *Ownership) Split(objs []model.ObjectID) (map[int][]model.ObjectID, error) {
	parts := make(map[int][]model.ObjectID)
	for _, id := range objs {
		p, ok := o.pos(id)
		if !ok {
			return nil, fmt.Errorf("cluster: object %d is outside the cluster's universe", id)
		}
		parts[int(o.owner[p])] = append(parts[int(o.owner[p])], id)
	}
	return parts, nil
}
