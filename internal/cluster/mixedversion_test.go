package cluster_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// TestMixedWireVersionSoak is the mixed-codec topology soak: one shard
// pinned at the gob v2 codec inside an otherwise-v3 cluster (router,
// repository, remaining shards and clients all negotiate v3), driven
// through the growth + live-resize sequence of the growth soak. Every
// query must succeed — the codec split must be invisible above the
// wire — and the pinned shard must still be pinned after the 4→8
// resize respawns topology around it.
func TestMixedWireVersionSoak(t *testing.T) {
	const (
		nClients    = 16
		nBase       = 32
		nBirths     = 16
		burstSize   = 4
		pinnedShard = 1
	)
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   4,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
		ShardWireVersion: func(shard int) int {
			if shard == pinnedShard {
				return netproto.ProtoV2
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// The codec split must be real: dialing the pinned shard directly
	// negotiates v2, a default shard negotiates v3.
	assertShardVersion := func(shard, want int) {
		t.Helper()
		probe, err := client.Dial(lc.Shards[shard].Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer probe.Close()
		if got := probe.WireVersion(); got != want {
			t.Fatalf("shard %d negotiated v%d, want v%d", shard, got, want)
		}
	}
	assertShardVersion(pinnedShard, netproto.ProtoV2)
	assertShardVersion(0, netproto.ProtoV3)

	var (
		knownMu sync.RWMutex
		known   []model.ObjectID
	)
	for _, o := range repoSurvey.Objects() {
		known = append(known, o.ID)
	}

	var (
		stop   atomic.Bool
		served atomic.Int64
		wg     sync.WaitGroup
	)
	for c := 0; c < nClients; c++ {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(c int, cl *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 77))
			for i := 0; !stop.Load(); i++ {
				knownMu.RLock()
				ids := []model.ObjectID{known[rng.Intn(len(known))]}
				if rng.Intn(3) == 0 { // force cross-shard (and cross-codec) scatters
					extra := known[rng.Intn(len(known))]
					if extra != ids[0] {
						ids = append(ids, extra)
					}
				}
				knownMu.RUnlock()
				res, err := cl.Query(ctx, model.Query{
					Objects:   ids,
					Cost:      cost.KB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i) * time.Millisecond,
				})
				if err != nil {
					t.Errorf("client %d query %d failed: %v", c, i, err)
					return
				}
				if res.Degraded {
					t.Errorf("client %d query %d degraded on a healthy mixed cluster", c, i)
					return
				}
				served.Add(1)
			}
		}(c, cl)
	}

	// Growth bursts with a live 4→8 resize overlapping the middle one,
	// exactly like the all-v3 soak.
	growCl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer growCl.Close()
	growRng := rand.New(rand.NewSource(4242))
	resizeDone := make(chan error, 1)
	for burst := 0; burst < nBirths/burstSize; burst++ {
		if burst == nBirths/burstSize/2 {
			go func() {
				_, err := lc.Resize(ctx, 8, false)
				resizeDone <- err
			}()
		}
		births, err := mirror.GrowObjects(growRng, burstSize, time.Duration(burst)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := growCl.AddObjects(ctx, births); err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		knownMu.Lock()
		for _, b := range births {
			known = append(known, b.Object.ID)
		}
		knownMu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-resizeDone; err != nil {
		t.Fatalf("resize during mixed-version soak: %v", err)
	}

	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no queries served during the soak")
	}

	// The pinned shard survived the resize pinned; its siblings stayed
	// on v3; and the routing universe spans the grown object set.
	assertShardVersion(pinnedShard, netproto.ProtoV2)
	assertShardVersion(0, netproto.ProtoV3)
	own := lc.Router.Ownership()
	if got := len(own.Universe()); got != nBase+nBirths {
		t.Errorf("routing universe = %d objects, want %d", got, nBase+nBirths)
	}
	if own.Shards() != 8 {
		t.Errorf("final shard count = %d, want 8", own.Shards())
	}
}
