// Router-tier read-path deduplication: the in-flight query coalescer
// and the invalidation-aware result cache, one structure under one
// mutex.
//
// Both layers key on the same canonical query signature — a hash of
// the query's sorted object ID set, nothing else. Cost, tolerance, and
// the virtual clock deliberately stay out of the key: the workload
// generators (and real survey clients) randomize per-query cost and
// staleness around the same hot region, and the answer the router
// assembles — which shards hold which fragments, the merged payload —
// depends only on which objects the query touches. Region queries
// resolve to object lists through the cover cache before they get
// here, so one keying covers both query forms; a birth that changes a
// region's cover changes the resolved list and therefore the
// signature, and the stale entry simply stops being addressed.
//
// Correctness edges (the reason this lives behind the repository's
// invalidation stream, and is disabled without one):
//
//   - An update to any member object evicts every cached result whose
//     ID set contains it, and poisons any in-flight scatter touching
//     it: the poisoned flight's result is neither inserted into the
//     cache nor shared with followers (a follower may have joined after
//     the invalidation arrived), so each follower falls back to its own
//     scatter.
//   - Birth adoption and resize epoch flips clear the cache wholesale
//     and poison every flight — routing changed under them.
//   - Degraded or failed leader results are never shared with
//     followers and never cached; each follower falls back to its own
//     scatter.
//
// Sharing respects the v3 frame ownership contract: the cached value
// is the router's merged QueryResultMsg, whose Payload/Rows/Spans
// slices the router itself assembled (never a pooled or per-connection
// scratch buffer), held read-only and re-stamped per client at serve
// time (fresh QueryID, cost-share Logical, trace spans).
package cluster

import (
	"container/list"
	"hash/maphash"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// DefaultResultCacheSize bounds the router's result cache when
// Config.ResultCacheSize is zero. Entries hold merged result payloads
// (each capped at netproto.MaxFrame/2), so the bound is entry-count,
// not bytes; 1024 covers the hot set of every trace-realistic scenario
// while staying far under the shards' own capacity.
const DefaultResultCacheSize = 1024

// sigSeed keys the signature hash for the process lifetime: signatures
// never cross the wire, so they need no cross-process stability.
var sigSeed = maphash.MakeSeed()

// querySignature canonicalizes a query's object set: the IDs sorted
// (callers may list them in any order) and hashed. The sorted set is
// returned too — entries keep it both to verify a hash hit against
// collisions and to answer "does this result contain object X" during
// invalidation scans.
func querySignature(objects []model.ObjectID) (uint64, []model.ObjectID) {
	ids := slices.Clone(objects)
	slices.Sort(ids)
	var h maphash.Hash
	h.SetSeed(sigSeed)
	var buf [8]byte
	for _, id := range ids {
		v := uint64(id)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64(), ids
}

// flight is one in-flight leader scatter that identical concurrent
// queries coalesce onto. The leader closes done after setting res and
// shared; followers block on done. A poisoned flight (an invalidation
// or routing change arrived mid-scatter) neither enters the cache nor
// shares its result — its followers fall back to their own scatters.
type flight struct {
	sig      uint64
	ids      []model.ObjectID // sorted member set, for invalidation scans
	done     chan struct{}
	res      netproto.QueryResultMsg // valid only when shared
	shared   bool                    // leader succeeded undegraded
	poisoned bool                    // guarded by the owning cache's mu
}

// cacheEntry is one cached merged result, addressed by signature and
// held on the LRU list.
type cacheEntry struct {
	sig uint64
	ids []model.ObjectID // sorted member set
	res netproto.QueryResultMsg
	elt *list.Element
}

// resultCache is the router's combined singleflight + LRU result
// cache. All methods are nil-receiver safe no-ops so an unconfigured
// router (no repository, hence no invalidation stream) costs nothing
// on the query path.
type resultCache struct {
	mu      sync.Mutex
	size    int
	entries map[uint64]*cacheEntry
	lru     *list.List // front = most recent; values are *cacheEntry
	flights map[uint64]*flight

	hits          atomic.Int64
	misses        atomic.Int64
	coalesced     atomic.Int64
	invalidations atomic.Int64
}

func newResultCache(size int) *resultCache {
	if size <= 0 {
		size = DefaultResultCacheSize
	}
	return &resultCache{
		size:    size,
		entries: make(map[uint64]*cacheEntry),
		lru:     list.New(),
		flights: make(map[uint64]*flight),
	}
}

// begin is the read-path entry point. It returns exactly one of:
// a cached result (hit), an existing flight to wait on (coalesced
// follower), or a fresh flight the caller now leads (it must call
// complete exactly once). A hash collision — same signature, different
// ID set — is treated as a miss that does not coalesce or cache, so a
// collision can only cost performance, never correctness.
func (c *resultCache) begin(objects []model.ObjectID) (cached *netproto.QueryResultMsg, f *flight, leader bool) {
	if c == nil {
		return nil, nil, false
	}
	sig, ids := querySignature(objects)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[sig]; ok {
		if slices.Equal(e.ids, ids) {
			c.lru.MoveToFront(e.elt)
			c.hits.Add(1)
			res := e.res
			return &res, nil, false
		}
		// Collision: leave the resident entry alone and pass through.
		c.misses.Add(1)
		return nil, nil, false
	}
	c.misses.Add(1)
	if fl, ok := c.flights[sig]; ok {
		if slices.Equal(fl.ids, ids) {
			return nil, fl, false
		}
		return nil, nil, false // collision with an in-flight leader
	}
	fl := &flight{sig: sig, ids: ids, done: make(chan struct{})}
	c.flights[sig] = fl
	return nil, fl, true
}

// complete finishes a led flight: publishes the result to the
// followers, and — when the scatter succeeded undegraded and no
// invalidation poisoned the flight meanwhile — inserts it into the
// LRU. Must be called exactly once per flight begin returned with
// leader=true.
func (c *resultCache) complete(f *flight, res netproto.QueryResultMsg, ok bool) {
	if c == nil || f == nil {
		return
	}
	c.mu.Lock()
	if c.flights[f.sig] == f {
		delete(c.flights, f.sig)
	}
	f.shared = ok && !f.poisoned
	if f.shared {
		f.res = res
	}
	if ok && !f.poisoned {
		c.insertLocked(f.sig, f.ids, res)
	}
	c.mu.Unlock()
	close(f.done)
}

func (c *resultCache) insertLocked(sig uint64, ids []model.ObjectID, res netproto.QueryResultMsg) {
	if e, exists := c.entries[sig]; exists {
		e.ids, e.res = ids, res
		c.lru.MoveToFront(e.elt)
		return
	}
	e := &cacheEntry{sig: sig, ids: ids, res: res}
	e.elt = c.lru.PushFront(e)
	c.entries[sig] = e
	for c.lru.Len() > c.size {
		oldest := c.lru.Back()
		c.removeLocked(oldest.Value.(*cacheEntry))
	}
}

func (c *resultCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elt)
	delete(c.entries, e.sig)
}

// invalidate evicts every cached result containing the updated object
// and poisons matching in-flight scatters. The scan walks all resident
// entries — bounded by the configured size — with a binary search per
// entry; at the default size this is microseconds, far below one
// scatter round trip.
func (c *resultCache) invalidate(id model.ObjectID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	var evicted []*cacheEntry
	for _, e := range c.entries {
		if _, found := slices.BinarySearch(e.ids, id); found {
			evicted = append(evicted, e)
		}
	}
	for _, e := range evicted {
		c.removeLocked(e)
	}
	for _, fl := range c.flights {
		if _, found := slices.BinarySearch(fl.ids, id); found {
			fl.poisoned = true
		}
	}
	if len(evicted) > 0 {
		c.invalidations.Add(int64(len(evicted)))
	}
	c.mu.Unlock()
}

// clear wipes the cache wholesale and poisons every in-flight scatter
// — the response to birth adoption and resize epoch flips, where
// routing itself changed under any result in motion.
func (c *resultCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	n := len(c.entries)
	c.entries = make(map[uint64]*cacheEntry)
	c.lru.Init()
	for _, fl := range c.flights {
		fl.poisoned = true
	}
	if n > 0 {
		c.invalidations.Add(int64(n))
	}
	c.mu.Unlock()
}

// Len reports the resident entry count (tests and debug).
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *resultCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

func (c *resultCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

func (c *resultCache) Coalesced() int64 {
	if c == nil {
		return 0
	}
	return c.coalesced.Load()
}

func (c *resultCache) Invalidations() int64 {
	if c == nil {
		return 0
	}
	return c.invalidations.Load()
}
