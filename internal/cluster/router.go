package cluster

import (
	"cmp"
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// Config parameterizes a Router.
type Config struct {
	// Addr is the client-facing listen address.
	Addr string
	// Shards lists the client endpoints of the cache shards, indexed
	// by shard number; the order must match the Ownership assignment.
	Shards []string
	// Ownership maps objects to shard indices; its shard count must
	// equal len(Shards).
	Ownership *Ownership
	// ShardPool is how many connections back each shard session
	// (each one multiplexes; 0 means a small default).
	ShardPool int
	// DialTimeout bounds each shard connection attempt. Defaults to 5s.
	DialTimeout time.Duration
	// DialRetry keeps retrying refused shard connections for this
	// long (a router typically starts alongside its shards). Defaults
	// to 2s; negative disables.
	DialRetry time.Duration
	// ShardTimeout bounds each shard round trip. Without it a wedged
	// — alive but unresponsive — shard would hang queries forever
	// instead of degrading them (Session only fails on connection
	// death). Defaults to 30s.
	ShardTimeout time.Duration
	// StatsTimeout bounds each shard's stats probe. Defaults to 5s.
	StatsTimeout time.Duration
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// Router is a running cluster routing tier. To clients it looks
// exactly like a single cache.Middleware: it accepts the same hellos,
// answers MsgQuery and MsgStats, and additionally serves
// MsgClusterStats with the per-shard breakdown.
type Router struct {
	cfg    Config
	ln     net.Listener
	shards []*shardLink

	queries   atomic.Int64
	scattered atomic.Int64 // queries split across ≥2 shards
	degraded  atomic.Int64 // queries answered without every fragment

	wg sync.WaitGroup

	// connMu guards the accepted-connection set so Close can sever
	// live clients instead of waiting for them to hang up.
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
}

// shardLink is the router's session to one shard.
type shardLink struct {
	index int
	addr  string
	sess  *netproto.Session
}

// NewRouter connects a router to its shards. Every shard must be
// dialable (after DialRetry's grace for startup races).
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if cfg.Ownership == nil {
		return nil, fmt.Errorf("cluster: router needs an ownership map")
	}
	if cfg.Ownership.Shards() != len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: ownership spans %d shards, router fronts %d",
			cfg.Ownership.Shards(), len(cfg.Shards))
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ShardPool <= 0 {
		cfg.ShardPool = 2
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 2 * time.Second
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 30 * time.Second
	}
	if cfg.StatsTimeout <= 0 {
		cfg.StatsTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Router{cfg: cfg, conns: make(map[net.Conn]struct{})}
	for i, addr := range cfg.Shards {
		sess, err := netproto.DialSession(addr, "client", netproto.SessionConfig{
			PoolSize:    cfg.ShardPool,
			DialTimeout: cfg.DialTimeout,
			DialRetry:   max(cfg.DialRetry, 0),
		})
		if err != nil {
			r.closeShards()
			return nil, fmt.Errorf("cluster: dial shard %d: %w", i, err)
		}
		r.shards = append(r.shards, &shardLink{index: i, addr: addr, sess: sess})
	}
	return r, nil
}

// Start begins serving clients.
func (r *Router) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	r.cfg.Logf("cluster router listening on %s (%d shards, %s ownership)",
		ln.Addr(), len(r.shards), r.cfg.Ownership.Mode())
	return nil
}

// Addr returns the client-facing address, or "" before Start.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Close shuts the router down, severing live client connections (the
// shards keep running; they are not the router's to stop).
func (r *Router) Close() error {
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	r.connMu.Lock()
	r.closing = true
	for c := range r.conns {
		c.Close()
	}
	r.connMu.Unlock()
	r.closeShards()
	r.wg.Wait()
	return err
}

func (r *Router) closeShards() {
	for _, s := range r.shards {
		s.sess.Close()
	}
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.connMu.Lock()
		if r.closing {
			r.connMu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.connMu.Lock()
				delete(r.conns, conn)
				r.connMu.Unlock()
				conn.Close()
			}()
			if err := r.serveClient(netproto.NewConn(conn)); err != nil {
				r.cfg.Logf("client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveClient mirrors the cache's client lifecycle: Hello (→ HelloAck
// for v2 peers, then multiplexed dispatch), lockstep for v1 peers.
func (r *Router) serveClient(c *netproto.Conn) error {
	first, err := c.Recv()
	if err != nil {
		return netproto.IgnoreClosed(err)
	}
	hello, ok := first.Body.(netproto.Hello)
	if !ok || first.Type != netproto.MsgHello {
		return fmt.Errorf("cluster: expected hello, got %s", first.Type)
	}
	if netproto.NegotiateVersion(hello.Version) >= netproto.ProtoV2 {
		if err := c.Send(netproto.Frame{
			Type: netproto.MsgHelloAck,
			Body: netproto.HelloAck{Version: netproto.ProtoV2},
		}); err != nil {
			return netproto.IgnoreClosed(err)
		}
		return netproto.ServeMux(c, 0, r.handleClientFrame, r.cfg.Logf)
	}
	for {
		f, err := c.Recv()
		if err != nil {
			return netproto.IgnoreClosed(err)
		}
		if err := c.Send(r.handleClientFrame(f)); err != nil {
			return netproto.IgnoreClosed(err)
		}
	}
}

func (r *Router) handleClientFrame(f netproto.Frame) netproto.Frame {
	ctx := context.Background()
	switch body := f.Body.(type) {
	case netproto.QueryMsg:
		return r.routeQuery(ctx, &body.Query)
	case netproto.StatsMsg:
		cs := r.clusterStats(ctx)
		return netproto.Frame{Type: netproto.MsgStats, Body: cs.Aggregate}
	case netproto.ClusterStatsMsg:
		return netproto.Frame{Type: netproto.MsgClusterStats, Body: r.clusterStats(ctx)}
	default:
		return netproto.ErrorFrame("cluster: client sent %s", f.Type)
	}
}

// fragment is one shard's slice of a scattered query.
type fragment struct {
	shard *shardLink
	query model.Query
}

// routeQuery scatters a query to the shards owning its objects,
// gathers the fragments, and merges them into one result. If some —
// but not all — fragments fail, the merged result is returned with
// Degraded set and the failed shards listed, so a dead shard degrades
// answers instead of failing them.
func (r *Router) routeQuery(ctx context.Context, q *model.Query) netproto.Frame {
	r.queries.Add(1)
	if len(q.Objects) == 0 {
		return netproto.ErrorFrame("query %d accesses no objects", q.ID)
	}
	parts, err := r.cfg.Ownership.Split(q.Objects)
	if err != nil {
		return netproto.ErrorFrame("query %d: %v", q.ID, err)
	}
	frags := r.fragments(q, parts)
	if len(frags) > 1 {
		r.scattered.Add(1)
	}

	type outcome struct {
		shard int
		res   netproto.QueryResultMsg
		err   error
	}
	outs := make([]outcome, len(frags))
	var wg sync.WaitGroup
	for i, fr := range frags {
		wg.Add(1)
		go func(i int, fr fragment) {
			defer wg.Done()
			outs[i].shard = fr.shard.index
			ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
			defer cancel()
			reply, err := fr.shard.sess.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgShardQuery,
				Body: netproto.ShardQueryMsg{Query: fr.query, Shard: fr.shard.index, Fragments: len(frags)},
			})
			if err != nil {
				outs[i].err = err
				return
			}
			res, ok := reply.Body.(netproto.QueryResultMsg)
			if !ok {
				outs[i].err = fmt.Errorf("shard %d replied %s", fr.shard.index, reply.Type)
				return
			}
			outs[i].res = res
		}(i, fr)
	}
	wg.Wait()

	merged := netproto.QueryResultMsg{QueryID: q.ID}
	var (
		okCount  int
		anyCache bool
		anyRepo  bool
		firstErr error
	)
	for _, out := range outs {
		if out.err != nil {
			merged.Degraded = true
			merged.MissingShards = append(merged.MissingShards, out.shard)
			if firstErr == nil {
				firstErr = out.err
			}
			r.cfg.Logf("query %d: shard %d fragment failed: %v", q.ID, out.shard, out.err)
			continue
		}
		okCount++
		merged.Logical += out.res.Logical
		merged.Rows = append(merged.Rows, out.res.Rows...)
		// Cap the merged payload at what a single node may ship
		// (PayloadLen's MaxFrame/2 bound): fragments past the cap are
		// truncated rather than risking an oversized reply frame that
		// would poison the client connection. Payloads are scaled
		// stand-ins; Logical stays the authoritative full size.
		if len(merged.Payload)+len(out.res.Payload) <= netproto.MaxFrame/2 {
			merged.Payload = append(merged.Payload, out.res.Payload...)
		}
		if out.res.Elapsed > merged.Elapsed {
			merged.Elapsed = out.res.Elapsed
		}
		switch out.res.Source {
		case "cache":
			anyCache = true
		default:
			anyRepo = true
		}
	}
	if okCount == 0 {
		// Nothing to degrade to: every owning shard failed.
		return netproto.ErrorFrame("query %d: all %d owning shards failed: %v", q.ID, len(frags), firstErr)
	}
	if merged.Degraded {
		r.degraded.Add(1)
		slices.Sort(merged.MissingShards)
	}
	switch {
	case anyCache && anyRepo:
		merged.Source = "mixed"
	case anyCache:
		merged.Source = "cache"
	default:
		merged.Source = "repository"
	}
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: merged}
}

// fragments builds the per-shard sub-queries. Each fragment keeps the
// query's identity, time, and tolerance; the result cost ν(q) is split
// across fragments proportionally to their object counts, with the
// remainder charged to the first fragment so the shares sum exactly to
// the original cost.
func (r *Router) fragments(q *model.Query, parts map[int][]model.ObjectID) []fragment {
	shardIdxs := make([]int, 0, len(parts))
	for s := range parts {
		shardIdxs = append(shardIdxs, s)
	}
	slices.Sort(shardIdxs)
	frags := make([]fragment, 0, len(shardIdxs))
	var assigned cost.Bytes
	for _, s := range shardIdxs {
		sub := *q
		sub.Objects = parts[s]
		sub.Cost = q.Cost * cost.Bytes(len(parts[s])) / cost.Bytes(len(q.Objects))
		assigned += sub.Cost
		frags = append(frags, fragment{shard: r.shards[s], query: sub})
	}
	frags[0].query.Cost += q.Cost - assigned
	return frags
}

// clusterStats probes every shard's StatsMsg in parallel and builds
// the cluster-wide view. A shard that fails to answer is reported
// not-alive and the view marked degraded; the aggregate covers the
// survivors.
func (r *Router) clusterStats(ctx context.Context) netproto.ClusterStatsMsg {
	out := netproto.ClusterStatsMsg{Shards: make([]netproto.ShardStats, len(r.shards))}
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shardLink) {
			defer wg.Done()
			st := &out.Shards[i]
			st.Shard = s.index
			st.Addr = s.addr
			ctx, cancel := context.WithTimeout(ctx, r.cfg.StatsTimeout)
			defer cancel()
			reply, err := s.sess.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgStats, Body: netproto.StatsMsg{},
			})
			if err != nil {
				st.Err = err.Error()
				return
			}
			stats, ok := reply.Body.(netproto.StatsMsg)
			if !ok {
				st.Err = fmt.Sprintf("shard replied %s", reply.Type)
				return
			}
			st.Alive = true
			st.Stats = stats
		}(i, s)
	}
	wg.Wait()
	for _, st := range out.Shards {
		if !st.Alive {
			out.Degraded = true
			continue
		}
		agg := &out.Aggregate
		agg.Ledger.QueryShip += st.Stats.Ledger.QueryShip
		agg.Ledger.UpdateShip += st.Stats.Ledger.UpdateShip
		agg.Ledger.ObjectLoad += st.Stats.Ledger.ObjectLoad
		agg.Ledger.QueryShips += st.Stats.Ledger.QueryShips
		agg.Ledger.UpdateShips += st.Stats.Ledger.UpdateShips
		agg.Ledger.ObjectLoads += st.Stats.Ledger.ObjectLoads
		agg.Queries += st.Stats.Queries
		agg.AtCache += st.Stats.AtCache
		agg.Shipped += st.Stats.Shipped
		agg.DroppedInvalidations += st.Stats.DroppedInvalidations
		agg.DedupedLoads += st.Stats.DedupedLoads
		agg.Cached = append(agg.Cached, st.Stats.Cached...)
		if agg.Policy == "" && st.Stats.Policy != "" {
			agg.Policy = fmt.Sprintf("cluster(%s×%d)", st.Stats.Policy, len(r.shards))
		}
	}
	slices.SortFunc(out.Aggregate.Cached, func(a, b model.ObjectID) int { return cmp.Compare(a, b) })
	return out
}

// ShardInfo describes one shard in a topology snapshot.
type ShardInfo struct {
	Index int
	Addr  string
	// Alive reports whether the router still has a usable session to
	// the shard.
	Alive bool
	// Objects is the shard's owned object set.
	Objects []model.ObjectID
}

// Topology is a point-in-time snapshot of the cluster's shape, the
// input rebalance experiments diff before and after resizing.
type Topology struct {
	Mode   Mode
	Shards []ShardInfo
}

// Topology snapshots the live shard topology.
func (r *Router) Topology() Topology {
	t := Topology{Mode: r.cfg.Ownership.Mode()}
	for _, s := range r.shards {
		t.Shards = append(t.Shards, ShardInfo{
			Index:   s.index,
			Addr:    s.addr,
			Alive:   s.sess.Live(),
			Objects: r.cfg.Ownership.ShardObjects(s.index),
		})
	}
	return t
}

// Queries returns how many client queries the router has routed.
func (r *Router) Queries() int64 { return r.queries.Load() }

// Scattered returns how many routed queries were split across two or
// more shards.
func (r *Router) Scattered() int64 { return r.scattered.Load() }

// Degraded returns how many routed queries were answered without
// every fragment because a shard failed.
func (r *Router) Degraded() int64 { return r.degraded.Load() }
