package cluster

import (
	"cmp"
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/htm"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
)

// Config parameterizes a Router.
type Config struct {
	// Addr is the client-facing listen address.
	Addr string
	// Shards lists the client endpoints of the cache shards, indexed
	// by shard number; the order must match the Ownership assignment.
	Shards []string
	// Ownership maps objects to shard indices; its shard count must
	// equal len(Shards).
	Ownership *Ownership
	// RepoAddr is the repository's address. When set, the router
	// subscribes to the repository's invalidation stream so newly
	// published objects (MsgObjectBirth) become routable live, and
	// accepts birth publications from clients, forwarding them to the
	// repository. Empty disables growth at this router.
	RepoAddr string
	// RepoPool is how many connections back the repository session used
	// to forward birth publications (0 means a small default). Only
	// used when RepoAddr is set.
	RepoPool int
	// ShardPool is how many connections back each shard session
	// (each one multiplexes; 0 means a small default).
	ShardPool int
	// DialTimeout bounds each shard connection attempt. Defaults to 5s.
	DialTimeout time.Duration
	// DialRetry keeps retrying refused shard connections for this
	// long (a router typically starts alongside its shards). Defaults
	// to 2s; negative disables.
	DialRetry time.Duration
	// ShardTimeout bounds each shard round trip. Without it a wedged
	// — alive but unresponsive — shard would hang queries forever
	// instead of degrading them (Session only fails on connection
	// death). Defaults to 30s.
	ShardTimeout time.Duration
	// StatsTimeout bounds each shard's stats probe. Defaults to 5s.
	StatsTimeout time.Duration
	// MigrateTimeout bounds one source shard's whole outbound
	// migration stream during a resize (it can move many objects).
	// Defaults to 2m.
	MigrateTimeout time.Duration
	// Resolver maps a sky cap to the object IDs whose partitions may
	// intersect it (typically catalog.Survey.CoverCap). When set,
	// client queries arriving with a SkyRegion instead of an object
	// list are resolved at the router, memoized through a bounded
	// cover cache whose hit/miss counters join the aggregate StatsMsg.
	// Nil rejects region queries.
	Resolver func(geom.Cap) []model.ObjectID
	// ResolverGrow feeds adopted births into the resolver's universe
	// (typically wrapping catalog.Survey.AddObject on the survey
	// backing Resolver), so region covers include live-born objects.
	// Required when Resolver is set and RepoAddr enables growth.
	ResolverGrow func([]model.Birth) error
	// WireVersion caps the protocol version the router negotiates, on
	// both sides: announced to shards and the repository, granted to
	// clients (0 = newest, i.e. the v3 binary codec; 2 pins gob v2).
	WireVersion int
	// Hedge enables hedged reads: when a fragment's primary shard has
	// not answered within the hedge delay, the fragment is re-scattered
	// to the objects' next replicas and the first complete answer wins
	// (the loser is cancelled). Only effective with a replicated
	// ownership (K ≥ 2); fragments without full replica coverage fall
	// back to the plain single-attempt path.
	Hedge bool
	// HedgeDelay pins how long the primary may lag before the hedge
	// fires. Zero derives the delay from the p99 of observed fragment
	// round trips (so only true stragglers hedge), with a small fixed
	// default while the latency histogram is cold.
	HedgeDelay time.Duration
	// ResultCacheSize bounds the router's invalidation-aware result
	// cache and in-flight query coalescer (entries, not bytes): repeated
	// or concurrent queries over the same object set are answered from
	// one scatter. Zero means DefaultResultCacheSize; negative disables
	// the cache and coalescer entirely. Requires RepoAddr — without the
	// repository's invalidation stream the router cannot evict stale
	// results, so the cache stays off however this is set.
	ResultCacheSize int
	// MetricsAddr, when set, serves the debug HTTP mux (/metrics,
	// /healthz, /debug/traces, /debug/pprof) on that address. The
	// router's /metrics is the cluster view: the aggregate StatsMsg
	// across shards plus router-local scatter/gather counters.
	MetricsAddr string
	// DisableObs skips metric registration and trace recording
	// entirely (benchmark baselines measuring instrumentation cost).
	DisableObs bool
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// Router is a running cluster routing tier. To clients it looks
// exactly like a single cache.Middleware: it accepts the same hellos,
// answers MsgQuery and MsgStats, and additionally serves
// MsgClusterStats with the per-shard breakdown and the admin frames
// (MsgAdminResize, MsgRebalanceStatus) that drive live resizes.
//
// Routing state is an immutable epoch snapshot swapped atomically, so
// queries never observe a half-updated topology: a resize publishes
// transition snapshots (with double-routing for moving objects) and
// then the final one.
type Router struct {
	cfg Config
	ln  net.Listener

	// routing is the current epoch snapshot; queries load it once and
	// route entirely against that view.
	routing atomic.Pointer[routing]

	// linksMu guards links, the registry of every shard session ever
	// dialed (keyed by address), and linksClosed. Epoch snapshots
	// reference entries; Close tears all of them down, and the closed
	// flag stops a concurrent resize from registering a fresh session
	// after that teardown.
	linksMu     sync.Mutex
	links       map[string]*shardLink
	linksClosed bool

	// resizeMu serializes resizes (one at a time, fail-fast); growMu
	// serializes routing-snapshot mutation between resizes and birth
	// adoption (blocking — a birth waits out a resize and vice versa,
	// so no snapshot store is lost to an interleaved writer); statusMu
	// guards the rebalance status snapshot.
	resizeMu sync.Mutex
	growMu   sync.Mutex
	statusMu sync.Mutex
	status   netproto.RebalanceStatusMsg

	// repo and invRaw are the repository session and invalidation
	// subscription backing live growth; nil/absent without RepoAddr.
	repo   *netproto.Session
	invRaw net.Conn

	// covers memoizes Resolver lookups for region queries (nil when no
	// Resolver is configured).
	covers *htm.CoverCache

	// results is the invalidation-aware result cache + in-flight query
	// coalescer; nil when disabled or when no RepoAddr supplies the
	// invalidation stream it depends on (all uses are nil-safe).
	results *resultCache

	// birthCh feeds the birth adoption worker, which drains whatever
	// announcements and publications have queued and adopts them as one
	// batch — one ownership extension, one grant frame per shard.
	// birthQuit stops the worker; both are nil without RepoAddr.
	birthCh   chan birthReq
	birthQuit chan struct{}

	queries      atomic.Int64
	scattered    atomic.Int64 // queries split across ≥2 shards
	degraded     atomic.Int64 // queries answered without every fragment
	rerouted     atomic.Int64 // fragments recovered via an alternate owner
	failover     atomic.Int64 // fragments recovered via a non-primary replica
	hedged       atomic.Int64 // hedged replica attempts fired
	births       atomic.Int64 // born objects adopted into routing
	grantBatches atomic.Int64 // batched birth-grant frames shipped to shards

	// reg/traces/debug are the router's observability surface; all nil
	// under Config.DisableObs (every use is nil-safe).
	reg       *obs.Registry
	traces    *obs.TraceRing
	debug     *obs.DebugServer
	routerLat *obs.Histogram // end-to-end scatter/gather latency
	fragLat   *obs.Histogram // per-fragment shard round-trip latency

	wg sync.WaitGroup

	// connMu guards the accepted-connection set so Close can sever
	// live clients instead of waiting for them to hang up.
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
}

// routing is one immutable routing epoch: the ownership map, the shard
// links in index order, and — during a resize transition window — the
// alternate owner of every moving object, so a fragment that fails on
// its primary can be double-routed instead of degraded.
type routing struct {
	epoch int
	own   *Ownership
	links []*shardLink
	alt   map[model.ObjectID]*shardLink
}

// shardLink is the router's session to one shard; immutable, so
// routing snapshots may read it concurrently. The index is the
// shard's position in the topology that references it — a resize that
// moves a continuing shard to a new position wraps the shared session
// in a fresh link via linkAt.
type shardLink struct {
	index int
	addr  string
	sess  *netproto.Session
}

// NewRouter connects a router to its shards. Every shard must be
// dialable (after DialRetry's grace for startup races).
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if cfg.Ownership == nil {
		return nil, fmt.Errorf("cluster: router needs an ownership map")
	}
	if cfg.Ownership.Shards() != len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: ownership spans %d shards, router fronts %d",
			cfg.Ownership.Shards(), len(cfg.Shards))
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ShardPool <= 0 {
		cfg.ShardPool = 2
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 2 * time.Second
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 30 * time.Second
	}
	if cfg.StatsTimeout <= 0 {
		cfg.StatsTimeout = 5 * time.Second
	}
	if cfg.MigrateTimeout <= 0 {
		cfg.MigrateTimeout = 2 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Router{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		links: make(map[string]*shardLink),
	}
	if cfg.Resolver != nil {
		r.covers = htm.NewCoverCache(256)
	}
	if !cfg.DisableObs {
		r.reg = obs.NewRegistry()
		r.traces = obs.NewTraceRing(obs.DefaultTraceRing)
		r.routerLat = r.reg.NewHistogram("delta_router_query_seconds",
			"End-to-end scatter/gather latency of routed queries.", nil)
		r.fragLat = r.reg.NewHistogram("delta_router_fragment_seconds",
			"Per-fragment shard round-trip latency (successful attempts); its p99 derives the hedge delay.", nil)
		r.reg.NewCounterFunc("delta_router_queries_total",
			"Client queries routed by this router.",
			func() float64 { return float64(r.queries.Load()) })
		r.reg.NewCounterFunc("delta_router_scattered_total",
			"Routed queries split across two or more shards.",
			func() float64 { return float64(r.scattered.Load()) })
		r.reg.NewCounterFunc("delta_router_degraded_total",
			"Routed queries answered without every fragment.",
			func() float64 { return float64(r.degraded.Load()) })
		r.reg.NewCounterFunc("delta_router_rerouted_total",
			"Failed fragments fully recovered via an alternate owner.",
			func() float64 { return float64(r.rerouted.Load()) })
		r.reg.NewCounterFunc("delta_router_failover_total",
			"Failed fragments fully recovered via a non-primary replica.",
			func() float64 { return float64(r.failover.Load()) })
		r.reg.NewCounterFunc("delta_router_hedged_total",
			"Hedged replica attempts fired for slow primaries.",
			func() float64 { return float64(r.hedged.Load()) })
		r.reg.NewCounterFunc("delta_router_births_total",
			"Born objects adopted into the routing universe.",
			func() float64 { return float64(r.births.Load()) })
		r.reg.NewCounterFunc("delta_router_grant_batches_total",
			"Batched birth-grant frames shipped to shards (each may carry many births).",
			func() float64 { return float64(r.grantBatches.Load()) })
		r.reg.NewCounterFunc("delta_router_result_cache_hits_total",
			"Routed queries answered from the router's invalidation-aware result cache.",
			func() float64 { return float64(r.results.Hits()) })
		r.reg.NewCounterFunc("delta_router_result_cache_misses_total",
			"Routed queries that missed the result cache and scattered (or coalesced).",
			func() float64 { return float64(r.results.Misses()) })
		r.reg.NewCounterFunc("delta_router_result_cache_invalidations_total",
			"Cached results evicted by the invalidation stream, birth adoptions, or epoch flips.",
			func() float64 { return float64(r.results.Invalidations()) })
		r.reg.NewCounterFunc("delta_router_coalesced_total",
			"Queries that joined an identical in-flight query's scatter instead of scattering.",
			func() float64 { return float64(r.results.Coalesced()) })
		r.reg.NewGaugeFunc("delta_router_shards",
			"Shards in the current routing epoch.",
			func() float64 { return float64(len(r.routing.Load().links)) })
		r.reg.NewGaugeFunc("delta_router_epoch",
			"Current routing epoch (completed resizes).",
			func() float64 { return float64(r.routing.Load().epoch) })
		// The StatsMsg families on a router expose the cluster
		// aggregate. A degraded probe (a shard down) reports an error so
		// the scrape serves the last complete snapshot instead of a view
		// with a shard's counters missing.
		obs.RegisterStats(r.reg, func() (netproto.StatsMsg, error) {
			cs := r.clusterStats(context.Background())
			if cs.Degraded {
				return cs.Aggregate, fmt.Errorf("cluster: stats probe degraded")
			}
			return cs.Aggregate, nil
		})
	}
	rt := &routing{own: cfg.Ownership}
	for i, addr := range cfg.Shards {
		link, err := r.dialLink(addr, i)
		if err != nil {
			r.closeLinks()
			return nil, fmt.Errorf("cluster: dial shard %d: %w", i, err)
		}
		rt.links = append(rt.links, link)
	}
	r.routing.Store(rt)
	r.status = netproto.RebalanceStatusMsg{Phase: "idle", From: len(cfg.Shards), To: len(cfg.Shards)}
	if cfg.RepoAddr != "" {
		repo, err := netproto.DialSession(cfg.RepoAddr, "client", netproto.SessionConfig{
			PoolSize:    max(cfg.RepoPool, 1),
			DialTimeout: cfg.DialTimeout,
			DialRetry:   max(cfg.DialRetry, 0),
			WireVersion: cfg.WireVersion,
		})
		if err != nil {
			r.closeLinks()
			return nil, fmt.Errorf("cluster: dial repository: %w", err)
		}
		r.repo = repo
		// The result cache is safe only with the invalidation stream
		// feeding evictions, so it rides the same RepoAddr gate. Create
		// it before the subscription so no invalidation can race the
		// cache into existence.
		if cfg.ResultCacheSize >= 0 {
			r.results = newResultCache(cfg.ResultCacheSize)
		}
		if err := r.subscribeInvalidations(); err != nil {
			repo.Close()
			r.closeLinks()
			return nil, err
		}
		r.birthCh = make(chan birthReq, 64)
		r.birthQuit = make(chan struct{})
		r.wg.Add(1)
		go r.birthWorker()
	}
	return r, nil
}

// dialLink returns the registry's session for addr, dialing one if the
// address is new. The dial happens outside the registry lock; a racing
// dial of the same address keeps the first session.
func (r *Router) dialLink(addr string, index int) (*shardLink, error) {
	r.linksMu.Lock()
	if l, ok := r.links[addr]; ok {
		r.linksMu.Unlock()
		return l, nil
	}
	r.linksMu.Unlock()
	sess, err := netproto.DialSession(addr, "client", netproto.SessionConfig{
		PoolSize:    r.cfg.ShardPool,
		DialTimeout: r.cfg.DialTimeout,
		DialRetry:   max(r.cfg.DialRetry, 0),
		WireVersion: r.cfg.WireVersion,
	})
	if err != nil {
		return nil, err
	}
	link := &shardLink{index: index, addr: addr, sess: sess}
	r.linksMu.Lock()
	defer r.linksMu.Unlock()
	if r.linksClosed {
		sess.Close()
		return nil, fmt.Errorf("cluster: router is closing")
	}
	if l, ok := r.links[addr]; ok {
		sess.Close()
		return l, nil
	}
	r.links[addr] = link
	return link, nil
}

// linkAt returns the registry's session for addr relabeled to the
// given topology index. Links are immutable (routing snapshots read
// them concurrently), so a continuing shard whose position changed
// gets a fresh shardLink sharing the same session, and the registry
// adopts it so stats, fragments and drop/close all see the current
// index.
func (r *Router) linkAt(addr string, index int) (*shardLink, error) {
	link, err := r.dialLink(addr, index)
	if err != nil {
		return nil, err
	}
	if link.index == index {
		return link, nil
	}
	relabeled := &shardLink{index: index, addr: addr, sess: link.sess}
	r.linksMu.Lock()
	if r.links[addr] == link {
		r.links[addr] = relabeled
	}
	r.linksMu.Unlock()
	return relabeled, nil
}

// dropLink closes and forgets the session to addr (a shard that left
// the cluster). In-flight round trips on it fail and re-route.
func (r *Router) dropLink(addr string) {
	r.linksMu.Lock()
	link, ok := r.links[addr]
	delete(r.links, addr)
	r.linksMu.Unlock()
	if ok {
		link.sess.Close()
	}
}

// Start begins serving clients.
func (r *Router) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	r.ln = ln
	if r.cfg.MetricsAddr != "" {
		debug, err := obs.ServeDebug(r.cfg.MetricsAddr, r.reg, r.traces)
		if err != nil {
			ln.Close()
			r.ln = nil
			return fmt.Errorf("cluster: metrics listen: %w", err)
		}
		r.debug = debug
		r.cfg.Logf("cluster router metrics on http://%s/metrics", debug.Addr())
	}
	r.wg.Add(1)
	go r.acceptLoop()
	rt := r.routing.Load()
	r.cfg.Logf("cluster router listening on %s (%d shards, %s ownership)",
		ln.Addr(), len(rt.links), rt.own.Mode())
	return nil
}

// DebugAddr returns the debug HTTP server's address, or "" when no
// MetricsAddr was configured or Start has not run.
func (r *Router) DebugAddr() string { return r.debug.Addr() }

// Addr returns the client-facing address, or "" before Start.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Close shuts the router down, severing live client connections (the
// shards keep running; they are not the router's to stop). In-flight
// scatters fail promptly: closing the shard sessions fails their
// pending round trips, so no handler goroutine lingers past wg.Wait.
func (r *Router) Close() error {
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	r.debug.Close()
	r.connMu.Lock()
	again := r.closing
	r.closing = true
	for c := range r.conns {
		c.Close()
	}
	r.connMu.Unlock()
	if r.repo != nil {
		r.repo.Close()
	}
	if r.invRaw != nil {
		r.invRaw.Close()
	}
	if r.birthQuit != nil && !again {
		close(r.birthQuit)
	}
	r.closeLinks()
	r.wg.Wait()
	return err
}

func (r *Router) closeLinks() {
	r.linksMu.Lock()
	r.linksClosed = true
	links := make([]*shardLink, 0, len(r.links))
	for _, l := range r.links {
		links = append(links, l)
	}
	r.linksMu.Unlock()
	for _, l := range links {
		l.sess.Close()
	}
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.connMu.Lock()
		if r.closing {
			r.connMu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.connMu.Lock()
				delete(r.conns, conn)
				r.connMu.Unlock()
				conn.Close()
			}()
			if err := r.serveClient(netproto.NewConn(conn)); err != nil {
				r.cfg.Logf("client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveClient mirrors the cache's client lifecycle: Hello (→ HelloAck
// for v2 peers, then multiplexed dispatch), lockstep for v1 peers.
func (r *Router) serveClient(c *netproto.Conn) error {
	first, err := c.Recv()
	if err != nil {
		return netproto.IgnoreClosed(err)
	}
	hello, ok := first.Body.(netproto.Hello)
	if !ok || first.Type != netproto.MsgHello {
		return fmt.Errorf("cluster: expected hello, got %s", first.Type)
	}
	version, err := netproto.ServeHandshake(c, hello, r.cfg.WireVersion)
	if err != nil {
		return netproto.IgnoreClosed(err)
	}
	if version >= netproto.ProtoV2 {
		return netproto.ServeMux(c, 0, r.handleClientFrame, r.cfg.Logf)
	}
	for {
		f, err := c.Recv()
		if err != nil {
			return netproto.IgnoreClosed(err)
		}
		if err := c.Send(r.handleClientFrame(f)); err != nil {
			return netproto.IgnoreClosed(err)
		}
	}
}

func (r *Router) handleClientFrame(f netproto.Frame) netproto.Frame {
	ctx := context.Background()
	switch body := f.Body.(type) {
	case netproto.QueryMsg:
		var detail string
		if len(body.Query.Objects) == 0 && !body.Region.Empty() {
			objs, hit, err := r.resolveRegion(body.Region)
			if err != nil {
				return netproto.ErrorFrame("%v", err)
			}
			body.Query.Objects = objs
			detail = "cover-cache=miss"
			if hit {
				detail = "cover-cache=hit"
			}
		}
		return r.routeQuery(ctx, &body.Query, body.TraceID, detail)
	case netproto.StatsMsg:
		cs := r.clusterStats(ctx)
		return netproto.Frame{Type: netproto.MsgStats, Body: cs.Aggregate}
	case netproto.ClusterStatsMsg:
		return netproto.Frame{Type: netproto.MsgClusterStats, Body: r.clusterStats(ctx)}
	case netproto.AdminResizeMsg:
		st, err := r.Resize(ctx, ResizeSpec{Shards: body.Shards})
		if err != nil {
			return netproto.ErrorFrame("cluster: resize: %v", err)
		}
		return netproto.Frame{Type: netproto.MsgRebalanceStatus, Body: st}
	case netproto.RebalanceStatusMsg:
		return netproto.Frame{Type: netproto.MsgRebalanceStatus, Body: r.RebalanceStatus()}
	case netproto.ObjectBirthMsg:
		return r.handleBirths(ctx, body)
	default:
		return netproto.ErrorFrame("cluster: client sent %s", f.Type)
	}
}

// resolveRegion maps a client's sky region to B(q) through the
// router's memoized cover cache; repeated sky-region queries skip the
// partition.Cover recomputation entirely. The hit flag feeds the trace
// span's cover-cache detail.
func (r *Router) resolveRegion(region netproto.SkyRegion) ([]model.ObjectID, bool, error) {
	if r.cfg.Resolver == nil {
		return nil, false, fmt.Errorf("cluster: router has no region resolver; send explicit object lists")
	}
	objs, hit := r.covers.ResolveHit(
		geom.CapFromRADec(region.RA, region.Dec, region.RadiusDeg), r.cfg.Resolver)
	if len(objs) == 0 {
		return nil, false, fmt.Errorf("cluster: region (%v, %v, r=%v°) covers no objects",
			region.RA, region.Dec, region.RadiusDeg)
	}
	return objs, hit, nil
}

// fragment is one shard's slice of a scattered query. fragments is
// how many slices the original query was split into (1 for reroutes,
// which re-scatter a single failed slice).
type fragment struct {
	link      *shardLink
	query     model.Query
	fragments int
	traceID   uint64 // propagated to the shard so its span joins the trace
}

// routeQuery answers a client query, doing identical work at most
// once: a signature-matching cached result answers immediately, a
// signature-matching in-flight scatter is joined as a coalesced
// follower, and only a genuinely novel query scatters to the shards.
// Degraded or failed leader results are never shared — each follower
// falls back to its own scatter — and without a result cache (no
// repository invalidation stream, or disabled by size) every query
// scatters as before.
func (r *Router) routeQuery(ctx context.Context, q *model.Query, traceID uint64, detail string) netproto.Frame {
	r.queries.Add(1)
	start := time.Now()
	if len(q.Objects) == 0 {
		return netproto.ErrorFrame("query %d accesses no objects", q.ID)
	}
	if r.results == nil {
		return r.scatterQuery(ctx, q, traceID, detail, start)
	}
	cached, fl, leader := r.results.begin(q.Objects)
	switch {
	case cached != nil:
		return r.serveShared(q, cached, traceID, joinDetail(detail, "result-cache=hit"), start)
	case fl != nil && !leader:
		<-fl.done
		if fl.shared {
			r.results.coalesced.Add(1)
			return r.serveShared(q, &fl.res, traceID, joinDetail(detail, "coalesced=follower"), start)
		}
		// The leader's scatter failed or degraded: not shareable, so
		// answer with a scatter of our own.
		return r.scatterQuery(ctx, q, traceID, detail, start)
	case fl != nil:
		// Leading: scatter, then publish to the followers (and, if the
		// result is clean and no invalidation raced it, to the cache).
		frame := r.scatterQuery(ctx, q, traceID, detail, start)
		res, ok := frame.Body.(netproto.QueryResultMsg)
		r.results.complete(fl, res, ok && !res.Degraded)
		return frame
	default:
		// Signature collision: pass through uncached.
		return r.scatterQuery(ctx, q, traceID, detail, start)
	}
}

// joinDetail merges the cover-cache detail of region resolution with a
// result-cache detail into one trace-span annotation.
func joinDetail(a, b string) string {
	if a == "" {
		return b
	}
	return a + " " + b
}

// serveShared answers a query from a cached or coalesced merged
// result, re-stamped for this client: its own QueryID, its own ν(q) as
// Logical (cost-share accounting keeps summing exactly to what each
// client declared), Source "cache" (the routing tier answered without
// repository work), and — when traced — a fresh router span, since the
// original scatter's shard spans belong to another request. Payload
// and Rows are shared read-only, which respects the frame ownership
// contract: the router assembled both itself when merging (decoded v3
// frames own their memory, and merges append into fresh slices), they
// are never pooled, and nothing downstream mutates a result body.
func (r *Router) serveShared(q *model.Query, res *netproto.QueryResultMsg, traceID uint64, detail string, start time.Time) netproto.Frame {
	out := netproto.QueryResultMsg{
		QueryID: q.ID,
		Logical: q.Cost,
		Rows:    res.Rows,
		Payload: res.Payload,
		Source:  "cache",
		Elapsed: res.Elapsed,
	}
	elapsed := time.Since(start)
	r.routerLat.Observe(elapsed)
	if traceID != 0 {
		out.TraceID = traceID
		out.Spans = []netproto.TraceSpan{{
			Name:    "router",
			Node:    r.Addr(),
			Shard:   -1,
			Epoch:   r.routing.Load().epoch,
			Objects: len(q.Objects),
			Source:  out.Source,
			Detail:  detail,
			Elapsed: elapsed,
		}}
		r.traces.Add(traceID, out.Spans)
	}
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: out}
}

// scatterQuery scatters a query to the shards owning its objects under
// the current routing epoch, gathers the fragments, and merges them
// into one result. A failed fragment is first re-routed through the
// freshest routing view (during a resize transition every moving
// object has an alternate owner; after one, a stale epoch's owner may
// simply have changed); only objects with no alternate degrade the
// answer. If some — but not all — objects' fragments fail, the merged
// result is returned with Degraded set and the failed shards listed,
// so a dead shard degrades answers instead of failing them.
func (r *Router) scatterQuery(ctx context.Context, q *model.Query, traceID uint64, detail string, start time.Time) netproto.Frame {
	rt := r.routing.Load()
	parts, err := rt.own.Split(q.Objects)
	if err != nil {
		return netproto.ErrorFrame("query %d: %v", q.ID, err)
	}
	frags := fragmentsFor(rt, q, parts)
	for i := range frags {
		frags[i].traceID = traceID
	}
	if len(frags) > 1 {
		r.scattered.Add(1)
	}

	type outcome struct {
		shard   int
		results []netproto.QueryResultMsg // primary or recovered partials
		err     error                     // set when objects were lost entirely
	}
	outs := make([]outcome, len(frags))
	var wg sync.WaitGroup
	for i, fr := range frags {
		wg.Add(1)
		go func(i int, fr fragment) {
			defer wg.Done()
			outs[i].shard = fr.link.index
			results, err := r.dispatch(ctx, fr)
			if err == nil {
				outs[i].results = results
				return
			}
			recovered, all, viaReplica := r.reroute(ctx, fr)
			outs[i].results = recovered
			if all {
				if viaReplica {
					r.failover.Add(1)
				} else {
					r.rerouted.Add(1)
				}
				return
			}
			outs[i].err = err
			r.cfg.Logf("query %d: shard %d fragment failed: %v", q.ID, fr.link.index, err)
		}(i, fr)
	}
	wg.Wait()

	merged := netproto.QueryResultMsg{QueryID: q.ID}
	var (
		okCount  int
		anyCache bool
		anyRepo  bool
		firstErr error
	)
	for _, out := range outs {
		if out.err != nil {
			merged.Degraded = true
			merged.MissingShards = append(merged.MissingShards, out.shard)
			if firstErr == nil {
				firstErr = out.err
			}
		}
		for _, res := range out.results {
			okCount++
			merged.Logical += res.Logical
			merged.Spans = append(merged.Spans, res.Spans...)
			merged.Rows = append(merged.Rows, res.Rows...)
			// Cap the merged payload at what a single node may ship
			// (PayloadLen's MaxFrame/2 bound): fragments past the cap are
			// truncated rather than risking an oversized reply frame that
			// would poison the client connection. Payloads are scaled
			// stand-ins; Logical stays the authoritative full size.
			if len(merged.Payload)+len(res.Payload) <= netproto.MaxFrame/2 {
				merged.Payload = append(merged.Payload, res.Payload...)
			}
			if res.Elapsed > merged.Elapsed {
				merged.Elapsed = res.Elapsed
			}
			switch res.Source {
			case "cache":
				anyCache = true
			default:
				anyRepo = true
			}
		}
	}
	if okCount == 0 {
		// Nothing to degrade to: every owning shard failed.
		return netproto.ErrorFrame("query %d: all %d owning shards failed: %v", q.ID, len(frags), firstErr)
	}
	if merged.Degraded {
		r.degraded.Add(1)
		slices.Sort(merged.MissingShards)
		merged.MissingShards = slices.Compact(merged.MissingShards)
	}
	switch {
	case anyCache && anyRepo:
		merged.Source = "mixed"
	case anyCache:
		merged.Source = "cache"
	default:
		merged.Source = "repository"
	}
	elapsed := time.Since(start)
	r.routerLat.Observe(elapsed)
	if traceID != 0 {
		merged.TraceID = traceID
		merged.Spans = append([]netproto.TraceSpan{{
			Name:      "router",
			Node:      r.Addr(),
			Shard:     -1,
			Epoch:     rt.epoch,
			Fragments: len(frags),
			Objects:   len(q.Objects),
			Source:    merged.Source,
			Detail:    detail,
			Elapsed:   elapsed,
		}}, merged.Spans...)
		r.traces.Add(traceID, merged.Spans)
	}
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: merged}
}

// shardRoundTrip sends one fragment and decodes the reply. Successful
// round trips feed the fragment-latency histogram the hedge delay is
// derived from.
func (r *Router) shardRoundTrip(ctx context.Context, fr fragment) (netproto.QueryResultMsg, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	start := time.Now()
	reply, err := fr.link.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgShardQuery,
		Body: netproto.ShardQueryMsg{
			Query:     fr.query,
			Shard:     fr.link.index,
			Fragments: max(fr.fragments, 1),
			TraceID:   fr.traceID,
		},
	})
	if err != nil {
		return netproto.QueryResultMsg{}, err
	}
	res, ok := reply.Body.(netproto.QueryResultMsg)
	if !ok {
		return netproto.QueryResultMsg{}, fmt.Errorf("shard %d replied %s", fr.link.index, reply.Type)
	}
	r.fragLat.Observe(time.Since(start))
	return res, nil
}

// minimum hedge delay while the fragment-latency histogram is cold (or
// observability is disabled): high enough that a healthy same-host
// round trip never hedges, low enough to cut a straggler's tail.
const defaultHedgeDelay = 2 * time.Millisecond

// hedgeDelaySamples is how many fragment latencies must be observed
// before the p99 derivation trusts the histogram over the default.
const hedgeDelaySamples = 64

// hedgeDelay returns how long the primary may lag before the hedge
// fires: Config.HedgeDelay when pinned, else the observed fragment p99
// so only true stragglers hedge.
func (r *Router) hedgeDelay() time.Duration {
	if r.cfg.HedgeDelay > 0 {
		return r.cfg.HedgeDelay
	}
	if r.fragLat != nil && r.fragLat.Count() >= hedgeDelaySamples {
		if p99 := r.fragLat.Quantile(0.99); p99 > 0 {
			return max(time.Duration(p99*float64(time.Second)), defaultHedgeDelay)
		}
	}
	return defaultHedgeDelay
}

// dispatch performs one fragment round trip. With hedging enabled and
// every object of the fragment covered by a live replica, the primary
// attempt races a delayed replica attempt: if the primary has not
// answered within hedgeDelay, the fragment re-scatters to the next
// replicas and the first complete answer wins; the loser is cancelled
// through its context. Errors fall back to the caller's reroute path.
func (r *Router) dispatch(ctx context.Context, fr fragment) ([]netproto.QueryResultMsg, error) {
	if !r.cfg.Hedge {
		res, err := r.shardRoundTrip(ctx, fr)
		if err != nil {
			return nil, err
		}
		return []netproto.QueryResultMsg{res}, nil
	}
	rt := r.routing.Load()
	groups, stranded, _ := rerouteTargets(rt, fr)
	if len(stranded) > 0 || len(groups) == 0 {
		// No full replica coverage to hedge onto (K=1, or mid-resize).
		res, err := r.shardRoundTrip(ctx, fr)
		if err != nil {
			return nil, err
		}
		return []netproto.QueryResultMsg{res}, nil
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels whichever attempt loses
	type attempt struct {
		results []netproto.QueryResultMsg
		err     error
	}
	ch := make(chan attempt, 2)
	go func() {
		res, err := r.shardRoundTrip(hctx, fr)
		if err != nil {
			ch <- attempt{err: err}
			return
		}
		ch <- attempt{results: []netproto.QueryResultMsg{res}}
	}()
	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched {
				continue
			}
			launched = true
			pending++
			r.hedged.Add(1)
			go func() {
				results, complete := r.scatterGroups(hctx, fr, groups)
				if !complete {
					ch <- attempt{err: fmt.Errorf("hedged replicas incomplete")}
					return
				}
				ch <- attempt{results: results}
			}()
		case a := <-ch:
			pending--
			if a.err == nil {
				return a.results, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if !launched || pending == 0 {
				// The primary failed before the hedge fired (let the
				// caller's reroute handle failover), or both attempts lost.
				return nil, firstErr
			}
		}
	}
}

// rerouteTargets groups a failed (or hedged) fragment's objects by
// their best alternate link under rt: each object's ranked replica set
// is walked primary-first, skipping the failed address, then the
// resize-transition alt map is consulted. Objects with no alternate
// are returned stranded. viaReplica reports whether any target was a
// non-primary replica — a true failover rather than an
// ownership-change reroute.
func rerouteTargets(rt *routing, failed fragment) (groups map[*shardLink][]model.ObjectID, stranded []model.ObjectID, viaReplica bool) {
	groups = make(map[*shardLink][]model.ObjectID)
	for _, id := range failed.query.Objects {
		var target *shardLink
		if ranked, ok := rt.own.Owners(id); ok {
			for rank, s := range ranked {
				if s < len(rt.links) && rt.links[s].addr != failed.link.addr {
					target = rt.links[s]
					if rank > 0 {
						viaReplica = true
					}
					break
				}
			}
		}
		if target == nil {
			if alt := rt.alt[id]; alt != nil && alt.addr != failed.link.addr {
				target = alt
			}
		}
		if target == nil {
			stranded = append(stranded, id)
			continue
		}
		groups[target] = append(groups[target], id)
	}
	return groups, stranded, viaReplica
}

// scatterGroups re-sends a fragment's objects to their grouped
// alternate links in shard order, splitting ν(q) proportionally by
// object count. When every group answers, the rounding remainder is
// charged to the first result so cost shares still sum exactly to the
// fragment's share.
func (r *Router) scatterGroups(ctx context.Context, failed fragment, groups map[*shardLink][]model.ObjectID) ([]netproto.QueryResultMsg, bool) {
	links := make([]*shardLink, 0, len(groups))
	for l := range groups {
		links = append(links, l)
	}
	slices.SortFunc(links, func(a, b *shardLink) int {
		if a.index != b.index {
			return a.index - b.index
		}
		return cmp.Compare(a.addr, b.addr)
	})
	var (
		results  []netproto.QueryResultMsg
		assigned cost.Bytes
		covered  int
		all      = true
	)
	for _, link := range links {
		sub := failed.query
		sub.Objects = groups[link]
		sub.Cost = failed.query.Cost * cost.Bytes(len(sub.Objects)) / cost.Bytes(len(failed.query.Objects))
		assigned += sub.Cost
		covered += len(sub.Objects)
		res, err := r.shardRoundTrip(ctx, fragment{link: link, query: sub, traceID: failed.traceID})
		if err != nil {
			r.cfg.Logf("reroute of %d objects to shard %d failed: %v", len(sub.Objects), link.index, err)
			all = false
			continue
		}
		results = append(results, res)
	}
	if all && covered == len(failed.query.Objects) && len(results) > 0 {
		// Charge the rounding remainder to the first group so a fully
		// recovered fragment keeps cost shares summing exactly.
		results[0].Logical += failed.query.Cost - assigned
	}
	return results, all
}

// reroute re-sends a failed fragment's objects through the freshest
// routing view, skipping the shard that just failed. With replication
// each object's ranked replica set supplies the alternate (rank ≥ 1 is
// a failover); during a resize transition the double-routing alt map
// covers moving objects (the migration destination before the flip,
// the still-warm source after it); and a partially stranded fragment
// retries the stranded subset once on the original shard — an
// ownership recut can make a shard reject a whole fragment for one
// no-longer-owned object even though it still owns the rest. It
// returns the recovered partial results, whether every object was
// recovered, and whether any recovery used a non-primary replica.
func (r *Router) reroute(ctx context.Context, failed fragment) ([]netproto.QueryResultMsg, bool, bool) {
	rtNow := r.routing.Load()
	groups, stranded, viaReplica := rerouteTargets(rtNow, failed)
	strandedRetry := len(stranded) > 0 && len(stranded) < len(failed.query.Objects)
	if strandedRetry {
		// A strict subset with no alternate means the original shard
		// likely rejected the fragment over its moved objects, not that
		// it died: retry the stayers there as a narrower sub-fragment. A
		// fully stranded fragment (shard death at K=1) degrades
		// immediately, as before.
		groups[failed.link] = stranded
	}
	if len(groups) == 0 {
		return nil, false, viaReplica
	}
	results, all := r.scatterGroups(ctx, failed, groups)
	if len(stranded) > 0 && !strandedRetry {
		all = false
	}
	return results, all, viaReplica
}

// fragmentsFor builds the per-shard sub-queries for one routing epoch.
// Each fragment keeps the query's identity, time, and tolerance; the
// result cost ν(q) is split across fragments proportionally to their
// object counts, with the remainder charged to the first fragment so
// the shares sum exactly to the original cost.
func fragmentsFor(rt *routing, q *model.Query, parts map[int][]model.ObjectID) []fragment {
	shardIdxs := make([]int, 0, len(parts))
	for s := range parts {
		shardIdxs = append(shardIdxs, s)
	}
	slices.Sort(shardIdxs)
	frags := make([]fragment, 0, len(shardIdxs))
	var assigned cost.Bytes
	for _, s := range shardIdxs {
		sub := *q
		sub.Objects = parts[s]
		sub.Cost = q.Cost * cost.Bytes(len(parts[s])) / cost.Bytes(len(q.Objects))
		assigned += sub.Cost
		frags = append(frags, fragment{link: rt.links[s], query: sub, fragments: len(shardIdxs)})
	}
	frags[0].query.Cost += q.Cost - assigned
	return frags
}

// clusterStats probes every shard's StatsMsg in parallel and builds
// the cluster-wide view. A shard that fails to answer is reported
// not-alive and the view marked degraded; the aggregate covers the
// survivors.
func (r *Router) clusterStats(ctx context.Context) netproto.ClusterStatsMsg {
	rt := r.routing.Load()
	out := netproto.ClusterStatsMsg{Shards: make([]netproto.ShardStats, len(rt.links))}
	var wg sync.WaitGroup
	for i, s := range rt.links {
		wg.Add(1)
		go func(i int, s *shardLink) {
			defer wg.Done()
			st := &out.Shards[i]
			st.Shard = s.index
			st.Addr = s.addr
			ctx, cancel := context.WithTimeout(ctx, r.cfg.StatsTimeout)
			defer cancel()
			reply, err := s.sess.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgStats, Body: netproto.StatsMsg{},
			})
			if err != nil {
				st.Err = err.Error()
				return
			}
			stats, ok := reply.Body.(netproto.StatsMsg)
			if !ok {
				st.Err = fmt.Sprintf("shard replied %s", reply.Type)
				return
			}
			st.Alive = true
			st.Stats = stats
		}(i, s)
	}
	wg.Wait()
	for _, st := range out.Shards {
		if !st.Alive {
			out.Degraded = true
			continue
		}
		agg := &out.Aggregate
		agg.Ledger.QueryShip += st.Stats.Ledger.QueryShip
		agg.Ledger.UpdateShip += st.Stats.Ledger.UpdateShip
		agg.Ledger.ObjectLoad += st.Stats.Ledger.ObjectLoad
		agg.Ledger.QueryShips += st.Stats.Ledger.QueryShips
		agg.Ledger.UpdateShips += st.Stats.Ledger.UpdateShips
		agg.Ledger.ObjectLoads += st.Stats.Ledger.ObjectLoads
		agg.Queries += st.Stats.Queries
		agg.AtCache += st.Stats.AtCache
		agg.Shipped += st.Stats.Shipped
		agg.DroppedInvalidations += st.Stats.DroppedInvalidations
		agg.DedupedLoads += st.Stats.DedupedLoads
		agg.MigratedIn += st.Stats.MigratedIn
		agg.MigratedOut += st.Stats.MigratedOut
		agg.ObjectsBorn += st.Stats.ObjectsBorn
		agg.CoverCacheHits += st.Stats.CoverCacheHits
		agg.CoverCacheMisses += st.Stats.CoverCacheMisses
		agg.JournalRecords += st.Stats.JournalRecords
		agg.RecoveredWarm += st.Stats.RecoveredWarm
		// The cluster's replication factor, not a sum: every shard of a
		// consistent deployment reports the same K.
		agg.Replicas = max(agg.Replicas, st.Stats.Replicas)
		// The aggregate snapshot age is the oldest shard's: it bounds
		// how much journal any crash in the cluster would replay.
		agg.SnapshotAge = max(agg.SnapshotAge, st.Stats.SnapshotAge)
		agg.Cached = append(agg.Cached, st.Stats.Cached...)
		if agg.Policy == "" && st.Stats.Policy != "" {
			agg.Policy = fmt.Sprintf("cluster(%s×%d)", st.Stats.Policy, len(rt.links))
		}
	}
	if r.covers != nil {
		// Region resolution happens at the router, so its cover cache
		// joins the aggregate the shards cannot see.
		hits, misses := r.covers.Stats()
		out.Aggregate.CoverCacheHits += hits
		out.Aggregate.CoverCacheMisses += misses
	}
	// The result cache, coalescer, and grant batcher are routing-tier
	// structures too: their counters join the aggregate here (shards
	// always report zeroes for them).
	out.Aggregate.ResultCacheHits += r.results.Hits()
	out.Aggregate.ResultCacheMisses += r.results.Misses()
	out.Aggregate.CoalescedQueries += r.results.Coalesced()
	out.Aggregate.GrantBatches += r.grantBatches.Load()
	slices.SortFunc(out.Aggregate.Cached, func(a, b model.ObjectID) int { return cmp.Compare(a, b) })
	return out
}

// ShardInfo describes one shard in a topology snapshot.
type ShardInfo struct {
	Index int
	Addr  string
	// Alive reports whether the router still has a usable session to
	// the shard.
	Alive bool
	// Objects is the shard's owned object set.
	Objects []model.ObjectID
}

// Topology is a point-in-time snapshot of the cluster's shape.
type Topology struct {
	// Epoch counts completed resizes; it increments when a live
	// resize flips the routing table.
	Epoch  int
	Mode   Mode
	Shards []ShardInfo
}

// Topology snapshots the live shard topology.
func (r *Router) Topology() Topology {
	rt := r.routing.Load()
	t := Topology{Epoch: rt.epoch, Mode: rt.own.Mode()}
	for _, s := range rt.links {
		t.Shards = append(t.Shards, ShardInfo{
			Index:   s.index,
			Addr:    s.addr,
			Alive:   s.sess.Live(),
			Objects: rt.own.ShardObjects(s.index),
		})
	}
	return t
}

// Ownership returns the current routing epoch's ownership map.
func (r *Router) Ownership() *Ownership { return r.routing.Load().own }

// Queries returns how many client queries the router has routed.
func (r *Router) Queries() int64 { return r.queries.Load() }

// Scattered returns how many routed queries were split across two or
// more shards.
func (r *Router) Scattered() int64 { return r.scattered.Load() }

// Degraded returns how many routed queries were answered without
// every fragment because a shard failed.
func (r *Router) Degraded() int64 { return r.degraded.Load() }

// Rerouted returns how many failed fragments were fully recovered via
// an alternate owner (the double-routing path of live resizes).
func (r *Router) Rerouted() int64 { return r.rerouted.Load() }

// Failover returns how many failed fragments were fully recovered via
// a non-primary replica.
func (r *Router) Failover() int64 { return r.failover.Load() }

// Hedged returns how many hedged replica attempts were fired for slow
// primaries.
func (r *Router) Hedged() int64 { return r.hedged.Load() }

// ResultCacheHits returns how many routed queries were answered from
// the router's result cache (zero when the cache is disabled).
func (r *Router) ResultCacheHits() int64 { return r.results.Hits() }

// ResultCacheMisses returns how many routed queries missed the result
// cache and scattered or coalesced.
func (r *Router) ResultCacheMisses() int64 { return r.results.Misses() }

// Coalesced returns how many queries joined an identical in-flight
// query's scatter instead of scattering themselves.
func (r *Router) Coalesced() int64 { return r.results.Coalesced() }

// ResultCacheInvalidations returns how many cached results were
// evicted by the invalidation stream, birth adoptions, or epoch flips.
func (r *Router) ResultCacheInvalidations() int64 { return r.results.Invalidations() }

// GrantBatches returns how many batched birth-grant frames the router
// has shipped to shards.
func (r *Router) GrantBatches() int64 { return r.grantBatches.Load() }
