package cluster_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// TestChaosProcessKill is the process-level half of the chaos-soak CI
// lane: it builds the real binaries, stands up a repository, three
// delta-cache shards at K=2 and a router as separate OS processes,
// SIGKILLs one shard mid-traffic, and requires the cluster to keep
// serving undegraded — the in-process TestReplicatedShardKillSoak
// contract, re-proven against real processes dying the hard way.
//
// The test builds and forks binaries, so it only runs when
// DELTA_CHAOS_PROC=1 (the CI chaos lane sets it; local runs opt in).
func TestChaosProcessKill(t *testing.T) {
	if os.Getenv("DELTA_CHAOS_PROC") != "1" {
		t.Skip("set DELTA_CHAOS_PROC=1 to run the process-kill chaos test")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/delta-server", "./cmd/delta-cache", "./cmd/delta-router")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const (
		shards   = 3
		replicas = 2
		objects  = 16
		seed     = 2
	)
	repoAddr := freeAddr(t)
	shardAddrs := make([]string, shards)
	for i := range shardAddrs {
		shardAddrs[i] = freeAddr(t)
	}
	routerAddr := freeAddr(t)

	logDir := t.TempDir()
	spawn := func(name string, args ...string) *exec.Cmd {
		t.Helper()
		logf, err := os.Create(filepath.Join(logDir, name+".log"))
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(filepath.Join(bin, args[0]), args[1:]...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			logf.Close()
			if t.Failed() {
				if out, err := os.ReadFile(logf.Name()); err == nil {
					t.Logf("--- %s log ---\n%s", name, out)
				}
			}
		})
		return cmd
	}

	spawn("repo", "delta-server",
		"-addr", repoAddr,
		"-objects", fmt.Sprint(objects), "-seed", fmt.Sprint(seed))
	waitListening(t, repoAddr)
	shardProcs := make([]*exec.Cmd, shards)
	for i := 0; i < shards; i++ {
		shardProcs[i] = spawn(fmt.Sprintf("shard%d", i), "delta-cache",
			"-addr", shardAddrs[i], "-repo", repoAddr,
			"-objects", fmt.Sprint(objects), "-seed", fmt.Sprint(seed),
			"-shard-index", fmt.Sprint(i), "-shard-count", fmt.Sprint(shards),
			"-shard-mode", "htm", "-replicas", fmt.Sprint(replicas))
	}
	for _, addr := range shardAddrs {
		waitListening(t, addr)
	}
	spawn("router", "delta-router",
		"-addr", routerAddr,
		"-shards", shardAddrs[0]+","+shardAddrs[1]+","+shardAddrs[2],
		"-objects", fmt.Sprint(objects), "-seed", fmt.Sprint(seed),
		"-mode", "htm", "-replicas", fmt.Sprint(replicas))
	waitListening(t, routerAddr)

	// The same survey config the processes were started with, so the
	// test's object IDs are the deployment's.
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = objects
	scfg.Seed = seed
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []model.ObjectID
	for _, o := range survey.Objects() {
		ids = append(ids, o.ID)
	}

	cl, err := client.DialCluster(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	query := func(stage string, i int) {
		t.Helper()
		objs := ids[i%len(ids) : i%len(ids)+1]
		if i%4 == 0 {
			objs = ids // full-universe scatter
		}
		nu := cost.Bytes(len(objs)) * cost.MB
		res, err := cl.Query(ctx, model.Query{
			Objects:   objs,
			Cost:      nu,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		})
		if err != nil {
			t.Fatalf("%s query %d: %v", stage, i, err)
		}
		if res.Degraded {
			t.Errorf("%s query %d degraded (missing %v)", stage, i, res.MissingShards)
		}
		if res.Logical != int64(nu) {
			t.Errorf("%s query %d logical %d, want %d", stage, i, res.Logical, nu)
		}
	}
	for i := 0; i < 8; i++ {
		query("pre-kill", i)
	}

	const dead = 1
	if err := shardProcs[dead].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL shard %d: %v", dead, err)
	}
	shardProcs[dead].Wait()

	for i := 0; i < 24; i++ {
		query("post-kill", i)
	}

	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Degraded {
		t.Error("cluster stats should report the killed shard as down")
	}
	if cs.Aggregate.Replicas != replicas {
		t.Errorf("aggregate reports K=%d, want %d", cs.Aggregate.Replicas, replicas)
	}
}

// freeAddr reserves a loopback port by listening and closing; the
// spawned process re-binds it (a benign race on a quiet test host).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitListening polls until the address accepts connections (the
// processes log readiness, but dialing is the portable signal).
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never started listening: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
