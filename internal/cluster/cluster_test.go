package cluster_test

import (
	"context"
	"slices"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

var ctx = context.Background()

// startCluster spins up repository + N cache shards + router on
// loopback.
func startCluster(t *testing.T, shards int, policy func(int) core.Policy) (*catalog.Survey, *server.Repository, *cluster.LocalCluster) {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   shards,
		Mode:     cluster.HTMAware,
		Policy:   policy,
		Scale:    netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return survey, repo, lc
}

// spanningObjects picks one owned object per shard, so a query over
// them must scatter to every shard.
func spanningObjects(t *testing.T, lc *cluster.LocalCluster) []model.ObjectID {
	t.Helper()
	var objs []model.ObjectID
	for s := 0; s < lc.Ownership.Shards(); s++ {
		owned := lc.Ownership.ShardObjects(s)
		if len(owned) == 0 {
			t.Fatalf("shard %d owns nothing", s)
		}
		objs = append(objs, owned[0])
	}
	return objs
}

func TestClusterScatterGather(t *testing.T) {
	_, _, lc := startCluster(t, 3, nil)
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	objs := spanningObjects(t, lc)
	res, err := cl.Query(ctx, model.Query{
		Objects:   objs,
		Cost:      9 * cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Errorf("healthy cluster returned degraded result (missing %v)", res.MissingShards)
	}
	// The merged logical size must equal the original ν(q): fragment
	// cost shares sum exactly.
	if res.Logical != int64(9*cost.MB) {
		t.Errorf("merged logical = %d, want %d", res.Logical, 9*cost.MB)
	}
	if lc.Router.Scattered() != 1 {
		t.Errorf("scattered = %d, want 1", lc.Router.Scattered())
	}
	// Every shard saw exactly its fragment.
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range cs.Shards {
		if !st.Alive {
			t.Errorf("shard %d not alive", st.Shard)
		}
		if st.Stats.Queries != 1 {
			t.Errorf("shard %d handled %d queries, want 1", st.Shard, st.Stats.Queries)
		}
	}
	if cs.Aggregate.Queries != 3 {
		t.Errorf("aggregate queries = %d, want 3 (one fragment per shard)", cs.Aggregate.Queries)
	}
}

func TestClusterSingleShardFastPath(t *testing.T) {
	_, _, lc := startCluster(t, 3, nil)
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	owned := lc.Ownership.ShardObjects(1)
	res, err := cl.Query(ctx, model.Query{
		Objects:   owned[:1],
		Cost:      cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Logical != int64(cost.MB) {
		t.Errorf("single-shard result = %+v", res)
	}
	if lc.Router.Scattered() != 0 {
		t.Errorf("single-shard query counted as scattered")
	}
}

// TestClusterShardFailureDegrades kills one shard and checks the
// contract: queries spanning the dead shard return partial results
// with the degraded flag, queries wholly on the dead shard fail, and
// cluster stats report the shard as not alive.
func TestClusterShardFailureDegrades(t *testing.T) {
	_, _, lc := startCluster(t, 3, nil)
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const dead = 2
	lc.Shards[dead].Close()

	objs := spanningObjects(t, lc)
	var res *client.Result
	// The shard's death races the router noticing it; the first query
	// after the close may still find a half-open session, so poll
	// briefly for the degraded answer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = cl.Query(ctx, model.Query{
			Objects:   objs,
			Cost:      9 * cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		})
		if err == nil && res.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no degraded result before deadline (last: res=%+v err=%v)", res, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !slices.Contains(res.MissingShards, dead) {
		t.Errorf("missing shards %v do not include %d", res.MissingShards, dead)
	}
	// The surviving fragments' shares: 2/3 of the 9MB cost.
	if res.Logical != int64(6*cost.MB) {
		t.Errorf("degraded logical = %d, want %d", res.Logical, 6*cost.MB)
	}
	if lc.Router.Degraded() == 0 {
		t.Error("router degraded counter never incremented")
	}

	// A query wholly owned by the dead shard has nothing to degrade
	// to: it must fail, not hang or silently return nothing.
	deadObjs := lc.Ownership.ShardObjects(dead)
	if _, err := cl.Query(ctx, model.Query{
		Objects:   deadObjs[:1],
		Cost:      cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      2 * time.Second,
	}); err == nil {
		t.Error("query wholly on the dead shard succeeded")
	}

	// Stats degrade the same way: the dead shard reports not-alive,
	// the aggregate covers the survivors.
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Degraded {
		t.Error("cluster stats not marked degraded")
	}
	alive := 0
	for _, st := range cs.Shards {
		if st.Shard == dead {
			if st.Alive {
				t.Error("dead shard reported alive")
			}
			if st.Err == "" {
				t.Error("dead shard carries no error")
			}
		} else if st.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("alive survivors = %d, want 2", alive)
	}
	// Topology snapshot agrees.
	topo := lc.Router.Topology()
	if topo.Shards[dead].Alive {
		t.Error("topology reports dead shard alive")
	}
}

// TestClusterStatsAggregation pushes traffic through the router and
// checks the aggregate equals the sum of the per-shard views, with
// ownership keeping cached sets disjoint.
func TestClusterStatsAggregation(t *testing.T) {
	survey, _, lc := startCluster(t, 4, nil)
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One expensive query per object: VCover loads objects whose size
	// the query cost covers, so shards fill up independently.
	for _, o := range survey.Objects() {
		if _, err := cl.Query(ctx, model.Query{
			Objects:   []model.ObjectID{o.ID},
			Cost:      o.Size,
			Tolerance: model.NoTolerance,
			Time:      time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sumQueries, sumAtCache, sumShipped int64
	var sumLoad cost.Bytes
	seen := make(map[model.ObjectID]int)
	for _, st := range cs.Shards {
		if !st.Alive {
			t.Fatalf("shard %d not alive", st.Shard)
		}
		sumQueries += st.Stats.Queries
		sumAtCache += st.Stats.AtCache
		sumShipped += st.Stats.Shipped
		sumLoad += st.Stats.Ledger.ObjectLoad
		for _, id := range st.Stats.Cached {
			seen[id]++
			if owner, _ := lc.Ownership.Owner(id); owner != st.Shard {
				t.Errorf("shard %d caches object %d owned by shard %d", st.Shard, id, owner)
			}
		}
	}
	if cs.Aggregate.Queries != sumQueries || cs.Aggregate.Queries != 16 {
		t.Errorf("aggregate queries = %d, shard sum = %d, want 16", cs.Aggregate.Queries, sumQueries)
	}
	if cs.Aggregate.AtCache != sumAtCache || cs.Aggregate.Shipped != sumShipped {
		t.Errorf("aggregate atCache/shipped = %d/%d, sums = %d/%d",
			cs.Aggregate.AtCache, cs.Aggregate.Shipped, sumAtCache, sumShipped)
	}
	if cs.Aggregate.Ledger.ObjectLoad != sumLoad {
		t.Errorf("aggregate load traffic = %v, sum = %v", cs.Aggregate.Ledger.ObjectLoad, sumLoad)
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("object %d cached on %d shards; ownership must keep them disjoint", id, n)
		}
	}
	if len(cs.Aggregate.Cached) != len(seen) {
		t.Errorf("aggregate cached %d objects, shards report %d", len(cs.Aggregate.Cached), len(seen))
	}
	// The plain Stats endpoint returns the same aggregate, so a
	// cluster-unaware client sees one big cache.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != cs.Aggregate.Queries || st.Policy != cs.Aggregate.Policy {
		t.Errorf("Stats() = %+v, disagrees with aggregate %+v", st, cs.Aggregate)
	}
}

// TestClusterInvalidationsRouteToOwners checks that each shard applies
// only its owned objects' updates off the shared invalidation stream.
func TestClusterInvalidationsRouteToOwners(t *testing.T) {
	survey, repo, lc := startCluster(t, 2, func(int) core.Policy { return core.NewReplica() })
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Replica shards preload their owned objects and subscribe to the
	// full stream; an update to shard 0's object must ship only there.
	target := lc.Ownership.ShardObjects(0)[0]
	repo.ApplyUpdate(model.Update{ID: 1, Object: target, Cost: 3 * cost.MB, Time: time.Second})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lc.Shards[0].Ledger().UpdateShip == 3*cost.MB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner shard never shipped the update (ledger %v)", lc.Shards[0].Ledger())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := lc.Shards[1].Ledger().UpdateShip; got != 0 {
		t.Errorf("non-owner shard shipped %v of updates", got)
	}
	_ = survey
}

// TestClusterTransparentSingleCacheClusterStats checks the other
// direction of transparency: ClusterStats against an unsharded cache
// answers as a one-shard cluster.
func TestClusterTransparentSingleCacheClusterStats(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   1,
		Scale:    netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Dial the shard directly, bypassing the router.
	cl, err := client.DialCluster(lc.Shards[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Shards) != 1 || !cs.Shards[0].Alive || cs.Degraded {
		t.Errorf("single cache cluster stats = %+v", cs)
	}
}
