package cluster_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// growthSurveyConfig is the shared shape of the growth tests: equal
// 1 GB objects so ownership cuts balance and every query is cheap to
// validate.
func growthSurveyConfig(n int) catalog.Config {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = n
	scfg.TotalSize = cost.Bytes(n) * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	return scfg
}

// TestGrowthSoakWithResizeOverlap is the deterministic growth soak of
// the issue: a cluster under 16 concurrent clients whose universe
// doubles mid-run (32→64 objects, published in bursts) while a live
// 4→8 resize overlaps one of the growth bursts. Every query must
// succeed — zero failed queries — and every born object must be
// queryable the moment its publication acked; the run finishes on an
// 8-shard cluster whose routing spans the doubled universe.
func TestGrowthSoakWithResizeOverlap(t *testing.T) {
	const (
		nClients  = 16
		nBase     = 32
		nBirths   = 32 // universe doubles
		burstSize = 4
	)
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	// The grower's survey mirror: same config, so the births it
	// fabricates carry exactly the IDs the repository expects next.
	mirror, err := catalog.NewSurvey(growthSurveyConfig(nBase))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   4,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// known is the object set clients may query: base objects plus
	// every birth whose publication has acked (the ack means the
	// router already routes it — the one-notification guarantee).
	var (
		knownMu sync.RWMutex
		known   []model.ObjectID
	)
	for _, o := range repoSurvey.Objects() {
		known = append(known, o.ID)
	}
	pickKnown := func(rng *rand.Rand) []model.ObjectID {
		knownMu.RLock()
		defer knownMu.RUnlock()
		// Mostly single-object queries with some multi-object scatters.
		ids := []model.ObjectID{known[rng.Intn(len(known))]}
		if rng.Intn(4) == 0 {
			extra := known[rng.Intn(len(known))]
			if extra != ids[0] {
				ids = append(ids, extra)
			}
		}
		return ids
	}

	var (
		stop   atomic.Bool
		served atomic.Int64
		wg     sync.WaitGroup
	)
	for c := 0; c < nClients; c++ {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(c int, cl *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for i := 0; !stop.Load(); i++ {
				res, err := cl.Query(ctx, model.Query{
					Objects:   pickKnown(rng),
					Cost:      cost.KB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i) * time.Millisecond,
				})
				if err != nil {
					t.Errorf("client %d query %d failed: %v", c, i, err)
					return
				}
				if res.Degraded {
					t.Errorf("client %d query %d degraded on a healthy cluster", c, i)
					return
				}
				served.Add(1)
			}
		}(c, cl)
	}

	// Grower: publish the births in bursts; the resize fires midway
	// and overlaps the remaining bursts.
	growCl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer growCl.Close()
	growRng := rand.New(rand.NewSource(42))
	resizeStarted := make(chan struct{})
	resizeDone := make(chan error, 1)
	var bornIDs []model.ObjectID
	for burst := 0; burst < nBirths/burstSize; burst++ {
		if burst == nBirths/burstSize/2 {
			// Kick off the live 4→8 resize; the following bursts land
			// while it is widening/migrating/flipping.
			go func() {
				close(resizeStarted)
				_, err := lc.Resize(ctx, 8, false)
				resizeDone <- err
			}()
			<-resizeStarted
		}
		births, err := mirror.GrowObjects(growRng, burstSize, time.Duration(burst)*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := growCl.AddObjects(ctx, births); err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		// Acked births are queryable now; hand them to the clients.
		knownMu.Lock()
		for _, b := range births {
			known = append(known, b.Object.ID)
			bornIDs = append(bornIDs, b.Object.ID)
		}
		knownMu.Unlock()
		time.Sleep(5 * time.Millisecond) // let the load mix in mid-growth queries
	}
	if err := <-resizeDone; err != nil {
		t.Fatalf("resize during growth: %v", err)
	}

	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no queries served during the soak")
	}

	// The final topology spans the doubled universe on 8 shards, and
	// every born object answers a direct query.
	own := lc.Router.Ownership()
	if got := len(own.Universe()); got != nBase+nBirths {
		t.Errorf("routing universe = %d objects, want %d", got, nBase+nBirths)
	}
	if own.Shards() != 8 {
		t.Errorf("final shard count = %d, want 8", own.Shards())
	}
	if got := lc.Router.Births(); got != nBirths {
		t.Errorf("router adopted %d births, want %d", got, nBirths)
	}
	verify, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	for _, id := range bornIDs {
		res, err := verify.Query(ctx, model.Query{
			Objects: []model.ObjectID{id}, Cost: cost.KB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		})
		if err != nil {
			t.Errorf("born object %d not queryable after soak: %v", id, err)
			continue
		}
		if res.Degraded {
			t.Errorf("born object %d answered degraded", id)
		}
	}
	cs, err := verify.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Aggregate.ObjectsBorn != nBirths {
		t.Errorf("shards admitted %d births total, want %d", cs.Aggregate.ObjectsBorn, nBirths)
	}
}

// TestBirthAnnouncementReachesRouterAndCache covers the asynchronous
// adoption path: births published straight to the repository (the
// pipeline role — no router involved) must become queryable through
// the cluster within one invalidation round trip, with adoption driven
// purely by the announcement stream.
func TestBirthAnnouncementReachesRouterAndCache(t *testing.T) {
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := catalog.NewSurvey(growthSurveyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   3,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Publish through the pipeline role: a one-way stream to the
	// repository, exactly how the survey's data pipeline would.
	pipe, err := netproto.DialSession(repo.Addr(), "client", netproto.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	births, err := mirror.GrowObjects(rand.New(rand.NewSource(7)), 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := pipe.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: births},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := reply.Body.(netproto.ObjectBirthMsg); !ok || ack.Accepted != len(births) {
		t.Fatalf("repository accepted %v of %d births", reply.Body, len(births))
	}

	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for _, b := range births {
		for {
			res, err := cl.Query(ctx, model.Query{
				Objects: []model.ObjectID{b.Object.ID}, Cost: cost.KB,
				Tolerance: model.AnyStaleness, Time: time.Minute,
			})
			if err == nil && !res.Degraded {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("born object %d still not queryable: %v", b.Object.ID, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if got := lc.Router.Births(); got != int64(len(births)) {
		t.Errorf("router adopted %d births, want %d", got, len(births))
	}
}

// TestPublishPathUsesCanonicalMetadata is the regression pin for the
// publish-vs-announcement divergence: a publisher may legally send
// births with a zero trixel (the catalog fills it from the sky
// position), and the router must adopt the repository's canonical
// copy — otherwise HTM placement on the publish path would diverge
// from every announcement-stream adopter.
func TestPublishPathUsesCanonicalMetadata(t *testing.T) {
	repoSurvey, err := catalog.NewSurvey(growthSurveyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := catalog.NewSurvey(growthSurveyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: repoSurvey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  repoSurvey.Objects(),
		Shards:   4,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	births, err := mirror.GrowObjects(rand.New(rand.NewSource(3)), 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	canonical := make(map[model.ObjectID]uint64, len(births))
	published := make([]model.Birth, len(births))
	for i, b := range births {
		canonical[b.Object.ID] = b.Object.Trixel
		published[i] = b
		published[i].Object.Trixel = 0 // what a lazy publisher would send
	}
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.AddObjects(ctx, published); err != nil {
		t.Fatal(err)
	}
	own := lc.Router.Ownership()
	for id, trixel := range canonical {
		got := own.Objects([]model.ObjectID{id})
		if len(got) != 1 {
			t.Fatalf("born object %d missing from routing universe", id)
		}
		if got[0].Trixel != trixel {
			t.Errorf("router adopted object %d with trixel %d, canonical is %d",
				id, got[0].Trixel, trixel)
		}
		if _, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{id}, Cost: cost.KB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		}); err != nil {
			t.Errorf("born object %d not queryable: %v", id, err)
		}
	}
}
