package cluster_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// startReplicated spins up repository + shards + router with a K-way
// replicated ownership, letting the test mutate the LocalConfig (hedge
// settings, per-shard exec delays, policies) before the spawn.
func startReplicated(t *testing.T, shards, replicas int, mutate func(*cluster.LocalConfig)) (*catalog.Survey, *cluster.LocalCluster) {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	cfg := cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   shards,
		Mode:     cluster.HTMAware,
		Replicas: replicas,
		Scale:    netproto.DefaultScale(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	lc, err := cluster.SpawnLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return survey, lc
}

// TestReplicatedShardKillSoak is the replication contract test: with
// K=2, killing a shard mid-soak must cost the clients nothing — every
// query keeps succeeding undegraded with exact cost shares, because the
// router fails the dead shard's fragments over to the surviving
// replicas. Contrast TestClusterShardFailureDegrades, the same kill at
// K=1, where degradation is the best the router can do.
func TestReplicatedShardKillSoak(t *testing.T) {
	_, lc := startReplicated(t, 3, 2, func(cfg *cluster.LocalConfig) {
		// The soak replays a handful of fixed query shapes, which the
		// router's result cache would happily answer without ever
		// scattering again — masking the kill this test exists to
		// exercise. Disable it so every query reaches the shards.
		cfg.ResultCacheSize = -1
	})

	// One query shape per shard: that shard's primaries (the fragment
	// the kill orphans), plus one spanning all shards.
	shapes := make([][]model.ObjectID, 0, lc.Ownership.Shards()+1)
	var spanning []model.ObjectID
	for s := 0; s < lc.Ownership.Shards(); s++ {
		var primaries []model.ObjectID
		for _, id := range lc.Ownership.ShardObjects(s) {
			if p, ok := lc.Ownership.Owner(id); ok && p == s {
				primaries = append(primaries, id)
			}
		}
		if len(primaries) == 0 {
			t.Fatalf("shard %d has no primary objects", s)
		}
		shapes = append(shapes, primaries)
		spanning = append(spanning, primaries[0])
	}
	shapes = append(shapes, spanning)

	const (
		workers = 4
		soak    = 1200 * time.Millisecond
		killAt  = 300 * time.Millisecond
	)
	var (
		wg        sync.WaitGroup
		queries   atomic.Int64
		failures  atomic.Int64
		degraded  atomic.Int64
		badShares atomic.Int64
		stop      = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.DialCluster(lc.Router.Addr())
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				objs := shapes[rng.Intn(len(shapes))]
				nu := cost.Bytes(len(objs)) * cost.MB
				res, err := cl.Query(ctx, model.Query{
					Objects:   objs,
					Cost:      nu,
					Tolerance: model.AnyStaleness,
					Time:      time.Second,
				})
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					t.Logf("worker %d query %d failed: %v", w, i, err)
					continue
				}
				if res.Degraded {
					degraded.Add(1)
					t.Logf("worker %d query %d degraded (missing %v)", w, i, res.MissingShards)
				}
				if res.Logical != int64(nu) {
					badShares.Add(1)
					t.Logf("worker %d query %d logical %d, want %d", w, i, res.Logical, nu)
				}
			}
		}(w)
	}

	const dead = 1
	time.Sleep(killAt)
	lc.Shards[dead].Close()
	time.Sleep(soak - killAt)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Errorf("%d of %d queries failed across the shard kill", n, queries.Load())
	}
	if n := degraded.Load(); n > 0 {
		t.Errorf("%d of %d queries degraded across the shard kill (K=2 must mask one death)", n, queries.Load())
	}
	if n := badShares.Load(); n > 0 {
		t.Errorf("%d of %d queries lost cost shares under failover", n, queries.Load())
	}
	if queries.Load() < int64(workers*2) {
		t.Errorf("soak only issued %d queries", queries.Load())
	}
	if lc.Router.Failover() == 0 {
		t.Error("router failover counter never incremented — the kill was never exercised")
	}
	if lc.Router.Degraded() != 0 {
		t.Errorf("router degraded counter = %d, want 0", lc.Router.Degraded())
	}
}

// TestClusterHedgedReadsMaskStraggler pins the hedged-read contract: a
// shard that stalls (long node-local scans) no longer sets the query
// tail, because after the hedge delay the router races the fragment
// against the next replica and takes the first complete answer.
func TestClusterHedgedReadsMaskStraggler(t *testing.T) {
	const (
		slow      = 0
		slowDelay = 400 * time.Millisecond
	)
	_, lc := startReplicated(t, 3, 2, func(cfg *cluster.LocalConfig) {
		cfg.Hedge = true
		cfg.HedgeDelay = 3 * time.Millisecond
		// ExecDelay applies to cache-answered queries; the replica policy
		// keeps every object cache-resident so the straggler actually
		// stalls (and the fast replicas answer from cache immediately).
		cfg.Policy = func(int) core.Policy { return core.NewReplica() }
		cfg.ShardExecDelay = func(s int) time.Duration {
			if s == slow {
				return slowDelay
			}
			return 0
		}
	})
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var slowObjs []model.ObjectID
	for _, id := range lc.Ownership.ShardObjects(slow) {
		if p, ok := lc.Ownership.Owner(id); ok && p == slow {
			slowObjs = append(slowObjs, id)
		}
	}
	if len(slowObjs) == 0 {
		t.Fatalf("shard %d has no primary objects", slow)
	}

	// Warm the caches: the first touch of each object ships from the
	// repository (no exec delay) while the replica policy admits it.
	for _, objs := range [][]model.ObjectID{slowObjs, lc.Ownership.ShardObjects(1), lc.Ownership.ShardObjects(2)} {
		if _, err := cl.Query(ctx, model.Query{
			Objects:   objs,
			Cost:      cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 4; i++ {
		nu := cost.Bytes(len(slowObjs)) * cost.MB
		start := time.Now()
		res, err := cl.Query(ctx, model.Query{
			Objects:   slowObjs,
			Cost:      nu,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		if res.Degraded {
			t.Errorf("hedged query %d degraded (missing %v)", i, res.MissingShards)
		}
		if res.Logical != int64(nu) {
			t.Errorf("hedged query %d logical %d, want %d", i, res.Logical, nu)
		}
		// The replica answers in a few network round trips; only the
		// straggler takes slowDelay. Half the straggler's stall is a
		// generous CI bound that still proves the hedge fired and won.
		if elapsed >= slowDelay/2 {
			t.Errorf("hedged query %d took %v, straggler delay is %v — hedge never won", i, elapsed, slowDelay)
		}
	}
	if lc.Router.Hedged() == 0 {
		t.Error("router hedged counter never incremented")
	}
	if lc.Router.Degraded() != 0 {
		t.Errorf("router degraded counter = %d, want 0", lc.Router.Degraded())
	}
}

// TestClusterReplicaStats pins the replication factor's trip through
// the stats plane: every shard reports its configured K, and the
// cluster aggregate carries K itself (not a sum across shards).
func TestClusterReplicaStats(t *testing.T) {
	_, lc := startReplicated(t, 3, 2, nil)
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range cs.Shards {
		if st.Stats.Replicas != 2 {
			t.Errorf("shard %d reports K=%d, want 2", st.Shard, st.Stats.Replicas)
		}
	}
	if cs.Aggregate.Replicas != 2 {
		t.Errorf("aggregate reports K=%d, want 2 (K must not sum across shards)", cs.Aggregate.Replicas)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replicas != 2 {
		t.Errorf("aggregate StatsMsg reports K=%d, want 2", st.Replicas)
	}

	// At K=2 every object is held by exactly two shards, so the total
	// held count is twice the universe.
	total := 0
	for s := 0; s < lc.Ownership.Shards(); s++ {
		total += len(lc.Ownership.ShardObjects(s))
	}
	if want := 2 * len(lc.Ownership.Universe()); total != want {
		t.Errorf("shards hold %d object slots, want %d", total, want)
	}
}
