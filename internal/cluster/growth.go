// Live universe growth at the routing tier. The paper's repository
// grows while serving: newly published objects (MsgObjectBirth) must
// become routable without a restart or an epoch change. The router
// learns births two ways — a client publishes through it, or the
// repository announces one on the invalidation stream the router
// subscribes to (Config.RepoAddr) — and adoption is the same either
// way:
//
//  1. extend the current routing epoch's ownership (Ownership.Extend:
//     rendezvous placement is free, HTM places the newborn in the cut
//     that spatially contains it — no existing object moves);
//  2. push the birth to its owning shard (MsgObjectBirth request), so
//     the shard admits it into its filter and policy universe;
//  3. publish the extended routing snapshot — same epoch, grown
//     universe — so queries touching the newborn route from then on.
//
// The shard is granted ownership before the routing snapshot flips, so
// a query that routes to the newborn never races its adoption. Births
// serialize against live resizes (growMu): a resize in flight finishes
// before a birth extends the final topology, and vice versa, so no
// routing snapshot is ever lost to an interleaved store.
package cluster

import (
	"context"
	"fmt"
	"net"
	"slices"
	"sync"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// subscribeInvalidations dials the repository's invalidation stream so
// the router hears new-object announcements and update notices. Shard
// freshness is still the shards' business; the router consumes update
// notices only to evict its own result cache (a cached merged result
// containing the updated object must never be served after the notice
// lands). Called from NewRouter when Config.RepoAddr is set.
func (r *Router) subscribeInvalidations() error {
	nc, err := net.Dial("tcp", r.cfg.RepoAddr)
	if err != nil {
		return fmt.Errorf("cluster: dial invalidations: %w", err)
	}
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: subscribe invalidations: %w", err)
	}
	r.invRaw = nc
	r.wg.Add(1)
	go r.invalidationLoop(c)
	return nil
}

func (r *Router) invalidationLoop(c *netproto.Conn) {
	defer r.wg.Done()
	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		switch body := f.Body.(type) {
		case netproto.ObjectBirthMsg:
			// Hand the announcement to the batching worker: announcements
			// arriving while an adoption is in flight pile up and adopt as
			// one batch (one ownership extension, one grant per shard).
			r.enqueueBirths(body.Births, nil)
		case netproto.InvalidateMsg:
			// Evict every cached result the updated object is part of, and
			// poison in-flight scatters touching it, before the next query
			// can be served stale. Shard-side freshness rides the shards'
			// own subscriptions to this same stream.
			r.results.invalidate(body.Update.Object)
		}
	}
}

// birthReq is one batch of births queued for the adoption worker. A
// nil done is fire-and-forget (the announcement stream); the publish
// path waits on done for the adoption's outcome.
type birthReq struct {
	births []model.Birth
	done   chan error
}

// enqueueBirths hands births to the adoption worker, reporting false
// if the router is shutting down.
func (r *Router) enqueueBirths(births []model.Birth, done chan error) bool {
	select {
	case r.birthCh <- birthReq{births: births, done: done}:
		return true
	case <-r.birthQuit:
		return false
	}
}

// birthWorker serializes birth adoption and batches it for free: each
// iteration drains every request currently queued and adopts the union
// in one adoptBirths call — one ownership extension, one routing
// snapshot, and one grant frame per owning shard, however many births
// the repository announced while the previous round was in flight. An
// idle channel adds no latency (the first request is adopted alone,
// immediately), preserving the adopt-within-one-notification-round-trip
// behavior single births have always had.
func (r *Router) birthWorker() {
	defer r.wg.Done()
	for {
		var reqs []birthReq
		select {
		case <-r.birthQuit:
			return
		case req := <-r.birthCh:
			reqs = append(reqs, req)
		}
	drain:
		for {
			select {
			case req := <-r.birthCh:
				reqs = append(reqs, req)
			default:
				break drain
			}
		}
		var births []model.Birth
		for _, req := range reqs {
			births = append(births, req.births...)
		}
		_, err := r.adoptBirths(context.Background(), births)
		if err != nil {
			r.cfg.Logf("adopt births: %v", err)
		}
		for _, req := range reqs {
			if req.done != nil {
				req.done <- err // buffered; never blocks the worker
			}
		}
	}
}

// adoptBirths makes newly published objects routable: it extends the
// current epoch's ownership, grants the newborns to their owning
// shards, and publishes the grown routing snapshot. Already-known
// births are skipped (adoption is idempotent across the announcement
// stream and the publish path). Returns how many births were new.
func (r *Router) adoptBirths(ctx context.Context, births []model.Birth) (int, error) {
	// Serialize against resizes: an interleaved Resize store would
	// otherwise publish a snapshot computed without these births.
	r.growMu.Lock()
	defer r.growMu.Unlock()

	rt := r.routing.Load()
	fresh := make([]model.Object, 0, len(births))
	freshBirths := make([]model.Birth, 0, len(births))
	seen := make(map[model.ObjectID]struct{}, len(births))
	for _, b := range births {
		if _, known := rt.own.Owner(b.Object.ID); known {
			continue
		}
		// A batched round can carry the same birth twice — the publish
		// path's copy and the announcement stream's — so dedup within
		// the round too, not just against settled ownership.
		if _, dup := seen[b.Object.ID]; dup {
			continue
		}
		seen[b.Object.ID] = struct{}{}
		fresh = append(fresh, b.Object)
		freshBirths = append(freshBirths, b)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	ownNew, err := rt.own.Extend(fresh)
	if err != nil {
		return 0, fmt.Errorf("cluster: extend ownership: %w", err)
	}

	// Grant each newborn to every shard of its replica set before any
	// query can route there (a failover or hedged read may land on any
	// rank, so all K holders must admit the newborn).
	byShard := make(map[int][]model.Birth)
	for i, o := range fresh {
		ranked, ok := ownNew.Owners(o.ID)
		if !ok {
			return 0, fmt.Errorf("cluster: extended ownership lost object %d", o.ID)
		}
		for _, s := range ranked {
			byShard[s] = append(byShard[s], freshBirths[i])
		}
	}
	shardIdxs := make([]int, 0, len(byShard))
	for s := range byShard {
		shardIdxs = append(shardIdxs, s)
	}
	slices.Sort(shardIdxs)
	// One batched grant frame per owning shard, shipped in parallel:
	// however many births this round accumulated, each shard costs one
	// round trip (MsgBirthGrant carries the whole batch; the shard
	// admits the births directly, with no repository re-forward — the
	// grant only ever follows the repository's own ack or announcement).
	grantErrs := make([]error, len(shardIdxs))
	var wg sync.WaitGroup
	for i, s := range shardIdxs {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			link := rt.links[s]
			ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
			defer cancel()
			_, err := link.sess.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgBirthGrant,
				Body: netproto.BirthGrantMsg{Births: byShard[s], Epoch: rt.epoch},
			})
			if err != nil {
				// The shard missed its grant: queries for the newborn will
				// fail on it until the next reshard re-grants the owned set
				// explicitly. Surface the failure; routing still flips so
				// the rest of the batch serves.
				grantErrs[i] = fmt.Errorf("shard %d (%s): %w", link.index, link.addr, err)
				r.cfg.Logf("birth grant to shard %d failed: %v", link.index, err)
			}
		}(i, s)
	}
	wg.Wait()
	r.grantBatches.Add(int64(len(shardIdxs)))
	var pushErrs []error
	for _, err := range grantErrs {
		if err != nil {
			pushErrs = append(pushErrs, err)
		}
	}

	r.routing.Store(&routing{epoch: rt.epoch, own: ownNew, links: rt.links, alt: rt.alt})
	// Routing grew under any result in motion: wipe the result cache
	// and poison in-flight scatters. (Cached entries for pre-birth
	// object sets are strictly still correct — a birth touches no
	// existing object — but region covers re-resolve to new ID sets
	// now, and a wholesale clear keeps the birth path's cache
	// interaction trivially auditable; growth-heavy workloads cache
	// little at the router anyway.)
	r.results.clear()
	r.births.Add(int64(len(fresh)))
	if r.covers != nil {
		// Extend the resolver's universe before dropping memoized
		// covers — newborns can join any region's cover, and a
		// recompute against the pre-growth resolver would re-memoize
		// their absence.
		if r.cfg.ResolverGrow != nil {
			if err := r.cfg.ResolverGrow(freshBirths); err != nil {
				r.cfg.Logf("resolver growth: %v (region covers may miss newborns)", err)
			}
		}
		r.covers.Bump()
	}
	r.cfg.Logf("adopted %d born objects (universe now %d objects, epoch %d)",
		len(fresh), len(ownNew.universe), rt.epoch)
	if len(pushErrs) > 0 {
		return len(fresh), fmt.Errorf("cluster: %d birth grant(s) failed: %v", len(pushErrs), pushErrs[0])
	}
	return len(fresh), nil
}

// handleBirths serves a client's MsgObjectBirth publication: ship the
// births to the repository (the source of truth for the growing
// universe), then adopt them into routing synchronously, so the
// publisher can query its newborns the moment the reply lands.
func (r *Router) handleBirths(ctx context.Context, body netproto.ObjectBirthMsg) netproto.Frame {
	if r.repo == nil {
		return netproto.ErrorFrame("cluster: router has no repository address; growth unavailable")
	}
	reply, err := r.repo.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: body.Births},
	})
	if err != nil {
		return netproto.ErrorFrame("cluster: publish births: %v", err)
	}
	ack, ok := reply.Body.(netproto.ObjectBirthMsg)
	if !ok {
		return netproto.ErrorFrame("cluster: repository replied %s to births", reply.Type)
	}
	// Adopt the repository's canonical copies into routing before
	// replying (idempotent against the announcement stream, which may
	// race us here) — through the batching worker, so concurrent
	// publishers coalesce into one ownership extension and one grant
	// frame per shard. A failed adoption — typically an owning shard
	// missing its grant — fails the publish: the reply's contract is
	// "queryable on ack", and an unwarned publisher would see its
	// newborn degrade every query until the next reshard re-grants
	// owned sets explicitly. The births stay ingested at the
	// repository and routing stays deterministic, so the publisher can
	// simply retry or alert.
	done := make(chan error, 1)
	if !r.enqueueBirths(ack.Births, done) {
		return netproto.ErrorFrame("cluster: router is closing")
	}
	select {
	case err := <-done:
		if err != nil {
			return netproto.ErrorFrame("cluster: births published but adoption incomplete: %v", err)
		}
	case <-r.birthQuit:
		return netproto.ErrorFrame("cluster: router is closing")
	}
	return netproto.Frame{Type: netproto.MsgObjectBirth, Body: netproto.ObjectBirthMsg{
		Births:   ack.Births,
		Accepted: ack.Accepted,
	}}
}

// Births reports how many born objects the router has adopted into its
// routing universe since start.
func (r *Router) Births() int64 { return r.births.Load() }
