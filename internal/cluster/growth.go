// Live universe growth at the routing tier. The paper's repository
// grows while serving: newly published objects (MsgObjectBirth) must
// become routable without a restart or an epoch change. The router
// learns births two ways — a client publishes through it, or the
// repository announces one on the invalidation stream the router
// subscribes to (Config.RepoAddr) — and adoption is the same either
// way:
//
//  1. extend the current routing epoch's ownership (Ownership.Extend:
//     rendezvous placement is free, HTM places the newborn in the cut
//     that spatially contains it — no existing object moves);
//  2. push the birth to its owning shard (MsgObjectBirth request), so
//     the shard admits it into its filter and policy universe;
//  3. publish the extended routing snapshot — same epoch, grown
//     universe — so queries touching the newborn route from then on.
//
// The shard is granted ownership before the routing snapshot flips, so
// a query that routes to the newborn never races its adoption. Births
// serialize against live resizes (growMu): a resize in flight finishes
// before a birth extends the final topology, and vice versa, so no
// routing snapshot is ever lost to an interleaved store.
package cluster

import (
	"context"
	"fmt"
	"net"
	"slices"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// subscribeInvalidations dials the repository's invalidation stream so
// the router hears new-object announcements (update notices ride the
// same stream and are ignored here — freshness is the shards'
// business). Called from NewRouter when Config.RepoAddr is set.
func (r *Router) subscribeInvalidations() error {
	nc, err := net.Dial("tcp", r.cfg.RepoAddr)
	if err != nil {
		return fmt.Errorf("cluster: dial invalidations: %w", err)
	}
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: subscribe invalidations: %w", err)
	}
	r.invRaw = nc
	r.wg.Add(1)
	go r.invalidationLoop(c)
	return nil
}

func (r *Router) invalidationLoop(c *netproto.Conn) {
	defer r.wg.Done()
	ctx := context.Background()
	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		birth, ok := f.Body.(netproto.ObjectBirthMsg)
		if !ok {
			continue // update notices are the shards' business
		}
		if _, err := r.adoptBirths(ctx, birth.Births); err != nil {
			r.cfg.Logf("adopt births: %v", err)
		}
	}
}

// adoptBirths makes newly published objects routable: it extends the
// current epoch's ownership, grants the newborns to their owning
// shards, and publishes the grown routing snapshot. Already-known
// births are skipped (adoption is idempotent across the announcement
// stream and the publish path). Returns how many births were new.
func (r *Router) adoptBirths(ctx context.Context, births []model.Birth) (int, error) {
	// Serialize against resizes: an interleaved Resize store would
	// otherwise publish a snapshot computed without these births.
	r.growMu.Lock()
	defer r.growMu.Unlock()

	rt := r.routing.Load()
	fresh := make([]model.Object, 0, len(births))
	freshBirths := make([]model.Birth, 0, len(births))
	for _, b := range births {
		if _, known := rt.own.Owner(b.Object.ID); known {
			continue
		}
		fresh = append(fresh, b.Object)
		freshBirths = append(freshBirths, b)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	ownNew, err := rt.own.Extend(fresh)
	if err != nil {
		return 0, fmt.Errorf("cluster: extend ownership: %w", err)
	}

	// Grant each newborn to every shard of its replica set before any
	// query can route there (a failover or hedged read may land on any
	// rank, so all K holders must admit the newborn).
	byShard := make(map[int][]model.Birth)
	for i, o := range fresh {
		ranked, ok := ownNew.Owners(o.ID)
		if !ok {
			return 0, fmt.Errorf("cluster: extended ownership lost object %d", o.ID)
		}
		for _, s := range ranked {
			byShard[s] = append(byShard[s], freshBirths[i])
		}
	}
	shardIdxs := make([]int, 0, len(byShard))
	for s := range byShard {
		shardIdxs = append(shardIdxs, s)
	}
	slices.Sort(shardIdxs)
	var pushErrs []error
	for _, s := range shardIdxs {
		link := rt.links[s]
		ctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
		_, err := link.sess.RoundTrip(ctx, netproto.Frame{
			Type: netproto.MsgObjectBirth,
			Body: netproto.ObjectBirthMsg{Births: byShard[s]},
		})
		cancel()
		if err != nil {
			// The shard missed its grant: queries for the newborn will
			// fail on it until the next reshard re-grants the owned set
			// explicitly. Surface the failure; routing still flips so
			// the rest of the batch serves.
			pushErrs = append(pushErrs, fmt.Errorf("shard %d (%s): %w", link.index, link.addr, err))
			r.cfg.Logf("birth grant to shard %d failed: %v", link.index, err)
		}
	}

	r.routing.Store(&routing{epoch: rt.epoch, own: ownNew, links: rt.links, alt: rt.alt})
	r.births.Add(int64(len(fresh)))
	if r.covers != nil {
		// Extend the resolver's universe before dropping memoized
		// covers — newborns can join any region's cover, and a
		// recompute against the pre-growth resolver would re-memoize
		// their absence.
		if r.cfg.ResolverGrow != nil {
			if err := r.cfg.ResolverGrow(freshBirths); err != nil {
				r.cfg.Logf("resolver growth: %v (region covers may miss newborns)", err)
			}
		}
		r.covers.Bump()
	}
	r.cfg.Logf("adopted %d born objects (universe now %d objects, epoch %d)",
		len(fresh), len(ownNew.universe), rt.epoch)
	if len(pushErrs) > 0 {
		return len(fresh), fmt.Errorf("cluster: %d birth grant(s) failed: %v", len(pushErrs), pushErrs[0])
	}
	return len(fresh), nil
}

// handleBirths serves a client's MsgObjectBirth publication: ship the
// births to the repository (the source of truth for the growing
// universe), then adopt them into routing synchronously, so the
// publisher can query its newborns the moment the reply lands.
func (r *Router) handleBirths(ctx context.Context, body netproto.ObjectBirthMsg) netproto.Frame {
	if r.repo == nil {
		return netproto.ErrorFrame("cluster: router has no repository address; growth unavailable")
	}
	reply, err := r.repo.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: body.Births},
	})
	if err != nil {
		return netproto.ErrorFrame("cluster: publish births: %v", err)
	}
	ack, ok := reply.Body.(netproto.ObjectBirthMsg)
	if !ok {
		return netproto.ErrorFrame("cluster: repository replied %s to births", reply.Type)
	}
	// Adopt the repository's canonical copies into routing before
	// replying (idempotent against the announcement stream, which may
	// race us here). A failed adoption — typically an owning shard
	// missing its grant — fails the publish: the reply's contract is
	// "queryable on ack", and an unwarned publisher would see its
	// newborn degrade every query until the next reshard re-grants
	// owned sets explicitly. The births stay ingested at the
	// repository and routing stays deterministic, so the publisher can
	// simply retry or alert.
	if _, err := r.adoptBirths(ctx, ack.Births); err != nil {
		return netproto.ErrorFrame("cluster: births published but adoption incomplete: %v", err)
	}
	return netproto.Frame{Type: netproto.MsgObjectBirth, Body: netproto.ObjectBirthMsg{
		Births:   ack.Births,
		Accepted: ack.Accepted,
	}}
}

// Births reports how many born objects the router has adopted into its
// routing universe since start.
func (r *Router) Births() int64 { return r.births.Load() }
