package cluster

import (
	"testing"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// lead drives one complete leader pass through the cache: begin must
// hand back a fresh flight, which is completed with the given result.
func lead(t *testing.T, c *resultCache, objs []model.ObjectID, res netproto.QueryResultMsg) {
	t.Helper()
	cached, fl, leader := c.begin(objs)
	if cached != nil || fl == nil || !leader {
		t.Fatalf("begin(%v) = (%v, %v, %v), want a fresh leader flight", objs, cached, fl, leader)
	}
	c.complete(fl, res, true)
}

func TestResultCacheHitAndLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a := []model.ObjectID{1, 2}
	b := []model.ObjectID{3, 4}
	d := []model.ObjectID{5, 6}
	lead(t, c, a, netproto.QueryResultMsg{Payload: []byte("a")})
	lead(t, c, b, netproto.QueryResultMsg{Payload: []byte("b")})

	// Hit A (order within the query must not matter), refreshing its
	// LRU position so B is now the eviction candidate.
	cached, fl, _ := c.begin([]model.ObjectID{2, 1})
	if cached == nil || fl != nil {
		t.Fatalf("begin(a) after insert = (%v, %v), want a cache hit", cached, fl)
	}
	if string(cached.Payload) != "a" {
		t.Fatalf("hit returned payload %q, want %q", cached.Payload, "a")
	}

	// Inserting a third entry at size 2 must evict the LRU tail: B.
	lead(t, c, d, netproto.QueryResultMsg{Payload: []byte("d")})
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", n)
	}
	if cached, _, _ := c.begin(a); cached == nil {
		t.Error("A evicted; LRU refresh on hit was lost")
	}
	if cached, fl, leader := c.begin(b); cached != nil || !leader {
		t.Errorf("begin(b) = (%v, %v, %v); B must have been evicted as the LRU tail", cached, fl, leader)
	}
	if c.Hits() != 2 {
		t.Errorf("hits = %d, want 2", c.Hits())
	}
}

func TestResultCacheInvalidateEvictsMemberEntries(t *testing.T) {
	c := newResultCache(8)
	lead(t, c, []model.ObjectID{1, 2}, netproto.QueryResultMsg{})
	lead(t, c, []model.ObjectID{2, 3}, netproto.QueryResultMsg{})
	lead(t, c, []model.ObjectID{4}, netproto.QueryResultMsg{})

	c.invalidate(2)
	if n := c.Len(); n != 1 {
		t.Fatalf("cache holds %d entries after invalidating object 2, want 1", n)
	}
	if cached, _, _ := c.begin([]model.ObjectID{4}); cached == nil {
		t.Error("entry not containing the invalidated object was evicted")
	}
	if cached, _, _ := c.begin([]model.ObjectID{1, 2}); cached != nil {
		t.Error("entry containing the invalidated object survived")
	}
	if c.Invalidations() != 2 {
		t.Errorf("invalidations = %d, want 2", c.Invalidations())
	}
}

func TestResultCacheInvalidatePoisonsFlight(t *testing.T) {
	c := newResultCache(8)
	_, fl, leader := c.begin([]model.ObjectID{7, 8})
	if fl == nil || !leader {
		t.Fatal("expected a fresh leader flight")
	}
	c.invalidate(8)
	c.complete(fl, netproto.QueryResultMsg{Payload: []byte("stale")}, true)
	if fl.shared {
		t.Error("poisoned flight shared its result with followers")
	}
	if n := c.Len(); n != 0 {
		t.Errorf("poisoned flight inserted into the cache (%d entries)", n)
	}
}

func TestResultCacheClearPoisonsAndWipes(t *testing.T) {
	c := newResultCache(8)
	lead(t, c, []model.ObjectID{1}, netproto.QueryResultMsg{})
	_, fl, leader := c.begin([]model.ObjectID{2})
	if fl == nil || !leader {
		t.Fatal("expected a fresh leader flight")
	}
	c.clear()
	if n := c.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after clear", n)
	}
	c.complete(fl, netproto.QueryResultMsg{}, true)
	if fl.shared {
		t.Error("flight spanning a clear (epoch flip) shared its result")
	}
	if n := c.Len(); n != 0 {
		t.Errorf("flight spanning a clear entered the cache (%d entries)", n)
	}
}

// TestResultCacheCollisionPassesThrough pins the collision contract: a
// resident entry whose signature matches but whose ID set differs must
// neither answer the query nor be evicted — the colliding query passes
// through uncached, costing performance only.
func TestResultCacheCollisionPassesThrough(t *testing.T) {
	c := newResultCache(8)
	// Forge a collision: insert under query {5}'s signature an entry
	// claiming a different member set.
	sig, _ := querySignature([]model.ObjectID{5})
	c.mu.Lock()
	c.insertLocked(sig, []model.ObjectID{99}, netproto.QueryResultMsg{Payload: []byte("other")})
	c.mu.Unlock()

	cached, fl, leader := c.begin([]model.ObjectID{5})
	if cached != nil {
		t.Fatal("collision served the resident entry's payload")
	}
	if fl != nil || leader {
		t.Fatal("collision opened a flight; it must pass through uncached")
	}
	if n := c.Len(); n != 1 {
		t.Errorf("collision disturbed the resident entry (%d entries)", n)
	}
}

// TestResultCacheNilReceiver pins the unconfigured-router contract:
// every method on a nil cache is a safe no-op.
func TestResultCacheNilReceiver(t *testing.T) {
	var c *resultCache
	if cached, fl, leader := c.begin([]model.ObjectID{1}); cached != nil || fl != nil || leader {
		t.Error("nil cache begin must report a plain pass-through")
	}
	c.complete(nil, netproto.QueryResultMsg{}, true)
	c.invalidate(1)
	c.clear()
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.Coalesced() != 0 || c.Invalidations() != 0 {
		t.Error("nil cache accessors must all report zero")
	}
}
