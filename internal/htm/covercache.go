package htm

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

// CoverCache memoizes sky-cap → object-set resolutions behind a small
// bounded LRU. Repeated sky-region queries (the same survey field
// polled by many clients, a dashboard refreshing one region) would
// otherwise recompute partition.Cover per request; the cache answers
// them with one map lookup.
//
// Keys quantize the cap (center vector and cos-radius at ~1e-7): caps
// within a quantum share an entry. Covers are conservative
// may-intersect sets and the quantum is orders of magnitude below any
// partition trixel's angular size, so sharing is harmless in practice;
// callers needing exact boundary behavior should bypass the cache.
//
// The cache is safe for concurrent use and generation-aware: Bump
// invalidates every entry (a grown universe changes covers), without
// reallocating the table.
type CoverCache struct {
	mu      sync.Mutex
	cap     int
	entries map[coverKey]*list.Element
	order   *list.List // front = most recently used

	gen    atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// coverKey is the quantized cap identity.
type coverKey struct {
	x, y, z int64
	cosR    int64
}

type coverEntry struct {
	key coverKey
	gen int64
	ids []model.ObjectID
}

const coverQuantum = 1e7 // quantization steps per unit

func quantizeCap(c geom.Cap) coverKey {
	return coverKey{
		x:    int64(math.Round(c.Center.X * coverQuantum)),
		y:    int64(math.Round(c.Center.Y * coverQuantum)),
		z:    int64(math.Round(c.Center.Z * coverQuantum)),
		cosR: int64(math.Round(c.CosRadius * coverQuantum)),
	}
}

// NewCoverCache returns a cache holding at most capacity entries
// (minimum 1; a typical router uses a few hundred).
func NewCoverCache(capacity int) *CoverCache {
	if capacity < 1 {
		capacity = 1
	}
	return &CoverCache{
		cap:     capacity,
		entries: make(map[coverKey]*list.Element, capacity),
		order:   list.New(),
	}
}

// Resolve returns the cover for c, computing it via compute on a miss
// and memoizing the result. The returned slice is shared across
// callers and must not be mutated.
func (cc *CoverCache) Resolve(c geom.Cap, compute func(geom.Cap) []model.ObjectID) []model.ObjectID {
	ids, _ := cc.ResolveHit(c, compute)
	return ids
}

// ResolveHit is Resolve plus whether the cover came from the cache —
// the per-query signal a trace span records (the lifetime counters in
// Stats can't attribute a hit to one query under concurrency).
func (cc *CoverCache) ResolveHit(c geom.Cap, compute func(geom.Cap) []model.ObjectID) ([]model.ObjectID, bool) {
	key := quantizeCap(c)
	gen := cc.gen.Load()
	cc.mu.Lock()
	if el, ok := cc.entries[key]; ok {
		ent := el.Value.(*coverEntry)
		if ent.gen == gen {
			cc.order.MoveToFront(el)
			cc.mu.Unlock()
			cc.hits.Add(1)
			return ent.ids, true
		}
		// Stale generation: treat as a miss and recompute below.
		cc.order.Remove(el)
		delete(cc.entries, key)
	}
	cc.mu.Unlock()

	cc.misses.Add(1)
	ids := compute(c)

	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		// A concurrent resolver beat us; keep its entry.
		cc.order.MoveToFront(el)
		return ids, false
	}
	for cc.order.Len() >= cc.cap {
		oldest := cc.order.Back()
		cc.order.Remove(oldest)
		delete(cc.entries, oldest.Value.(*coverEntry).key)
	}
	cc.entries[key] = cc.order.PushFront(&coverEntry{key: key, gen: gen, ids: ids})
	return ids, false
}

// Bump invalidates every cached cover: entries written before the bump
// are treated as misses. Call it when the object universe grows (a
// newborn can join any region's cover).
func (cc *CoverCache) Bump() { cc.gen.Add(1) }

// Stats reports lifetime hit and miss counts.
func (cc *CoverCache) Stats() (hits, misses int64) {
	return cc.hits.Load(), cc.misses.Load()
}
