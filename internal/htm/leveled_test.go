package htm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/deltacache/delta/internal/geom"
)

func TestBuildLeveledExactCounts(t *testing.T) {
	for _, n := range []int{8, 10, 20, 68, 91, 134, 285, 532} {
		p, err := BuildLeveled(gaussianWeight, n)
		if err != nil {
			t.Fatalf("BuildLeveled(%d): %v", n, err)
		}
		if p.N() != n || len(p.Objects()) != n {
			t.Errorf("n=%d: got %d objects", n, len(p.Objects()))
		}
	}
}

func TestBuildLeveledTooSmall(t *testing.T) {
	if _, err := BuildLeveled(nil, 5); err == nil {
		t.Error("BuildLeveled(5) should fail")
	}
}

func TestBuildLeveledUniformLevel(t *testing.T) {
	// All objects of a leveled partition sit at the same HTM level (the
	// paper's equi-area construction).
	p, err := BuildLeveled(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	level := p.Objects()[0].Level()
	for _, tr := range p.Objects() {
		if tr.Level() != level {
			t.Fatalf("mixed levels: %d and %d", level, tr.Level())
		}
	}
	// 68 objects need level 2 (128 trixels).
	if level != 2 {
		t.Errorf("level = %d, want 2", level)
	}
}

func TestBuildLeveledEquiArea(t *testing.T) {
	p, err := BuildLeveled(gaussianWeight, 91)
	if err != nil {
		t.Fatal(err)
	}
	objs := p.Objects()
	minA, maxA := math.Inf(1), 0.0
	for _, tr := range objs {
		a := tr.AreaSr()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	// Spherical-triangle subdivision is not perfectly uniform, but
	// areas must agree within a factor ~2 (they do for HTM).
	if maxA > 2.5*minA {
		t.Errorf("areas too spread: %v .. %v", minA, maxA)
	}
}

func TestBuildLeveledKeepsDensest(t *testing.T) {
	// The kept objects must be the heaviest trixels of the level.
	p, err := BuildLeveled(gaussianWeight, 20)
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[uint64]bool, 20)
	minKept := math.Inf(1)
	for i, tr := range p.Objects() {
		kept[tr.ID] = true
		if w := p.Weights()[i]; w < minKept {
			minKept = w
		}
	}
	// Walk all level-1 trixels (20 objects → level 1, 32 trixels) and
	// verify no dropped trixel outweighs a kept one.
	for _, r := range Roots() {
		for _, ch := range r.Children() {
			if kept[ch.ID] {
				continue
			}
			if w := gaussianWeight(ch); w > minKept+1e-12 {
				t.Errorf("dropped trixel %s (w=%v) outweighs kept minimum %v",
					Name(ch.ID), w, minKept)
			}
		}
	}
}

func TestBuildLeveledEveryPointMapsToObject(t *testing.T) {
	p, err := BuildLeveled(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		idx := p.ObjectFor(randomPoint(rng))
		if idx < 0 || idx >= 68 {
			t.Fatalf("ObjectFor out of range: %d", idx)
		}
	}
}

func TestBuildLeveledCoverConsistency(t *testing.T) {
	p, err := BuildLeveled(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		center := randomPoint(rng)
		cover := p.Cover(geom.NewCap(center, rng.Float64()*5+0.1))
		if len(cover) == 0 {
			t.Fatal("empty cover")
		}
		for _, idx := range cover {
			if idx < 0 || idx >= 68 {
				t.Fatalf("cover index out of range: %d", idx)
			}
		}
	}
}

func TestBuildLeveledDefaultWeightIsArea(t *testing.T) {
	p, err := BuildLeveled(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Objects()); got != 8 {
		t.Fatalf("objects = %d", got)
	}
	// With area weight and n=8, the roots themselves are the objects.
	for _, tr := range p.Objects() {
		if tr.Level() != 0 {
			t.Errorf("n=8 should keep the roots, got level %d", tr.Level())
		}
	}
}
