package htm

import (
	"fmt"
	"sort"

	"github.com/deltacache/delta/internal/geom"
)

// WeightFunc assigns a non-negative weight to a trixel, typically the
// integrated data density over its area. The adaptive partitioner splits
// the heaviest trixels first, producing the "roughly equi-area data
// objects" of Section 6.1.
type WeightFunc func(Trixel) float64

// Partition is a density-adaptive decomposition of the sphere into
// exactly N data objects. Because pure 4-way splitting can only reach
// trixel counts of the form 8+3k, the partitioner may overshoot and then
// leave the lightest trixels *unassigned*: they carry no data object of
// their own (the paper likewise ignores partitions "which weren't
// queried at all") and map to the nearest assigned object so that every
// sky position still resolves to an object.
type Partition struct {
	n      int
	leaves []leaf // all leaf trixels of the adaptive tree
	root   [8]*pnode
	// objects[i] is the representative trixel for object index i.
	objects []Trixel
}

type leaf struct {
	trixel Trixel
	weight float64
	objIdx int // -1 while unassigned
}

type pnode struct {
	trixel   Trixel
	children *[4]*pnode // nil for leaves
	leafIdx  int        // index into Partition.leaves for leaves, -1 otherwise
}

// BuildLeveled decomposes the sphere at the smallest uniform HTM level
// with at least n trixels and keeps the n heaviest (by weight) as data
// objects — exactly the paper's construction: "we used a level that
// consisted of 68 partitions (ignoring some which weren't queried at
// all)". The dropped trixels map to the nearest kept object. Object
// sizes then vary with density (the paper's 50 MB – 90 GB spread)
// because partitions are equi-area, not equi-weight.
func BuildLeveled(weight WeightFunc, n int) (*Partition, error) {
	if n < 8 {
		return nil, fmt.Errorf("htm: partition needs at least 8 objects, got %d", n)
	}
	level := 0
	count := 8
	for count < n {
		level++
		count *= 4
		if level > 12 {
			return nil, fmt.Errorf("htm: %d objects needs an absurd level", n)
		}
	}
	if weight == nil {
		weight = func(t Trixel) float64 { return t.AreaSr() }
	}

	p := &Partition{n: n}
	var leaves []*pnode
	for i, r := range Roots() {
		node := &pnode{trixel: r, leafIdx: -1}
		p.root[i] = node
		leaves = append(leaves, node)
	}
	for l := 0; l < level; l++ {
		next := make([]*pnode, 0, len(leaves)*4)
		for _, nd := range leaves {
			ch := nd.trixel.Children()
			var kids [4]*pnode
			for i := range ch {
				kids[i] = &pnode{trixel: ch[i], leafIdx: -1}
			}
			nd.children = &kids
			next = append(next, kids[0], kids[1], kids[2], kids[3])
		}
		leaves = next
	}
	p.leaves = make([]leaf, len(leaves))
	for i, nd := range leaves {
		nd.leafIdx = i
		w := weight(nd.trixel)
		if w < 0 {
			w = 0
		}
		p.leaves[i] = leaf{trixel: nd.trixel, weight: w, objIdx: -1}
	}
	p.assignObjects()
	return p, nil
}

// BuildPartition decomposes the sphere into exactly n data objects by
// repeatedly splitting the heaviest leaf trixel. n must be at least 8
// (the octahedron roots). The weight function is evaluated once per
// created trixel.
func BuildPartition(weight WeightFunc, n int) (*Partition, error) {
	if n < 8 {
		return nil, fmt.Errorf("htm: partition needs at least 8 objects, got %d", n)
	}
	if weight == nil {
		weight = func(t Trixel) float64 { return t.AreaSr() }
	}

	p := &Partition{n: n}
	var leaves []*pnode
	for i, r := range Roots() {
		node := &pnode{trixel: r, leafIdx: -1}
		p.root[i] = node
		leaves = append(leaves, node)
	}

	// Split the heaviest leaf until we have at least n leaves. Counts
	// progress 8, 11, 14, ... so we may overshoot n by one or two.
	weightOf := make(map[uint64]float64, 4*n)
	w := func(t Trixel) float64 {
		if v, ok := weightOf[t.ID]; ok {
			return v
		}
		v := weight(t)
		if v < 0 {
			v = 0
		}
		weightOf[t.ID] = v
		return v
	}
	for len(leaves) < n {
		// Find the heaviest splittable leaf.
		best := -1
		for i, nd := range leaves {
			if nd.trixel.Level() >= 25 {
				continue
			}
			if best == -1 || w(nd.trixel) > w(leaves[best].trixel) {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("htm: cannot split further toward %d objects", n)
		}
		nd := leaves[best]
		ch := nd.trixel.Children()
		var kids [4]*pnode
		for i := range ch {
			kids[i] = &pnode{trixel: ch[i], leafIdx: -1}
		}
		nd.children = &kids
		// Replace the split leaf with its four children.
		leaves[best] = kids[0]
		leaves = append(leaves, kids[1], kids[2], kids[3])
	}

	// Record leaves and choose which to leave unassigned (the lightest
	// extra ones).
	p.leaves = make([]leaf, len(leaves))
	for i, nd := range leaves {
		nd.leafIdx = i
		p.leaves[i] = leaf{trixel: nd.trixel, weight: w(nd.trixel), objIdx: -1}
	}
	p.assignObjects()
	return p, nil
}

// assignObjects picks the n heaviest leaves as data objects (stable
// numbering by trixel ID) and maps every other leaf to the nearest
// assigned object.
func (p *Partition) assignObjects() {
	n := p.n
	order := make([]int, len(p.leaves))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := p.leaves[order[a]], p.leaves[order[b]]
		if la.weight != lb.weight {
			return la.weight > lb.weight
		}
		return la.trixel.ID < lb.trixel.ID
	})
	chosen := append([]int(nil), order[:n]...)
	sort.Slice(chosen, func(a, b int) bool {
		return p.leaves[chosen[a]].trixel.ID < p.leaves[chosen[b]].trixel.ID
	})
	p.objects = make([]Trixel, n)
	for objIdx, leafIdx := range chosen {
		p.leaves[leafIdx].objIdx = objIdx
		p.objects[objIdx] = p.leaves[leafIdx].trixel
	}
	for i := range p.leaves {
		if p.leaves[i].objIdx >= 0 {
			continue
		}
		p.leaves[i].objIdx = p.nearestObject(p.leaves[i].trixel.Center())
	}
}

// N returns the number of data objects.
func (p *Partition) N() int { return p.n }

// Objects returns the representative trixel of each object, indexed by
// object index.
func (p *Partition) Objects() []Trixel {
	out := make([]Trixel, len(p.objects))
	copy(out, p.objects)
	return out
}

// ObjectTrixelID returns the trixel ID of the object at index i,
// without copying the whole representative-trixel slice the way
// Objects does — births at scale call this per ingested object.
func (p *Partition) ObjectTrixelID(i int) uint64 { return p.objects[i].ID }

// ObjectFor returns the object index (0..N-1) owning the sky position v.
func (p *Partition) ObjectFor(v geom.Vec3) int {
	v = v.Normalize()
	var cur *pnode
	for _, r := range p.root {
		if r.trixel.Contains(v) {
			cur = r
			break
		}
	}
	if cur == nil {
		// Numerically outside all roots; snap to nearest root center.
		best := p.root[0]
		for _, r := range p.root[1:] {
			if r.trixel.Center().Dot(v) > best.trixel.Center().Dot(v) {
				best = r
			}
		}
		cur = best
	}
	for cur.children != nil {
		next := (*pnode)(nil)
		for _, ch := range cur.children {
			if ch.trixel.Contains(v) {
				next = ch
				break
			}
		}
		if next == nil {
			// Crack between children: snap to nearest child center.
			best := cur.children[0]
			for _, ch := range cur.children[1:] {
				if ch.trixel.Center().Dot(v) > best.trixel.Center().Dot(v) {
					best = ch
				}
			}
			next = best
		}
		cur = next
	}
	return p.leaves[cur.leafIdx].objIdx
}

// Cover returns the sorted, de-duplicated object indices whose trixels
// may intersect the cap. The result is conservative: it includes every
// object that truly intersects, and may include near misses.
func (p *Partition) Cover(c geom.Cap) []int {
	seen := make(map[int]struct{})
	var walk func(nd *pnode)
	walk = func(nd *pnode) {
		if !nd.trixel.IntersectsCap(c) {
			return
		}
		if nd.children == nil {
			seen[p.leaves[nd.leafIdx].objIdx] = struct{}{}
			return
		}
		for _, ch := range nd.children {
			walk(ch)
		}
	}
	for _, r := range p.root {
		walk(r)
	}
	out := make([]int, 0, len(seen))
	for idx := range seen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Weights returns the build-time weight of each object's representative
// trixel, indexed by object index. Callers use this to derive object
// sizes proportional to data density.
func (p *Partition) Weights() []float64 {
	out := make([]float64, p.n)
	for i := range p.leaves {
		if idx := p.leaves[i].objIdx; idx >= 0 && p.leaves[i].trixel.ID == p.objects[idx].ID {
			out[idx] = p.leaves[i].weight
		}
	}
	return out
}

func (p *Partition) nearestObject(v geom.Vec3) int {
	best := 0
	bestDot := -2.0
	for i, t := range p.objects {
		if d := t.Center().Dot(v); d > bestDot {
			bestDot = d
			best = i
		}
	}
	return best
}
