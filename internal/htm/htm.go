// Package htm implements the Hierarchical Triangular Mesh (HTM), the
// recursively-defined quad-tree-like spatial index SDSS uses to
// partition the sky (Kunszt, Szalay, Thakar 2001). The repository's data
// objects in the paper are HTM partitions of the PhotoObj table; Section
// 6.2 evaluates object sets of 10–532 partitions obtained from different
// mesh levels.
//
// The mesh starts from the eight faces of an octahedron (trixels N0–N3
// and S0–S3) and subdivides each spherical triangle into four children
// by connecting edge midpoints. Trixel IDs follow the standard HTM
// scheme: roots are 8–15 and child i of trixel t has ID 4t+i, so the ID
// encodes the full path and the level is recoverable from the bit
// length.
package htm

import (
	"fmt"
	"math"

	"github.com/deltacache/delta/internal/geom"
)

// octahedron vertices in the standard HTM order.
var octV = [6]geom.Vec3{
	{X: 0, Y: 0, Z: 1},  // v0: north pole
	{X: 1, Y: 0, Z: 0},  // v1
	{X: 0, Y: 1, Z: 0},  // v2
	{X: -1, Y: 0, Z: 0}, // v3
	{X: 0, Y: -1, Z: 0}, // v4
	{X: 0, Y: 0, Z: -1}, // v5: south pole
}

// rootSpec lists the vertex triples of the eight root trixels, in ID
// order 8..15 (S0..S3, N0..N3), matching Kunszt et al.
var rootSpec = [8][3]int{
	{1, 5, 2}, // S0 (ID 8)
	{2, 5, 3}, // S1 (ID 9)
	{3, 5, 4}, // S2 (ID 10)
	{4, 5, 1}, // S3 (ID 11)
	{1, 0, 4}, // N0 (ID 12)
	{4, 0, 3}, // N1 (ID 13)
	{3, 0, 2}, // N2 (ID 14)
	{2, 0, 1}, // N3 (ID 15)
}

// Trixel is one spherical triangle of the mesh.
type Trixel struct {
	// ID is the HTM identifier; see the package comment for the
	// encoding.
	ID uint64
	// V holds the trixel's unit-vector vertices, counterclockwise as
	// seen from outside the sphere.
	V [3]geom.Vec3
}

// Roots returns the eight level-0 trixels.
func Roots() [8]Trixel {
	var roots [8]Trixel
	for i, spec := range rootSpec {
		roots[i] = Trixel{
			ID: uint64(8 + i),
			V:  [3]geom.Vec3{octV[spec[0]], octV[spec[1]], octV[spec[2]]},
		}
	}
	return roots
}

// Level returns the trixel's subdivision depth: 0 for roots, increasing
// by one per subdivision.
func (t Trixel) Level() int {
	// Roots use 4 bits (1000..1111); each level appends 2 bits.
	bits := 64 - leadingZeros(t.ID)
	return (bits - 4) / 2
}

// Children subdivides the trixel into its four children by connecting
// the edge midpoints, preserving orientation.
func (t Trixel) Children() [4]Trixel {
	w0 := mid(t.V[1], t.V[2])
	w1 := mid(t.V[0], t.V[2])
	w2 := mid(t.V[0], t.V[1])
	return [4]Trixel{
		{ID: t.ID*4 + 0, V: [3]geom.Vec3{t.V[0], w2, w1}},
		{ID: t.ID*4 + 1, V: [3]geom.Vec3{t.V[1], w0, w2}},
		{ID: t.ID*4 + 2, V: [3]geom.Vec3{t.V[2], w1, w0}},
		{ID: t.ID*4 + 3, V: [3]geom.Vec3{w0, w1, w2}},
	}
}

// Contains reports whether the unit vector lies inside the trixel. A
// point lies inside a spherical triangle if it is on the inner side of
// all three edge planes. Boundary points are considered inside, so a
// point on a shared edge belongs to more than one trixel; Locate breaks
// the tie deterministically by taking the first matching child.
func (t Trixel) Contains(v geom.Vec3) bool {
	const tol = -1e-12 // tolerate rounding on edges
	return t.V[0].Cross(t.V[1]).Dot(v) >= tol &&
		t.V[1].Cross(t.V[2]).Dot(v) >= tol &&
		t.V[2].Cross(t.V[0]).Dot(v) >= tol
}

// Center returns the trixel's (normalized) centroid.
func (t Trixel) Center() geom.Vec3 {
	return t.V[0].Add(t.V[1]).Add(t.V[2]).Normalize()
}

// BoundingRadius returns the angular radius, in radians, of the smallest
// cap centered on Center() that contains the trixel.
func (t Trixel) BoundingRadius() float64 {
	c := t.Center()
	r := 0.0
	for _, v := range t.V {
		if a := c.AngleTo(v); a > r {
			r = a
		}
	}
	return r
}

// AreaSr returns the trixel's solid angle in steradians.
func (t Trixel) AreaSr() float64 {
	return geom.TriangleAreaSr(t.V[0], t.V[1], t.V[2])
}

// IntersectsCap reports whether the trixel intersects the cap. The test
// is exact up to floating-point rounding: a quick bounding-circle
// rejection, then (a) any trixel vertex inside the cap, (b) the cap
// center inside the trixel, or (c) the cap reaching one of the trixel's
// edge arcs. Keeping this tight matters: over-coverage inflates B(q) and
// with it every query's object footprint.
func (t Trixel) IntersectsCap(c geom.Cap) bool {
	capR := math.Acos(clamp(c.CosRadius, -1, 1))
	if t.Center().AngleTo(c.Center) > capR+t.BoundingRadius() {
		return false
	}
	for _, v := range t.V {
		if c.Contains(v) {
			return true
		}
	}
	if t.Contains(c.Center) {
		return true
	}
	for i := 0; i < 3; i++ {
		if arcDistance(c.Center, t.V[i], t.V[(i+1)%3]) <= capR {
			return true
		}
	}
	return false
}

// arcDistance returns the angular distance (radians) from point p to the
// great-circle arc between a and b.
func arcDistance(p, a, b geom.Vec3) float64 {
	pole := a.Cross(b)
	if pole.Norm() == 0 {
		// Degenerate edge: distance to the endpoint.
		return p.AngleTo(a)
	}
	pole = pole.Normalize()
	// Closest point on the full great circle.
	q := p.Sub(pole.Scale(p.Dot(pole)))
	if q.Norm() == 0 {
		// p is at the circle's pole: equidistant from the whole circle.
		return math.Pi / 2
	}
	q = q.Normalize()
	// q lies on the arc iff the arc's endpoints bracket it.
	if a.AngleTo(q)+q.AngleTo(b) <= a.AngleTo(b)+1e-12 {
		return p.AngleTo(q)
	}
	return math.Min(p.AngleTo(a), p.AngleTo(b))
}

// String implements fmt.Stringer.
func (t Trixel) String() string {
	return fmt.Sprintf("trixel(%s)", Name(t.ID))
}

// Name renders an HTM ID in the conventional letter form, e.g. "N012".
func Name(id uint64) string {
	if id < 8 {
		return fmt.Sprintf("invalid(%d)", id)
	}
	// Collect the 2-bit digits from the bottom up to the root.
	var digits []byte
	for id >= 32 {
		digits = append(digits, byte('0'+id&3))
		id >>= 2
	}
	var prefix string
	switch id {
	case 8, 9, 10, 11:
		prefix = fmt.Sprintf("S%d", id-8)
	case 12, 13, 14, 15:
		prefix = fmt.Sprintf("N%d", id-12)
	default:
		return fmt.Sprintf("invalid(%d)", id)
	}
	// digits were collected leaf-to-root; reverse.
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return prefix + string(digits)
}

// Locate returns the level-`level` trixel containing v, descending from
// the roots. Points on shared edges resolve to the first matching
// trixel in ID order, so the result is deterministic.
func Locate(v geom.Vec3, level int) (Trixel, error) {
	if level < 0 || level > 25 {
		return Trixel{}, fmt.Errorf("htm: level %d out of range [0,25]", level)
	}
	v = v.Normalize()
	cur, ok := rootContaining(v)
	if !ok {
		return Trixel{}, fmt.Errorf("htm: no root trixel contains %v", v)
	}
	for l := 0; l < level; l++ {
		children := cur.Children()
		found := false
		for _, ch := range children {
			if ch.Contains(v) {
				cur = ch
				found = true
				break
			}
		}
		if !found {
			// Numerically a point can fall in the cracks between child
			// edge planes; snap to the child whose center is nearest.
			cur = nearestChild(children, v)
		}
	}
	return cur, nil
}

func rootContaining(v geom.Vec3) (Trixel, bool) {
	for _, r := range Roots() {
		if r.Contains(v) {
			return r, true
		}
	}
	return Trixel{}, false
}

func nearestChild(children [4]Trixel, v geom.Vec3) Trixel {
	best := children[0]
	bestDot := math.Inf(-1)
	for _, ch := range children {
		if d := ch.Center().Dot(v); d > bestDot {
			bestDot = d
			best = ch
		}
	}
	return best
}

func mid(a, b geom.Vec3) geom.Vec3 { return a.Add(b).Normalize() }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}
