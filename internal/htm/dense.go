package htm

import (
	"fmt"

	"github.com/deltacache/delta/internal/geom"
)

// DensePartition is the complete uniform HTM decomposition at a fixed
// level: every trixel of that level is a data object, indexed by
// `trixelID - firstID` so no per-object tree, map, or trixel vertex set
// is ever materialized. BuildLeveled stores the whole adaptive tree
// (one pnode per trixel, three vertices each) and assigns unchosen
// leaves by an O(n²) nearest-object scan — fine at the paper's 68
// objects, hopeless at a million. The dense form keeps only one float64
// weight per object (8 bytes), and descends the implicit tree on the
// fly for lookups and covers, which is what lets the million-object
// soak build a catalog in O(n) time and O(n) small memory.
type DensePartition struct {
	level   int
	n       int
	first   uint64 // ID of the first trixel at this level: 8·4^level
	weights []float64
}

// DenseLevelObjects returns the object count of the complete
// decomposition at the given HTM level: 8·4^level.
func DenseLevelObjects(level int) int { return 8 << (2 * uint(level)) }

// BuildDense builds the complete uniform partition whose object count
// is exactly n. Because the decomposition is complete, n must be of the
// form 8·4^level (8, 32, 128, ..., 2097152 at level 9); anything else
// is an error naming the nearest valid counts rather than a silent
// round. The weight function is evaluated once per trixel in ID order.
func BuildDense(weight WeightFunc, n int) (*DensePartition, error) {
	level := -1
	for l := 0; l <= 12; l++ {
		c := DenseLevelObjects(l)
		if c == n {
			level = l
			break
		}
		if c > n {
			return nil, fmt.Errorf("htm: dense partition needs 8·4^level objects (%d or %d, not %d)",
				DenseLevelObjects(max(l-1, 0)), c, n)
		}
	}
	if level < 0 {
		return nil, fmt.Errorf("htm: dense partition of %d objects exceeds level 12", n)
	}
	if weight == nil {
		weight = func(t Trixel) float64 { return t.AreaSr() }
	}
	p := &DensePartition{
		level:   level,
		n:       n,
		first:   8 << (2 * uint(level)),
		weights: make([]float64, n),
	}
	var walk func(t Trixel)
	walk = func(t Trixel) {
		if t.Level() == level {
			w := weight(t)
			if w < 0 {
				w = 0
			}
			p.weights[t.ID-p.first] = w
			return
		}
		for _, ch := range t.Children() {
			walk(ch)
		}
	}
	for _, r := range Roots() {
		walk(r)
	}
	return p, nil
}

// N returns the number of data objects.
func (p *DensePartition) N() int { return p.n }

// Level returns the uniform HTM level of the decomposition.
func (p *DensePartition) Level() int { return p.level }

// ObjectTrixelID returns the trixel ID of the object at index i.
func (p *DensePartition) ObjectTrixelID(i int) uint64 { return p.first + uint64(i) }

// Weights returns the build-time weight of each object, indexed by
// object index.
func (p *DensePartition) Weights() []float64 {
	out := make([]float64, len(p.weights))
	copy(out, p.weights)
	return out
}

// ObjectFor returns the object index (0..N-1) owning the sky position
// v, descending the implicit trixel tree with the same nearest-center
// fallbacks as Partition.ObjectFor for points that land in numerical
// cracks.
func (p *DensePartition) ObjectFor(v geom.Vec3) int {
	v = v.Normalize()
	cur, err := Locate(v, p.level)
	if err != nil {
		// Numerically outside all roots; descend from the nearest root.
		roots := Roots()
		cur = roots[0]
		for _, r := range roots[1:] {
			if r.Center().Dot(v) > cur.Center().Dot(v) {
				cur = r
			}
		}
		for l := 0; l < p.level; l++ {
			cur = nearestChild(cur.Children(), v)
		}
	}
	return int(cur.ID - p.first)
}

// Cover returns the object indices whose trixels may intersect the cap.
// The walk visits children in trixel-ID order, so the result is already
// sorted and duplicate-free — no map or sort pass, which matters when
// drift-heavy workloads churn the cover cache.
func (p *DensePartition) Cover(c geom.Cap) []int {
	var out []int
	var walk func(t Trixel)
	walk = func(t Trixel) {
		if !t.IntersectsCap(c) {
			return
		}
		if t.Level() == p.level {
			out = append(out, int(t.ID-p.first))
			return
		}
		for _, ch := range t.Children() {
			walk(ch)
		}
	}
	for _, r := range Roots() {
		walk(r)
	}
	return out
}
