package htm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/deltacache/delta/internal/geom"
)

// gaussianWeight is a density with a hotspot near (RA 180, Dec 0).
func gaussianWeight(t Trixel) float64 {
	hot := geom.FromRADec(180, 0)
	d := t.Center().AngleTo(hot)
	return t.AreaSr() * (0.05 + math.Exp(-d*d/0.3))
}

func TestBuildPartitionExactCounts(t *testing.T) {
	// The paper's object-set sizes from Section 6.2.
	for _, n := range []int{10, 20, 68, 91, 134, 285, 532} {
		p, err := BuildPartition(gaussianWeight, n)
		if err != nil {
			t.Fatalf("BuildPartition(%d): %v", n, err)
		}
		if p.N() != n {
			t.Errorf("N() = %d, want %d", p.N(), n)
		}
		if got := len(p.Objects()); got != n {
			t.Errorf("len(Objects()) = %d, want %d", got, n)
		}
	}
}

func TestBuildPartitionTooSmall(t *testing.T) {
	if _, err := BuildPartition(nil, 7); err == nil {
		t.Error("BuildPartition(7) should fail: fewer than 8 roots")
	}
}

func TestObjectForCoversAllIndices(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	seen := make(map[int]bool)
	for i := 0; i < 20000; i++ {
		idx := p.ObjectFor(randomPoint(rng))
		if idx < 0 || idx >= 68 {
			t.Fatalf("ObjectFor returned out-of-range index %d", idx)
		}
		seen[idx] = true
	}
	// Dense sampling should hit the overwhelming majority of objects.
	if len(seen) < 60 {
		t.Errorf("only %d/68 objects ever selected; partition is degenerate", len(seen))
	}
}

func TestObjectForDeterministic(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		v := randomPoint(rng)
		if a, b := p.ObjectFor(v), p.ObjectFor(v); a != b {
			t.Fatalf("ObjectFor not deterministic: %d vs %d", a, b)
		}
	}
}

func TestPartitionIsStableAcrossBuilds(t *testing.T) {
	a, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Objects(), b.Objects()
	for i := range ta {
		if ta[i].ID != tb[i].ID {
			t.Fatalf("object %d differs across builds: %d vs %d", i, ta[i].ID, tb[i].ID)
		}
	}
}

func TestCoverIncludesContainingObject(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 91)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		center := randomPoint(rng)
		c := geom.NewCap(center, rng.Float64()*5+0.1)
		cover := p.Cover(c)
		if len(cover) == 0 {
			t.Fatalf("empty cover for cap at %v", center)
		}
		// The object owning the cap center must be in the cover, unless
		// the center lies in an unassigned trixel that adopted a distant
		// owner; in that case at least the cover must be non-empty
		// (checked above). For assigned trixels, assert membership.
		owner := p.ObjectFor(center)
		found := false
		for _, idx := range cover {
			if idx == owner {
				found = true
				break
			}
		}
		if !found {
			// The owner may legitimately differ when the center's leaf
			// is unassigned; verify the owner's trixel really is far.
			ownerTrixel := p.Objects()[owner]
			if ownerTrixel.IntersectsCap(c) {
				t.Fatalf("cover %v misses intersecting owner %d", cover, owner)
			}
		}
	}
}

func TestCoverSortedAndUnique(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	c := geom.CapFromRADec(180, 0, 30)
	cover := p.Cover(c)
	for i := 1; i < len(cover); i++ {
		if cover[i] <= cover[i-1] {
			t.Fatalf("cover not sorted/unique: %v", cover)
		}
	}
}

func TestCoverGrowsWithRadius(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 134)
	if err != nil {
		t.Fatal(err)
	}
	small := len(p.Cover(geom.CapFromRADec(180, 0, 1)))
	big := len(p.Cover(geom.CapFromRADec(180, 0, 60)))
	if small > big {
		t.Errorf("cover shrank with radius: %d > %d", small, big)
	}
	if big < 10 {
		t.Errorf("60° cap covers only %d objects of 134", big)
	}
}

func TestAdaptiveSplitFollowsDensity(t *testing.T) {
	// Objects near the hotspot must be smaller (more subdivided) than
	// objects far from it.
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	hot := geom.FromRADec(180, 0)
	hotLevels, coldLevels := 0, 0
	hotN, coldN := 0, 0
	for _, tr := range p.Objects() {
		if tr.Center().AngleTo(hot) < 0.5 {
			hotLevels += tr.Level()
			hotN++
		} else if tr.Center().AngleTo(hot) > 2.0 {
			coldLevels += tr.Level()
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Skip("degenerate sample")
	}
	if float64(hotLevels)/float64(hotN) <= float64(coldLevels)/float64(coldN) {
		t.Errorf("hotspot not more subdivided: hot avg level %v, cold %v",
			float64(hotLevels)/float64(hotN), float64(coldLevels)/float64(coldN))
	}
}

func TestWeightsMatchObjectCount(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 91)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if len(w) != 91 {
		t.Fatalf("len(Weights()) = %d, want 91", len(w))
	}
	positive := 0
	for _, x := range w {
		if x < 0 {
			t.Fatalf("negative weight %v", x)
		}
		if x > 0 {
			positive++
		}
	}
	if positive < 85 {
		t.Errorf("only %d/91 objects have positive weight", positive)
	}
}
