package htm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/deltacache/delta/internal/geom"
)

// gaussianWeight is a density with a hotspot near (RA 180, Dec 0).
func gaussianWeight(t Trixel) float64 {
	hot := geom.FromRADec(180, 0)
	d := t.Center().AngleTo(hot)
	return t.AreaSr() * (0.05 + math.Exp(-d*d/0.3))
}

func TestBuildPartitionExactCounts(t *testing.T) {
	// The paper's object-set sizes from Section 6.2.
	for _, n := range []int{10, 20, 68, 91, 134, 285, 532} {
		p, err := BuildPartition(gaussianWeight, n)
		if err != nil {
			t.Fatalf("BuildPartition(%d): %v", n, err)
		}
		if p.N() != n {
			t.Errorf("N() = %d, want %d", p.N(), n)
		}
		if got := len(p.Objects()); got != n {
			t.Errorf("len(Objects()) = %d, want %d", got, n)
		}
	}
}

func TestBuildPartitionTooSmall(t *testing.T) {
	if _, err := BuildPartition(nil, 7); err == nil {
		t.Error("BuildPartition(7) should fail: fewer than 8 roots")
	}
}

func TestObjectForCoversAllIndices(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	seen := make(map[int]bool)
	for i := 0; i < 20000; i++ {
		idx := p.ObjectFor(randomPoint(rng))
		if idx < 0 || idx >= 68 {
			t.Fatalf("ObjectFor returned out-of-range index %d", idx)
		}
		seen[idx] = true
	}
	// Dense sampling should hit the overwhelming majority of objects.
	if len(seen) < 60 {
		t.Errorf("only %d/68 objects ever selected; partition is degenerate", len(seen))
	}
}

func TestObjectForDeterministic(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		v := randomPoint(rng)
		if a, b := p.ObjectFor(v), p.ObjectFor(v); a != b {
			t.Fatalf("ObjectFor not deterministic: %d vs %d", a, b)
		}
	}
}

func TestPartitionIsStableAcrossBuilds(t *testing.T) {
	a, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Objects(), b.Objects()
	for i := range ta {
		if ta[i].ID != tb[i].ID {
			t.Fatalf("object %d differs across builds: %d vs %d", i, ta[i].ID, tb[i].ID)
		}
	}
}

func TestCoverIncludesContainingObject(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 91)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		center := randomPoint(rng)
		c := geom.NewCap(center, rng.Float64()*5+0.1)
		cover := p.Cover(c)
		if len(cover) == 0 {
			t.Fatalf("empty cover for cap at %v", center)
		}
		// The object owning the cap center must be in the cover, unless
		// the center lies in an unassigned trixel that adopted a distant
		// owner; in that case at least the cover must be non-empty
		// (checked above). For assigned trixels, assert membership.
		owner := p.ObjectFor(center)
		found := false
		for _, idx := range cover {
			if idx == owner {
				found = true
				break
			}
		}
		if !found {
			// The owner may legitimately differ when the center's leaf
			// is unassigned; verify the owner's trixel really is far.
			ownerTrixel := p.Objects()[owner]
			if ownerTrixel.IntersectsCap(c) {
				t.Fatalf("cover %v misses intersecting owner %d", cover, owner)
			}
		}
	}
}

func TestCoverSortedAndUnique(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	c := geom.CapFromRADec(180, 0, 30)
	cover := p.Cover(c)
	for i := 1; i < len(cover); i++ {
		if cover[i] <= cover[i-1] {
			t.Fatalf("cover not sorted/unique: %v", cover)
		}
	}
}

func TestCoverGrowsWithRadius(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 134)
	if err != nil {
		t.Fatal(err)
	}
	small := len(p.Cover(geom.CapFromRADec(180, 0, 1)))
	big := len(p.Cover(geom.CapFromRADec(180, 0, 60)))
	if small > big {
		t.Errorf("cover shrank with radius: %d > %d", small, big)
	}
	if big < 10 {
		t.Errorf("60° cap covers only %d objects of 134", big)
	}
}

func TestAdaptiveSplitFollowsDensity(t *testing.T) {
	// Objects near the hotspot must be smaller (more subdivided) than
	// objects far from it.
	p, err := BuildPartition(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	hot := geom.FromRADec(180, 0)
	hotLevels, coldLevels := 0, 0
	hotN, coldN := 0, 0
	for _, tr := range p.Objects() {
		if tr.Center().AngleTo(hot) < 0.5 {
			hotLevels += tr.Level()
			hotN++
		} else if tr.Center().AngleTo(hot) > 2.0 {
			coldLevels += tr.Level()
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Skip("degenerate sample")
	}
	if float64(hotLevels)/float64(hotN) <= float64(coldLevels)/float64(coldN) {
		t.Errorf("hotspot not more subdivided: hot avg level %v, cold %v",
			float64(hotLevels)/float64(hotN), float64(coldLevels)/float64(coldN))
	}
}

// unassignedLeaves returns the leaves BuildLeveled left without an
// object of their own (they adopt the nearest assigned object).
func unassignedLeaves(p *Partition) []leaf {
	var out []leaf
	for _, l := range p.leaves {
		if p.objects[l.objIdx].ID != l.trixel.ID {
			out = append(out, l)
		}
	}
	return out
}

// TestCoverOnUnassignedTrixels aims caps at the trixels BuildLeveled
// dropped ("partitions which weren't queried at all"): a cap wholly
// inside an unassigned trixel must still cover the trixel's adopted
// owner, so every sky position stays queryable.
func TestCoverOnUnassignedTrixels(t *testing.T) {
	// 68 objects from the 128-trixel level: 60 leaves stay unassigned,
	// clustered away from the gaussian hotspot.
	p, err := BuildLeveled(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	dropped := unassignedLeaves(p)
	if len(dropped) == 0 {
		t.Fatal("leveled build dropped no trixels; test premise broken")
	}
	for _, l := range dropped {
		if l.objIdx < 0 || l.objIdx >= p.N() {
			t.Fatalf("unassigned trixel %d has invalid adopted owner %d", l.trixel.ID, l.objIdx)
		}
		// A small cap at the unassigned trixel's center lies (mostly)
		// inside it; its cover must include the adopted owner even
		// though the owner's own trixel may be far away.
		c := geom.NewCap(l.trixel.Center(), 0.5)
		cover := p.Cover(c)
		if len(cover) == 0 {
			t.Fatalf("empty cover for cap on unassigned trixel %d", l.trixel.ID)
		}
		found := false
		for _, idx := range cover {
			if idx < 0 || idx >= p.N() {
				t.Fatalf("cover contains invalid object index %d", idx)
			}
			if idx == l.objIdx {
				found = true
			}
		}
		if !found {
			t.Errorf("cover %v of cap on unassigned trixel %d misses adopted owner %d",
				cover, l.trixel.ID, l.objIdx)
		}
	}
}

// TestCoverStraddlesAssignedBoundary spans caps across the border
// between an assigned and an unassigned leaf: the cover must include
// both the assigned object and the unassigned side's adopted owner,
// and must stay consistent with point location for positions inside
// the cap.
func TestCoverStraddlesAssignedBoundary(t *testing.T) {
	p, err := BuildLeveled(gaussianWeight, 68)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	straddles := 0
	for _, l := range unassignedLeaves(p) {
		// A cap big enough to spill out of the leaf into neighbors.
		center := l.trixel.Center()
		c := geom.NewCap(center, 8)
		cover := p.Cover(c)
		inCover := make(map[int]bool, len(cover))
		for _, idx := range cover {
			inCover[idx] = true
		}
		// Point location of any position inside the cap must land in
		// the cover — including positions in the unassigned leaf
		// itself and in its (possibly assigned) neighbors.
		sawDistinct := make(map[int]bool)
		for i := 0; i < 64; i++ {
			v := center.Add(randomPoint(rng).Scale(0.1)).Normalize()
			if c.Contains(v) {
				owner := p.ObjectFor(v)
				sawDistinct[owner] = true
				if !inCover[owner] {
					t.Fatalf("position owned by %d inside cap not in cover %v", owner, cover)
				}
			}
		}
		if len(sawDistinct) > 1 {
			straddles++
		}
	}
	if straddles == 0 {
		t.Skip("no cap straddled distinct owners; enlarge radius")
	}
}

func TestWeightsMatchObjectCount(t *testing.T) {
	p, err := BuildPartition(gaussianWeight, 91)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if len(w) != 91 {
		t.Fatalf("len(Weights()) = %d, want 91", len(w))
	}
	positive := 0
	for _, x := range w {
		if x < 0 {
			t.Fatalf("negative weight %v", x)
		}
		if x > 0 {
			positive++
		}
	}
	if positive < 85 {
		t.Errorf("only %d/91 objects have positive weight", positive)
	}
}
