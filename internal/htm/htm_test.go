package htm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/deltacache/delta/internal/geom"
)

func TestRootsCoverSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := randomPoint(rng)
		found := 0
		for _, r := range Roots() {
			if r.Contains(v) {
				found++
			}
		}
		if found == 0 {
			t.Fatalf("point %v not contained in any root", v)
		}
	}
}

func TestRootsAreOctants(t *testing.T) {
	for _, r := range Roots() {
		want := geom.SphereAreaSr / 8
		if got := r.AreaSr(); math.Abs(got-want) > 1e-9 {
			t.Errorf("root %s area = %v, want %v", Name(r.ID), got, want)
		}
	}
}

func TestChildrenPartitionParentArea(t *testing.T) {
	for _, r := range Roots() {
		cur := r
		for level := 0; level < 4; level++ {
			kids := cur.Children()
			sum := 0.0
			for _, k := range kids {
				sum += k.AreaSr()
			}
			if math.Abs(sum-cur.AreaSr()) > 1e-9 {
				t.Fatalf("children of %s: area sum %v != parent %v", Name(cur.ID), sum, cur.AreaSr())
			}
			cur = kids[3] // descend via the middle child
		}
	}
}

func TestChildrenIDEncoding(t *testing.T) {
	r := Roots()[0]
	kids := r.Children()
	for i, k := range kids {
		if k.ID != r.ID*4+uint64(i) {
			t.Errorf("child %d ID = %d, want %d", i, k.ID, r.ID*4+uint64(i))
		}
		if k.Level() != r.Level()+1 {
			t.Errorf("child level = %d, want %d", k.Level(), r.Level()+1)
		}
	}
}

func TestLevel(t *testing.T) {
	tests := []struct {
		id   uint64
		want int
	}{
		{8, 0}, {15, 0},
		{32, 1}, {63, 1},
		{128, 2},
		{8 << 10, 5},
	}
	for _, tt := range tests {
		tr := Trixel{ID: tt.id}
		if got := tr.Level(); got != tt.want {
			t.Errorf("Level(%d) = %d, want %d", tt.id, got, tt.want)
		}
	}
}

func TestName(t *testing.T) {
	tests := []struct {
		id   uint64
		want string
	}{
		{8, "S0"},
		{11, "S3"},
		{12, "N0"},
		{15, "N3"},
		{32, "S00"},        // 8*4+0
		{63, "N33"},        // 15*4+3
		{8*16 + 5, "S011"}, // 8*4*4 + 1*4 + 1
		{7, "invalid(7)"},
	}
	for _, tt := range tests {
		if got := Name(tt.id); got != tt.want {
			t.Errorf("Name(%d) = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestLocateConsistentWithContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, level := range []int{0, 1, 3, 6} {
		for i := 0; i < 500; i++ {
			v := randomPoint(rng)
			tr, err := Locate(v, level)
			if err != nil {
				t.Fatalf("Locate: %v", err)
			}
			if tr.Level() != level {
				t.Fatalf("Locate returned level %d, want %d", tr.Level(), level)
			}
			if !tr.Contains(v) {
				// Snapping on cracks is allowed, but the point must at
				// least be extremely close to the trixel.
				if tr.Center().AngleTo(v) > 2*tr.BoundingRadius() {
					t.Fatalf("Locate(%v, %d) = %s does not contain the point", v, level, tr)
				}
			}
		}
	}
}

func TestLocateLevelOutOfRange(t *testing.T) {
	if _, err := Locate(geom.Vec3{X: 1}, -1); err == nil {
		t.Error("Locate(level=-1) should fail")
	}
	if _, err := Locate(geom.Vec3{X: 1}, 26); err == nil {
		t.Error("Locate(level=26) should fail")
	}
}

func TestLocateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		v := randomPoint(rng)
		a, _ := Locate(v, 5)
		b, _ := Locate(v, 5)
		if a.ID != b.ID {
			t.Fatalf("Locate not deterministic: %d vs %d", a.ID, b.ID)
		}
	}
}

func TestLevelAreasShrinkFourfold(t *testing.T) {
	// Average trixel area must shrink ~4x per level.
	v := geom.FromRADec(42, 17)
	prev := math.Inf(1)
	for level := 0; level <= 6; level++ {
		tr, err := Locate(v, level)
		if err != nil {
			t.Fatal(err)
		}
		a := tr.AreaSr()
		if a >= prev {
			t.Fatalf("area did not shrink at level %d: %v >= %v", level, a, prev)
		}
		prev = a
	}
}

func TestIntersectsCapConservative(t *testing.T) {
	// If a cap contains a point, the trixel containing that point must
	// be reported as intersecting the cap.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		center := randomPoint(rng)
		radius := rng.Float64()*20 + 0.1
		c := geom.NewCap(center, radius)
		// Sample a point inside the cap.
		probe := perturb(rng, center, radius*0.9)
		if !c.Contains(probe) {
			continue
		}
		tr, err := Locate(probe, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.IntersectsCap(c) {
			t.Fatalf("trixel %s containing in-cap point reported disjoint", tr)
		}
	}
}

func TestIntersectsCapRejectsFar(t *testing.T) {
	c := geom.CapFromRADec(0, 0, 1)
	tr, err := Locate(geom.FromRADec(180, 0), 6)
	if err != nil {
		t.Fatal(err)
	}
	if tr.IntersectsCap(c) {
		t.Error("antipodal trixel reported intersecting a 1° cap")
	}
}

func TestBoundingRadiusContainsVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		v := randomPoint(rng)
		tr, err := Locate(v, rng.Intn(6))
		if err != nil {
			t.Fatal(err)
		}
		r := tr.BoundingRadius()
		c := tr.Center()
		for _, vert := range tr.V {
			if c.AngleTo(vert) > r+1e-12 {
				t.Fatalf("vertex outside bounding radius for %s", tr)
			}
		}
	}
}

func randomPoint(rng *rand.Rand) geom.Vec3 {
	// Uniform on the sphere via normalized Gaussians.
	return geom.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}.Normalize()
}

// perturb returns a point at most maxDeg away from v.
func perturb(rng *rand.Rand, v geom.Vec3, maxDeg float64) geom.Vec3 {
	off := geom.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}.Normalize().Scale(math.Tan(maxDeg / 180 * math.Pi * rng.Float64()))
	return v.Add(off).Normalize()
}
