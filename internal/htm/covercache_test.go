package htm

import (
	"sync"
	"testing"

	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

func TestCoverCacheHitMissAndBump(t *testing.T) {
	cc := NewCoverCache(8)
	calls := 0
	compute := func(c geom.Cap) []model.ObjectID {
		calls++
		return []model.ObjectID{1, 2, 3}
	}
	capA := geom.CapFromRADec(120, 30, 2)

	got := cc.Resolve(capA, compute)
	if len(got) != 3 || calls != 1 {
		t.Fatalf("first resolve: ids=%v calls=%d", got, calls)
	}
	for i := 0; i < 5; i++ {
		cc.Resolve(capA, compute)
	}
	if calls != 1 {
		t.Fatalf("repeated resolves recomputed: calls=%d", calls)
	}
	hits, misses := cc.Stats()
	if hits != 5 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 5/1", hits, misses)
	}

	// A bump (universe growth) invalidates: the next resolve misses.
	cc.Bump()
	cc.Resolve(capA, compute)
	if calls != 2 {
		t.Fatalf("resolve after Bump served a stale cover (calls=%d)", calls)
	}
}

func TestCoverCacheLRUEviction(t *testing.T) {
	cc := NewCoverCache(2)
	calls := map[float64]int{}
	mk := func(ra float64) func(geom.Cap) []model.ObjectID {
		return func(geom.Cap) []model.ObjectID {
			calls[ra]++
			return []model.ObjectID{model.ObjectID(ra)}
		}
	}
	capOf := func(ra float64) geom.Cap { return geom.CapFromRADec(ra, 0, 1) }

	cc.Resolve(capOf(10), mk(10))
	cc.Resolve(capOf(20), mk(20))
	cc.Resolve(capOf(10), mk(10)) // refresh 10 → 20 is now LRU
	cc.Resolve(capOf(30), mk(30)) // evicts 20
	cc.Resolve(capOf(10), mk(10)) // still cached
	cc.Resolve(capOf(20), mk(20)) // must recompute
	if calls[10] != 1 {
		t.Errorf("entry 10 recomputed %d times, want 1 (LRU refresh lost)", calls[10])
	}
	if calls[20] != 2 {
		t.Errorf("entry 20 computed %d times, want 2 (eviction expected)", calls[20])
	}
	if calls[30] != 1 {
		t.Errorf("entry 30 computed %d times, want 1", calls[30])
	}
}

func TestCoverCacheQuantizationSharesNearbyCaps(t *testing.T) {
	cc := NewCoverCache(8)
	calls := 0
	compute := func(geom.Cap) []model.ObjectID { calls++; return []model.ObjectID{1} }
	cc.Resolve(geom.CapFromRADec(45, -10, 1.5), compute)
	// A cap perturbed far below the quantum maps to the same entry…
	cc.Resolve(geom.CapFromRADec(45+1e-10, -10, 1.5), compute)
	if calls != 1 {
		t.Errorf("sub-quantum perturbation recomputed (calls=%d)", calls)
	}
	// …while a clearly different cap does not.
	cc.Resolve(geom.CapFromRADec(46, -10, 1.5), compute)
	if calls != 2 {
		t.Errorf("distinct cap shared an entry (calls=%d)", calls)
	}
}

// TestCoverCacheConcurrent hammers one cache from many goroutines
// (run under -race in CI): resolves must stay consistent and the
// hit+miss totals must equal the resolve count.
func TestCoverCacheConcurrent(t *testing.T) {
	cc := NewCoverCache(16)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ra := float64((g*perG + i) % 32)
				ids := cc.Resolve(geom.CapFromRADec(ra, 0, 1), func(geom.Cap) []model.ObjectID {
					return []model.ObjectID{model.ObjectID(ra) + 1}
				})
				if len(ids) != 1 || ids[0] != model.ObjectID(ra)+1 {
					t.Errorf("wrong cover for ra=%v: %v", ra, ids)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := cc.Stats()
	if hits+misses != goroutines*perG {
		t.Errorf("hits %d + misses %d != %d resolves", hits, misses, goroutines*perG)
	}
}
