// Package workload generates the interleaved query–update event
// sequences the experiments replay. It reproduces the statistical
// properties of the SDSS trace the paper used (Section 6.1):
//
//   - queries arrive in evolving *campaigns* — clusters of activity
//     around a sky region that drift and hand over to new regions over
//     time, so "entirely different sets of data objects are queried in a
//     short time period" (Figure 7a);
//   - there is no dominant query template: a mix of cone searches of
//     varying radius, wide-area scans, and occasional all-sky queries;
//   - result sizes are heavy-tailed (lognormal), and the trace's early
//     queries have small results, which is what produces the paper's
//     long warm-up period;
//   - updates follow telescope scans along great circles, clustered on
//     sky stripes ("update hotspots") that are distinct from the query
//     hotspots, with update sizes proportional to the density of the
//     object they hit;
//   - queries carry a mixed tolerance for staleness: many demand the
//     latest data (t = 0), some tolerate bounded staleness, some accept
//     any cached version.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

// Config parameterizes trace generation.
type Config struct {
	Seed int64

	// NumQueries and NumUpdates set the event mix (paper default:
	// 250,000 each).
	NumQueries int
	NumUpdates int

	// Campaigns is the number of query campaigns across the trace; each
	// campaign concentrates queries around one query-hot region for a
	// contiguous span of events.
	Campaigns int
	// CampaignSpreadDeg is the angular scatter of query centers around
	// the campaign center.
	CampaignSpreadDeg float64
	// QueryRadiusMinDeg/MaxDeg bound cone-search radii.
	QueryRadiusMinDeg float64
	QueryRadiusMaxDeg float64
	// WideScanFrac is the fraction of queries that scan a wide region
	// (tens of degrees), touching many objects.
	WideScanFrac float64
	// BackgroundQueryFrac is the fraction of queries aimed anywhere on
	// the sky, outside any campaign: the serendipitous long tail that
	// "does not follow any clear patterns" (Section 6.1). These queries
	// are essentially uncacheable and bound every policy's savings.
	BackgroundQueryFrac float64

	// MeanResultSize is the mean query result size ν(q); the paper's
	// trace carries ~300 GB over 250k queries (~1.2 MB mean).
	MeanResultSize cost.Bytes
	// ResultSigma is the lognormal shape parameter of result sizes.
	ResultSigma float64

	// ZeroTolFrac is the fraction of queries with no tolerance for
	// staleness; AnyTolFrac accept arbitrary staleness; the remainder
	// draw a tolerance uniformly in (0, ToleranceMaxFrac of the trace's
	// virtual duration]. Expressing the bound as a fraction keeps the
	// staleness semantics identical when a trace is scaled down.
	ZeroTolFrac      float64
	AnyTolFrac       float64
	ToleranceMaxFrac float64

	// ScanStep is the angular step between consecutive scan updates in
	// degrees.
	ScanStep float64
	// HotspotBias is the probability an update is redrawn near an
	// update-hot blob instead of the current scan position, clustering
	// updates on update hotspots.
	HotspotBias float64
	// QueryBlobUpdateFrac is the probability an update lands near a
	// query-hot blob: telescopes revisit scientifically interesting
	// regions, so the most-queried sky keeps growing too. Because update
	// sizes follow density, a modest count fraction here is a large byte
	// fraction — the pressure that separates Delta's on-demand update
	// shipping from the eager shipping of Replica/Benefit/SOptimal.
	QueryBlobUpdateFrac float64
	// MeanUpdateSize is the mean update payload ν(u), scaled by local
	// density (paper: update size proportional to object density).
	MeanUpdateSize cost.Bytes

	// WarmupFrac is the fraction of the query sequence whose result
	// sizes ramp up from WarmupScale× to 1× of the configured mean,
	// reproducing the paper's warm-up behaviour ("queries with small
	// query cost occur earlier in trace").
	WarmupFrac  float64
	WarmupScale float64

	// GrowthObjects is how many new data objects are published across
	// the trace (the paper's rapidly-growing repository); births are
	// spread evenly through the event sequence, so the growth rate is
	// GrowthObjects per trace. Zero keeps the universe fixed at
	// startup, reproducing the pre-growth traces exactly.
	GrowthObjects int
	// BirthBias is the probability a query issued after the first
	// birth targets a recently published object instead of its
	// campaign region — the access concentration on newly released
	// data that in-network-cache studies of real scientific
	// repositories observe.
	BirthBias float64

	// EventInterval is the virtual time between consecutive events.
	EventInterval time.Duration
}

// DefaultConfig returns the paper-calibrated workload: 250k queries and
// 250k updates with ~300 GB of query traffic and ~300 GB of update
// traffic at the default event counts.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		NumQueries:          250_000,
		NumUpdates:          250_000,
		Campaigns:           10,
		CampaignSpreadDeg:   2.5,
		QueryRadiusMinDeg:   0.3,
		QueryRadiusMaxDeg:   2,
		WideScanFrac:        0.02,
		BackgroundQueryFrac: 0.25,
		MeanResultSize:      3 * cost.MB / 2,
		ResultSigma:         2.0,
		ZeroTolFrac:         0.5,
		AnyTolFrac:          0.2,
		ToleranceMaxFrac:    0.2,
		ScanStep:            0.8,
		HotspotBias:         0.45,
		QueryBlobUpdateFrac: 0.05,
		MeanUpdateSize:      232 * cost.KB,
		WarmupFrac:          0.4,
		WarmupScale:         0.25,
		EventInterval:       200 * time.Millisecond,
	}
}

// Generator produces traces against a survey.
type Generator struct {
	survey *catalog.Survey
	cfg    Config
}

// Validate checks every knob and, crucially, knob *combinations*:
// conflicting settings error out loudly instead of being silently
// clamped into a workload that no longer means what it says.
func (cfg Config) Validate() error {
	if cfg.NumQueries < 0 || cfg.NumUpdates < 0 || cfg.NumQueries+cfg.NumUpdates == 0 {
		return fmt.Errorf("workload: invalid event counts q=%d u=%d", cfg.NumQueries, cfg.NumUpdates)
	}
	if cfg.Campaigns <= 0 {
		return fmt.Errorf("workload: need at least one campaign")
	}
	if cfg.CampaignSpreadDeg < 0 {
		return fmt.Errorf("workload: campaign spread must be non-negative")
	}
	if cfg.QueryRadiusMinDeg < 0 || cfg.QueryRadiusMaxDeg <= 0 {
		return fmt.Errorf("workload: query radii must be positive")
	}
	if cfg.QueryRadiusMinDeg > cfg.QueryRadiusMaxDeg {
		return fmt.Errorf("workload: query radius min %v exceeds max %v",
			cfg.QueryRadiusMinDeg, cfg.QueryRadiusMaxDeg)
	}
	if cfg.WideScanFrac < 0 || cfg.WideScanFrac > 1 {
		return fmt.Errorf("workload: wide-scan fraction out of range")
	}
	if cfg.BackgroundQueryFrac < 0 || cfg.BackgroundQueryFrac > 1 {
		return fmt.Errorf("workload: background query fraction out of range")
	}
	if cfg.NumQueries > 0 && cfg.MeanResultSize <= 0 {
		return fmt.Errorf("workload: mean result size must be positive")
	}
	if cfg.ResultSigma < 0 {
		return fmt.Errorf("workload: result sigma must be non-negative")
	}
	if cfg.ZeroTolFrac < 0 || cfg.AnyTolFrac < 0 || cfg.ToleranceMaxFrac < 0 {
		return fmt.Errorf("workload: tolerance fractions must be non-negative")
	}
	if cfg.ZeroTolFrac+cfg.AnyTolFrac > 1 {
		return fmt.Errorf("workload: tolerance fractions exceed 1")
	}
	if cfg.HotspotBias < 0 || cfg.HotspotBias > 1 {
		return fmt.Errorf("workload: hotspot bias out of range")
	}
	if cfg.QueryBlobUpdateFrac < 0 || cfg.QueryBlobUpdateFrac > 1 {
		return fmt.Errorf("workload: query-blob update fraction out of range")
	}
	if cfg.HotspotBias+cfg.QueryBlobUpdateFrac > 1 {
		// Previously this silently starved the great-circle scan branch;
		// the update stream then had no systematic component at all.
		return fmt.Errorf("workload: hotspot bias %v + query-blob update fraction %v exceed 1",
			cfg.HotspotBias, cfg.QueryBlobUpdateFrac)
	}
	if cfg.NumUpdates > 0 {
		if cfg.ScanStep <= 0 {
			return fmt.Errorf("workload: scan step must be positive when updates are generated")
		}
		if cfg.MeanUpdateSize <= 0 {
			return fmt.Errorf("workload: mean update size must be positive")
		}
	}
	if cfg.WarmupFrac < 0 || cfg.WarmupFrac > 1 {
		return fmt.Errorf("workload: warmup fraction out of range")
	}
	if cfg.WarmupFrac > 0 && (cfg.WarmupScale <= 0 || cfg.WarmupScale > 1) {
		return fmt.Errorf("workload: warmup scale %v conflicts with warmup fraction %v",
			cfg.WarmupScale, cfg.WarmupFrac)
	}
	if cfg.GrowthObjects < 0 {
		return fmt.Errorf("workload: growth objects must be non-negative")
	}
	if cfg.BirthBias < 0 || cfg.BirthBias > 1 {
		return fmt.Errorf("workload: birth bias out of range")
	}
	if cfg.EventInterval <= 0 {
		return fmt.Errorf("workload: event interval must be positive")
	}
	return nil
}

// NewGenerator validates the configuration and returns a generator.
func NewGenerator(survey *catalog.Survey, cfg Config) (*Generator, error) {
	if survey == nil {
		return nil, fmt.Errorf("workload: nil survey")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{survey: survey, cfg: cfg}, nil
}

// campaign is one query-activity cluster.
type campaign struct {
	center geom.Vec3
}

// scanState walks a great circle in fixed angular steps; when a circle
// completes, a new one is chosen through an update-hot blob.
type scanState struct {
	circle geom.GreatCircle
	theta  float64
}

// Generate produces the full event sequence. The output is
// deterministic for a fixed survey and config. When GrowthObjects is
// set the survey itself grows as a side effect: births are applied to
// it as they are generated, so the trace's later queries can cover the
// newborns (a live deployment replays the same births into its
// repository, whose survey grows identically).
func (g *Generator) Generate() ([]model.Event, error) {
	cfg := g.cfg
	// Independent streams keep the query sequence identical when only
	// the update count changes — the Figure 8a experiment holds the
	// 250k queries fixed while sweeping updates.
	planRng := rand.New(rand.NewSource(cfg.Seed))
	qRng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(cfg.Seed ^ 0x0bda7e))
	bRng := rand.New(rand.NewSource(cfg.Seed ^ 0x6b17f5))

	queryBlobs := g.survey.Sky().Blobs(catalog.QueryHot)
	updateBlobs := g.survey.Sky().Blobs(catalog.UpdateHot)
	if len(queryBlobs) == 0 || len(updateBlobs) == 0 {
		return nil, fmt.Errorf("workload: survey sky lacks query/update blobs")
	}
	// Query activity concentrates on a handful of regions (the paper's
	// Figure 7a shows roughly half a dozen hotspot object-IDs); use at
	// most three query blobs for campaign anchors.
	if len(queryBlobs) > 3 {
		queryBlobs = queryBlobs[:3]
	}

	// Campaign plan: each campaign anchors near a query-hot blob, with
	// a drifting offset so consecutive campaigns visit different sky.
	campaigns := make([]campaign, cfg.Campaigns)
	for i := range campaigns {
		blob := queryBlobs[planRng.Intn(len(queryBlobs))]
		// Anchor on the blob's flank: query hotspots in the paper
		// concentrate on roughly half a dozen object-IDs of mixed size.
		campaigns[i] = campaign{center: perturb(planRng, blob.Center, blob.Sigma*0.6)}
	}

	scan := g.newScan(uRng, updateBlobs)

	quTotal := cfg.NumQueries + cfg.NumUpdates
	total := quTotal + cfg.GrowthObjects
	events := make([]model.Event, 0, total)
	var (
		qID     model.QueryID
		uID     model.UpdateID
		qIssued int
		uIssued int
		born    []model.Birth
	)
	// Mean density normalizer for update sizing.
	meanDensity := g.meanDensity(planRng)

	for seq := 0; seq < total; seq++ {
		t := time.Duration(seq) * cfg.EventInterval

		// Births spread evenly through the trace: the k-th birth lands
		// once a k-th share of the sequence has elapsed.
		if len(born) < cfg.GrowthObjects &&
			int64(seq) >= int64(len(born)+1)*int64(total)/int64(cfg.GrowthObjects+1) {
			births, err := g.survey.GrowObjects(bRng, 1, t)
			if err != nil {
				return nil, fmt.Errorf("workload: grow: %w", err)
			}
			b := births[0]
			born = append(born, b)
			events = append(events, model.Event{Seq: int64(seq), Kind: model.EventBirth, Birth: &b})
			continue
		}

		// Deterministic proportional interleave (Bresenham) of the
		// query and update streams over their own subtotal: emit the
		// stream that is furthest behind its quota.
		qu := seq - len(born)
		emitQuery := int64(qIssued)*int64(quTotal) <= int64(qu)*int64(cfg.NumQueries) &&
			qIssued < cfg.NumQueries
		if uIssued >= cfg.NumUpdates {
			emitQuery = true
		}

		if emitQuery {
			qID++
			q := g.genQuery(qRng, qID, t, qIssued, campaigns, born)
			events = append(events, model.Event{Seq: int64(seq), Kind: model.EventQuery, Query: q})
			qIssued++
		} else {
			uID++
			u := g.genUpdate(uRng, uID, t, scan, updateBlobs, meanDensity)
			events = append(events, model.Event{Seq: int64(seq), Kind: model.EventUpdate, Update: u})
			uIssued++
		}
	}
	return events, nil
}

func (g *Generator) newScan(rng *rand.Rand, updateBlobs []catalog.Blob) *scanState {
	// A great circle passing through an update-hot blob center: any
	// pole perpendicular to the center works; pick one at random.
	blob := updateBlobs[rng.Intn(len(updateBlobs))]
	seed := randomUnit(rng)
	pole := blob.Center.Cross(seed).Normalize()
	if pole.Norm() == 0 {
		pole = geom.Vec3{Z: 1}
	}
	return &scanState{circle: geom.NewGreatCircle(pole), theta: rng.Float64() * 2 * math.Pi}
}

func (g *Generator) meanDensity(rng *rand.Rand) float64 {
	sum := 0.0
	const n = 500
	for i := 0; i < n; i++ {
		sum += g.survey.Density(randomUnit(rng))
	}
	return sum / n
}

func (g *Generator) genQuery(rng *rand.Rand, id model.QueryID, t time.Duration,
	issued int, campaigns []campaign, born []model.Birth) *model.Query {

	cfg := g.cfg
	// Which campaign is active: campaigns own contiguous spans of the
	// query sequence, with a little leakage into neighbours so hand-offs
	// are gradual.
	campIdx := issued * len(campaigns) / max(cfg.NumQueries, 1)
	if campIdx >= len(campaigns) {
		campIdx = len(campaigns) - 1
	}
	if rng.Float64() < 0.15 { // revisit a random earlier region
		campIdx = rng.Intn(len(campaigns))
	}
	center := perturb(rng, campaigns[campIdx].center, cfg.CampaignSpreadDeg*math.Pi/180)
	fresh := false
	switch {
	case len(born) > 0 && rng.Float64() < cfg.BirthBias:
		// Access concentrates on newly released data: aim at one of the
		// most recent births, tightly enough that its object is covered.
		recent := born[max(0, len(born)-16):]
		b := recent[rng.Intn(len(recent))]
		center = perturb(rng, geom.FromRADec(b.RA, b.Dec), 0.2*math.Pi/180)
		fresh = true
	case rng.Float64() < cfg.BackgroundQueryFrac:
		// Serendipitous one-off anywhere on the sky.
		center = randomUnit(rng)
	}

	var radius float64
	switch {
	case fresh:
		radius = 0.3 + rng.Float64()*0.7 // tight cone on the newborn
	case rng.Float64() < cfg.WideScanFrac:
		radius = 15 + rng.Float64()*45 // wide-area scan
	default:
		radius = cfg.QueryRadiusMinDeg +
			rng.Float64()*(cfg.QueryRadiusMaxDeg-cfg.QueryRadiusMinDeg)
	}
	objects := g.survey.CoverCap(geom.NewCap(center, radius))
	if len(objects) == 0 {
		objects = []model.ObjectID{g.survey.ObjectAt(center)}
	}

	// Result size: lognormal around the configured mean (queries are
	// selective, so result size does not track sky density), shaped by
	// the warm-up ramp.
	mean := float64(cfg.MeanResultSize)
	sigma := cfg.ResultSigma
	// For a lognormal with E[X]=m: mu = ln m - sigma^2/2.
	mu := math.Log(mean) - sigma*sigma/2
	size := math.Exp(mu + sigma*rng.NormFloat64())
	if warm := float64(issued) / float64(max(cfg.NumQueries, 1)); warm < cfg.WarmupFrac && cfg.WarmupFrac > 0 {
		ramp := cfg.WarmupScale + (1-cfg.WarmupScale)*(warm/cfg.WarmupFrac)
		size *= ramp
	}
	if size < 1024 {
		size = 1024
	}

	return &model.Query{
		ID:        id,
		Objects:   objects,
		Cost:      cost.Bytes(size),
		Tolerance: g.genTolerance(rng),
		Time:      t,
	}
}

func (g *Generator) genTolerance(rng *rand.Rand) time.Duration {
	r := rng.Float64()
	switch {
	case r < g.cfg.ZeroTolFrac:
		return model.NoTolerance
	case r < g.cfg.ZeroTolFrac+g.cfg.AnyTolFrac:
		return model.AnyStaleness
	default:
		duration := float64(g.cfg.NumQueries+g.cfg.NumUpdates) * float64(g.cfg.EventInterval)
		return time.Duration(rng.Float64() * g.cfg.ToleranceMaxFrac * duration)
	}
}

func (g *Generator) genUpdate(rng *rand.Rand, id model.UpdateID, t time.Duration,
	scan *scanState, updateBlobs []catalog.Blob, meanDensity float64) *model.Update {

	cfg := g.cfg
	var pos geom.Vec3
	switch r := rng.Float64(); {
	case r < cfg.HotspotBias:
		// Clustered on an update-hot stripe.
		blob := updateBlobs[rng.Intn(len(updateBlobs))]
		pos = perturb(rng, blob.Center, blob.Sigma)
	case r < cfg.HotspotBias+cfg.QueryBlobUpdateFrac:
		// Revisit of a scientifically interesting (query-hot) region.
		queryBlobs := g.survey.Sky().Blobs(catalog.QueryHot)
		blob := queryBlobs[rng.Intn(len(queryBlobs))]
		pos = perturb(rng, blob.Center, blob.Sigma)
	default:
		// Systematic scan along the current great circle.
		scan.theta += cfg.ScanStep * math.Pi / 180
		if scan.theta > 2*math.Pi {
			*scan = *g.newScan(rng, updateBlobs)
		}
		pos = scan.circle.Point(scan.theta)
	}
	obj := g.survey.ObjectAt(pos)

	// Update size proportional to object density, lognormal noise.
	density := g.survey.Density(pos)
	mean := float64(cfg.MeanUpdateSize) * (density / meanDensity)
	sigma := 0.8
	mu := math.Log(math.Max(mean, 1024)) - sigma*sigma/2
	size := math.Exp(mu + sigma*rng.NormFloat64())
	if size < 512 {
		size = 512
	}

	return &model.Update{
		ID:     id,
		Object: obj,
		Cost:   cost.Bytes(size),
		Time:   t,
	}
}

func perturb(rng *rand.Rand, center geom.Vec3, sigmaRad float64) geom.Vec3 {
	off := geom.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}.Normalize().Scale(math.Abs(rng.NormFloat64()) * sigmaRad)
	return center.Add(off).Normalize()
}

func randomUnit(rng *rand.Rand) geom.Vec3 {
	return geom.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}.Normalize()
}
