package workload

import (
	"math"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/trace"
)

// smallConfig returns a fast config for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumQueries = 4000
	cfg.NumUpdates = 4000
	cfg.Campaigns = 6
	return cfg
}

func testSurvey(t *testing.T) *catalog.Survey {
	t.Helper()
	s, err := catalog.NewSurvey(catalog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func genSmall(t *testing.T) []model.Event {
	t.Helper()
	g, err := NewGenerator(testSurvey(t), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestGeneratorValidation(t *testing.T) {
	s := testSurvey(t)
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"no events", func(c *Config) { c.NumQueries, c.NumUpdates = 0, 0 }},
		{"negative queries", func(c *Config) { c.NumQueries = -1 }},
		{"no campaigns", func(c *Config) { c.Campaigns = 0 }},
		{"tolerance fractions", func(c *Config) { c.ZeroTolFrac, c.AnyTolFrac = 0.8, 0.5 }},
		{"warmup fraction", func(c *Config) { c.WarmupFrac = 1.5 }},
		{"event interval", func(c *Config) { c.EventInterval = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mut(&cfg)
			if _, err := NewGenerator(s, cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := NewGenerator(nil, smallConfig()); err == nil {
		t.Error("nil survey should fail")
	}
}

func TestGenerateCountsAndOrder(t *testing.T) {
	events := genSmall(t)
	if len(events) != 8000 {
		t.Fatalf("got %d events, want 8000", len(events))
	}
	var q, u int
	var lastTime time.Duration = -1
	for i := range events {
		e := &events[i]
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Time() <= lastTime {
			t.Fatalf("event %d time not increasing", i)
		}
		lastTime = e.Time()
		if e.Kind == model.EventQuery {
			q++
		} else {
			u++
		}
	}
	if q != 4000 || u != 4000 {
		t.Errorf("got %d queries, %d updates; want 4000 each", q, u)
	}
}

func TestGenerateInterleavesEvenly(t *testing.T) {
	events := genSmall(t)
	// In any window of 100 events, both kinds should appear.
	for start := 0; start+100 <= len(events); start += 100 {
		var q int
		for i := start; i < start+100; i++ {
			if events[i].Kind == model.EventQuery {
				q++
			}
		}
		if q < 20 || q > 80 {
			t.Fatalf("window at %d badly interleaved: %d queries of 100", start, q)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t)
	b := genSmall(t)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatalf("event %d kind differs", i)
		}
		if a[i].Kind == model.EventQuery {
			if a[i].Query.Cost != b[i].Query.Cost || len(a[i].Query.Objects) != len(b[i].Query.Objects) {
				t.Fatalf("event %d query differs", i)
			}
		} else if *a[i].Update != *b[i].Update {
			t.Fatalf("event %d update differs", i)
		}
	}
}

func TestQueryObjectsValid(t *testing.T) {
	s := testSurvey(t)
	g, err := NewGenerator(s, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if events[i].Kind != model.EventQuery {
			continue
		}
		for _, o := range events[i].Query.Objects {
			if o < 1 || int(o) > s.NumObjects() {
				t.Fatalf("query %d references invalid object %d", events[i].Query.ID, o)
			}
		}
	}
}

func TestMultiObjectQueriesExist(t *testing.T) {
	events := genSmall(t)
	multi := 0
	for i := range events {
		if events[i].Kind == model.EventQuery && len(events[i].Query.Objects) > 1 {
			multi++
		}
	}
	// The general decoupling problem needs queries spanning objects.
	if multi < 100 {
		t.Errorf("only %d multi-object queries; decoupling would be trivial", multi)
	}
}

func TestToleranceMix(t *testing.T) {
	events := genSmall(t)
	var zero, any, finite int
	for i := range events {
		if events[i].Kind != model.EventQuery {
			continue
		}
		switch tol := events[i].Query.Tolerance; {
		case tol == model.NoTolerance:
			zero++
		case tol == model.AnyStaleness:
			any++
		default:
			finite++
		}
	}
	if zero == 0 || any == 0 || finite == 0 {
		t.Errorf("tolerance mix degenerate: zero=%d any=%d finite=%d", zero, any, finite)
	}
	// Roughly half the queries demand the latest data (cfg default 0.5).
	total := zero + any + finite
	if frac := float64(zero) / float64(total); math.Abs(frac-0.5) > 0.1 {
		t.Errorf("zero-tolerance fraction %v, want ~0.5", frac)
	}
}

func TestWarmupRamp(t *testing.T) {
	events := genSmall(t)
	var earlySum, lateSum cost.Bytes
	var earlyN, lateN int
	for i := range events {
		if events[i].Kind != model.EventQuery {
			continue
		}
		if i < len(events)/4 {
			earlySum += events[i].Query.Cost
			earlyN++
		} else if i > 3*len(events)/4 {
			lateSum += events[i].Query.Cost
			lateN++
		}
	}
	earlyMean := float64(earlySum) / float64(earlyN)
	lateMean := float64(lateSum) / float64(lateN)
	if earlyMean >= lateMean {
		t.Errorf("no warm-up ramp: early mean %v >= late mean %v", earlyMean, lateMean)
	}
}

func TestHotspotDecoupling(t *testing.T) {
	// Query hotspots and update hotspots must be largely disjoint —
	// this is the workload property Delta exploits (Fig 7a).
	events := genSmall(t)
	st := trace.Summarize(events)
	topQ := st.TopQueried(8)
	topU := st.TopUpdated(8)
	overlap := 0
	for _, q := range topQ {
		for _, u := range topU {
			if q.Object == u.Object {
				overlap++
			}
		}
	}
	if overlap > 3 {
		t.Errorf("query/update hotspots overlap too much: %d of 8", overlap)
	}
}

func TestCampaignEvolution(t *testing.T) {
	// The dominant queried object must change across trace thirds
	// (evolving workload, design choice B).
	events := genSmall(t)
	third := len(events) / 3
	top := func(lo, hi int) model.ObjectID {
		counts := make(map[model.ObjectID]int)
		for i := lo; i < hi; i++ {
			if events[i].Kind != model.EventQuery {
				continue
			}
			for _, o := range events[i].Query.Objects {
				counts[o]++
			}
		}
		var best model.ObjectID
		bestN := -1
		for o, n := range counts {
			if n > bestN {
				best, bestN = o, n
			}
		}
		return best
	}
	t1 := top(0, third)
	t2 := top(third, 2*third)
	t3 := top(2*third, len(events))
	if t1 == t2 && t2 == t3 {
		t.Errorf("dominant object never changes (%d); workload does not evolve", t1)
	}
}

func TestUpdateSizesTrackDensity(t *testing.T) {
	// Updates on bigger (denser) objects must be bigger on average.
	s := testSurvey(t)
	g, err := NewGenerator(s, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	bytesPer := make(map[model.ObjectID]cost.Bytes)
	countPer := make(map[model.ObjectID]int)
	for i := range events {
		if events[i].Kind != model.EventUpdate {
			continue
		}
		u := events[i].Update
		bytesPer[u.Object] += u.Cost
		countPer[u.Object]++
	}
	// Compare mean update size on the largest vs smallest objects hit.
	objs := s.Objects()
	var bigMean, smallMean float64
	var bigN, smallN int
	for id, n := range countPer {
		if n < 10 {
			continue
		}
		mean := float64(bytesPer[id]) / float64(n)
		size := objs[id-1].Size
		if size > 10*cost.GB {
			bigMean += mean
			bigN++
		} else if size < cost.GB {
			smallMean += mean
			smallN++
		}
	}
	if bigN == 0 || smallN == 0 {
		t.Skip("no contrast classes in this sample")
	}
	if bigMean/float64(bigN) <= smallMean/float64(smallN) {
		t.Errorf("update sizes do not track object density: big %v <= small %v",
			bigMean/float64(bigN), smallMean/float64(smallN))
	}
}

func TestQueriesOnlyTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.NumUpdates = 0
	g, err := NewGenerator(testSurvey(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != cfg.NumQueries {
		t.Fatalf("got %d events", len(events))
	}
	for i := range events {
		if events[i].Kind != model.EventQuery {
			t.Fatal("unexpected update event")
		}
	}
}

func TestUpdatesOnlyTrace(t *testing.T) {
	cfg := smallConfig()
	cfg.NumQueries = 0
	g, err := NewGenerator(testSurvey(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != cfg.NumUpdates {
		t.Fatalf("got %d events", len(events))
	}
	for i := range events {
		if events[i].Kind != model.EventUpdate {
			t.Fatal("unexpected query event")
		}
	}
}

func TestGrowthEventsInterleaved(t *testing.T) {
	cfg := smallConfig()
	cfg.GrowthObjects = 40
	cfg.BirthBias = 0.3
	survey := testSurvey(t)
	base := survey.NumObjects()
	g, err := NewGenerator(survey, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.NumQueries + cfg.NumUpdates + cfg.GrowthObjects; len(events) != want {
		t.Fatalf("generated %d events, want %d", len(events), want)
	}
	var births, queries, updates int
	var firstBirth, lastBirth int64 = -1, -1
	bornTouched := make(map[model.ObjectID]bool)
	bornSeen := make(map[model.ObjectID]bool)
	for i := range events {
		e := &events[i]
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case model.EventBirth:
			births++
			if firstBirth < 0 {
				firstBirth = e.Seq
			}
			lastBirth = e.Seq
			if int(e.Birth.Object.ID) <= base {
				t.Fatalf("birth reuses base ID %d", e.Birth.Object.ID)
			}
			bornSeen[e.Birth.Object.ID] = true
		case model.EventQuery:
			queries++
			for _, id := range e.Query.Objects {
				if int(id) > base {
					if !bornSeen[id] {
						t.Fatalf("query %d touches object %d before its birth", e.Query.ID, id)
					}
					bornTouched[id] = true
				}
			}
		case model.EventUpdate:
			updates++
		}
	}
	if births != cfg.GrowthObjects || queries != cfg.NumQueries || updates != cfg.NumUpdates {
		t.Fatalf("event mix: %d births %d queries %d updates", births, queries, updates)
	}
	if survey.NumObjects() != base+cfg.GrowthObjects {
		t.Errorf("survey grew to %d, want %d", survey.NumObjects(), base+cfg.GrowthObjects)
	}
	// Births spread through the trace, not clumped at either end.
	total := int64(len(events))
	if firstBirth > total/2 || lastBirth < total/2 {
		t.Errorf("births clumped: first at %d, last at %d of %d", firstBirth, lastBirth, total)
	}
	// The access-concentration bias makes born objects actually queried.
	if len(bornTouched) < cfg.GrowthObjects/4 {
		t.Errorf("only %d of %d born objects ever queried", len(bornTouched), cfg.GrowthObjects)
	}
}

func TestGrowthDeterministicAndOffByDefault(t *testing.T) {
	gen := func(growth int) []model.Event {
		cfg := smallConfig()
		cfg.NumQueries, cfg.NumUpdates = 800, 800
		cfg.GrowthObjects = growth
		cfg.BirthBias = 0.25
		g, err := NewGenerator(testSurvey(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		events, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := gen(10), gen(10)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatalf("event %d kind diverged", i)
		}
		if a[i].Kind == model.EventBirth && *a[i].Birth != *b[i].Birth {
			t.Fatalf("birth %d diverged: %+v vs %+v", i, a[i].Birth, b[i].Birth)
		}
	}
	// Growth off reproduces the pre-growth trace exactly.
	plain, regen := gen(0), gen(0)
	for i := range plain {
		if plain[i].Kind != regen[i].Kind {
			t.Fatalf("zero-growth trace not deterministic at %d", i)
		}
		if plain[i].Kind == model.EventQuery && plain[i].Query.Cost != regen[i].Query.Cost {
			t.Fatalf("zero-growth query %d diverged", i)
		}
	}
}
