package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// goldenTraces pins the exact event stream every scenario generates
// for a fixed survey, seed, and event mix. A refactor that silently
// changes any scenario's trace — and with it every benchmark trajectory
// built on that scenario — fails here first. When a change is
// *intentional*, regenerate with:
//
//	go test ./internal/workload -run TestGoldenTraces -v
//
// and copy the printed hashes in.
var goldenTraces = map[string]string{
	"batch-interactive": "6bda2b40a022019344eb12db9c0973e7375a85e56f596960a3e4beeb923fc1b2",
	"diurnal":           "a025ef89bf62b3fd26f125026712724a35c995adda2e1ceb0ed0e2f4fdb4e7ba",
	"flash-crowd":       "282c4836654d427fed7092fd133368ef46b15bb10a857237ede97c6f5517e409",
	"growth-spurt":      "9071f5b1cef838f261e5b7e26c380f990476a90b1dee18cb7eb47339d79e6648",
	"zipf-drift":        "210abe13914a2e1d6e7f0fc2741950357bef3ce607ab56df699d78c94f03e029",
}

func TestGoldenTraces(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name(), func(t *testing.T) {
			want, ok := goldenTraces[sc.Name()]
			if !ok {
				t.Fatalf("scenario %q has no golden hash; add it", sc.Name())
			}
			events, err := sc.Events(testSurvey(t), Options{Seed: 42, Queries: 800, Updates: 400})
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			serializeEvents(h, events)
			got := hex.EncodeToString(h.Sum(nil))
			if got != want {
				t.Errorf("golden trace hash changed:\n got  %s\n want %s", got, want)
			}
		})
	}
}
