package workload

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/sim"
)

func TestScenarioRegistry(t *testing.T) {
	list := Scenarios()
	if len(list) != 5 {
		t.Fatalf("got %d scenarios, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name() >= list[i].Name() {
			t.Errorf("registry not sorted: %q before %q", list[i-1].Name(), list[i].Name())
		}
	}
	for _, s := range list {
		if s.Description() == "" {
			t.Errorf("scenario %q lacks a description", s.Name())
		}
		got, err := Lookup(s.Name())
		if err != nil {
			t.Errorf("Lookup(%q): %v", s.Name(), err)
		} else if got.Name() != s.Name() {
			t.Errorf("Lookup(%q) returned %q", s.Name(), got.Name())
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("unknown scenario should fail lookup")
	}
}

// TestScenarioEventContract checks every scenario against the event
// stream contract the replayers rely on: valid events, dense ascending
// sequence numbers, strictly increasing times, exact query/update
// conservation.
func TestScenarioEventContract(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name(), func(t *testing.T) {
			survey := testSurvey(t)
			base := survey.NumObjects()
			opts := Options{Seed: 3, Queries: 600, Updates: 300}
			events, err := sc.Events(survey, opts)
			if err != nil {
				t.Fatal(err)
			}
			var q, u, b int
			lastTime := time.Duration(-1)
			for i := range events {
				e := &events[i]
				if err := e.Validate(); err != nil {
					t.Fatalf("event %d invalid: %v", i, err)
				}
				if e.Seq != int64(i) {
					t.Fatalf("event %d has seq %d", i, e.Seq)
				}
				if e.Time() <= lastTime {
					t.Fatalf("event %d time %v not after %v", i, e.Time(), lastTime)
				}
				lastTime = e.Time()
				switch e.Kind {
				case model.EventQuery:
					q++
					for _, id := range e.Query.Objects {
						if id < 1 || int(id) > survey.NumObjects() {
							t.Fatalf("query %d touches unknown object %d", e.Query.ID, id)
						}
					}
				case model.EventUpdate:
					u++
				case model.EventBirth:
					b++
				}
			}
			if q != opts.Queries || u != opts.Updates {
				t.Errorf("conservation broken: %d/%d queries, %d/%d updates",
					q, opts.Queries, u, opts.Updates)
			}
			if survey.NumObjects() != base+b {
				t.Errorf("survey grew %d but trace carries %d births",
					survey.NumObjects()-base, b)
			}
		})
	}
}

// TestScenarioValidation drives every invalid knob of every scenario
// (and the shared Options) through its error path.
func TestScenarioValidation(t *testing.T) {
	survey := testSurvey(t)
	cases := []struct {
		name string
		sc   Scenario
		opts Options
	}{
		{"options negative queries", ZipfDrift{}, Options{Queries: -1, Updates: 10}},
		{"options negative updates", ZipfDrift{}, Options{Queries: 10, Updates: -1}},
		{"options negative interval", ZipfDrift{}, Options{Queries: 10, Updates: 10, EventInterval: -time.Second}},
		{"zipf skew at 1", ZipfDrift{Skew: 1}, Options{}},
		{"zipf skew below 1", ZipfDrift{Skew: 0.5}, Options{}},
		{"zipf one anchor", ZipfDrift{Anchors: 1}, Options{}},
		{"zipf negative phases", ZipfDrift{DriftPhases: -1}, Options{}},
		{"zipf radius negative", ZipfDrift{RadiusDeg: -2}, Options{}},
		{"zipf radius too wide", ZipfDrift{RadiusDeg: 120}, Options{}},
		{"zipf background above 1", ZipfDrift{BackgroundFrac: 1.5}, Options{}},
		{"diurnal short period", Diurnal{PeriodEvents: 4}, Options{}},
		{"diurnal peak below 1", Diurnal{PeakFactor: 0.5}, Options{}},
		{"diurnal night share above 1", Diurnal{NightUpdateShare: 1.2}, Options{}},
		{"diurnal radius negative", Diurnal{RadiusDeg: -1}, Options{}},
		{"batch period too small", BatchInteractive{BatchPeriod: 1}, Options{}},
		{"batch negative length", BatchInteractive{BatchLen: -3}, Options{}},
		{"batch fills whole period", BatchInteractive{BatchPeriod: 50, BatchLen: 50}, Options{}},
		{"batch speedup below 1", BatchInteractive{BatchSpeedup: 0.2}, Options{}},
		{"batch wide frac above 1", BatchInteractive{WideFrac: 2}, Options{}},
		{"flash ramp unordered", FlashCrowd{StartFrac: 0.6, PeakFrac: 0.5, EndFrac: 0.8}, Options{}},
		{"flash ramp out of trace", FlashCrowd{StartFrac: 0.5, PeakFrac: 0.8, EndFrac: 1.2}, Options{}},
		{"flash peak share above 1", FlashCrowd{PeakShare: 1.5}, Options{}},
		{"flash radius negative", FlashCrowd{RadiusDeg: -0.5}, Options{}},
		{"growth negative births", GrowthSpurt{Births: -5}, Options{}},
		{"growth negative storms", GrowthSpurt{Storms: -1}, Options{}},
		{"growth more storms than births", GrowthSpurt{Births: 3, Storms: 8}, Options{}},
		{"growth storm radius negative", GrowthSpurt{StormRadiusDeg: -2}, Options{}},
		{"growth newborn bias above 1", GrowthSpurt{NewbornBias: 1.5}, Options{}},
		{"growth births overflow trace", GrowthSpurt{Births: 500, Storms: 1}, Options{Queries: 50, Updates: 50}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.sc.Events(survey, tt.opts); err == nil {
				t.Errorf("expected error for %s", tt.name)
			}
		})
	}
	for _, sc := range Scenarios() {
		if _, err := sc.Events(nil, Options{}); err == nil {
			t.Errorf("%s: nil survey should fail", sc.Name())
		}
	}
}

// TestConfigValidationTable covers every invalid knob (and conflicting
// knob combination) of the base generator Config.
func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no events", func(c *Config) { c.NumQueries, c.NumUpdates = 0, 0 }},
		{"negative queries", func(c *Config) { c.NumQueries = -1 }},
		{"negative updates", func(c *Config) { c.NumUpdates = -1 }},
		{"no campaigns", func(c *Config) { c.Campaigns = 0 }},
		{"negative campaign spread", func(c *Config) { c.CampaignSpreadDeg = -1 }},
		{"negative min radius", func(c *Config) { c.QueryRadiusMinDeg = -0.5 }},
		{"zero max radius", func(c *Config) { c.QueryRadiusMaxDeg = 0 }},
		{"radius min above max", func(c *Config) { c.QueryRadiusMinDeg, c.QueryRadiusMaxDeg = 5, 2 }},
		{"wide scan frac above 1", func(c *Config) { c.WideScanFrac = 1.5 }},
		{"background frac negative", func(c *Config) { c.BackgroundQueryFrac = -0.1 }},
		{"zero mean result size", func(c *Config) { c.MeanResultSize = 0 }},
		{"negative result sigma", func(c *Config) { c.ResultSigma = -1 }},
		{"negative tolerance frac", func(c *Config) { c.ZeroTolFrac = -0.2 }},
		{"tolerance fracs exceed 1", func(c *Config) { c.ZeroTolFrac, c.AnyTolFrac = 0.8, 0.5 }},
		{"hotspot bias above 1", func(c *Config) { c.HotspotBias = 1.2 }},
		{"query blob frac negative", func(c *Config) { c.QueryBlobUpdateFrac = -0.1 }},
		{"hotspot+query blob exceed 1", func(c *Config) { c.HotspotBias, c.QueryBlobUpdateFrac = 0.8, 0.4 }},
		{"zero scan step with updates", func(c *Config) { c.ScanStep = 0 }},
		{"zero mean update size", func(c *Config) { c.MeanUpdateSize = 0 }},
		{"warmup frac above 1", func(c *Config) { c.WarmupFrac = 1.5 }},
		{"warmup scale conflicts", func(c *Config) { c.WarmupFrac, c.WarmupScale = 0.5, 0 }},
		{"negative growth", func(c *Config) { c.GrowthObjects = -1 }},
		{"birth bias above 1", func(c *Config) { c.BirthBias = 2 }},
		{"zero event interval", func(c *Config) { c.EventInterval = 0 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("expected error for %s", tt.name)
			}
		})
	}
	// Knobs that only conflict in combination stay valid alone.
	okCases := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"queries only skips update knobs", func(c *Config) { c.NumUpdates, c.ScanStep, c.MeanUpdateSize = 0, 0, 0 }},
		{"no warmup skips scale", func(c *Config) { c.WarmupFrac, c.WarmupScale = 0, 0 }},
		{"tolerance fracs at exactly 1", func(c *Config) { c.ZeroTolFrac, c.AnyTolFrac = 0.7, 0.3 }},
	}
	for _, tt := range okCases {
		t.Run("ok/"+tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

// TestScenarioConservationProperty is the testing/quick half of the
// conservation contract: random small event mixes always conserve
// counts, for every scenario.
func TestScenarioConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for _, sc := range Scenarios() {
		sc := sc
		if sc.Name() == "growth-spurt" {
			// Pin births small enough to fit the random trace lengths.
			sc = GrowthSpurt{Births: 8, Storms: 2}
		}
		prop := func(seed uint16, dq, du uint8) bool {
			survey := quickSurvey()
			opts := Options{
				Seed:    int64(seed) + 1,
				Queries: 100 + int(dq),
				Updates: 50 + int(du),
			}
			events, err := sc.Events(survey, opts)
			if err != nil {
				t.Logf("%s: %v", sc.Name(), err)
				return false
			}
			var q, u int
			for i := range events {
				switch events[i].Kind {
				case model.EventQuery:
					q++
				case model.EventUpdate:
					u++
				}
			}
			return q == opts.Queries && u == opts.Updates
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
			t.Errorf("%s: %v", sc.Name(), err)
		}
	}
}

// TestZeroGrowthScenariosByteIdentical: scenarios that do not grow the
// universe must produce byte-identical traces on repeated generation
// against identical surveys.
func TestZeroGrowthScenariosByteIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Name() == "growth-spurt" {
			continue
		}
		t.Run(sc.Name(), func(t *testing.T) {
			opts := Options{Seed: 11, Queries: 500, Updates: 250}
			a, err := sc.Events(testSurvey(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Events(testSurvey(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			var bufA, bufB bytes.Buffer
			serializeEvents(&bufA, a)
			serializeEvents(&bufB, b)
			if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
				t.Error("repeated generation not byte-identical")
			}
			if !reflect.DeepEqual(a, b) {
				t.Error("repeated generation not deeply equal")
			}
		})
	}
}

// TestGrowthSpurtDeterministic: the growing scenario is deterministic
// too, and concentrates births into storm runs.
func TestGrowthSpurtDeterministic(t *testing.T) {
	sc := GrowthSpurt{Births: 24, Storms: 3}
	opts := Options{Seed: 5, Queries: 800, Updates: 400}
	a, err := sc.Events(testSurvey(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Events(testSurvey(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("growth-spurt not deterministic")
	}
	// Births arrive in exactly Storms consecutive runs.
	runs, births := 0, 0
	prevBirth := false
	for i := range a {
		isBirth := a[i].Kind == model.EventBirth
		if isBirth {
			births++
			if !prevBirth {
				runs++
			}
		}
		prevBirth = isBirth
	}
	if births != 24 {
		t.Errorf("got %d births, want 24", births)
	}
	if runs != 3 {
		t.Errorf("births split into %d runs, want 3 storms", runs)
	}
}

// TestZipfRankFrequency checks the measured anchor popularity against
// the configured skew: with one drift phase, anchor k must be hit
// approximately N·(k+1)^−s/H times. The survey is a fine uniform
// partition so distinct anchors resolve to distinct object sets;
// anchors whose covers still overlap (two ranks on the same sky) are
// grouped and checked against their summed expectation.
func TestZipfRankFrequency(t *testing.T) {
	scfg := catalog.Config{
		Seed:          1,
		NumObjects:    8192,
		TotalSize:     8 * cost.GB,
		MinObjectSize: 64 * cost.KB,
		MaxObjectSize: 16 * cost.MB,
		Blobs:         10,
		Uniform:       true,
	}
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	z := ZipfDrift{Skew: 1.4, Anchors: 12, DriftPhases: 1, RadiusDeg: 0.4}
	opts := Options{Seed: 9, Queries: 12000, Updates: 1}
	events, err := z.Events(survey, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recreate the anchor plan: Events draws it from a fresh planRng
	// before touching any other stream.
	planRng := rand.New(rand.NewSource(opts.Seed))
	anchors, err := queryAnchors(planRng, survey, z.Anchors)
	if err != nil {
		t.Fatal(err)
	}
	// The cone centers wobble only 0.05° around their anchor, so a
	// query attributes to the anchor whose own cover its object set
	// overlaps most.
	anchorCover := make([][]model.ObjectID, len(anchors))
	for a := range anchors {
		anchorCover[a] = survey.CoverCap(geom.NewCap(anchors[a], z.RadiusDeg))
	}
	// Group anchors with overlapping covers: their queries are mutually
	// unattributable, so they are validated against a pooled
	// expectation.
	group := make([]int, len(anchors))
	for a := range group {
		group[a] = a
	}
	find := func(a int) int {
		for group[a] != a {
			a = group[a]
		}
		return a
	}
	for a := 0; a < len(anchors); a++ {
		for b := a + 1; b < len(anchors); b++ {
			if overlapCount(anchorCover[a], anchorCover[b]) > 0 {
				group[find(b)] = find(a)
			}
		}
	}
	counts := make(map[int]float64)
	for i := range events {
		if events[i].Kind != model.EventQuery {
			continue
		}
		best, bestOverlap := 0, -1
		for a := range anchors {
			if overlap := overlapCount(events[i].Query.Objects, anchorCover[a]); overlap > bestOverlap {
				best, bestOverlap = a, overlap
			}
		}
		counts[find(best)]++
	}
	var h float64
	for k := 0; k < z.Anchors; k++ {
		h += math.Pow(float64(k+1), -z.Skew)
	}
	expected := make(map[int]float64)
	for k := 0; k < z.Anchors; k++ {
		expected[find(k)] += float64(opts.Queries) * math.Pow(float64(k+1), -z.Skew) / h
	}
	checked := 0
	for g, exp := range expected {
		if exp < 100 {
			continue // too few samples for a tight relative bound
		}
		checked++
		if got := counts[g]; math.Abs(got-exp) > 0.25*exp+30 {
			t.Errorf("anchor group %d: %v queries, want ~%.0f (skew %v)", g, got, exp, z.Skew)
		}
	}
	if checked < 3 {
		t.Fatalf("only %d measurable anchor groups; test has no power", checked)
	}
}

// TestScenarioReplaysThroughSimulator: the whole point of the common
// event-stream contract — a scenario trace drives the simulator with
// zero violations, births included.
func TestScenarioReplaysThroughSimulator(t *testing.T) {
	for _, sc := range []Scenario{FlashCrowd{}, GrowthSpurt{Births: 16, Storms: 2}} {
		t.Run(sc.Name(), func(t *testing.T) {
			survey := testSurvey(t)
			objects := survey.Objects()
			events, err := sc.Events(survey, Options{Seed: 2, Queries: 1500, Updates: 600})
			if err != nil {
				t.Fatal(err)
			}
			capacity := cost.Bytes(float64(survey.TotalSize()) * 0.3)
			res, err := sim.Run(core.NewVCover(core.DefaultVCoverConfig()), objects, events,
				sim.Config{CacheCapacity: capacity})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Errorf("violations: %v", res.Violations[:min(3, len(res.Violations))])
			}
		})
	}
}

// serializeEvents writes a canonical byte form of an event stream; the
// golden-trace hashes are computed over exactly this encoding.
func serializeEvents(w io.Writer, events []model.Event) {
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case model.EventQuery:
			fmt.Fprintf(w, "q %d %d %d %d %d", e.Seq, e.Query.ID, e.Query.Cost, e.Query.Tolerance, e.Query.Time)
			for _, id := range e.Query.Objects {
				fmt.Fprintf(w, " %d", id)
			}
			fmt.Fprint(w, "\n")
		case model.EventUpdate:
			fmt.Fprintf(w, "u %d %d %d %d %d\n", e.Seq, e.Update.ID, e.Update.Object, e.Update.Cost, e.Update.Time)
		case model.EventBirth:
			fmt.Fprintf(w, "b %d %d %d %d %.17g %.17g %d\n", e.Seq,
				e.Birth.Object.ID, e.Birth.Object.Size, e.Birth.Object.Trixel, e.Birth.RA, e.Birth.Dec, e.Birth.Time)
		}
	}
}

func overlapCount(a, b []model.ObjectID) int {
	seen := make(map[model.ObjectID]struct{}, len(a))
	for _, id := range a {
		seen[id] = struct{}{}
	}
	n := 0
	for _, id := range b {
		if _, ok := seen[id]; ok {
			n++
		}
	}
	return n
}

// quickSurvey builds a small survey without a testing.T (for
// testing/quick properties).
func quickSurvey() *catalog.Survey {
	s, err := catalog.NewSurvey(catalog.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return s
}
