package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
)

// Scenario is a named, deterministic workload generator. Each scenario
// encodes one access pattern the in-network-cache trace studies
// measured on real scientific repositories — Zipf popularity with rank
// drift, diurnal load cycles, batch pipelines vs interactive users,
// flash crowds, growth spurts — and reduces it to the same
// model.Event stream the base Generator produces, so the simulator,
// the cluster soaks, and the live delta-client driver replay any
// scenario unchanged.
type Scenario interface {
	// Name is the stable registry key (delta-client -scenario <name>).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Events generates the scenario's event stream against the survey.
	// The stream is deterministic for a fixed survey, scenario
	// configuration, and options. Scenarios that grow the universe
	// apply births to the survey as a side effect, exactly like
	// Generator.Generate.
	Events(survey *catalog.Survey, opts Options) ([]model.Event, error)
}

// Options are the scenario-independent knobs of a generated trace.
// Zero values select per-scenario defaults.
type Options struct {
	// Seed drives every random choice; equal seeds give identical
	// traces. Zero means seed 1.
	Seed int64
	// Queries and Updates set the event mix. Zero means the scenario
	// default; negative is invalid.
	Queries int
	Updates int
	// EventInterval is the base virtual time between consecutive
	// events; scenarios with bursty or cyclic arrivals modulate it.
	EventInterval time.Duration
}

func (o Options) withDefaults(defQueries, defUpdates int) Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Queries == 0 {
		o.Queries = defQueries
	}
	if o.Updates == 0 {
		o.Updates = defUpdates
	}
	if o.EventInterval == 0 {
		o.EventInterval = 200 * time.Millisecond
	}
	return o
}

func (o Options) validate() error {
	if o.Queries < 0 || o.Updates < 0 {
		return fmt.Errorf("workload: negative event counts q=%d u=%d", o.Queries, o.Updates)
	}
	if o.Queries+o.Updates == 0 {
		return fmt.Errorf("workload: scenario needs at least one event")
	}
	if o.EventInterval < 0 {
		return fmt.Errorf("workload: negative event interval")
	}
	return nil
}

// Scenarios returns every registered scenario with default knobs,
// sorted by name.
func Scenarios() []Scenario {
	out := []Scenario{
		BatchInteractive{},
		Diurnal{},
		FlashCrowd{},
		GrowthSpurt{},
		ZipfDrift{},
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name() < out[b].Name() })
	return out
}

// Lookup resolves a scenario by registry name.
func Lookup(name string) (Scenario, error) {
	var known []string
	for _, s := range Scenarios() {
		if s.Name() == name {
			return s, nil
		}
		known = append(known, s.Name())
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (have %s)", name, strings.Join(known, ", "))
}

// emitter is the shared event-construction machinery: it owns the
// virtual clock, the ID counters, and the query/update/birth builders,
// so each scenario only has to decide *where* and *when*.
type emitter struct {
	survey      *catalog.Survey
	opts        Options
	events      []model.Event
	now         time.Duration
	qID         model.QueryID
	uID         model.UpdateID
	meanDensity float64
	horizon     time.Duration
	born        []model.Birth
}

func newEmitter(survey *catalog.Survey, opts Options, totalEvents int) (*emitter, error) {
	if survey == nil {
		return nil, fmt.Errorf("workload: nil survey")
	}
	e := &emitter{
		survey:  survey,
		opts:    opts,
		events:  make([]model.Event, 0, totalEvents),
		horizon: time.Duration(totalEvents) * opts.EventInterval,
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x3a7d9))
	sum := 0.0
	const n = 200
	for i := 0; i < n; i++ {
		sum += survey.Density(randomUnit(rng))
	}
	e.meanDensity = sum / n
	if e.meanDensity <= 0 {
		e.meanDensity = 1
	}
	return e, nil
}

// tick advances the virtual clock by dt (floored so time stays
// strictly increasing) and returns the new now.
func (e *emitter) tick(dt time.Duration) time.Duration {
	if dt < time.Microsecond {
		dt = time.Microsecond
	}
	e.now += dt
	return e.now
}

func (e *emitter) tolerance(rng *rand.Rand) time.Duration {
	switch r := rng.Float64(); {
	case r < 0.5:
		return model.NoTolerance
	case r < 0.7:
		return model.AnyStaleness
	default:
		return time.Duration(rng.Float64() * 0.2 * float64(e.horizon))
	}
}

// coneQuery emits a cone search around center.
func (e *emitter) coneQuery(rng *rand.Rand, center geom.Vec3, radiusDeg float64, meanSize cost.Bytes) {
	objects := e.survey.CoverCap(geom.NewCap(center, radiusDeg))
	if len(objects) == 0 {
		objects = []model.ObjectID{e.survey.ObjectAt(center)}
	}
	e.qID++
	e.events = append(e.events, model.Event{
		Seq:  int64(len(e.events)),
		Kind: model.EventQuery,
		Query: &model.Query{
			ID:        e.qID,
			Objects:   objects,
			Cost:      lognormalBytes(rng, float64(meanSize), 1.6, 1024),
			Tolerance: e.tolerance(rng),
			Time:      e.now,
		},
	})
}

// update emits an update at a sky position, sized by local density.
func (e *emitter) update(rng *rand.Rand, pos geom.Vec3, meanSize cost.Bytes) {
	density := e.survey.Density(pos)
	mean := float64(meanSize) * (density / e.meanDensity)
	e.uID++
	e.events = append(e.events, model.Event{
		Seq:  int64(len(e.events)),
		Kind: model.EventUpdate,
		Update: &model.Update{
			ID:     e.uID,
			Object: e.survey.ObjectAt(pos),
			Cost:   lognormalBytes(rng, mean, 0.8, 512),
			Time:   e.now,
		},
	})
}

// birth publishes one new object at pos and emits its event.
func (e *emitter) birth(rng *rand.Rand, pos geom.Vec3, meanSize cost.Bytes) error {
	ra, dec := pos.RADec()
	b := model.Birth{
		Object: model.Object{
			ID:   e.survey.NextID(),
			Size: lognormalBytes(rng, float64(meanSize), 1.0, 1024),
		},
		RA:   ra,
		Dec:  dec,
		Time: e.now,
	}
	if err := e.survey.AddObject(b); err != nil {
		return fmt.Errorf("workload: birth: %w", err)
	}
	// Carry the inherited trixel on the shipped birth.
	obj, err := e.survey.Object(b.Object.ID)
	if err != nil {
		return err
	}
	b.Object = obj
	e.born = append(e.born, b)
	e.events = append(e.events, model.Event{
		Seq:   int64(len(e.events)),
		Kind:  model.EventBirth,
		Birth: &b,
	})
	return nil
}

func lognormalBytes(rng *rand.Rand, mean, sigma float64, floor cost.Bytes) cost.Bytes {
	mu := math.Log(math.Max(mean, float64(floor))) - sigma*sigma/2
	size := math.Exp(mu + sigma*rng.NormFloat64())
	if size < float64(floor) {
		return floor
	}
	return cost.Bytes(size)
}

// queryAnchors draws n anchor points on the flanks of query-hot blobs.
func queryAnchors(rng *rand.Rand, survey *catalog.Survey, n int) ([]geom.Vec3, error) {
	blobs := survey.Sky().Blobs(catalog.QueryHot)
	if len(blobs) == 0 {
		return nil, fmt.Errorf("workload: survey sky lacks query blobs")
	}
	out := make([]geom.Vec3, n)
	for i := range out {
		b := blobs[rng.Intn(len(blobs))]
		out[i] = perturb(rng, b.Center, b.Sigma*0.6)
	}
	return out, nil
}

// updatePos draws an update position near an update-hot blob.
func updatePos(rng *rand.Rand, survey *catalog.Survey) (geom.Vec3, error) {
	blobs := survey.Sky().Blobs(catalog.UpdateHot)
	if len(blobs) == 0 {
		return geom.Vec3{}, fmt.Errorf("workload: survey sky lacks update blobs")
	}
	b := blobs[rng.Intn(len(blobs))]
	return perturb(rng, b.Center, b.Sigma), nil
}

// interleave runs the Bresenham query/update interleave over exactly
// queries+updates slots, calling q or u per slot. The deterministic
// proportional schedule keeps both streams evenly mixed regardless of
// the ratio.
func interleave(queries, updates int, q func(i int), u func(i int)) {
	total := queries + updates
	qIssued, uIssued := 0, 0
	for slot := 0; slot < total; slot++ {
		emitQuery := int64(qIssued)*int64(total) <= int64(slot)*int64(queries) && qIssued < queries
		if uIssued >= updates {
			emitQuery = true
		}
		if emitQuery {
			q(qIssued)
			qIssued++
		} else {
			u(uIssued)
			uIssued++
		}
	}
}

// ---------------------------------------------------------------------
// zipf-drift

// ZipfDrift reproduces the headline finding of the access-trend
// studies: object popularity is Zipf-distributed, but the *identity*
// of the popular objects drifts over time. Queries draw an anchor rank
// from a Zipf distribution; the rank→anchor mapping rotates once per
// drift phase, so each phase has the same popularity curve over a
// shifted set of sky regions.
type ZipfDrift struct {
	// Skew is the Zipf s parameter; must exceed 1. Default 1.25.
	Skew float64
	// Anchors is the number of ranked sky anchors. Default 16.
	Anchors int
	// DriftPhases is how many times the rank→anchor mapping rotates
	// across the trace. Default 4.
	DriftPhases int
	// RadiusDeg is the cone radius of anchor queries. Default 0.7.
	RadiusDeg float64
	// BackgroundFrac is the fraction of queries aimed anywhere on the
	// sky; zero keeps every query on an anchor, which is what makes
	// rank-frequency measurable.
	BackgroundFrac float64
}

func (z ZipfDrift) withDefaults() ZipfDrift {
	if z.Skew == 0 {
		z.Skew = 1.25
	}
	if z.Anchors == 0 {
		z.Anchors = 16
	}
	if z.DriftPhases == 0 {
		z.DriftPhases = 4
	}
	if z.RadiusDeg == 0 {
		z.RadiusDeg = 0.7
	}
	return z
}

func (z ZipfDrift) validate() error {
	if z.Skew <= 1 {
		return fmt.Errorf("workload: zipf skew must exceed 1, got %v", z.Skew)
	}
	if z.Anchors < 2 {
		return fmt.Errorf("workload: zipf needs at least 2 anchors, got %d", z.Anchors)
	}
	if z.DriftPhases < 1 {
		return fmt.Errorf("workload: drift phases must be positive, got %d", z.DriftPhases)
	}
	if z.RadiusDeg <= 0 || z.RadiusDeg > 90 {
		return fmt.Errorf("workload: anchor radius %v out of (0,90]", z.RadiusDeg)
	}
	if z.BackgroundFrac < 0 || z.BackgroundFrac > 1 {
		return fmt.Errorf("workload: background fraction out of range")
	}
	return nil
}

// Name implements Scenario.
func (ZipfDrift) Name() string { return "zipf-drift" }

// Description implements Scenario.
func (ZipfDrift) Description() string {
	return "Zipf-skewed anchor popularity whose rank→region mapping rotates each drift phase"
}

// Events implements Scenario.
func (z ZipfDrift) Events(survey *catalog.Survey, opts Options) ([]model.Event, error) {
	z = z.withDefaults()
	if err := z.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(6000, 2000)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	e, err := newEmitter(survey, opts, opts.Queries+opts.Updates)
	if err != nil {
		return nil, err
	}
	planRng := rand.New(rand.NewSource(opts.Seed))
	qRng := rand.New(rand.NewSource(opts.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(opts.Seed ^ 0x0bda7e))
	anchors, err := queryAnchors(planRng, survey, z.Anchors)
	if err != nil {
		return nil, err
	}
	zipf := rand.NewZipf(qRng, z.Skew, 1, uint64(z.Anchors-1))

	interleave(opts.Queries, opts.Updates,
		func(i int) {
			e.tick(opts.EventInterval)
			if qRng.Float64() < z.BackgroundFrac {
				e.coneQuery(qRng, randomUnit(qRng), z.RadiusDeg, cost.MB)
				return
			}
			phase := i * z.DriftPhases / max(opts.Queries, 1)
			rank := int(zipf.Uint64())
			anchor := anchors[(rank+phase)%len(anchors)]
			// A tight wobble keeps each anchor's covered object set
			// stable, so rank-frequency is measurable downstream.
			e.coneQuery(qRng, perturb(qRng, anchor, 0.05*math.Pi/180), z.RadiusDeg, cost.MB)
		},
		func(int) {
			e.tick(opts.EventInterval)
			pos, uerr := updatePos(uRng, survey)
			if uerr != nil {
				err = uerr
				return
			}
			e.update(uRng, pos, 232*cost.KB)
		})
	if err != nil {
		return nil, err
	}
	return e.events, nil
}

// ---------------------------------------------------------------------
// diurnal

// Diurnal reproduces the day/night load cycle: interactive queries
// cluster in the working-hours peak, pipeline updates concentrate in
// the quiet trough, and arrival intensity swings by PeakFactor between
// them, modulating inter-event gaps sinusoidally.
type Diurnal struct {
	// PeriodEvents is the length of one virtual day in events.
	// Default 2000.
	PeriodEvents int
	// PeakFactor is the day-peak arrival intensity over the night
	// trough; must be at least 1. Default 4.
	PeakFactor float64
	// NightUpdateShare is the fraction of updates forced into the
	// night half of each cycle. Default 0.8.
	NightUpdateShare float64
	// RadiusDeg is the cone radius of interactive queries.
	// Default 1.0.
	RadiusDeg float64
}

func (d Diurnal) withDefaults() Diurnal {
	if d.PeriodEvents == 0 {
		d.PeriodEvents = 2000
	}
	if d.PeakFactor == 0 {
		d.PeakFactor = 4
	}
	if d.NightUpdateShare == 0 {
		d.NightUpdateShare = 0.8
	}
	if d.RadiusDeg == 0 {
		d.RadiusDeg = 1.0
	}
	return d
}

func (d Diurnal) validate() error {
	if d.PeriodEvents < 8 {
		return fmt.Errorf("workload: diurnal period must be at least 8 events, got %d", d.PeriodEvents)
	}
	if d.PeakFactor < 1 {
		return fmt.Errorf("workload: peak factor must be at least 1, got %v", d.PeakFactor)
	}
	if d.NightUpdateShare < 0 || d.NightUpdateShare > 1 {
		return fmt.Errorf("workload: night update share out of range")
	}
	if d.RadiusDeg <= 0 || d.RadiusDeg > 90 {
		return fmt.Errorf("workload: query radius %v out of (0,90]", d.RadiusDeg)
	}
	return nil
}

// Name implements Scenario.
func (Diurnal) Name() string { return "diurnal" }

// Description implements Scenario.
func (Diurnal) Description() string {
	return "day/night cycles: interactive queries at the peak, pipeline updates in the trough"
}

// Events implements Scenario.
func (d Diurnal) Events(survey *catalog.Survey, opts Options) ([]model.Event, error) {
	d = d.withDefaults()
	if err := d.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(6000, 3000)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	e, err := newEmitter(survey, opts, opts.Queries+opts.Updates)
	if err != nil {
		return nil, err
	}
	planRng := rand.New(rand.NewSource(opts.Seed))
	qRng := rand.New(rand.NewSource(opts.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(opts.Seed ^ 0x0bda7e))
	anchors, err := queryAnchors(planRng, survey, 8)
	if err != nil {
		return nil, err
	}

	total := opts.Queries + opts.Updates
	// dayness(slot) ∈ [0,1]: 1 at the peak of the cycle, 0 in the
	// trough.
	dayness := func(slot int) float64 {
		phase := 2 * math.Pi * float64(slot%d.PeriodEvents) / float64(d.PeriodEvents)
		return (1 + math.Sin(phase)) / 2
	}
	// Assign kinds: updates claim the night-most slots first (their
	// NightUpdateShare), the rest follow the plain interleave over
	// what remains. Sorting slot indices by dayness is deterministic.
	kind := make([]model.EventKind, total)
	order := make([]int, total)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dayness(order[a]) < dayness(order[b]) })
	nightUpdates := int(float64(opts.Updates) * d.NightUpdateShare)
	for _, slot := range order[:min(nightUpdates, total)] {
		kind[slot] = model.EventUpdate
	}
	// Distribute the remaining events over unclaimed slots.
	restQ, restU := opts.Queries, opts.Updates-nightUpdates
	qLeft, uLeft := restQ, restU
	seen := 0
	for slot := 0; slot < total; slot++ {
		if kind[slot] != 0 {
			continue
		}
		emitQuery := int64(qLeft) > 0 &&
			(uLeft == 0 || int64(restQ-qLeft)*int64(restQ+restU) <= int64(seen)*int64(restQ))
		if emitQuery {
			kind[slot] = model.EventQuery
			qLeft--
		} else {
			kind[slot] = model.EventUpdate
			uLeft--
		}
		seen++
	}

	for slot := 0; slot < total; slot++ {
		// High intensity compresses inter-event gaps: a PeakFactor of 4
		// makes peak arrivals 4× denser than trough arrivals.
		intensity := 1 + (d.PeakFactor-1)*dayness(slot)
		e.tick(time.Duration(float64(opts.EventInterval) / intensity))
		if kind[slot] == model.EventQuery {
			anchor := anchors[(slot/d.PeriodEvents)%len(anchors)]
			if qRng.Float64() < 0.3 {
				anchor = anchors[qRng.Intn(len(anchors))]
			}
			e.coneQuery(qRng, perturb(qRng, anchor, 0.5*math.Pi/180), d.RadiusDeg, cost.MB)
		} else {
			pos, uerr := updatePos(uRng, survey)
			if uerr != nil {
				return nil, uerr
			}
			e.update(uRng, pos, 232*cost.KB)
		}
	}
	return e.events, nil
}

// ---------------------------------------------------------------------
// batch-interactive

// BatchInteractive alternates batch-pipeline bursts with an
// interactive trickle: every BatchPeriod events a pipeline wakes up
// and fires BatchLen events back to back (updates plus wide scans) at
// BatchSpeedup× the base rate, then individual users trickle cone
// searches at the base rate.
type BatchInteractive struct {
	// BatchPeriod is the distance between batch-burst starts, in
	// events. Default 400.
	BatchPeriod int
	// BatchLen is how many events each burst carries; must be smaller
	// than BatchPeriod. Default 80.
	BatchLen int
	// BatchSpeedup is how much faster events arrive inside a burst;
	// must be at least 1. Default 20.
	BatchSpeedup float64
	// WideFrac is the fraction of burst queries that are wide-area
	// scans. Default 0.3.
	WideFrac float64
}

func (b BatchInteractive) withDefaults() BatchInteractive {
	if b.BatchPeriod == 0 {
		b.BatchPeriod = 400
	}
	if b.BatchLen == 0 {
		b.BatchLen = 80
	}
	if b.BatchSpeedup == 0 {
		b.BatchSpeedup = 20
	}
	if b.WideFrac == 0 {
		b.WideFrac = 0.3
	}
	return b
}

func (b BatchInteractive) validate() error {
	if b.BatchPeriod < 2 {
		return fmt.Errorf("workload: batch period must be at least 2, got %d", b.BatchPeriod)
	}
	if b.BatchLen < 1 {
		return fmt.Errorf("workload: batch length must be positive, got %d", b.BatchLen)
	}
	if b.BatchLen >= b.BatchPeriod {
		return fmt.Errorf("workload: batch length %d must leave interactive room within period %d",
			b.BatchLen, b.BatchPeriod)
	}
	if b.BatchSpeedup < 1 {
		return fmt.Errorf("workload: batch speedup must be at least 1, got %v", b.BatchSpeedup)
	}
	if b.WideFrac < 0 || b.WideFrac > 1 {
		return fmt.Errorf("workload: wide fraction out of range")
	}
	return nil
}

// Name implements Scenario.
func (BatchInteractive) Name() string { return "batch-interactive" }

// Description implements Scenario.
func (BatchInteractive) Description() string {
	return "pipeline bursts of updates+wide scans over an interactive cone-search trickle"
}

// Events implements Scenario.
func (b BatchInteractive) Events(survey *catalog.Survey, opts Options) ([]model.Event, error) {
	b = b.withDefaults()
	if err := b.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(5000, 3000)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	e, err := newEmitter(survey, opts, opts.Queries+opts.Updates)
	if err != nil {
		return nil, err
	}
	planRng := rand.New(rand.NewSource(opts.Seed))
	qRng := rand.New(rand.NewSource(opts.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(opts.Seed ^ 0x0bda7e))
	anchors, err := queryAnchors(planRng, survey, 6)
	if err != nil {
		return nil, err
	}

	total := opts.Queries + opts.Updates
	qLeft, uLeft := opts.Queries, opts.Updates
	for slot := 0; slot < total; slot++ {
		inBatch := slot%b.BatchPeriod < b.BatchLen
		if inBatch {
			e.tick(time.Duration(float64(opts.EventInterval) / b.BatchSpeedup))
		} else {
			e.tick(opts.EventInterval)
		}
		// Bursts prefer updates; the trickle prefers queries. Quotas
		// stay exact: when a stream runs dry the other fills in.
		wantUpdate := inBatch && uRng.Float64() < 0.7
		if wantUpdate && uLeft == 0 {
			wantUpdate = false
		}
		if !wantUpdate && qLeft == 0 {
			wantUpdate = true
		}
		if wantUpdate {
			pos, uerr := updatePos(uRng, survey)
			if uerr != nil {
				return nil, uerr
			}
			e.update(uRng, pos, 232*cost.KB)
			uLeft--
			continue
		}
		if inBatch && qRng.Float64() < b.WideFrac {
			// Pipeline re-derivation pass: wide scan over its stripe.
			e.coneQuery(qRng, perturb(qRng, anchors[(slot/b.BatchPeriod)%len(anchors)], 0.5*math.Pi/180),
				10+qRng.Float64()*20, 4*cost.MB)
		} else {
			e.coneQuery(qRng, perturb(qRng, anchors[qRng.Intn(len(anchors))], 1.5*math.Pi/180),
				0.3+qRng.Float64()*1.2, cost.MB)
		}
		qLeft--
	}
	return e.events, nil
}

// ---------------------------------------------------------------------
// flash-crowd

// FlashCrowd runs a steady baseline mix until one sky region goes
// viral mid-trace: the share of queries aimed at that region ramps
// linearly from zero at StartFrac to PeakShare at PeakFrac, then
// decays back to zero by EndFrac. This is the pinning harness for
// autopilot elasticity: p99 on the viral region must recover without
// operator action.
type FlashCrowd struct {
	// StartFrac, PeakFrac, and EndFrac position the ramp within the
	// trace; they must be strictly ordered within [0,1].
	// Defaults 0.3, 0.5, 0.8.
	StartFrac float64
	PeakFrac  float64
	EndFrac   float64
	// PeakShare is the fraction of queries hitting the viral region
	// at the peak. Default 0.8.
	PeakShare float64
	// RadiusDeg is the viral query cone radius. Default 0.5.
	RadiusDeg float64
}

func (f FlashCrowd) withDefaults() FlashCrowd {
	if f.StartFrac == 0 {
		f.StartFrac = 0.3
	}
	if f.PeakFrac == 0 {
		f.PeakFrac = 0.5
	}
	if f.EndFrac == 0 {
		f.EndFrac = 0.8
	}
	if f.PeakShare == 0 {
		f.PeakShare = 0.8
	}
	if f.RadiusDeg == 0 {
		f.RadiusDeg = 0.5
	}
	return f
}

func (f FlashCrowd) validate() error {
	if f.StartFrac < 0 || f.EndFrac > 1 ||
		f.StartFrac >= f.PeakFrac || f.PeakFrac >= f.EndFrac {
		return fmt.Errorf("workload: flash-crowd ramp %v < %v < %v must be ordered within [0,1]",
			f.StartFrac, f.PeakFrac, f.EndFrac)
	}
	if f.PeakShare <= 0 || f.PeakShare > 1 {
		return fmt.Errorf("workload: peak share %v out of (0,1]", f.PeakShare)
	}
	if f.RadiusDeg <= 0 || f.RadiusDeg > 90 {
		return fmt.Errorf("workload: viral radius %v out of (0,90]", f.RadiusDeg)
	}
	return nil
}

// Name implements Scenario.
func (FlashCrowd) Name() string { return "flash-crowd" }

// Description implements Scenario.
func (FlashCrowd) Description() string {
	return "steady baseline until one sky region goes viral mid-trace, then decays"
}

// Events implements Scenario.
func (f FlashCrowd) Events(survey *catalog.Survey, opts Options) ([]model.Event, error) {
	f = f.withDefaults()
	if err := f.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(8000, 2000)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	e, err := newEmitter(survey, opts, opts.Queries+opts.Updates)
	if err != nil {
		return nil, err
	}
	planRng := rand.New(rand.NewSource(opts.Seed))
	qRng := rand.New(rand.NewSource(opts.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(opts.Seed ^ 0x0bda7e))
	anchors, err := queryAnchors(planRng, survey, 8)
	if err != nil {
		return nil, err
	}
	viral := anchors[planRng.Intn(len(anchors))]

	// viralShare is the ramp profile at trace position frac ∈ [0,1].
	viralShare := func(frac float64) float64 {
		switch {
		case frac <= f.StartFrac || frac >= f.EndFrac:
			return 0
		case frac < f.PeakFrac:
			return f.PeakShare * (frac - f.StartFrac) / (f.PeakFrac - f.StartFrac)
		default:
			return f.PeakShare * (f.EndFrac - frac) / (f.EndFrac - f.PeakFrac)
		}
	}

	interleave(opts.Queries, opts.Updates,
		func(i int) {
			e.tick(opts.EventInterval)
			frac := float64(i) / float64(max(opts.Queries, 1))
			if qRng.Float64() < viralShare(frac) {
				// The crowd all looks at the same thing: tight cones on
				// the viral region.
				e.coneQuery(qRng, perturb(qRng, viral, 0.1*math.Pi/180), f.RadiusDeg, cost.MB)
				return
			}
			e.coneQuery(qRng, perturb(qRng, anchors[qRng.Intn(len(anchors))], 1.5*math.Pi/180),
				0.3+qRng.Float64()*1.7, cost.MB)
		},
		func(int) {
			e.tick(opts.EventInterval)
			pos, uerr := updatePos(uRng, survey)
			if uerr != nil {
				err = uerr
				return
			}
			e.update(uRng, pos, 232*cost.KB)
		})
	if err != nil {
		return nil, err
	}
	return e.events, nil
}

// ---------------------------------------------------------------------
// growth-spurt

// GrowthSpurt concentrates repository growth in time and sky: instead
// of the base generator's evenly-spread births, data releases land as
// storms — runs of consecutive births clustered around one sky region
// — and the query stream piles onto the newborns, reproducing the
// access concentration on newly released data.
type GrowthSpurt struct {
	// Births is the total number of objects published. Default 120.
	Births int
	// Storms is how many birth storms the births are concentrated
	// into; must not exceed Births. Default 4.
	Storms int
	// StormRadiusDeg is the sky scatter of one storm's births around
	// its region. Default 3.
	StormRadiusDeg float64
	// NewbornBias is the probability a query issued after the first
	// storm targets a recent newborn. Default 0.5.
	NewbornBias float64
}

func (g GrowthSpurt) withDefaults() GrowthSpurt {
	if g.Births == 0 {
		g.Births = 120
	}
	if g.Storms == 0 {
		g.Storms = 4
	}
	if g.StormRadiusDeg == 0 {
		g.StormRadiusDeg = 3
	}
	if g.NewbornBias == 0 {
		g.NewbornBias = 0.5
	}
	return g
}

func (g GrowthSpurt) validate() error {
	if g.Births < 1 {
		return fmt.Errorf("workload: growth spurt needs births, got %d", g.Births)
	}
	if g.Storms < 1 {
		return fmt.Errorf("workload: storms must be positive, got %d", g.Storms)
	}
	if g.Storms > g.Births {
		return fmt.Errorf("workload: %d storms cannot carry only %d births", g.Storms, g.Births)
	}
	if g.StormRadiusDeg <= 0 || g.StormRadiusDeg > 90 {
		return fmt.Errorf("workload: storm radius %v out of (0,90]", g.StormRadiusDeg)
	}
	if g.NewbornBias < 0 || g.NewbornBias > 1 {
		return fmt.Errorf("workload: newborn bias out of range")
	}
	return nil
}

// Name implements Scenario.
func (GrowthSpurt) Name() string { return "growth-spurt" }

// Description implements Scenario.
func (GrowthSpurt) Description() string {
	return "birth storms concentrated in time and sky region, with access piling onto newborns"
}

// Events implements Scenario.
func (g GrowthSpurt) Events(survey *catalog.Survey, opts Options) ([]model.Event, error) {
	g = g.withDefaults()
	if err := g.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(5000, 2000)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	total := opts.Queries + opts.Updates + g.Births
	e, err := newEmitter(survey, opts, total)
	if err != nil {
		return nil, err
	}
	planRng := rand.New(rand.NewSource(opts.Seed))
	qRng := rand.New(rand.NewSource(opts.Seed ^ 0x51ec5))
	uRng := rand.New(rand.NewSource(opts.Seed ^ 0x0bda7e))
	bRng := rand.New(rand.NewSource(opts.Seed ^ 0x6b17f5))
	anchors, err := queryAnchors(planRng, survey, 8)
	if err != nil {
		return nil, err
	}
	// Storm plan: start slots spread through the middle of the trace,
	// each storm a run of consecutive birth slots near one region.
	perStorm := g.Births / g.Storms
	extra := g.Births % g.Storms
	maxPerStorm := perStorm
	if extra > 0 {
		maxPerStorm++
	}
	if spacing := total / (g.Storms + 1); maxPerStorm >= spacing {
		// Overlapping storm windows would silently swallow births.
		return nil, fmt.Errorf("workload: %d births in %d storms do not fit a %d-event trace",
			g.Births, g.Storms, total)
	}
	type storm struct {
		start, count int
		center       geom.Vec3
	}
	storms := make([]storm, g.Storms)
	for i := range storms {
		count := perStorm
		if i < extra {
			count++
		}
		storms[i] = storm{
			start:  (i + 1) * total / (g.Storms + 1),
			count:  count,
			center: perturb(planRng, anchors[planRng.Intn(len(anchors))], 1*math.Pi/180),
		}
	}
	stormAt := func(slot int) (storm, bool) {
		for _, st := range storms {
			if slot >= st.start && slot < st.start+st.count {
				return st, true
			}
		}
		return storm{}, false
	}

	meanBirthSize := 4 * cost.MB
	qIssued, uIssued := 0, 0
	quTotal := opts.Queries + opts.Updates
	for slot := 0; slot < total; slot++ {
		e.tick(opts.EventInterval)
		if st, ok := stormAt(slot); ok {
			pos := perturb(bRng, st.center, g.StormRadiusDeg*math.Pi/180)
			if err := e.birth(bRng, pos, meanBirthSize); err != nil {
				return nil, err
			}
			continue
		}
		qu := qIssued + uIssued
		emitQuery := int64(qIssued)*int64(quTotal) <= int64(qu)*int64(opts.Queries) &&
			qIssued < opts.Queries
		if uIssued >= opts.Updates {
			emitQuery = true
		}
		if emitQuery {
			if len(e.born) > 0 && qRng.Float64() < g.NewbornBias {
				recent := e.born[max(0, len(e.born)-16):]
				b := recent[qRng.Intn(len(recent))]
				e.coneQuery(qRng, perturb(qRng, geom.FromRADec(b.RA, b.Dec), 0.2*math.Pi/180),
					0.3+qRng.Float64()*0.7, cost.MB)
			} else {
				e.coneQuery(qRng, perturb(qRng, anchors[qRng.Intn(len(anchors))], 1.5*math.Pi/180),
					0.3+qRng.Float64()*1.7, cost.MB)
			}
			qIssued++
		} else {
			pos, uerr := updatePos(uRng, survey)
			if uerr != nil {
				return nil, uerr
			}
			e.update(uRng, pos, 232*cost.KB)
			uIssued++
		}
	}
	return e.events, nil
}
