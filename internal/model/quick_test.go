package model

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickUpdateRequiredMonotoneInTolerance: loosening the tolerance
// can only reduce the set of required updates, never grow it.
func TestQuickUpdateRequiredMonotoneInTolerance(t *testing.T) {
	f := func(uTimeRaw, qTimeRaw uint32, tolARaw, tolBRaw uint32) bool {
		u := &Update{Time: time.Duration(uTimeRaw) * time.Millisecond}
		qTime := time.Duration(qTimeRaw) * time.Millisecond
		tolA := time.Duration(tolARaw) * time.Millisecond
		tolB := time.Duration(tolBRaw) * time.Millisecond
		if tolA > tolB {
			tolA, tolB = tolB, tolA
		}
		strict := UpdateRequired(u, &Query{Time: qTime, Tolerance: tolA})
		loose := UpdateRequired(u, &Query{Time: qTime, Tolerance: tolB})
		// loose implies strict: if the looser tolerance requires it, the
		// stricter one must too.
		return !loose || strict
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickUpdateRequiredMonotoneInTime: for a fixed query, an older
// update is required whenever a newer one is.
func TestQuickUpdateRequiredMonotoneInTime(t *testing.T) {
	f := func(t1Raw, t2Raw, qTimeRaw, tolRaw uint32) bool {
		t1 := time.Duration(t1Raw) * time.Millisecond
		t2 := time.Duration(t2Raw) * time.Millisecond
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		q := &Query{
			Time:      time.Duration(qTimeRaw) * time.Millisecond,
			Tolerance: time.Duration(tolRaw) * time.Millisecond,
		}
		older := UpdateRequired(&Update{Time: t1}, q)
		newer := UpdateRequired(&Update{Time: t2}, q)
		return !newer || older
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickAnyStalenessNeverRequires pins the AnyStaleness sentinel.
func TestQuickAnyStalenessNeverRequires(t *testing.T) {
	f := func(uTimeRaw, qTimeRaw uint32) bool {
		u := &Update{Time: time.Duration(uTimeRaw) * time.Millisecond}
		q := &Query{Time: time.Duration(qTimeRaw) * time.Millisecond, Tolerance: AnyStaleness}
		return !UpdateRequired(u, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickZeroToleranceRequiresPast pins zero tolerance: any update at
// or before the query time is required.
func TestQuickZeroToleranceRequiresPast(t *testing.T) {
	f := func(uTimeRaw, qTimeRaw uint32) bool {
		uTime := time.Duration(uTimeRaw) * time.Millisecond
		qTime := time.Duration(qTimeRaw) * time.Millisecond
		u := &Update{Time: uTime}
		q := &Query{Time: qTime, Tolerance: NoTolerance}
		want := uTime <= qTime
		return UpdateRequired(u, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
