package model

import (
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
)

func TestEventKindString(t *testing.T) {
	if EventQuery.String() != "query" || EventUpdate.String() != "update" {
		t.Error("event kind names wrong")
	}
	if EventKind(9).String() != "event(9)" {
		t.Error("unknown kind rendering wrong")
	}
}

func queryEvent(seq int64, id QueryID, objs []ObjectID, c cost.Bytes) Event {
	return Event{
		Seq:   seq,
		Kind:  EventQuery,
		Query: &Query{ID: id, Objects: objs, Cost: c, Time: time.Duration(seq) * time.Second},
	}
}

func updateEvent(seq int64, id UpdateID, obj ObjectID, c cost.Bytes) Event {
	return Event{
		Seq:    seq,
		Kind:   EventUpdate,
		Update: &Update{ID: id, Object: obj, Cost: c, Time: time.Duration(seq) * time.Second},
	}
}

func TestEventValidate(t *testing.T) {
	tests := []struct {
		name    string
		event   Event
		wantErr bool
	}{
		{"valid query", queryEvent(1, 1, []ObjectID{1}, 5), false},
		{"valid update", updateEvent(2, 1, 3, 5), false},
		{"query without objects", queryEvent(3, 1, nil, 5), true},
		{"query negative cost", queryEvent(4, 1, []ObjectID{1}, -1), true},
		{"update bad object", updateEvent(5, 1, 0, 5), true},
		{"update negative cost", updateEvent(6, 1, 1, -2), true},
		{"kind mismatch", Event{Seq: 7, Kind: EventQuery, Update: &Update{}}, true},
		{"unknown kind", Event{Seq: 8, Kind: EventKind(42)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.event.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEventTime(t *testing.T) {
	q := queryEvent(3, 1, []ObjectID{1}, 5)
	if q.Time() != 3*time.Second {
		t.Errorf("query time = %v", q.Time())
	}
	u := updateEvent(7, 1, 1, 5)
	if u.Time() != 7*time.Second {
		t.Errorf("update time = %v", u.Time())
	}
}

func TestTotalCosts(t *testing.T) {
	events := []Event{
		queryEvent(1, 1, []ObjectID{1}, 10),
		updateEvent(2, 1, 1, 3),
		queryEvent(3, 2, []ObjectID{2}, 7),
		updateEvent(4, 2, 2, 4),
	}
	if got := TotalQueryCost(events); got != 17 {
		t.Errorf("TotalQueryCost = %d, want 17", got)
	}
	if got := TotalUpdateCost(events); got != 7 {
		t.Errorf("TotalUpdateCost = %d, want 7", got)
	}
}

func TestBirthEventValidate(t *testing.T) {
	good := Event{Seq: 1, Kind: EventBirth, Birth: &Birth{
		Object: Object{ID: 69, Size: cost.GB}, RA: 10, Dec: -5, Time: time.Second,
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid birth rejected: %v", err)
	}
	if got := EventBirth.String(); got != "birth" {
		t.Errorf("kind = %q", got)
	}
	if good.Time() != time.Second {
		t.Errorf("birth time = %v", good.Time())
	}
	bad := []Event{
		{Seq: 2, Kind: EventBirth}, // no birth payload
		{Seq: 3, Kind: EventBirth, Birth: &Birth{Object: Object{ID: 0, Size: cost.GB}}}, // bad ID
		{Seq: 4, Kind: EventBirth, Birth: &Birth{Object: Object{ID: 7, Size: 0}}},       // bad size
		{Seq: 5, Kind: EventBirth, Birth: &Birth{Object: Object{ID: 7, Size: 1}},
			Query: &Query{ID: 1, Objects: []ObjectID{1}}}, // two payloads
		{Seq: 6, Kind: EventQuery, Query: &Query{ID: 1, Objects: []ObjectID{1}},
			Birth: &Birth{Object: Object{ID: 7, Size: 1}}}, // birth on a query event
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d accepted", i)
		}
	}
}
