// Package model defines the domain types shared by every Delta
// subsystem: data objects, queries, updates, and the interleaved
// query–update event sequence that both the simulator and the live
// middleware consume.
//
// Terminology follows Section 3 of the paper: the repository is a set of
// data objects S = o1..oN produced by spatially partitioning the survey
// table; each update u affects exactly one object o(u); each query q is
// a read-only query accessing a set of objects B(q) with a tolerance for
// staleness t(q).
package model

import (
	"fmt"
	"time"

	"github.com/deltacache/delta/internal/cost"
)

// ObjectID identifies a data object (a spatial partition of the survey
// table). IDs are dense and start at 1, matching the paper's object-IDs
// 1..68.
type ObjectID int32

// QueryID identifies a query within a trace.
type QueryID int64

// UpdateID identifies an update within a trace.
type UpdateID int64

// Object is a data object hosted by the repository: a spatial partition
// of the primary survey table (PhotoObj in SDSS).
type Object struct {
	ID ObjectID `json:"id"`
	// Size is the full size of the object; loading the object into the
	// cache costs exactly Size (the paper's load cost ν(o)).
	Size cost.Bytes `json:"size"`
	// Trixel is the HTM trixel ID that defines the partition's spatial
	// extent. Zero when the object set was not built from an HTM mesh.
	Trixel uint64 `json:"trixel,omitempty"`
}

// NoTolerance marks a query that must reflect every update received
// before its arrival (t(q) = 0).
const NoTolerance time.Duration = 0

// AnyStaleness marks a query that accepts arbitrarily stale data.
const AnyStaleness time.Duration = 1<<63 - 1

// Query is a read-only client query.
type Query struct {
	ID QueryID `json:"id"`
	// Objects is B(q): the set of data objects the query accesses,
	// derived from the query's spatial region via the HTM index.
	Objects []ObjectID `json:"objects"`
	// Cost is ν(q): the size of the query's result, which is what
	// shipping the query to the repository costs.
	Cost cost.Bytes `json:"cost"`
	// Tolerance is t(q): an answer must incorporate all updates on B(q)
	// except those that arrived within the last Tolerance units of
	// virtual time.
	Tolerance time.Duration `json:"toleranceNs"`
	// Time is the query's arrival time on the virtual clock.
	Time time.Duration `json:"timeNs"`
}

// Update is a data modification (predominantly an insert) produced by
// the survey's data pipeline.
type Update struct {
	ID UpdateID `json:"id"`
	// Object is o(u): the single data object the update affects.
	Object ObjectID `json:"object"`
	// Cost is ν(u): the size of the update payload, which is what
	// shipping the update to the cache costs.
	Cost cost.Bytes `json:"cost"`
	// Time is the update's arrival time at the repository on the
	// virtual clock.
	Time time.Duration `json:"timeNs"`
}

// Birth is the publication of a new data object: a rapidly-growing
// repository keeps partitioning freshly ingested survey data into new
// objects while serving. The position locates the object on the sky so
// spatially-aware components (HTM ownership cuts, the query→object
// mapping) can place it without recomputing the partition.
type Birth struct {
	// Object is the new object's full metadata (ID, size, trixel).
	Object Object `json:"object"`
	// RA and Dec are the object's sky position in degrees.
	RA  float64 `json:"ra"`
	Dec float64 `json:"dec"`
	// Time is the publication time on the virtual clock.
	Time time.Duration `json:"timeNs"`
}

// EventKind discriminates trace events.
type EventKind int

const (
	// EventQuery is a client query arriving at the cache.
	EventQuery EventKind = iota + 1
	// EventUpdate is a pipeline update arriving at the repository.
	EventUpdate
	// EventBirth is a new data object published at the repository.
	EventBirth
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventQuery:
		return "query"
	case EventUpdate:
		return "update"
	case EventBirth:
		return "birth"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one element of the interleaved query–update–birth sequence.
// Exactly one of Query, Update and Birth is non-nil, matching Kind.
type Event struct {
	Seq    int64     `json:"seq"`
	Kind   EventKind `json:"kind"`
	Query  *Query    `json:"query,omitempty"`
	Update *Update   `json:"update,omitempty"`
	Birth  *Birth    `json:"birth,omitempty"`
}

// Time returns the event's virtual arrival time.
func (e *Event) Time() time.Duration {
	switch e.Kind {
	case EventQuery:
		return e.Query.Time
	case EventBirth:
		return e.Birth.Time
	default:
		return e.Update.Time
	}
}

// Validate reports whether the event is structurally consistent.
func (e *Event) Validate() error {
	switch e.Kind {
	case EventQuery:
		if e.Query == nil || e.Update != nil || e.Birth != nil {
			return fmt.Errorf("event %d: query event must carry exactly a query", e.Seq)
		}
		if len(e.Query.Objects) == 0 {
			return fmt.Errorf("event %d: query %d accesses no objects", e.Seq, e.Query.ID)
		}
		if e.Query.Cost < 0 {
			return fmt.Errorf("event %d: query %d has negative cost", e.Seq, e.Query.ID)
		}
	case EventUpdate:
		if e.Update == nil || e.Query != nil || e.Birth != nil {
			return fmt.Errorf("event %d: update event must carry exactly an update", e.Seq)
		}
		if e.Update.Object <= 0 {
			return fmt.Errorf("event %d: update %d has invalid object", e.Seq, e.Update.ID)
		}
		if e.Update.Cost < 0 {
			return fmt.Errorf("event %d: update %d has negative cost", e.Seq, e.Update.ID)
		}
	case EventBirth:
		if e.Birth == nil || e.Query != nil || e.Update != nil {
			return fmt.Errorf("event %d: birth event must carry exactly a birth", e.Seq)
		}
		if e.Birth.Object.ID <= 0 {
			return fmt.Errorf("event %d: birth has invalid object id %d", e.Seq, e.Birth.Object.ID)
		}
		if e.Birth.Object.Size <= 0 {
			return fmt.Errorf("event %d: born object %d has non-positive size", e.Seq, e.Birth.Object.ID)
		}
	default:
		return fmt.Errorf("event %d: unknown kind %d", e.Seq, int(e.Kind))
	}
	return nil
}

// UpdateRequired reports whether an answer to q must incorporate update
// u, per the currency semantics of Section 3: given tolerance t(q), the
// answer must include all updates on B(q) except those that arrived
// within the last t(q) time units. The caller has already established
// that u affects an object in B(q).
func UpdateRequired(u *Update, q *Query) bool {
	if q.Tolerance == AnyStaleness {
		return false
	}
	// Updates that arrived within (q.Time - t(q), q.Time] may be
	// omitted; anything at or before the threshold must be applied.
	return u.Time <= q.Time-q.Tolerance
}

// TotalQueryCost sums ν(q) over all query events: the traffic NoCache
// would incur.
func TotalQueryCost(events []Event) cost.Bytes {
	var total cost.Bytes
	for i := range events {
		if events[i].Kind == EventQuery {
			total += events[i].Query.Cost
		}
	}
	return total
}

// TotalUpdateCost sums ν(u) over all update events: the traffic Replica
// would incur.
func TotalUpdateCost(events []Event) cost.Bytes {
	var total cost.Bytes
	for i := range events {
		if events[i].Kind == EventUpdate {
			total += events[i].Update.Cost
		}
	}
	return total
}
