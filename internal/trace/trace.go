// Package trace persists and inspects workload traces: the interleaved
// query–update event sequences that drive both the simulator and the
// live middleware. Two encodings are provided — JSON-lines for
// inspectability and gob for speed — plus summary statistics matching
// the characterization in Section 6.1 of the paper (hotspot object IDs,
// per-mechanism traffic, the Figure 7(a) scatter).
package trace

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []model.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", events[i].Seq, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSON-lines trace until EOF, validating every event.
func ReadJSONL(r io.Reader) ([]model.Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var events []model.Event
	for {
		var e model.Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(events), err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		events = append(events, e)
	}
	return events, nil
}

// gobChunk is the unit of gob encoding; chunking bounds encoder memory
// on multi-hundred-thousand-event traces.
const gobChunk = 8192

// WriteGob writes events in the binary gob encoding.
func WriteGob(w io.Writer, events []model.Event) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(len(events)); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for start := 0; start < len(events); start += gobChunk {
		end := start + gobChunk
		if end > len(events) {
			end = len(events)
		}
		if err := enc.Encode(events[start:end]); err != nil {
			return fmt.Errorf("trace: encode chunk at %d: %w", start, err)
		}
	}
	return bw.Flush()
}

// ReadGob reads a gob-encoded trace.
func ReadGob(r io.Reader) ([]model.Event, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var total int
	if err := dec.Decode(&total); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if total < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", total)
	}
	events := make([]model.Event, 0, total)
	for len(events) < total {
		var chunk []model.Event
		if err := dec.Decode(&chunk); err != nil {
			return nil, fmt.Errorf("trace: decode chunk at %d: %w", len(events), err)
		}
		events = append(events, chunk...)
	}
	for i := range events {
		if err := events[i].Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return events, nil
}

// ObjectStats aggregates per-object activity.
type ObjectStats struct {
	Object      model.ObjectID `json:"object"`
	Queries     int64          `json:"queries"`
	Updates     int64          `json:"updates"`
	QueryBytes  cost.Bytes     `json:"queryBytes"`
	UpdateBytes cost.Bytes     `json:"updateBytes"`
}

// Stats summarizes a trace.
type Stats struct {
	Events      int64      `json:"events"`
	Queries     int64      `json:"queries"`
	Updates     int64      `json:"updates"`
	QueryBytes  cost.Bytes `json:"queryBytes"`
	UpdateBytes cost.Bytes `json:"updateBytes"`
	// MeanObjectsPerQuery is the average |B(q)|.
	MeanObjectsPerQuery float64 `json:"meanObjectsPerQuery"`

	PerObject []ObjectStats `json:"perObject"`
}

// Summarize computes trace statistics.
func Summarize(events []model.Event) Stats {
	per := make(map[model.ObjectID]*ObjectStats)
	get := func(id model.ObjectID) *ObjectStats {
		st, ok := per[id]
		if !ok {
			st = &ObjectStats{Object: id}
			per[id] = st
		}
		return st
	}
	var s Stats
	var objRefs int64
	for i := range events {
		e := &events[i]
		s.Events++
		switch e.Kind {
		case model.EventQuery:
			s.Queries++
			s.QueryBytes += e.Query.Cost
			objRefs += int64(len(e.Query.Objects))
			// Attribute the query's bytes to its objects proportionally
			// by count, for hotspot identification.
			share := e.Query.Cost / cost.Bytes(len(e.Query.Objects))
			for _, o := range e.Query.Objects {
				st := get(o)
				st.Queries++
				st.QueryBytes += share
			}
		case model.EventUpdate:
			s.Updates++
			s.UpdateBytes += e.Update.Cost
			st := get(e.Update.Object)
			st.Updates++
			st.UpdateBytes += e.Update.Cost
		}
	}
	if s.Queries > 0 {
		s.MeanObjectsPerQuery = float64(objRefs) / float64(s.Queries)
	}
	s.PerObject = make([]ObjectStats, 0, len(per))
	for _, st := range per {
		s.PerObject = append(s.PerObject, *st)
	}
	sort.Slice(s.PerObject, func(i, j int) bool {
		return s.PerObject[i].Object < s.PerObject[j].Object
	})
	return s
}

// TopQueried returns the n objects with the most query traffic.
func (s Stats) TopQueried(n int) []ObjectStats {
	out := append([]ObjectStats(nil), s.PerObject...)
	sort.Slice(out, func(i, j int) bool { return out[i].QueryBytes > out[j].QueryBytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TopUpdated returns the n objects with the most update traffic.
func (s Stats) TopUpdated(n int) []ObjectStats {
	out := append([]ObjectStats(nil), s.PerObject...)
	sort.Slice(out, func(i, j int) bool { return out[i].UpdateBytes > out[j].UpdateBytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders a human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d queries=%d (%s) updates=%d (%s) mean|B(q)|=%.2f\n",
		s.Events, s.Queries, s.QueryBytes, s.Updates, s.UpdateBytes, s.MeanObjectsPerQuery)
	fmt.Fprintf(&b, "top queried:")
	for _, st := range s.TopQueried(6) {
		fmt.Fprintf(&b, " %d(%s)", st.Object, st.QueryBytes)
	}
	fmt.Fprintf(&b, "\ntop updated:")
	for _, st := range s.TopUpdated(6) {
		fmt.Fprintf(&b, " %d(%s)", st.Object, st.UpdateBytes)
	}
	b.WriteByte('\n')
	return b.String()
}

// ScatterCSV writes the Figure 7(a) scatter: one row per (event,
// object) incidence with the event kind. Sampling every k-th event
// keeps files small; k <= 1 writes every event.
func ScatterCSV(w io.Writer, events []model.Event, k int) error {
	if k < 1 {
		k = 1
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "event,object,kind"); err != nil {
		return err
	}
	for i := range events {
		if i%k != 0 {
			continue
		}
		e := &events[i]
		switch e.Kind {
		case model.EventQuery:
			for _, o := range e.Query.Objects {
				fmt.Fprintf(bw, "%d,%d,query\n", e.Seq, o)
			}
		case model.EventUpdate:
			fmt.Fprintf(bw, "%d,%d,update\n", e.Seq, e.Update.Object)
		}
	}
	return bw.Flush()
}
