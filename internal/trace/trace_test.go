package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
)

func sampleEvents() []model.Event {
	return []model.Event{
		{Seq: 0, Kind: model.EventQuery, Query: &model.Query{
			ID: 1, Objects: []model.ObjectID{1, 2}, Cost: 10 * cost.MB,
			Tolerance: model.NoTolerance, Time: 0,
		}},
		{Seq: 1, Kind: model.EventUpdate, Update: &model.Update{
			ID: 1, Object: 3, Cost: 2 * cost.MB, Time: time.Second,
		}},
		{Seq: 2, Kind: model.EventQuery, Query: &model.Query{
			ID: 2, Objects: []model.ObjectID{2}, Cost: 6 * cost.MB,
			Tolerance: time.Minute, Time: 2 * time.Second,
		}},
		{Seq: 3, Kind: model.EventUpdate, Update: &model.Update{
			ID: 2, Object: 3, Cost: 1 * cost.MB, Time: 3 * time.Second,
		}},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEventsEqual(t, events, got)
}

func TestGobRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteGob(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEventsEqual(t, events, got)
}

func TestGobRoundTripLarge(t *testing.T) {
	// Cross the chunking boundary.
	var events []model.Event
	for i := 0; i < 3*gobChunk+17; i++ {
		events = append(events, model.Event{
			Seq:  int64(i),
			Kind: model.EventUpdate,
			Update: &model.Update{
				ID: model.UpdateID(i), Object: 1, Cost: 1, Time: time.Duration(i),
			},
		})
	}
	var buf bytes.Buffer
	if err := WriteGob(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	if got[len(got)-1].Update.ID != events[len(events)-1].Update.ID {
		t.Error("last event mismatch")
	}
}

func TestReadJSONLRejectsInvalid(t *testing.T) {
	// A query without objects fails validation.
	in := `{"seq":0,"kind":1,"query":{"id":1,"objects":[],"cost":5,"toleranceNs":0,"timeNs":0}}`
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Error("expected validation error")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestReadGobRejectsGarbage(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("garbage")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != 4 || s.Queries != 2 || s.Updates != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.QueryBytes != 16*cost.MB {
		t.Errorf("QueryBytes = %v", s.QueryBytes)
	}
	if s.UpdateBytes != 3*cost.MB {
		t.Errorf("UpdateBytes = %v", s.UpdateBytes)
	}
	if s.MeanObjectsPerQuery != 1.5 {
		t.Errorf("MeanObjectsPerQuery = %v, want 1.5", s.MeanObjectsPerQuery)
	}
	if len(s.PerObject) != 3 {
		t.Fatalf("PerObject = %v", s.PerObject)
	}
	// Object 2 is queried by both queries: 5MB + 6MB = 11MB share.
	var obj2 ObjectStats
	for _, st := range s.PerObject {
		if st.Object == 2 {
			obj2 = st
		}
	}
	if obj2.Queries != 2 || obj2.QueryBytes != 11*cost.MB {
		t.Errorf("object 2 stats wrong: %+v", obj2)
	}
}

func TestTopQueriedAndUpdated(t *testing.T) {
	s := Summarize(sampleEvents())
	topQ := s.TopQueried(1)
	if len(topQ) != 1 || topQ[0].Object != 2 {
		t.Errorf("TopQueried = %+v, want object 2", topQ)
	}
	topU := s.TopUpdated(1)
	if len(topU) != 1 || topU[0].Object != 3 {
		t.Errorf("TopUpdated = %+v, want object 3", topU)
	}
}

func TestStatsString(t *testing.T) {
	out := Summarize(sampleEvents()).String()
	for _, want := range []string{"events=4", "queries=2", "top queried", "top updated"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestScatterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterCSV(&buf, sampleEvents(), 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + q1 touches 2 objects + u1 + q2 + u2 = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[0] != "event,object,kind" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,query" || lines[2] != "0,2,query" {
		t.Errorf("query rows wrong: %v", lines[1:3])
	}
}

func TestScatterCSVSampling(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterCSV(&buf, sampleEvents(), 2); err != nil {
		t.Fatal(err)
	}
	// Only events 0 and 2 are sampled: header + 2 obj rows + 1 = 4.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
}

func assertEventsEqual(t *testing.T, want, got []model.Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Seq != got[i].Seq || want[i].Kind != got[i].Kind {
			t.Fatalf("event %d header mismatch", i)
		}
		switch want[i].Kind {
		case model.EventQuery:
			w, g := want[i].Query, got[i].Query
			if w.ID != g.ID || w.Cost != g.Cost || w.Tolerance != g.Tolerance ||
				w.Time != g.Time || len(w.Objects) != len(g.Objects) {
				t.Fatalf("event %d query mismatch: %+v vs %+v", i, w, g)
			}
		case model.EventUpdate:
			if *want[i].Update != *got[i].Update {
				t.Fatalf("event %d update mismatch", i)
			}
		}
	}
}
