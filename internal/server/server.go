// Package server implements the repository node: it owns the survey's
// data objects, ingests the update pipeline, and serves the three
// data-communication mechanisms to the middleware cache — query
// execution, update shipping and object loading — over the netproto wire
// protocol. Caches additionally subscribe to an invalidation stream that
// carries update notices (control plane, not charged as traffic, per
// Section 3's invalidation model).
//
// Request connections negotiate a protocol version: v2 peers get a
// HelloAck and every request is dispatched to its own worker goroutine
// (replies carry the request's correlation ID and are serialized onto
// the socket by netproto.Conn), so a slow object load no longer
// head-of-line-blocks cheap queries. v1 peers are served lockstep for
// compatibility.
package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/clock"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
	"github.com/deltacache/delta/internal/persist"
)

// Config parameterizes a repository.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Survey provides objects and demo rows.
	Survey *catalog.Survey
	// Scale converts logical sizes to physical payload bytes.
	Scale netproto.PayloadScale
	// SampleRows bounds the demo rows returned with query results.
	SampleRows int
	// ExecDelay simulates repository query-execution time per request
	// (the paper's repository runs multi-second scans over TB-scale
	// tables; a loopback deployment answers in microseconds, which
	// hides every concurrency effect). Zero disables.
	ExecDelay time.Duration
	// Clock paces ExecDelay; nil means the wall clock. Tests inject a
	// fake clock so simulated execution time costs no real time.
	Clock clock.Clock
	// WireVersion caps the protocol version negotiated with request
	// peers (0 = newest, i.e. the v3 binary codec; 2 pins gob v2) —
	// the -wire-version escape hatch for mixed-version deployments.
	WireVersion int
	// Replicas advertises the deployment's cache replication factor K
	// in the repository's StatsMsg, so clients and operators can audit
	// the intended K against what the cache tier reports. 0 is treated
	// as 1 (unreplicated). Purely informational at the repository.
	Replicas int
	// DataDir, when set, makes repository growth durable: ingested
	// births are journaled and snapshotted (internal/persist), and New
	// replays them into the survey so the grown universe survives
	// restarts. Empty disables persistence.
	DataDir string
	// SnapshotInterval paces the periodic snapshot loop when DataDir is
	// set (0 = 30s default); Close also snapshots.
	SnapshotInterval time.Duration
	// MetricsAddr, when set, binds the node's debug HTTP endpoint
	// (/metrics, /healthz, /debug/traces, /debug/pprof) on Start —
	// the -metrics-addr flag. Empty disables the listener; metrics and
	// traces are still collected unless DisableObs is set.
	MetricsAddr string
	// DisableObs turns off all metric and trace collection (nil
	// registry, nil ring): the baseline BenchmarkObsOverhead compares
	// against.
	DisableObs bool
	// Logf logs server events; nil silences.
	Logf func(format string, args ...any)
}

// Repository is a running repository node.
type Repository struct {
	cfg    Config
	ln     net.Listener
	ledger cost.Ledger
	rows   []catalog.Row

	mu        sync.Mutex
	updates   map[model.UpdateID]model.Update
	perObject map[model.ObjectID][]model.UpdateID
	freshAsOf map[model.ObjectID]time.Duration
	// subscribers carry invalidation-stream frames: update notices
	// (MsgInvalidate) and new-object announcements (MsgObjectBirth).
	subscribers map[int]chan netproto.Frame
	nextSub     int
	closed      bool

	droppedInvalidations atomic.Int64
	objectsBorn          atomic.Int64
	recoveredBirths      atomic.Int64

	// store is the durability layer for the grown universe (nil when
	// Config.DataDir is empty); stop ends its snapshot loop on Close.
	store *persist.Store
	stop  chan struct{}

	// Observability (all nil under Config.DisableObs; every use is
	// nil-safe). queriesTotal mirrors StatsMsg.Queries, which the
	// repository otherwise does not track.
	reg          *obs.Registry
	traces       *obs.TraceRing
	debug        *obs.DebugServer
	queriesTotal atomic.Int64
	execLat      *obs.Histogram
	loadLat      *obs.Histogram
	fsyncLat     *obs.Histogram

	wg sync.WaitGroup
}

// New validates the config and creates a repository (not yet listening).
func New(cfg Config) (*Repository, error) {
	if cfg.Survey == nil {
		return nil, fmt.Errorf("server: nil survey")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.SampleRows <= 0 {
		cfg.SampleRows = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	r := &Repository{
		cfg:         cfg,
		rows:        cfg.Survey.SampleRows(2000, cfg.Survey.Config().Seed),
		updates:     make(map[model.UpdateID]model.Update),
		perObject:   make(map[model.ObjectID][]model.UpdateID),
		freshAsOf:   make(map[model.ObjectID]time.Duration),
		subscribers: make(map[int]chan netproto.Frame),
		stop:        make(chan struct{}),
	}
	if !cfg.DisableObs {
		r.reg = obs.NewRegistry()
		r.traces = obs.NewTraceRing(0)
		r.execLat = r.reg.NewHistogram("delta_repo_query_seconds",
			"Repository query execution latency.", nil)
		r.loadLat = r.reg.NewHistogram("delta_repo_load_seconds",
			"Repository object-load latency.", nil)
		r.fsyncLat = r.reg.NewHistogram("delta_journal_fsync_seconds",
			"Durability journal fsync latency.", nil)
		obs.RegisterStats(r.reg, func() (netproto.StatsMsg, error) { return r.Stats(), nil })
	}
	if cfg.DataDir != "" {
		store, err := persist.Open(persist.Options{
			Dir:         cfg.DataDir,
			Logf:        cfg.Logf,
			SyncObserve: r.fsyncLat.Observe,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		recovered, err := store.Recover()
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		r.store = store
		if recovered != nil {
			// Replay the persisted births into the freshly built survey
			// in publication order (births carry dense sequential IDs, so
			// order is the ingest invariant). Births the survey already
			// knows — a DataDir shared with a survey that grew — skip
			// idempotently, like a duplicate publication would.
			replayed := 0
			for _, b := range recovered.Births {
				if err := cfg.Survey.AddObject(b); err != nil {
					if int(b.Object.ID) >= 1 && int(b.Object.ID) <= cfg.Survey.NumObjects() {
						continue
					}
					store.Close()
					return nil, fmt.Errorf("server: recover birth %d: %w", b.Object.ID, err)
				}
				replayed++
			}
			r.recoveredBirths.Store(int64(replayed))
			if replayed > 0 {
				cfg.Logf("recovered %d born objects from %s (universe now %d)",
					replayed, cfg.DataDir, cfg.Survey.NumObjects())
			}
		}
		// Land the post-recovery universe as the new baseline snapshot.
		if err := store.WriteSnapshot(r.persistState()); err != nil {
			store.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		r.wg.Add(1)
		go r.snapshotLoop()
	}
	return r, nil
}

// persistState captures the repository's durable state: the grown
// universe as full-fidelity births (static base objects rebuild from
// the survey seed). No epoch, ownership, or residency — the repository
// owns everything and caches nothing.
func (r *Repository) persistState() *persist.State {
	return &persist.State{Births: r.cfg.Survey.BornObjects()}
}

// snapshotLoop periodically compacts the birth journal into a snapshot
// until Close.
func (r *Repository) snapshotLoop() {
	defer r.wg.Done()
	interval := r.cfg.SnapshotInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if err := r.store.WriteSnapshot(r.persistState()); err != nil {
				r.cfg.Logf("snapshot: %v", err)
			}
		}
	}
}

// Start begins listening and serving.
func (r *Repository) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	r.ln = ln
	if r.cfg.MetricsAddr != "" {
		dbg, err := obs.ServeDebug(r.cfg.MetricsAddr, r.reg, r.traces)
		if err != nil {
			ln.Close()
			r.ln = nil
			return fmt.Errorf("server: metrics listen: %w", err)
		}
		r.debug = dbg
		r.cfg.Logf("repository debug endpoint on %s", dbg.Addr())
	}
	r.wg.Add(1)
	go r.acceptLoop()
	r.cfg.Logf("repository listening on %s", ln.Addr())
	return nil
}

// DebugAddr reports the bound debug (metrics) address, or "" when no
// debug endpoint is serving.
func (r *Repository) DebugAddr() string { return r.debug.Addr() }

// Addr returns the bound address, or "" before Start.
func (r *Repository) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Ledger returns a snapshot of the server-side traffic accounting.
func (r *Repository) Ledger() cost.Snapshot { return r.ledger.Snapshot() }

// Subscribers reports how many invalidation subscribers are currently
// registered (observability; tests also use it to sync with a
// subscription completing its handshake).
func (r *Repository) Subscribers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subscribers)
}

// DroppedInvalidations reports how many invalidation notices were
// discarded because a subscriber's buffer was full.
func (r *Repository) DroppedInvalidations() int64 {
	return r.droppedInvalidations.Load()
}

// Close stops the server and waits for connection handlers. With
// persistence enabled, a final snapshot of the grown universe lands
// before the store closes.
func (r *Repository) Close() error {
	r.mu.Lock()
	already := r.closed
	r.closed = true
	for id, ch := range r.subscribers {
		close(ch)
		delete(r.subscribers, id)
	}
	r.mu.Unlock()
	if !already {
		close(r.stop)
	}
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	if r.debug != nil {
		r.debug.Close()
	}
	r.wg.Wait()
	if r.store != nil && !already {
		if serr := r.store.WriteSnapshot(r.persistState()); serr != nil {
			r.cfg.Logf("final snapshot: %v", serr)
		}
		if cerr := r.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// ApplyUpdate ingests one pipeline update directly (the in-process
// pipeline path used by tests and the simulator bridge; the network path
// arrives via MsgUpdateFeed).
func (r *Repository) ApplyUpdate(u model.Update) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.updates[u.ID] = u
	r.perObject[u.Object] = append(r.perObject[u.Object], u.ID)
	r.broadcastLocked(netproto.Frame{
		Type: netproto.MsgInvalidate,
		Body: netproto.InvalidateMsg{Update: u},
	})
}

// broadcastLocked fans one frame out to every invalidation subscriber.
// Sends stay under the lock: subscriber channels are closed under it,
// and a send racing a close would panic. They cannot block the
// pipeline — a full buffer drops the notice instead (dropped notices
// only cost freshness, loading repairs it, and the drop counter makes
// them observable in StatsMsg).
func (r *Repository) broadcastLocked(f netproto.Frame) {
	for _, ch := range r.subscribers {
		select {
		case ch <- f:
		default:
			r.droppedInvalidations.Add(1)
		}
	}
}

// AddObjects ingests newly published data objects — the live growth
// the paper's rapidly-growing repository implies — and announces them
// on the invalidation stream so caches and routers extend their
// universes within one notification round trip. Births whose IDs are
// already in the catalog are skipped (publication is idempotent, so a
// client retry or a second publisher is harmless); a birth that is
// neither known nor next-in-sequence is an error. Returns how many
// births were newly ingested.
func (r *Repository) AddObjects(births []model.Birth) (int, error) {
	accepted := make([]model.Birth, 0, len(births))
	for _, b := range births {
		if err := r.cfg.Survey.AddObject(b); err != nil {
			if int(b.Object.ID) >= 1 && int(b.Object.ID) <= r.cfg.Survey.NumObjects() {
				continue // already published (dense IDs: a known ID is an ingested object)
			}
			return len(accepted), fmt.Errorf("server: add object %d: %w", b.Object.ID, err)
		}
		// Announce the stored copy: the catalog may have filled in the
		// trixel the birth inherits from its partition cell.
		obj, err := r.cfg.Survey.Object(b.Object.ID)
		if err == nil {
			b.Object = obj
		}
		accepted = append(accepted, b)
	}
	if len(accepted) == 0 {
		return 0, nil
	}
	if r.store != nil {
		for _, b := range accepted {
			if err := r.store.AppendBirth(b); err != nil {
				r.cfg.Logf("journal birth %d: %v", b.Object.ID, err)
				break
			}
		}
	}
	r.objectsBorn.Add(int64(len(accepted)))
	r.cfg.Logf("ingested %d new objects (universe now %d)", len(accepted), r.cfg.Survey.NumObjects())
	r.mu.Lock()
	defer r.mu.Unlock()
	r.broadcastLocked(netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: accepted},
	})
	return len(accepted), nil
}

// ObjectsBorn reports how many new objects the repository has ingested
// since start.
func (r *Repository) ObjectsBorn() int64 { return r.objectsBorn.Load() }

// OutstandingSince returns updates for an object newer than the given
// time (used when a cache loads an object and needs the frontier).
func (r *Repository) OutstandingSince(obj model.ObjectID, since time.Duration) []model.Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []model.Update
	for _, id := range r.perObject[obj] {
		if u := r.updates[id]; u.Time > since {
			out = append(out, u)
		}
	}
	return out
}

func (r *Repository) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			if err := r.serveConn(conn); err != nil && !netproto.IsClosed(err) {
				r.cfg.Logf("connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (r *Repository) serveConn(nc net.Conn) error {
	c := netproto.NewConn(nc)
	first, err := c.Recv()
	if err != nil {
		return err
	}
	hello, ok := first.Body.(netproto.Hello)
	if !ok || first.Type != netproto.MsgHello {
		return fmt.Errorf("server: expected hello, got %s", first.Type)
	}
	switch hello.Role {
	case "pipeline":
		return r.servePipeline(c)
	case "invalidations":
		return r.serveInvalidations(nc, c)
	case "cache", "client":
		return r.serveRequests(c, hello)
	default:
		return fmt.Errorf("server: unknown role %q", hello.Role)
	}
}

func (r *Repository) servePipeline(c *netproto.Conn) error {
	for {
		f, err := c.Recv()
		if err != nil {
			return netproto.IgnoreClosed(err)
		}
		switch body := f.Body.(type) {
		case netproto.UpdateFeedMsg:
			r.ApplyUpdate(body.Update)
		case netproto.ObjectBirthMsg:
			// The pipeline publishes new objects on its one-way stream;
			// ingest errors are logged, not replied (there is no reply
			// path), and idempotent skips are silent.
			if _, err := r.AddObjects(body.Births); err != nil {
				r.cfg.Logf("pipeline births: %v", err)
			}
		default:
			return fmt.Errorf("server: pipeline sent %s", f.Type)
		}
	}
}

func (r *Repository) serveInvalidations(nc net.Conn, c *netproto.Conn) error {
	ch := make(chan netproto.Frame, 1024)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	id := r.nextSub
	r.nextSub++
	r.subscribers[id] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if _, ok := r.subscribers[id]; ok {
			delete(r.subscribers, id)
			close(ch)
		}
		r.mu.Unlock()
	}()
	for f := range ch {
		if err := c.Send(f); err != nil {
			return netproto.IgnoreClosed(err)
		}
	}
	_ = nc // held open until server close
	return nil
}

// serveRequests handles a cache or client request connection. v2+
// peers get per-request worker goroutines (v3 peers additionally
// switch to the binary codec inside ServeHandshake); v1 peers are
// served lockstep so replies stay in order.
func (r *Repository) serveRequests(c *netproto.Conn, hello netproto.Hello) error {
	version, err := netproto.ServeHandshake(c, hello, r.cfg.WireVersion)
	if err != nil {
		return err
	}
	if version >= netproto.ProtoV2 {
		return netproto.ServeMux(c, 0, r.handleRequest, r.cfg.Logf)
	}
	for {
		f, err := c.Recv()
		if err != nil {
			return netproto.IgnoreClosed(err)
		}
		if err := c.Send(r.handleRequest(f)); err != nil {
			return netproto.IgnoreClosed(err)
		}
	}
}

// handleRequest executes one request frame and builds its reply (the
// reply's RequestID is the caller's business).
func (r *Repository) handleRequest(f netproto.Frame) netproto.Frame {
	switch body := f.Body.(type) {
	case netproto.QueryMsg:
		return r.execQuery(&body.Query, body.TraceID)
	case netproto.ShipUpdatesMsg:
		return r.shipUpdates(body.IDs)
	case netproto.LoadObjectMsg:
		return r.loadObject(body.Object)
	case netproto.ObjectBirthMsg:
		accepted, err := r.AddObjects(body.Births)
		if err != nil {
			return netproto.ErrorFrame("add objects: %v", err)
		}
		// Reply with the catalog's canonical copies (AddObjects fills
		// in the trixel a birth inherits from its partition cell):
		// forwarding nodes adopt from this reply, and every adopter —
		// publish path or announcement stream — must place the newborn
		// from identical metadata.
		canonical := make([]model.Birth, 0, len(body.Births))
		for _, b := range body.Births {
			if obj, err := r.cfg.Survey.Object(b.Object.ID); err == nil {
				b.Object = obj
			}
			canonical = append(canonical, b)
		}
		return netproto.Frame{Type: netproto.MsgObjectBirth, Body: netproto.ObjectBirthMsg{
			Births:   canonical,
			Accepted: accepted,
		}}
	case netproto.StatsMsg:
		return netproto.Frame{Type: netproto.MsgStats, Body: r.Stats()}
	default:
		return netproto.ErrorFrame("unsupported request %s", f.Type)
	}
}

// Stats snapshots the repository's StatsMsg view — what a MsgStats
// request returns and what the /metrics exposition exports.
func (r *Repository) Stats() netproto.StatsMsg {
	stats := netproto.StatsMsg{
		Ledger:               r.ledger.Snapshot(),
		Policy:               "repository",
		Queries:              r.queriesTotal.Load(),
		DroppedInvalidations: r.droppedInvalidations.Load(),
		ObjectsBorn:          r.objectsBorn.Load(),
		RecoveredWarm:        r.recoveredBirths.Load(),
		Replicas:             int64(max(r.cfg.Replicas, 1)),
	}
	if r.store != nil {
		stats.SnapshotAge = r.store.SnapshotAge()
		stats.JournalRecords = r.store.JournalRecords()
	}
	return stats
}

func (r *Repository) execQuery(q *model.Query, traceID uint64) netproto.Frame {
	start := time.Now()
	r.queriesTotal.Add(1)
	if len(q.Objects) == 0 {
		return netproto.ErrorFrame("query %d accesses no objects", q.ID)
	}
	if r.cfg.ExecDelay > 0 {
		r.cfg.Clock.Sleep(r.cfg.ExecDelay)
	}
	for _, id := range q.Objects {
		if _, err := r.cfg.Survey.Object(id); err != nil {
			return netproto.ErrorFrame("query %d: %v", q.ID, err)
		}
	}
	r.ledger.Charge(cost.QueryShip, q.Cost)
	rows := r.sampleRowsFor(q.Objects)
	payload, release := netproto.NewPayload(r.cfg.Scale, q.Cost, int64(q.ID))
	elapsed := time.Since(start)
	r.execLat.Observe(elapsed)
	res := netproto.QueryResultMsg{
		QueryID: q.ID,
		Logical: q.Cost,
		Rows:    rows,
		Payload: payload,
		Source:  "repository",
		Elapsed: elapsed,
	}
	if traceID != 0 {
		res.TraceID = traceID
		res.Spans = []netproto.TraceSpan{{
			Name:    "repository",
			Node:    r.Addr(),
			Shard:   -1,
			Objects: len(q.Objects),
			Source:  "repository",
			Elapsed: elapsed,
		}}
		r.traces.Add(traceID, res.Spans)
	}
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: res, Release: release}
}

func (r *Repository) shipUpdates(ids []model.UpdateID) netproto.Frame {
	r.mu.Lock()
	var (
		ships []model.Update
		total cost.Bytes
	)
	for _, id := range ids {
		u, ok := r.updates[id]
		if !ok {
			r.mu.Unlock()
			return netproto.ErrorFrame("unknown update %d", id)
		}
		ships = append(ships, u)
		total += u.Cost
	}
	r.mu.Unlock()
	r.ledger.Charge(cost.UpdateShip, total)
	payload, release := netproto.NewPayload(r.cfg.Scale, total, int64(len(ids)))
	return netproto.Frame{Type: netproto.MsgUpdates, Body: netproto.UpdatesMsg{
		Updates: ships,
		Payload: payload,
	}, Release: release}
}

func (r *Repository) loadObject(id model.ObjectID) netproto.Frame {
	start := time.Now()
	defer func() { r.loadLat.Observe(time.Since(start)) }()
	obj, err := r.cfg.Survey.Object(id)
	if err != nil {
		return netproto.ErrorFrame("load: %v", err)
	}
	r.mu.Lock()
	var fresh time.Duration
	for _, uid := range r.perObject[id] {
		if u := r.updates[uid]; u.Time > fresh {
			fresh = u.Time
		}
	}
	r.freshAsOf[id] = fresh
	r.mu.Unlock()
	r.ledger.Charge(cost.ObjectLoad, obj.Size)
	payload, release := netproto.NewPayload(r.cfg.Scale, obj.Size, int64(obj.ID))
	return netproto.Frame{Type: netproto.MsgObjectData, Body: netproto.ObjectDataMsg{
		Object:    obj,
		FreshAsOf: fresh,
		Payload:   payload,
	}, Release: release}
}

func (r *Repository) sampleRowsFor(objs []model.ObjectID) []netproto.ResultRow {
	want := make(map[model.ObjectID]struct{}, len(objs))
	for _, id := range objs {
		want[id] = struct{}{}
	}
	var rows []netproto.ResultRow
	for _, row := range r.rows {
		if _, ok := want[row.Object]; !ok {
			continue
		}
		rows = append(rows, netproto.ResultRow{
			ObjID: row.ObjID, RA: row.RA, Dec: row.Dec, R: row.R,
		})
		if len(rows) >= r.cfg.SampleRows {
			break
		}
	}
	return rows
}
